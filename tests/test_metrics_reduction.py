"""ServingMetrics reductions and memory-sample arithmetic."""

import math

import pytest

from repro.core import SLA_TESTBED_CHATBOT
from repro.serving import MemorySample, ServingMetrics
from repro.serving.request import RequestState
from repro.workloads import TraceRequest


def finished(rid, arrival, ttft, tpot, out_len=11):
    r = RequestState(TraceRequest(rid, arrival, 100, out_len))
    r.first_token_time = arrival + ttft
    r.finish_time = r.first_token_time + tpot * (out_len - 1)
    return r


class TestMemorySample:
    def test_utilization(self):
        s = MemorySample(1.0, 50, 200)
        assert s.utilization == pytest.approx(0.25)

    def test_zero_capacity_nan(self):
        assert math.isnan(MemorySample(0.0, 0, 0).utilization)


class TestReductions:
    def make(self, ttfts, tpots):
        m = ServingMetrics(sla=SLA_TESTBED_CHATBOT)
        for i, (a, b) in enumerate(zip(ttfts, tpots)):
            m.record_finish(finished(i, float(i), a, b))
        return m

    def test_means(self):
        m = self.make([1.0, 3.0], [0.1, 0.2])
        assert m.mean_ttft() == pytest.approx(2.0)
        assert m.mean_tpot() == pytest.approx(0.15)

    def test_attainment_counts_both_slos(self):
        # SLA: ttft 2.5, tpot 0.15.
        m = self.make(
            [1.0, 1.0, 3.0, 1.0],
            [0.1, 0.2, 0.1, 0.1],
        )
        # req0 ok, req1 tpot miss, req2 ttft miss, req3 ok.
        assert m.attainment() == pytest.approx(0.5)

    def test_p90_at_least_median_scale(self):
        m = self.make([0.1] * 9 + [10.0], [0.01] * 10)
        assert m.p90_ttft() >= 0.1
        assert m.p90_ttft() <= 10.0

    def test_memory_stats(self):
        m = ServingMetrics(sla=SLA_TESTBED_CHATBOT)
        m.record_memory(0.0, 10, 100)
        m.record_memory(1.0, 30, 100)
        assert m.mean_memory_utilization() == pytest.approx(0.2)
        assert m.peak_memory_utilization() == pytest.approx(0.3)

    def test_empty_memory_nan(self):
        m = ServingMetrics(sla=SLA_TESTBED_CHATBOT)
        assert math.isnan(m.mean_memory_utilization())
        assert math.isnan(m.peak_memory_utilization())

    def test_summary_roundtrip(self):
        m = self.make([1.0], [0.1])
        s = m.summary()
        assert s["finished"] == 1.0
        assert s["attainment"] == 1.0
        assert s["mean_ttft_s"] == pytest.approx(1.0)
