"""Load-aware online scheduler and central controller (§III-D)."""

import pytest

from repro.comm import CommContext, SchemeKind
from repro.core import CentralController, LoadAwareScheduler
from repro.core.scheduler import rank_switches
from repro.network import LinkLoadTracker, build_testbed


@pytest.fixture()
def tb():
    return build_testbed()


def live_ctx(tb, heterogeneous=True):
    base = CommContext.from_built(tb, heterogeneous=heterogeneous)
    return CommContext(
        built=tb,
        route_table=base.route_table,
        linkstate=LinkLoadTracker(tb.topology),
        heterogeneous=heterogeneous,
    )


class TestPolicyConstruction:
    def test_ring_scheme_single_policy(self, tb):
        ctx = live_ctx(tb, heterogeneous=False)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.RING
        )
        assert [p.mode for p in s.table.policies] == ["ring"]

    def test_ina_scheme_policies(self, tb):
        ctx = live_ctx(tb, heterogeneous=False)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.INA_SYNC,
            n_switch_candidates=2,
        )
        modes = [p.mode for p in s.table.policies]
        assert modes.count("ina") == 2
        assert "ring" in modes

    def test_hybrid_multi_server_policies(self, tb):
        ctx = live_ctx(tb)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.HYBRID,
            n_switch_candidates=2,
        )
        modes = [p.mode for p in s.table.policies]
        assert modes.count("hybrid-ina") == 2
        assert "hybrid-ring" in modes
        assert "ring" in modes

    def test_hybrid_single_server_nvlink(self, tb):
        ctx = live_ctx(tb)
        s = LoadAwareScheduler(
            ctx, tb.server_gpus[0], SchemeKind.HYBRID
        )
        modes = [p.mode for p in s.table.policies]
        assert "nvlink" in modes

    def test_rank_switches_count(self, tb):
        ctx = live_ctx(tb)
        sw = rank_switches(ctx, tb.topology.gpu_ids()[:8], 2)
        assert len(sw) == 2
        assert set(sw) <= set(tb.access_switches)

    def test_empty_group_rejected(self, tb):
        with pytest.raises(ValueError):
            LoadAwareScheduler(live_ctx(tb), [], SchemeKind.RING)


class TestDecide:
    def test_decide_returns_live_time(self, tb):
        ctx = live_ctx(tb)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.HYBRID
        )
        d = s.decide(1e6)
        assert d.step_time > 0
        assert d.policy in s.table.policies

    def test_congestion_shifts_selection(self, tb):
        """Loading one switch's links should steer traffic to the other."""
        ctx = live_ctx(tb)
        gpus = tb.topology.gpu_ids()[:8]
        s = LoadAwareScheduler(
            ctx, gpus, SchemeKind.HYBRID, n_switch_candidates=2
        )
        first = s.decide(1e6).policy
        assert first.mode == "hybrid-ina"
        # Saturate every link of the chosen policy heavily.
        ctx.linkstate.register(list(first.links), 0.95 * 12.5e9)
        s.refresh()
        second = s.decide(1e6).policy
        assert second.policy_id != first.policy_id

    def test_refresh_without_linkstate_noop(self, tb):
        ctx = CommContext.from_built(tb)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.RING
        )
        s.refresh()  # must not raise


class TestController:
    def test_scheduler_cached_per_group(self, tb):
        ctx = live_ctx(tb)
        c = CentralController(ctx=ctx, scheme=SchemeKind.HYBRID)
        g = tb.topology.gpu_ids()[:8]
        s1 = c.scheduler_for(g)
        s2 = c.scheduler_for(list(reversed(g)))
        assert s1 is s2
        assert c.n_groups() == 1

    def test_decide_roundtrip(self, tb):
        ctx = live_ctx(tb)
        c = CentralController(ctx=ctx, scheme=SchemeKind.HYBRID)
        d = c.decide(tb.topology.gpu_ids()[:8], 1e6)
        assert d.step_time > 0

    def test_tick_respects_period(self, tb):
        ctx = live_ctx(tb)
        c = CentralController(
            ctx=ctx, scheme=SchemeKind.HYBRID, refresh_period=1.0
        )
        c.scheduler_for(tb.topology.gpu_ids()[:8])
        assert c.tick(0.0) is True
        assert c.tick(0.5) is False
        assert c.tick(1.5) is True
        assert c.refreshes == 2


class TestGroupKeyNormalization:
    def test_duplicate_gpu_ids_share_scheduler(self, tb):
        ctx = live_ctx(tb)
        c = CentralController(ctx=ctx, scheme=SchemeKind.HYBRID)
        g = tb.topology.gpu_ids()[:8]
        s1 = c.scheduler_for(g)
        s2 = c.scheduler_for(list(g) + [g[0], g[3]])
        assert s1 is s2
        assert c.n_groups() == 1

    def test_unsorted_group_preserves_caller_order(self, tb):
        """The cache key is order-insensitive but the scheduler is built
        with the caller's (deduplicated) stage order."""
        ctx = live_ctx(tb)
        c = CentralController(ctx=ctx, scheme=SchemeKind.HYBRID)
        g = list(reversed(tb.topology.gpu_ids()[:8]))
        s = c.scheduler_for(g + [g[0]])
        assert list(s.gpus) == g

    def test_distinct_groups_not_conflated(self, tb):
        ctx = live_ctx(tb)
        c = CentralController(ctx=ctx, scheme=SchemeKind.HYBRID)
        a = c.scheduler_for(tb.topology.gpu_ids()[:8])
        b = c.scheduler_for(tb.topology.gpu_ids()[8:16])
        assert a is not b
        assert c.n_groups() == 2


class TestRankSwitchesDeterminism:
    def test_tied_scores_break_by_switch_id(self, tb):
        """On an idle network both access switches score equally; the
        ranking must still be deterministic (ascending id on ties)."""
        ctx = live_ctx(tb)
        gpus = tb.topology.gpu_ids()[:8]
        first = rank_switches(ctx, gpus, 2)
        for _ in range(5):
            assert rank_switches(ctx, gpus, 2) == first
        assert first == sorted(first)

    def test_k_clamped_to_at_least_one(self, tb):
        ctx = live_ctx(tb)
        sw = rank_switches(ctx, tb.topology.gpu_ids()[:8], 0)
        assert len(sw) == 1


class TestApplyHealth:
    def _health(self):
        from repro.faults import HealthRegistry

        return HealthRegistry()

    def test_masks_dead_switch_policies(self, tb):
        ctx = live_ctx(tb)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.HYBRID,
            n_switch_candidates=2,
        )
        health = self._health()
        dead = tb.access_switches[0]
        health.mark_down("switch", dead, now=0.0)
        health.poll(1.0)
        changed, degraded = s.apply_health(health)
        assert changed and degraded
        d = s.decide(1e6)
        assert d.policy.switch != dead

    def test_all_switches_dead_falls_to_ring(self, tb):
        ctx = live_ctx(tb)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.HYBRID,
            n_switch_candidates=2,
        )
        health = self._health()
        for sw in tb.access_switches:
            health.mark_down("switch", sw, now=0.0)
        health.poll(1.0)
        changed, degraded = s.apply_health(health)
        assert changed and degraded
        assert s.decide(1e6).policy.mode in ("hybrid-ring", "ring")

    def test_recovery_unmasks(self, tb):
        ctx = live_ctx(tb)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.HYBRID,
            n_switch_candidates=2,
        )
        health = self._health()
        for sw in tb.access_switches:
            health.mark_down("switch", sw, now=0.0)
        health.poll(1.0)
        s.apply_health(health)
        for sw in tb.access_switches:
            health.mark_up("switch", sw, now=2.0)
        health.poll(5.0)  # past hold-down
        changed, degraded = s.apply_health(health)
        assert changed and not degraded
        assert s.decide(1e6).policy.mode == "hybrid-ina"

    def test_healthy_health_is_noop(self, tb):
        ctx = live_ctx(tb)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.HYBRID
        )
        changed, degraded = s.apply_health(self._health())
        assert not changed and not degraded
