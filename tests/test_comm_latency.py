"""Assembled Eq. 5/7 phase-communication estimates and scheme ordering."""

import pytest

from repro.comm import (
    CommContext,
    SchemeKind,
    allreduce_bytes,
    decode_activation_bytes,
    estimate_group_step,
    estimate_phase_comm,
    pipeline_sync_time,
    prefill_activation_bytes,
    stage_boundary_time,
    sync_steps_per_pass,
)
from repro.llm import OPT_66B, TINY
from repro.network import build_testbed


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def homo(tb):
    return CommContext.from_built(tb, heterogeneous=False)


@pytest.fixture(scope="module")
def het(tb):
    return CommContext.from_built(tb, heterogeneous=True)


class TestHelpers:
    def test_sync_steps_two_per_layer(self):
        assert sync_steps_per_pass(OPT_66B, 1) == 2 * 64
        assert sync_steps_per_pass(OPT_66B, 4) == 2 * 16

    def test_sync_steps_bad_pipe(self):
        with pytest.raises(ValueError):
            sync_steps_per_pass(OPT_66B, 0)

    def test_allreduce_bytes(self):
        assert allreduce_bytes(OPT_66B, 100) == 100 * 9216 * 2

    def test_activation_bytes(self):
        assert prefill_activation_bytes(OPT_66B, 10) == 10 * 9216 * 2
        assert decode_activation_bytes(OPT_66B, 4) == 4 * 9216 * 2


class TestSchemeOrdering:
    """The paper's central comparison at the step level."""

    def test_cross_server_ordering(self, homo, het, tb):
        g = tb.topology.gpu_ids()[:8]  # 2 A100 servers
        d = 44e6  # prefill-sized payload
        t_ring = estimate_group_step(homo, g, d, SchemeKind.RING).step_time
        t_sml = estimate_group_step(
            homo, g, d, SchemeKind.INA_SYNC
        ).step_time
        t_atp = estimate_group_step(
            homo, g, d, SchemeKind.INA_ASYNC
        ).step_time
        t_hyb = estimate_group_step(het, g, d, SchemeKind.HYBRID).step_time
        assert t_hyb < t_sml < t_atp < t_ring

    def test_atp_contention_degrades(self, homo, tb):
        g = tb.topology.gpu_ids()[:8]
        t0 = estimate_group_step(
            homo, g, 44e6, SchemeKind.INA_ASYNC, contention=0.0
        ).step_time
        t1 = estimate_group_step(
            homo, g, 44e6, SchemeKind.INA_ASYNC, contention=0.9
        ).step_time
        assert t1 > t0

    def test_ina_falls_back_to_ring_when_worse(self, homo, tb):
        """Eq. 7 argmin: with a tiny slot window, SwitchML's cap makes the
        ring cheaper and beta must be selected."""
        g = tb.topology.gpu_ids()[:8]
        est = estimate_group_step(
            homo, g, 44e6, SchemeKind.INA_SYNC, n_slots=1, slot_payload=64
        )
        assert est.mode == "ring"

    def test_single_gpu_always_ring_zero(self, homo, tb):
        est = estimate_group_step(
            homo, tb.topology.gpu_ids()[:1], 1e6, SchemeKind.INA_SYNC
        )
        assert est.step_time == 0.0

    def test_links_reported(self, homo, tb):
        g = tb.topology.gpu_ids()[:8]
        est = estimate_group_step(homo, g, 1e6, SchemeKind.INA_SYNC)
        assert len(est.links) > 0


class TestPipeline:
    def test_boundary_min_max(self, homo, tb):
        g = tb.topology.gpu_ids()
        senders, receivers = g[:4], g[4:8]
        t = stage_boundary_time(homo, senders, receivers, 1e6)
        brute = min(
            max(homo.path_time(a, k, 1e6) for k in receivers)
            for a in senders
        )
        assert t == pytest.approx(brute)

    def test_empty_stage_rejected(self, homo):
        with pytest.raises(ValueError):
            stage_boundary_time(homo, [], [1], 1e6)

    def test_pipeline_sums_boundaries(self, homo, tb):
        g = tb.topology.gpu_ids()
        stages = [g[:4], g[4:8], g[8:12]]
        t = pipeline_sync_time(homo, stages, 1e6)
        t01 = stage_boundary_time(homo, stages[0], stages[1], 1e6)
        t12 = stage_boundary_time(homo, stages[1], stages[2], 1e6)
        assert t == pytest.approx(t01 + t12)


class TestPhaseComm:
    def test_total_includes_steps_and_pipeline(self, homo, tb):
        g = tb.topology.gpu_ids()
        stages = [g[:4], g[4:8]]
        est = estimate_phase_comm(
            homo, stages, TINY, tokens=128, scheme=SchemeKind.RING
        )
        steps = sync_steps_per_pass(TINY, 2)
        manual = steps * sum(e.step_time for e in est.per_stage)
        assert est.total_time == pytest.approx(
            manual + est.pipeline_time
        )

    def test_single_stage_no_pipeline(self, homo, tb):
        g = tb.topology.gpu_ids()[:4]
        est = estimate_phase_comm(
            homo, [g], TINY, tokens=128, scheme=SchemeKind.RING
        )
        assert est.pipeline_time == 0.0

    def test_empty_stages_rejected(self, homo):
        with pytest.raises(ValueError):
            estimate_phase_comm(
                homo, [], TINY, tokens=1, scheme=SchemeKind.RING
            )

    def test_hybrid_phase_cheaper_cross_server(self, homo, het, tb):
        g = tb.topology.gpu_ids()[:8]
        ring = estimate_phase_comm(
            homo, [g], OPT_66B, tokens=2048, scheme=SchemeKind.RING
        )
        hyb = estimate_phase_comm(
            het, [g], OPT_66B, tokens=2048, scheme=SchemeKind.HYBRID
        )
        assert hyb.total_time < ring.total_time
