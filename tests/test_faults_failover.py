"""End-to-end failover: INA->ring under faults, byte-identical without."""

import pytest

from repro import quick_testbed
from repro.comm import CommContext, SchemeKind
from repro.core import CentralController
from repro.faults import FaultEvent, FaultPlan, HealthRegistry
from repro.network import LinkLoadTracker, build_testbed


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


def live_ctx(tb):
    base = CommContext.from_built(tb, heterogeneous=True)
    return CommContext(
        built=tb,
        route_table=base.route_table,
        linkstate=LinkLoadTracker(tb.topology),
        agg_latency=base.agg_latency,
        heterogeneous=True,
    )


BOTH_SWITCHES_PLAN = FaultPlan(
    events=(
        FaultEvent(
            time=2.0, kind="switch_down", target="switch#0", duration=4.0
        ),
        FaultEvent(
            time=2.0, kind="switch_down", target="switch#1", duration=4.0
        ),
    ),
    seed=0,
)


class TestPolicyFailover:
    """Groups degrade INA->ring on detection and return after hold-down."""

    def test_decide_rings_while_down_then_returns(self, tb):
        ctx = live_ctx(tb)
        health = HealthRegistry()
        c = CentralController(
            ctx=ctx, scheme=SchemeKind.HYBRID, health=health
        )
        gpus = tb.topology.gpu_ids()[:8]
        before = c.decide(gpus, 1e6)
        assert before.policy.mode == "hybrid-ina"

        for sw in tb.ina_capable_switches():
            health.mark_down("switch", sw, now=1.0)
        c.tick(1.2)  # past detect_delay -> failover
        during = c.decide(gpus, 1e6)
        assert during.policy.mode in ("hybrid-ring", "ring")
        assert health.failovers >= 1

        for sw in tb.ina_capable_switches():
            health.mark_up("switch", sw, now=3.0)
        c.tick(3.5)  # hold-down still active
        held = c.decide(gpus, 1e6)
        assert held.policy.mode in ("hybrid-ring", "ring")

        c.tick(4.5)  # hold-down expired -> mask cleared
        after = c.decide(gpus, 1e6)
        assert after.policy.mode == "hybrid-ina"

    def test_single_switch_loss_rehomes_not_rings(self, tb):
        """With one switch alive, aggregation re-homes instead of ringing."""
        ctx = live_ctx(tb)
        health = HealthRegistry()
        c = CentralController(
            ctx=ctx, scheme=SchemeKind.HYBRID, health=health
        )
        gpus = tb.topology.gpu_ids()[:8]
        dead, alive = tb.ina_capable_switches()[:2]
        health.mark_down("switch", dead, now=1.0)
        c.tick(1.2)
        d = c.decide(gpus, 1e6)
        assert d.policy.mode == "hybrid-ina"
        assert d.policy.switch == alive


class TestServingUnderFaults:
    def test_switch_crash_run_completes_with_fault_stats(self):
        _, metrics = quick_testbed(
            rate=1.0,
            duration=12.0,
            seed=0,
            fault_plan=BOTH_SWITCHES_PLAN,
        )
        assert metrics.n_finished > 0
        s = metrics.summary()
        assert s["faults_injected"] == 4.0
        assert s["failovers"] >= 1.0
        assert s["mttr_s"] > 0.0
        assert s["degraded_seconds"] > 0.0

    def test_prefill_server_crash_requeues_requests(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=2.0,
                    kind="server_down",
                    target="server#2",  # prefill server (A100s)
                    duration=3.0,
                ),
            ),
            seed=0,
        )
        _, metrics = quick_testbed(
            rate=1.0, duration=12.0, seed=0, fault_plan=plan
        )
        assert metrics.fault_stats is not None
        assert metrics.fault_stats.requests_lost >= 1
        assert metrics.fault_stats.prefill_redos >= 1
        # requeued requests still finish after the server returns
        assert metrics.n_finished > 0

    def test_decode_server_crash_retries_kv(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=2.0,
                    kind="server_down",
                    target="server#0",  # decode server (V100s)
                    duration=2.0,
                ),
            ),
            seed=0,
        )
        _, metrics = quick_testbed(
            rate=1.0, duration=12.0, seed=0, fault_plan=plan
        )
        assert metrics.fault_stats is not None
        assert metrics.fault_stats.kv_retries >= 1
        assert metrics.n_finished > 0

    def test_outage_shorter_than_budget_never_exhausts(self):
        # The 2-3 s outages above sit far inside the default retry
        # budget (8 attempts, ~7+ s cumulative backoff): no transfer
        # may give up, so the new counter stays at zero.
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=2.0,
                    kind="server_down",
                    target="server#0",
                    duration=3.0,
                ),
            ),
            seed=0,
        )
        _, metrics = quick_testbed(
            rate=1.0, duration=12.0, seed=0, fault_plan=plan
        )
        assert metrics.fault_stats.kv_exhausted == 0
        assert metrics.dropped == 0


class TestKvRetryBudget:
    def test_long_outage_exhausts_budget_and_fails_requests(self):
        # A decode outage far longer than the retry budget: transfers
        # burn through max_attempts, the batches fail into dropped /
        # requests_lost with the distinct kv_exhausted counter, and
        # requests arriving late enough still finish after recovery.
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=2.0,
                    kind="server_down",
                    target="server#0",
                    duration=12.0,
                ),
            ),
            seed=0,
        )
        _, metrics = quick_testbed(
            rate=1.0, duration=15.0, seed=0, fault_plan=plan
        )
        fs = metrics.fault_stats
        assert fs.kv_exhausted >= 1
        assert metrics.dropped >= fs.kv_exhausted
        assert fs.requests_lost >= fs.kv_exhausted
        assert fs.kv_retries >= fs.kv_exhausted
        assert metrics.n_finished > 0
        s = metrics.summary()
        assert s["kv_exhausted"] == float(fs.kv_exhausted)


class TestByteIdentity:
    def test_empty_plan_equals_no_plan(self):
        _, base = quick_testbed(rate=1.0, duration=10.0, seed=0)
        _, empty = quick_testbed(
            rate=1.0, duration=10.0, seed=0, fault_plan=FaultPlan.empty()
        )
        assert empty.fault_stats is None
        assert empty.summary() == base.summary()
        assert [r.request_id for r in empty.finished] == [
            r.request_id for r in base.finished
        ]
        assert [r.finish_time for r in empty.finished] == [
            r.finish_time for r in base.finished
        ]
