"""Capacity search against a real (small) serving system."""

import pytest

from repro.baselines import (
    DISTSERVE,
    HEROSERVE,
    build_system,
    make_rate_runner,
)
from repro.core import SLA_TESTBED_CHATBOT
from repro.core.plan import ParallelConfig
from repro.llm import OPT_66B, A100, V100, CostModelBank
from repro.network import build_testbed
from repro.serving import EngineConfig, find_max_rate, rate_sweep
from repro.util.rng import make_rng
from repro.workloads import generate_sharegpt_trace

FORCED = ParallelConfig(8, 1, 8, 1)


@pytest.fixture(scope="module")
def systems():
    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    trace = generate_sharegpt_trace(1.0, 20, make_rng(0))
    fore = trace.representative_batch(8)
    return {
        spec.name: build_system(
            spec, built, OPT_66B, bank, SLA_TESTBED_CHATBOT, fore,
            arrival_rate=1.0, forced_parallel=FORCED,
        )
        for spec in (DISTSERVE, HEROSERVE)
    }


def runner(system):
    return make_rate_runner(
        system,
        lambda r: generate_sharegpt_trace(r, 40, make_rng(9)),
        engine_config=EngineConfig(drain_time=200),
    )


class TestRealCapacitySearch:
    def test_bisection_finds_positive_capacity(self, systems):
        best, probes = find_max_rate(
            runner(systems["HeroServe"]), lo=0.5, hi=6.0, iterations=4
        )
        assert best > 0.5
        assert len(probes) >= 3

    def test_heroserve_capacity_at_least_distserve(self, systems):
        kw = dict(lo=0.5, hi=6.0, iterations=4)
        hero, _ = find_max_rate(runner(systems["HeroServe"]), **kw)
        dist, _ = find_max_rate(runner(systems["DistServe"]), **kw)
        assert hero >= dist

    def test_sweep_attainment_nonincreasing_trend(self, systems):
        """Attainment at a clearly-low rate beats a clearly-saturated
        one (monotone trend, modulo trace noise at the knee)."""
        pts = rate_sweep(runner(systems["DistServe"]), [0.8, 6.0])
        assert pts[0].attainment > pts[-1].attainment
