"""Routing: Dijkstra tables, path reconstruction, excluded kinds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    LinkKind,
    Topology,
    build_route_table,
    build_testbed,
    gpu_latency_submatrix,
)
from repro.util import units


@pytest.fixture(scope="module")
def testbed():
    return build_testbed()


@pytest.fixture(scope="module")
def table(testbed):
    return build_route_table(testbed.topology)


class TestRouteTable:
    def test_self_latency_zero(self, table):
        assert np.allclose(np.diag(table.latency), 0.0)

    def test_connected(self, table, testbed):
        n = testbed.topology.n_nodes
        assert np.isfinite(table.latency[:n, :n]).all()

    def test_symmetric_on_symmetric_graph(self, table):
        assert np.allclose(table.latency, table.latency.T, rtol=1e-9)

    def test_node_path_endpoints(self, table, testbed):
        g = testbed.topology.gpu_ids()
        path = table.node_path(g[0], g[12])
        assert path[0] == g[0] and path[-1] == g[12]

    def test_node_path_trivial(self, table):
        assert table.node_path(3, 3) == [3]

    def test_link_path_contiguous(self, table, testbed):
        g = testbed.topology.gpu_ids()
        links = table.link_path(g[0], g[12])
        topo = testbed.topology
        for a, b in zip(links, links[1:]):
            assert topo.links[a].dst == topo.links[b].src

    def test_path_latency_matches_matrix(self, table, testbed):
        """Recosting at the selection size reproduces the Dijkstra value."""
        g = testbed.topology.gpu_ids()
        lat = table.path_latency(g[0], g[12], table.selection_bytes)
        assert lat == pytest.approx(table.latency[g[0], g[12]], rel=1e-9)

    def test_path_latency_scales_with_bytes(self, table, testbed):
        g = testbed.topology.gpu_ids()
        t1 = table.path_latency(g[0], g[12], 1e6)
        t2 = table.path_latency(g[0], g[12], 2e6)
        assert t2 > t1

    def test_hops_same_server_nvlink(self, table, testbed):
        g = testbed.topology.gpu_ids()
        assert table.hops(g[0], g[1]) == 1

    def test_bottleneck_positive(self, table, testbed):
        g = testbed.topology.gpu_ids()
        assert table.path_bottleneck(g[0], g[12]) > 0

    def test_triangle_inequality(self, table, testbed):
        """Shortest-path matrix must satisfy the triangle inequality."""
        lat = table.latency
        n = testbed.topology.n_nodes
        rng = np.random.default_rng(0)
        for _ in range(50):
            i, j, k = rng.integers(0, n, size=3)
            assert lat[i, j] <= lat[i, k] + lat[k, j] + 1e-12


class TestExcludeKinds:
    def test_nvlink_excluded_latency_grows(self, testbed):
        full = build_route_table(testbed.topology)
        homo = build_route_table(
            testbed.topology, exclude_kinds={LinkKind.NVLINK}
        )
        g = testbed.topology.gpu_ids()
        # Same-server pair: NVLink direct vs 2 Ethernet hops.
        assert homo.latency[g[0], g[1]] > full.latency[g[0], g[1]] * 5

    def test_excluded_links_absent_from_paths(self, testbed):
        homo = build_route_table(
            testbed.topology, exclude_kinds={LinkKind.NVLINK}
        )
        topo = testbed.topology
        g = topo.gpu_ids()
        for dst in (g[1], g[5], g[13]):
            for lid in homo.link_path(g[0], dst):
                assert topo.links[lid].kind != LinkKind.NVLINK

    def test_still_connected(self, testbed):
        homo = build_route_table(
            testbed.topology, exclude_kinds={LinkKind.NVLINK}
        )
        assert np.isfinite(homo.latency).all()


class TestSubmatrix:
    def test_gpu_latency_submatrix(self, table, testbed):
        g = testbed.topology.gpu_ids()[:4]
        sub = gpu_latency_submatrix(table, g)
        assert sub.shape == (4, 4)
        assert sub[0, 1] == table.latency[g[0], g[1]]


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n_servers=st.integers(2, 4),
        gpus_per=st.integers(1, 3),
        data=st.floats(1e3, 1e8),
    )
    def test_random_star_topologies_route(self, n_servers, gpus_per, data):
        """Every GPU pair routes, and latency grows with message size."""
        t = Topology()
        sw = t.add_switch("s")
        gpus = []
        for s in range(n_servers):
            server_gpus = [
                t.add_gpu(f"g{s}_{i}", s, units.gib(16))
                for i in range(gpus_per)
            ]
            for i, u in enumerate(server_gpus):
                for v in server_gpus[i + 1 :]:
                    t.add_link(u, v, LinkKind.NVLINK, units.gbyte_per_s(300))
                t.add_link(u, sw, LinkKind.ETHERNET, units.gbit_per_s(100))
            gpus.extend(server_gpus)
        table = build_route_table(t)
        a, b = gpus[0], gpus[-1]
        t1 = table.path_latency(a, b, data)
        t2 = table.path_latency(a, b, data * 2)
        assert t1 > 0
        assert t2 >= t1
