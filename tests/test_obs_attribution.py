"""Per-request critical-path attribution (:mod:`repro.obs.attribution`).

The tentpole invariant is the *exact telescoping decomposition*: every
finished request's named components — queue wait, fault redo, prefill
compute/allreduce, KV transfer, KV retry backoff, decode wait/compute/
allreduce — sum to its measured end-to-end latency (TTFT + decode time)
to float rounding, on the testbed and the 2tracks cluster, across
seeds, and under fault injection. Attribution is opt-in: it must change
nothing about the serving result, only annotate it (flat ``cp_*``
summary keys), and requests that retried or requeued must be neither
orphaned nor double-counted.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import (
    HEROSERVE,
    SLA_TESTBED_CHATBOT,
    OPT_66B,
    CostModelBank,
    Observer,
    build_system,
    generate_sharegpt_trace,
    quick_testbed,
    simulate_trace,
)
from repro.core import SLA_SIM_CHATBOT
from repro.core.plan import ParallelConfig
from repro.faults import FaultEvent, FaultPlan
from repro.llm import A100, V100, OPT_175B
from repro.network import build_xtracks_cluster
from repro.obs import (
    CRITICAL_PATH_COMPONENTS,
    AttributionCollector,
    render_waterfall,
    render_waterfalls,
)
from repro.serving import EngineConfig
from repro.util.rng import make_rng

#: Decomposition is exact by construction; tolerances absorb only the
#: accumulated float rounding of the component subtractions.
REL_TOL = 1e-9
ABS_TOL = 1e-9


def run_testbed(seed: int, fault_plan=None, duration: float = 20.0):
    att = AttributionCollector()
    observer = Observer(attribution=att)
    _, metrics = quick_testbed(
        rate=1.0,
        duration=duration,
        seed=seed,
        engine_config=EngineConfig(observer=observer),
        fault_plan=fault_plan,
    )
    return att, metrics


def run_2tracks(seed: int, duration: float = 20.0):
    built = build_xtracks_cluster(2, n_units=1)
    bank = CostModelBank(OPT_175B, {"A100": A100})
    trace = generate_sharegpt_trace(1.2, duration, make_rng(seed))
    system = build_system(
        HEROSERVE,
        built,
        OPT_175B,
        bank,
        SLA_SIM_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=1.2,
        forced_parallel=ParallelConfig(16, 1, 16, 1),
    )
    att = AttributionCollector()
    observer = Observer(attribution=att)
    metrics = simulate_trace(
        system, trace, engine_config=EngineConfig(observer=observer)
    )
    return att, metrics


def assert_exact_decomposition(att: AttributionCollector) -> None:
    assert att.finished, "no requests attributed"
    for a in att.finished:
        assert set(a.components) == set(CRITICAL_PATH_COMPONENTS)
        assert all(v >= 0.0 for v in a.components.values()), a
        total = sum(a.components.values())
        assert math.isclose(
            total, a.total, rel_tol=REL_TOL, abs_tol=ABS_TOL
        ), (a.request_id, total, a.total)
        assert math.isclose(
            a.total,
            a.ttft + a.decode_latency,
            rel_tol=REL_TOL,
            abs_tol=ABS_TOL,
        )


class TestExactDecomposition:
    """Components telescope to the measured latency — the sum property."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_testbed_sum_property(self, seed):
        att, metrics = run_testbed(seed)
        assert_exact_decomposition(att)
        assert len(att.finished) == metrics.n_finished

    @pytest.mark.parametrize("seed", [0, 5])
    def test_2tracks_sum_property(self, seed):
        att, metrics = run_2tracks(seed)
        assert_exact_decomposition(att)
        assert len(att.finished) == metrics.n_finished

    def test_no_orphans_or_double_counting(self):
        att, metrics = run_testbed(0)
        finished_ids = [a.request_id for a in att.finished]
        # each request attributed exactly once ...
        assert len(finished_ids) == len(set(finished_ids))
        # ... and a finished request never lingers as a live timeline
        assert not (set(att.live) & set(finished_ids))

    def test_budget_shares_sum_to_one(self):
        att, _ = run_testbed(0)
        budget = att.budget()
        assert set(budget) == set(CRITICAL_PATH_COMPONENTS)
        assert math.isclose(
            sum(s["share"] for s in budget.values()), 1.0, rel_tol=1e-9
        )
        for stats in budget.values():
            assert stats["p50"] <= stats["p99"] + ABS_TOL

    def test_deterministic_across_runs(self):
        att1, _ = run_testbed(2)
        att2, _ = run_testbed(2)
        c1 = [(a.request_id, a.components) for a in att1.finished]
        c2 = [(a.request_id, a.components) for a in att2.finished]
        assert json.dumps(c1, sort_keys=True) == json.dumps(
            c2, sort_keys=True
        )


class TestSummaryIntegration:
    """Fleet budget lands as flat ``cp_*`` keys — and only opt-in."""

    def test_cp_keys_in_summary(self):
        att, metrics = run_testbed(0)
        summary = metrics.summary()
        assert summary["cp_requests"] == float(len(att.finished))
        for name in CRITICAL_PATH_COMPONENTS:
            assert f"cp_{name}_p50_s" in summary
            assert f"cp_{name}_p99_s" in summary

    def test_summary_unchanged_without_attribution(self):
        _, plain = quick_testbed(rate=1.0, duration=20.0, seed=0)
        _, attributed = run_testbed(0)
        att_summary = attributed.summary()
        stripped = {
            k: v
            for k, v in att_summary.items()
            if not k.startswith("cp_")
        }
        assert json.dumps(stripped, sort_keys=True) == json.dumps(
            plain.summary(), sort_keys=True
        )


class TestAllreduceDetail:
    """Per-policy shares carry the congested link/switch they priced."""

    def test_shares_populated_with_bottleneck(self):
        att, _ = run_testbed(0)
        shares = [s for a in att.finished for s in a.allreduce]
        assert shares, "no allreduce shares recorded"
        for s in shares:
            assert s.policy
            assert s.phase in ("prefill", "decode")
            assert s.seconds >= 0.0
            assert s.count >= 1
        assert any(s.seconds > 0.0 for s in shares)
        linked = [s for s in shares if s.bottleneck_link is not None]
        assert linked, "no share recorded a bottleneck link"
        for s in linked:
            assert s.bottleneck_kind
            assert 0.0 <= s.bottleneck_util <= 1.0

    def test_describe_names_link(self):
        att, _ = run_testbed(0)
        share = next(
            s
            for a in att.finished
            for s in a.allreduce
            if s.bottleneck_link is not None
        )
        text = share.describe()
        assert share.policy in text
        assert f"link {share.bottleneck_link}" in text
        assert share.bottleneck_kind in text

    def test_shares_sorted_descending(self):
        att, _ = run_testbed(0)
        for a in att.finished:
            secs = [s.seconds for s in a.allreduce]
            assert secs == sorted(secs, reverse=True)


class TestWaterfallRendering:
    def test_single_waterfall(self):
        att, _ = run_testbed(0)
        slowest = att.slowest(1)[0]
        text = render_waterfall(slowest)
        assert f"request {slowest.request_id}" in text
        assert "dominant:" in text
        assert slowest.dominant[0] in text

    def test_fleet_waterfalls_name_link(self):
        att, _ = run_testbed(0)
        text = render_waterfalls(att, slowest=3)
        assert "critical-path budget" in text
        assert "slowest 3 requests" in text
        assert "dominant:" in text
        # the comm-path line pins the decision to a concrete link
        assert "via link" in text

    def test_empty_collector(self):
        assert "no finished requests" in render_waterfalls(
            AttributionCollector()
        )


class TestAttributionUnderFaults:
    """Retry backoff and requeue redo surface as distinct components."""

    DECODE_CRASH = FaultPlan(
        events=(
            FaultEvent(
                time=2.0,
                kind="server_down",
                target="server#0",
                duration=2.0,
            ),
        ),
        seed=0,
    )
    PREFILL_CRASH = FaultPlan(
        events=(
            FaultEvent(
                time=2.0,
                kind="server_down",
                target="server#2",
                duration=3.0,
            ),
        ),
        seed=0,
    )

    def test_kv_retry_backoff_attributed(self):
        att, metrics = run_testbed(
            0, fault_plan=self.DECODE_CRASH, duration=12.0
        )
        assert metrics.fault_stats.kv_retries >= 1
        retried = [a for a in att.finished if a.kv_retries > 0]
        assert retried, "no attributed request recorded a KV retry"
        for a in retried:
            # the backoff wait is its own component, not folded into
            # the transfer itself
            assert a.components["kv_retry_backoff"] > 1e-3, a
        # and the decomposition stays exact under the fault
        assert_exact_decomposition(att)

    def test_prefill_redo_attributed(self):
        att, metrics = run_testbed(
            0, fault_plan=self.PREFILL_CRASH, duration=12.0
        )
        assert metrics.fault_stats.requests_lost >= 1
        requeued = [a for a in att.finished if a.requeues > 0]
        assert requeued, "no attributed request recorded a requeue"
        for a in requeued:
            # time between the doomed first prefill and the redo lands
            # in fault_redo, not in queue_wait or prefill_compute
            assert a.components["fault_redo"] > 1e-3, a
        assert_exact_decomposition(att)

    def test_failover_does_not_orphan(self):
        att, metrics = run_testbed(
            0, fault_plan=self.PREFILL_CRASH, duration=12.0
        )
        assert len(att.finished) == metrics.n_finished
        ids = [a.request_id for a in att.finished]
        assert len(ids) == len(set(ids))
        assert not (set(att.live) & set(ids))

    def test_fault_runs_deterministic(self):
        att1, _ = run_testbed(
            0, fault_plan=self.DECODE_CRASH, duration=12.0
        )
        att2, _ = run_testbed(
            0, fault_plan=self.DECODE_CRASH, duration=12.0
        )
        c1 = [(a.request_id, a.components) for a in att1.finished]
        c2 = [(a.request_id, a.components) for a in att2.finished]
        assert json.dumps(c1, sort_keys=True) == json.dumps(
            c2, sort_keys=True
        )
