"""Serving simulator: lifecycle, conservation, memory, SLA accounting."""

import math

import pytest

from repro.baselines import DISTSERVE, HEROSERVE, build_system, simulate_trace
from repro.core import SLA_TESTBED_CHATBOT
from repro.llm import OPT_66B, A100, V100, CostModelBank
from repro.network import build_testbed
from repro.serving import EngineConfig, RequestPhase
from repro.serving.request import RequestState
from repro.util.rng import make_rng
from repro.workloads import Trace, TraceRequest, generate_sharegpt_trace


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def bank():
    return CostModelBank(OPT_66B, {"A100": A100, "V100": V100})


@pytest.fixture(scope="module")
def hero(tb, bank):
    trace = generate_sharegpt_trace(0.5, 30, make_rng(0))
    return build_system(
        HEROSERVE, tb, OPT_66B, bank, SLA_TESTBED_CHATBOT,
        trace.representative_batch(8), arrival_rate=0.5,
    )


class TestRequestState:
    def test_metrics(self):
        r = RequestState(TraceRequest(0, 10.0, 100, 21))
        r.first_token_time = 11.0
        r.finish_time = 15.0
        assert r.ttft == pytest.approx(1.0)
        assert r.tpot == pytest.approx(4.0 / 20)
        assert r.latency == pytest.approx(5.0)
        assert r.kv_tokens == 121

    def test_meets_sla(self):
        r = RequestState(TraceRequest(0, 0.0, 10, 11))
        r.first_token_time = 1.0
        r.finish_time = 2.0
        assert r.meets_sla(1.5, 0.2)
        assert not r.meets_sla(0.5, 0.2)
        assert not r.meets_sla(1.5, 0.05)


class TestLifecycle:
    def test_all_requests_finish(self, hero):
        trace = generate_sharegpt_trace(0.5, 30, make_rng(1))
        m = simulate_trace(hero, trace)
        assert m.n_finished == len(trace)

    def test_request_timestamps_ordered(self, hero):
        trace = generate_sharegpt_trace(0.5, 30, make_rng(2))
        m = simulate_trace(hero, trace)
        for r in m.finished:
            assert r.arrival_time <= r.prefill_start
            assert r.prefill_start <= r.first_token_time
            assert r.first_token_time <= r.kv_done_time
            assert r.kv_done_time <= r.decode_start
            assert r.decode_start < r.finish_time
            assert r.phase == RequestPhase.FINISHED

    def test_tokens_generated_equals_output(self, hero):
        trace = generate_sharegpt_trace(0.5, 20, make_rng(3))
        m = simulate_trace(hero, trace)
        for r in m.finished:
            assert r.tokens_generated == r.output_len

    def test_deterministic(self, hero):
        trace = generate_sharegpt_trace(0.5, 20, make_rng(4))
        m1 = simulate_trace(hero, trace)
        m2 = simulate_trace(hero, trace)
        assert m1.summary() == m2.summary()

    def test_memory_never_exceeds_capacity(self, hero):
        trace = generate_sharegpt_trace(1.5, 30, make_rng(5))
        m = simulate_trace(hero, trace)
        for s in m.memory_timeline:
            assert 0 <= s.used_tokens <= s.capacity_tokens

    def test_memory_returns_to_zero(self, hero):
        trace = generate_sharegpt_trace(0.5, 20, make_rng(6))
        m = simulate_trace(hero, trace)
        assert m.memory_timeline[-1].used_tokens == 0

    def test_counters_consistent(self, hero):
        trace = generate_sharegpt_trace(0.5, 20, make_rng(7))
        m = simulate_trace(hero, trace)
        total_tokens = sum(r.output_len for r in m.finished)
        # Each decode iteration emits >= 1 token.
        assert m.decode_iterations <= total_tokens
        assert m.prefill_batches <= len(trace)


class TestBatching:
    def test_prefill_token_budget(self, tb, bank):
        """A tiny token budget forces one request per prefill batch."""
        trace = Trace(
            "t",
            [TraceRequest(i, 0.0, 400, 4) for i in range(4)],
        )
        sys_ = build_system(
            DISTSERVE, tb, OPT_66B, bank, SLA_TESTBED_CHATBOT,
            trace.representative_batch(4), arrival_rate=0.1,
        )
        cfg = EngineConfig(max_prefill_tokens=500, drain_time=600)
        m = simulate_trace(sys_, trace, engine_config=cfg)
        assert m.prefill_batches == 4

    def test_oversize_request_still_served(self, tb, bank):
        """A single request larger than the token budget must not wedge."""
        trace = Trace("t", [TraceRequest(0, 0.0, 900, 4)])
        sys_ = build_system(
            DISTSERVE, tb, OPT_66B, bank, SLA_TESTBED_CHATBOT,
            trace.representative_batch(1), arrival_rate=0.1,
        )
        cfg = EngineConfig(max_prefill_tokens=500, drain_time=600)
        m = simulate_trace(sys_, trace, engine_config=cfg)
        assert m.n_finished == 1


class TestMetricsReduction:
    def test_attainment_range(self, hero):
        trace = generate_sharegpt_trace(1.0, 30, make_rng(8))
        m = simulate_trace(hero, trace)
        assert 0.0 <= m.attainment() <= 1.0

    def test_empty_metrics_nan(self, hero):
        from repro.serving import ServingMetrics

        m = ServingMetrics(sla=SLA_TESTBED_CHATBOT)
        assert m.attainment() == 0.0
        assert math.isnan(m.mean_ttft())

    def test_percentiles_ordered(self, hero):
        trace = generate_sharegpt_trace(1.0, 40, make_rng(9))
        m = simulate_trace(hero, trace)
        assert m.p90_ttft() >= 0
        assert m.p90_tpot() >= 0
        assert m.p90_ttft() >= m.mean_ttft() * 0.3  # sanity

    def test_summary_keys(self, hero):
        trace = generate_sharegpt_trace(0.5, 20, make_rng(10))
        s = simulate_trace(hero, trace).summary()
        for k in (
            "finished", "attainment", "mean_ttft_s", "mean_tpot_s",
            "mean_mem_util",
        ):
            assert k in s
