"""Online policy cost table (Eqs. 16-18)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Policy, PolicyCostTable, table_stats
from repro.network import LinkLoadTracker, build_testbed


def mk_policies(link_sets, caps=None):
    caps = caps or [12.5e9] * len(link_sets)
    return [
        Policy(
            policy_id=i,
            name=f"p{i}",
            mode="ina",
            switch=None,
            links=tuple(ls),
            bottleneck_capacity=c,
        )
        for i, (ls, c) in enumerate(zip(link_sets, caps))
    ]


class TestSelection:
    def test_selects_cheapest(self):
        t = PolicyCostTable(mk_policies([(0,), (1,)]))
        t.b[:] = [0.5, 0.1]
        p = t.select(1000.0)
        assert p.policy_id == 1

    def test_eq16_delta(self):
        t = PolicyCostTable(mk_policies([(0,)]), window=0.1)
        d = t.delta(12.5e9 * 0.1)  # one window at line rate
        assert d[0] == pytest.approx(1.0)

    def test_selection_updates_winner_by_delta(self):
        t = PolicyCostTable(mk_policies([(0,), (1,)]), window=0.1)
        data = 12.5e8  # delta = 0.1
        t.select(data)
        assert max(t.b) == pytest.approx(1.0, abs=1e-9) or t.b[
            np.argmax(t.b)
        ] == pytest.approx(0.1)

    def test_load_balancing_alternates(self):
        """Repeated equal-size transfers spread across disjoint policies."""
        t = PolicyCostTable(mk_policies([(0,), (1,)]))
        for _ in range(10):
            t.select(1e6)
        assert t.selections[0] == 5
        assert t.selections[1] == 5

    def test_eq17_penalty_propagates_to_sharing_policy(self):
        """Policies sharing a link are penalised; disjoint ones are not."""
        t = PolicyCostTable(mk_policies([(0, 1), (1, 2), (5,)]))
        t.select(1e7)  # all b equal -> argmin = 0
        assert t.b[0] > 0
        assert t.b[1] > 0        # shares link 1 with winner
        assert t.b[2] == 0.0     # disjoint

    def test_static_sharing_matrix(self):
        t = PolicyCostTable(mk_policies([(0, 1), (1, 2)]))
        assert t.f[0, 1] == pytest.approx(0.5)  # winner 0 covers 1 of c1's 2
        assert t.f[1, 0] == pytest.approx(0.5)

    def test_negative_data_rejected(self):
        t = PolicyCostTable(mk_policies([(0,)]))
        with pytest.raises(ValueError):
            t.select(-1.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PolicyCostTable([])
        with pytest.raises(ValueError):
            PolicyCostTable(mk_policies([(0,)]), gamma=0.0)
        ps = mk_policies([(0,)])
        object.__setattr__(ps[0], "policy_id", 1)
        with pytest.raises(ValueError):
            PolicyCostTable(ps)


class TestRefresh:
    def test_refresh_utilization_from_linkstate(self):
        built = build_testbed()
        ls = LinkLoadTracker(built.topology)
        cap = ls.capacity
        ls.register([0], 0.4 * cap[0])
        t = PolicyCostTable(mk_policies([(0,), (2,)]))
        t.b[:] = [5.0, 5.0]  # drifted virtual values
        t.refresh_utilization(ls)
        assert t.b[0] == pytest.approx(0.4)
        assert t.b[1] == pytest.approx(0.0)

    def test_refresh_penalties_eq18(self):
        built = build_testbed()
        ls = LinkLoadTracker(built.topology)
        t = PolicyCostTable(
            mk_policies([(0, 1), (1, 2)]), gamma=0.5
        )
        f_before = t.f[0, 1]
        t.refresh_penalties(ls)
        # W with equal idle bandwidths: shared 1 of 2 links = 0.5.
        assert t.f[0, 1] == pytest.approx(
            0.5 * f_before + 0.5 * 0.5
        )

    def test_sharing_ratio_weighted_by_bandwidth(self):
        built = build_testbed()
        ls = LinkLoadTracker(built.topology)
        t = PolicyCostTable(mk_policies([(0, 1), (1, 2)]))
        # Congest the shared link 1: its B(e) shrinks, so W drops.
        w_idle = t.sharing_ratio(ls, 0, 1)
        ls.register([1], 0.9 * ls.capacity[1])
        w_loaded = t.sharing_ratio(ls, 0, 1)
        assert w_loaded < w_idle

    def test_stats_snapshot(self):
        t = PolicyCostTable(mk_policies([(0,), (1,)]))
        t.select(1e6)
        s = table_stats(t)
        assert s.names == ["p0", "p1"]
        assert sum(s.selections) == 1


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.floats(1.0, 1e8), min_size=1, max_size=30),
    )
    def test_b_nonnegative_and_finite(self, sizes):
        t = PolicyCostTable(mk_policies([(0, 1), (1, 2), (3,)]))
        for d in sizes:
            t.select(d)
        assert np.all(t.b >= 0)
        assert np.all(np.isfinite(t.b))

    def test_disjoint_policies_converge_to_equal_load(self):
        """With disjoint equal-capacity policies and equal transfers, the
        table round-robins: selection counts differ by at most one."""
        t = PolicyCostTable(mk_policies([(0,), (1,), (2,)]))
        for _ in range(31):
            t.select(1e6)
        assert max(t.selections) - min(t.selections) <= 1

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_disjoint_policies_roughly_balanced_random_sizes(self, seed):
        """Random transfer sizes still spread load across disjoint
        policies — cumulative virtual utilisations stay within 2x."""
        rng = np.random.default_rng(seed)
        t = PolicyCostTable(mk_policies([(0,), (1,), (2,)]))
        for _ in range(60):
            t.select(float(rng.uniform(1e5, 1e6)))
        assert min(t.selections) > 0
        assert max(t.b) <= 2.0 * max(min(t.b), 1e-12) + 1e-6
