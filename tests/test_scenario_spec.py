"""Scenario spec schema: validation, loading, round-tripping.

The spec layer's contract is that a bad file fails with *every*
field-level problem listed (dotted paths), and a good file round-trips
``from_dict -> to_dict -> from_dict`` losslessly.
"""

import json

import pytest

from repro.scenario import (
    ScenarioSpec,
    SpecValidationError,
    TopologySpec,
    WorkloadSpec,
    expand_matrix,
    load_spec,
    validate_spec,
)

GOOD = {
    "name": "good",
    "model": "OPT-66B",
    "topology": {"kind": "testbed"},
    "slo": "testbed-chatbot",
    "parallel": [8, 1, 8, 1],
    "workload": {
        "generator": "sharegpt",
        "rate": 1.0,
        "duration": 10.0,
        "seed": 0,
    },
}


def _paths(errors):
    return {e.path for e in errors}


class TestValidation:
    def test_good_spec_clean(self):
        assert validate_spec(GOOD) == []

    def test_non_mapping_rejected(self):
        errs = validate_spec([1, 2])
        assert _paths(errs) == {"$"}

    def test_all_errors_collected_in_one_pass(self):
        bad = {
            "name": "",
            "model": "GPT-9",
            "system": "NoSuchSystem",
            "workload": {
                "generator": "nope",
                "rate": -1.0,
                "duration": 10.0,
            },
            "slo": "no-such-slo",
            "parallel": [8, 1, 8],
            "bogus_key": 1,
        }
        paths = _paths(validate_spec(bad))
        assert {
            "name", "model", "system", "workload.generator",
            "workload.rate", "slo", "parallel", "bogus_key",
        } <= paths

    def test_dotted_paths_for_nested_fields(self):
        bad = dict(
            GOOD,
            topology={"kind": "mesh", "tracks": 0, "extra": 1},
            workload={
                "generator": "sharegpt",
                "rate": 1.0,
                "duration": 10.0,
                "params": {"not_a_knob": 5},
            },
        )
        paths = _paths(validate_spec(bad))
        assert "topology.kind" in paths
        assert "topology.tracks" in paths
        assert "topology.extra" in paths
        assert "workload.params.not_a_knob" in paths

    def test_unknown_generator_param_names_accepted_set(self):
        bad = dict(
            GOOD,
            workload={
                "generator": "diurnal",
                "rate": 1.0,
                "duration": 10.0,
                "params": {"peak_rate": 2.0, "wrong": 1},
            },
        )
        errs = validate_spec(bad)
        assert _paths(errs) == {"workload.params.wrong"}
        assert "peak_rate" in errs[0].message

    def test_router_requires_fleet(self):
        bad = dict(GOOD, router="jsq")
        assert "router" in _paths(validate_spec(bad))
        ok = dict(GOOD, router="jsq", n_replicas=2)
        assert validate_spec(ok) == []

    def test_unknown_router_rejected(self):
        bad = dict(GOOD, router="magic", n_replicas=2)
        errs = validate_spec(bad)
        assert "router" in _paths(errs)
        assert "kv-affinity" in errs[0].message

    def test_fleet_path_rejects_single_system_blocks(self):
        bad = dict(
            GOOD,
            n_replicas=2,
            background={"intensity": 0.5},
            faults={"events": []},
            replan={"queue_high": 5},
        )
        paths = _paths(validate_spec(bad))
        assert {"background", "faults", "replan"} <= paths

    def test_background_fields_checked(self):
        bad = dict(
            GOOD,
            background={
                "intensity": -1.0,
                "whatever": 2,
                "seed": "x",
            },
        )
        paths = _paths(validate_spec(bad))
        assert {
            "background.intensity",
            "background.whatever",
            "background.seed",
        } <= paths

    def test_fault_events_checked(self):
        bad = dict(
            GOOD,
            faults={
                "events": [
                    {"kind": "meteor", "time": -1.0},
                    {"kind": "switch_down", "time": 5.0,
                     "target": "switch#0"},
                ]
            },
        )
        paths = _paths(validate_spec(bad))
        assert "faults.events[0].kind" in paths
        assert "faults.events[0].time" in paths
        assert "faults.events[0].target" in paths
        assert not any(p.startswith("faults.events[1]") for p in paths)

    def test_replan_target_parallel_checked(self):
        bad = dict(GOOD, replan={"target_parallel": [8, 1], "nope": 1})
        paths = _paths(validate_spec(bad))
        assert "replan.target_parallel" in paths
        assert "replan.nope" in paths

    def test_explicit_slo_mapping(self):
        ok = dict(GOOD, slo={"ttft": 2.0, "tpot": 0.1})
        assert validate_spec(ok) == []
        bad = dict(GOOD, slo={"ttft": -2.0})
        paths = _paths(validate_spec(bad))
        assert {"slo.ttft", "slo.tpot"} <= paths

    def test_matrix_axes_checked(self):
        bad = dict(GOOD, matrix={"nonsense.path": [1], "router": "jsq"})
        paths = _paths(validate_spec(bad))
        assert "matrix.nonsense.path" in paths
        assert "matrix.router" in paths  # values must be a list

    def test_gpus_checked(self):
        bad = dict(GOOD, gpus=["A100", "H999"])
        assert "gpus[1]" in _paths(validate_spec(bad))


class TestFromDict:
    def test_raises_with_every_error(self):
        with pytest.raises(SpecValidationError) as exc:
            ScenarioSpec.from_dict(
                {"name": "", "model": "?", "workload": {}},
                source="inline",
            )
        err = exc.value
        assert err.source == "inline"
        assert len(err.errors) >= 3
        assert "inline" in str(err)

    def test_round_trip(self):
        spec = ScenarioSpec.from_dict(
            dict(
                GOOD,
                router="jsq",
                n_replicas=2,
                arrival_rate="trace-mean",
                matrix={"router": ["jsq", "kv-affinity"]},
            )
        )
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_defaults_applied(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "d",
                "model": "OPT-66B",
                "workload": {
                    "generator": "sharegpt",
                    "rate": 1.0,
                    "duration": 5.0,
                },
            }
        )
        assert spec.system == "HeroServe"
        assert spec.topology == TopologySpec()
        assert spec.slo == "testbed-chatbot"
        assert spec.workload.seed == 0
        assert spec.forecast_q == 8
        assert spec.parallel is None


class TestLoadSpec:
    def test_json_file(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text(json.dumps(GOOD))
        spec = load_spec(str(p))
        assert spec.name == "good"

    def test_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        p = tmp_path / "s.yaml"
        p.write_text(yaml.safe_dump(GOOD))
        spec = load_spec(str(p))
        assert spec.name == "good"
        assert spec.workload.generator == "sharegpt"

    def test_bad_json_reports_source(self, tmp_path):
        p = tmp_path / "broken.json"
        p.write_text("{not json")
        with pytest.raises(SpecValidationError, match="invalid JSON"):
            load_spec(str(p))

    def test_invalid_spec_reports_file(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"name": "x", "model": "?"}))
        with pytest.raises(SpecValidationError) as exc:
            load_spec(str(p))
        assert exc.value.source == str(p)


class TestExampleSpecs:
    """The checked-in example specs must always validate."""

    @pytest.mark.parametrize(
        "fname",
        [
            "router_matrix.json",
            "systems_smoke_matrix.json",
            "multitenant_diurnal.yaml",
        ],
    )
    def test_example_validates(self, fname):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "examples", "scenarios",
            fname,
        )
        if fname.endswith(".yaml"):
            pytest.importorskip("yaml")
        spec = load_spec(path)
        assert spec.name
        if spec.matrix:
            cells = expand_matrix(spec)
            assert len(cells) >= 2


class TestMatrixExpansion:
    def test_cells_cartesian_in_declaration_order(self):
        spec = ScenarioSpec.from_dict(
            dict(
                GOOD,
                n_replicas=2,
                router="jsq",
                matrix={
                    "router": ["jsq", "kv-affinity"],
                    "workload.rate": [0.5, 1.0],
                },
            )
        )
        cells = expand_matrix(spec)
        assert len(cells) == 4
        assert [c.point for c in cells] == [
            {"router": "jsq", "workload.rate": 0.5},
            {"router": "jsq", "workload.rate": 1.0},
            {"router": "kv-affinity", "workload.rate": 0.5},
            {"router": "kv-affinity", "workload.rate": 1.0},
        ]
        assert cells[0].spec.router == "jsq"
        assert cells[3].spec.workload.rate == 1.0
        assert cells[3].spec.matrix is None
        # Labels carry the axis assignments for reports.
        assert cells[1].label == "router=jsq workload.rate=1"

    def test_cell_specs_are_validated(self):
        spec = ScenarioSpec.from_dict(
            dict(GOOD, matrix={"workload.rate": [1.0, -3.0]})
        )
        with pytest.raises(SpecValidationError, match="workload.rate"):
            expand_matrix(spec)

    def test_no_matrix_rejected(self):
        spec = ScenarioSpec.from_dict(GOOD)
        with pytest.raises(ValueError, match="no matrix"):
            expand_matrix(spec)
