"""Property: no request is ever dropped across a plan transition.

Satellite of the online-replanning work: across seeds, topologies and
an optional endpoint-server fault landing inside the migration window,
every request submitted to the engine must come out the other side —
``finished + dropped == submitted`` always, and with no retry-budget
exhaustion in play ``dropped == 0`` and the finished request ids are
exactly the trace's ids (conservation, not just conservation of count).
"""

import pytest

from repro import (
    HEROSERVE,
    OPT_66B,
    OPT_175B,
    CostModelBank,
    ReplanConfig,
    build_system,
    build_testbed,
    build_xtracks_cluster,
    simulate_trace,
)
from repro.core import SLA_SIM_CHATBOT, SLA_TESTBED_CHATBOT
from repro.core.plan import ParallelConfig
from repro.faults import FaultEvent, FaultPlan
from repro.llm import A100, V100
from repro.util.rng import make_rng
from repro.workloads import generate_loadshift_trace

SEEDS = (0, 7, 13)

#: Aggressive detector settings shared by both topologies.
TUNING = dict(
    queue_high=3,
    pending_high=12,
    sustain_checks=4,
    cooldown_s=5.0,
    window_s=20.0,
    min_window_requests=4,
)


@pytest.fixture(scope="module")
def testbed_parts():
    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    return built, bank


@pytest.fixture(scope="module")
def xtracks_parts():
    built = build_xtracks_cluster(2, n_units=1)
    bank = CostModelBank(OPT_175B, {"A100": A100})
    return built, bank


def _testbed_scenario(parts, seed):
    built, bank = parts
    trace = generate_loadshift_trace(
        1.2, 0.5, 30.0, 60.0, make_rng(seed)
    )
    system = build_system(
        HEROSERVE,
        built,
        OPT_66B,
        bank,
        SLA_TESTBED_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=1.2,
        forced_parallel=ParallelConfig(4, 2, 4, 2),
    )
    replan = ReplanConfig(
        target_parallel=ParallelConfig(8, 1, 8, 1), **TUNING
    )
    return system, trace, replan


def _xtracks_scenario(parts, seed):
    built, bank = parts
    trace = generate_loadshift_trace(
        2.0, 1.0, 30.0, 60.0, make_rng(seed)
    )
    system = build_system(
        HEROSERVE,
        built,
        OPT_175B,
        bank,
        SLA_SIM_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=2.0,
        forced_parallel=ParallelConfig(8, 2, 8, 2),
    )
    replan = ReplanConfig(
        target_parallel=ParallelConfig(16, 1, 16, 1), **TUNING
    )
    return system, trace, replan


def mid_migration_fault(seed):
    """A decode-endpoint server outage aimed at the transition window.

    The exact migration instant shifts with the seed; conservation must
    hold whether the fault lands inside the migration (rollback path)
    or merely near it (failover path). The outage is shorter than the
    KV retry budget, so no transfer may legitimately exhaust.
    """
    return FaultPlan(
        events=(
            FaultEvent(
                time=42.8,
                kind="server_down",
                target="server#0",
                duration=3.0,
            ),
        ),
        seed=seed,
    )


def assert_conserved(trace, metrics):
    assert metrics.n_finished + metrics.dropped == len(trace)
    assert metrics.dropped == 0
    finished_ids = sorted(r.request_id for r in metrics.finished)
    assert finished_ids == [r.request_id for r in trace]


class TestConservationAcrossTransitions:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("faulted", [False, True])
    def test_testbed(self, testbed_parts, seed, faulted):
        system, trace, replan = _testbed_scenario(testbed_parts, seed)
        metrics = simulate_trace(
            system,
            trace,
            fault_plan=mid_migration_fault(seed) if faulted else None,
            replan=replan,
        )
        s = metrics.summary()
        assert s["replan_triggers"] >= 1.0
        assert_conserved(trace, metrics)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("faulted", [False, True])
    def test_2tracks(self, xtracks_parts, seed, faulted):
        system, trace, replan = _xtracks_scenario(xtracks_parts, seed)
        metrics = simulate_trace(
            system,
            trace,
            fault_plan=mid_migration_fault(seed) if faulted else None,
            replan=replan,
        )
        s = metrics.summary()
        assert s["replan_triggers"] >= 1.0
        assert_conserved(trace, metrics)
