"""Estimation cache: hit/miss accounting, identity, invalidation."""

import numpy as np
import pytest

from repro.comm import CommContext, SchemeKind
from repro.comm.latency import estimate_group_step
from repro.core import EstimationCache
from repro.core.grouping import swap_perturbation
from repro.network import build_testbed
from repro.network.linkstate import LinkLoadTracker
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def het(tb):
    return CommContext.from_built(tb, heterogeneous=True)


DATA = 64 * 1024 * 1024


class TestGroupStepMemo:
    @pytest.mark.parametrize(
        "scheme",
        [
            SchemeKind.RING,
            SchemeKind.INA_SYNC,
            SchemeKind.INA_ASYNC,
            SchemeKind.HYBRID,
        ],
    )
    def test_identical_to_uncached(self, het, tb, scheme):
        gpus = tb.topology.gpu_ids()[:4]
        cache = EstimationCache(het)
        cached = cache.group_step(gpus, DATA, scheme)
        direct = estimate_group_step(het, gpus, DATA, scheme)
        assert cached == direct

    def test_hit_and_miss_counting(self, het, tb):
        gpus = tb.topology.gpu_ids()[:4]
        cache = EstimationCache(het)
        first = cache.group_step(gpus, DATA, SchemeKind.HYBRID)
        second = cache.group_step(gpus, DATA, SchemeKind.HYBRID)
        assert first is second
        assert cache.group_misses == 1
        assert cache.group_hits == 1
        assert cache.stats()["hit_rate"] == 0.5

    def test_key_is_order_sensitive(self, het, tb):
        """Permutations must not share an entry: group evaluation is
        order-sensitive (HYBRID leader election, link footprints)."""
        gpus = tb.topology.gpu_ids()[:4]
        cache = EstimationCache(het)
        cache.group_step(gpus, DATA, SchemeKind.HYBRID)
        cache.group_step(list(reversed(gpus)), DATA, SchemeKind.HYBRID)
        assert cache.group_misses == 2
        rev = cache.group_step(
            list(reversed(gpus)), DATA, SchemeKind.HYBRID
        )
        assert rev == estimate_group_step(
            het, list(reversed(gpus)), DATA, SchemeKind.HYBRID
        )

    def test_payload_and_scheme_are_part_of_key(self, het, tb):
        gpus = tb.topology.gpu_ids()[:4]
        cache = EstimationCache(het)
        cache.group_step(gpus, DATA, SchemeKind.HYBRID)
        cache.group_step(gpus, 2 * DATA, SchemeKind.HYBRID)
        cache.group_step(gpus, DATA, SchemeKind.RING)
        assert cache.group_misses == 3


class TestDistanceMemo:
    def test_identical_and_shared(self, het, tb):
        gpus = tb.topology.gpu_ids()[:8]
        cache = EstimationCache(het)
        d1 = cache.distance_matrix(gpus)
        d2 = cache.distance_matrix(gpus)
        assert d1 is d2
        assert not d1.flags.writeable
        np.testing.assert_array_equal(d1, het.gpu_distance_matrix(gpus))
        assert cache.dist_hits == 1 and cache.dist_misses == 1


class TestInvalidation:
    def test_explicit_invalidate_flushes(self, het, tb):
        gpus = tb.topology.gpu_ids()[:4]
        cache = EstimationCache(het)
        cache.group_step(gpus, DATA, SchemeKind.HYBRID)
        cache.distance_matrix(gpus)
        cache.invalidate()
        assert cache.invalidations == 1
        cache.group_step(gpus, DATA, SchemeKind.HYBRID)
        cache.distance_matrix(gpus)
        assert cache.group_misses == 2
        assert cache.dist_misses == 2

    def test_linkstate_version_invalidates(self, tb):
        """A degraded link must flush every memoized estimate."""
        tracker = LinkLoadTracker(tb.topology)
        ctx = CommContext.from_built(tb, linkstate=tracker)
        gpus = tb.topology.gpu_ids()[:4]
        cache = EstimationCache(ctx)
        before = cache.group_step(gpus, DATA, SchemeKind.RING)
        assert cache.group_step(gpus, DATA, SchemeKind.RING) is before
        tracker.set_link_factor(0, 0.5)
        after = cache.group_step(gpus, DATA, SchemeKind.RING)
        assert cache.invalidations == 1
        assert cache.group_misses == 2
        # the fresh estimate reflects the degraded capacity
        assert after == estimate_group_step(ctx, gpus, DATA, SchemeKind.RING)

    def test_live_tracker_context_is_not_path_memoized(self, tb):
        tracker = LinkLoadTracker(tb.topology)
        ctx = CommContext.from_built(tb, linkstate=tracker)
        cache = EstimationCache(ctx)
        assert cache.ctx is ctx


class TestPerturbationMemo:
    def test_memoized_identical_with_fewer_evals(self):
        rng_a, rng_b = make_rng(3), make_rng(3)
        dist = make_rng(0).random((8, 8))
        dist = dist + dist.T

        def make_cost(counter):
            def cost(g):
                counter[0] += 1
                idx = np.asarray(list(g))
                return float(dist[np.ix_(idx, idx)].sum())

            return cost

        groups = [[0, 1, 2, 3], [4, 5, 6, 7]]
        calls_plain, calls_memo = [0], [0]
        plain = swap_perturbation(
            [list(g) for g in groups], make_cost(calls_plain), rng_a
        )
        memo = swap_perturbation(
            [list(g) for g in groups],
            make_cost(calls_memo),
            rng_b,
            memoize=True,
        )
        assert plain == memo
        assert calls_memo[0] < calls_plain[0]
