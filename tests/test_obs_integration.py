"""End-to-end observability: observer-instrumented simulator runs.

The acceptance criteria of the telemetry layer:

* streamed TTFT/TPOT histograms agree with the exact
  :class:`ServingMetrics` reductions within one histogram bucket;
* attaching an :class:`Observer` changes *nothing* about the serving
  result — a run with the default :class:`NullObserver` produces a
  byte-identical ``summary()``;
* the trace contains well-formed, policy-labelled prefill / decode /
  KV-transfer / all-reduce spans, with group synchronisation spans
  nested inside their owning pass; and the Chrome export round-trips
  ``json.loads``;
* the planner run under an observer attributes its wall time to phases.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    HEROSERVE,
    SLA_TESTBED_CHATBOT,
    OPT_66B,
    CostModelBank,
    Observer,
    build_system,
    build_testbed,
    generate_sharegpt_trace,
    simulate_trace,
)
from repro.comm import CommContext, SchemeKind
from repro.core.planner import OfflinePlanner
from repro.llm import A100, V100, BatchSpec
from repro.obs.trace import ENGINE_PID, REQUEST_PID
from repro.serving import EngineConfig
from repro.util.rng import make_rng

RATE = 1.0
DURATION = 40.0


@pytest.fixture(scope="module")
def observed_run():
    """One HeroServe run with a live observer + its unobserved twin."""
    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    trace = generate_sharegpt_trace(RATE, DURATION, make_rng(3))
    system = build_system(
        HEROSERVE,
        built,
        OPT_66B,
        bank,
        SLA_TESTBED_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=RATE,
    )
    observer = Observer()
    observed = simulate_trace(
        system, trace, engine_config=EngineConfig(observer=observer)
    )
    plain = simulate_trace(system, trace)
    return observer, observed, plain


class TestNoBehaviourChange:
    def test_summary_identical_with_and_without_observer(
        self, observed_run
    ):
        _, observed, plain = observed_run
        assert json.dumps(observed.summary(), sort_keys=True) == json.dumps(
            plain.summary(), sort_keys=True
        )

    def test_null_observer_new_hooks_are_noops(self):
        """Every hook added for attribution/self-profiling must stay a
        no-op on the NullObserver — including the new keyword args."""
        from repro.obs import NULL_OBSERVER

        assert NULL_OBSERVER.attribution is None
        assert NULL_OBSERVER.selfprof is None
        NULL_OBSERVER.prefill_span(
            0.0, 1.0, 1, 10, 0.5, 0.5, request_ids=(1, 2)
        )
        NULL_OBSERVER.decode_span(
            0.0, 1.0, 1, 10, 0.5, 0.5, request_ids=(1,)
        )
        NULL_OBSERVER.kv_transfer_span(0.0, 1.0, 1, 10, request_ids=(1,))
        NULL_OBSERVER.allreduce_span(
            "prefill",
            0.0,
            1.0,
            (0, 1),
            "ring",
            "eth",
            2,
            1e6,
            request_ids=(1,),
            bottleneck_link=3,
            bottleneck_kind="ethernet",
            bottleneck_util=0.5,
            switch=0,
        )
        NULL_OBSERVER.kv_retry(0.0, 1, 0.1, request_ids=(1,))
        NULL_OBSERVER.requests_requeued(0.0, 1, request_ids=(1,))
        NULL_OBSERVER.run_finished(0.0, None)


class TestHistogramsAgree:
    @pytest.mark.parametrize(
        "hist_name,exact",
        [
            ("repro_ttft_seconds", "p90_ttft"),
            ("repro_tpot_seconds", "p90_tpot"),
        ],
    )
    def test_p90_within_one_bucket(self, observed_run, hist_name, exact):
        observer, observed, _ = observed_run
        hist = observer.metrics.get(hist_name)
        exact_p90 = getattr(observed, exact)()
        lo, hi = hist.bucket_bounds(exact_p90)
        est = hist.quantile(0.9)
        assert lo <= est <= hi, (exact_p90, est, lo, hi)

    def test_histogram_count_matches_finished(self, observed_run):
        observer, observed, _ = observed_run
        hist = observer.metrics.get("repro_ttft_seconds")
        assert hist.count() == observed.n_finished


class TestCountersAgree:
    def test_batch_counters_match_metrics(self, observed_run):
        observer, observed, _ = observed_run
        m = observer.metrics
        assert (
            m.get("repro_prefill_batches_total").total()
            == observed.prefill_batches
        )
        assert (
            m.get("repro_decode_iterations_total").total()
            == observed.decode_iterations
        )
        assert (
            m.get("repro_requests_total").value(event="finished")
            == observed.n_finished
        )

    def test_policy_selections_labelled(self, observed_run):
        observer, _, _ = observed_run
        sel = observer.metrics.get("repro_policy_selections_total")
        assert sel.total() > 0
        labelsets = [dict(k) for k in sel._values]
        for labels in labelsets:
            assert {"group", "policy", "mode"} <= set(labels)


class TestSpans:
    def test_engine_tracks_populated(self, observed_run):
        observer, _, _ = observed_run
        tr = observer.trace
        for track in ("prefill", "decode", "kv_transfer", "allreduce"):
            assert tr.spans(track), f"no spans on track {track!r}"

    def test_spans_well_formed(self, observed_run):
        observer, _, _ = observed_run
        for span in observer.trace.spans():
            assert span.dur >= 0.0
            assert span.start >= 0.0
            assert span.name

    def test_allreduce_spans_policy_labelled(self, observed_run):
        observer, _, _ = observed_run
        for span in observer.trace.spans("allreduce"):
            assert span.name.startswith("allreduce:")
            assert span.args["policy"]
            assert span.args["mode"]
            assert span.args["phase"] in ("prefill", "decode")

    def test_engine_spans_carry_request_ids(self, observed_run):
        """Every batch/transfer/sync span names the requests inside it."""
        observer, _, _ = observed_run
        tr = observer.trace
        for track in ("prefill", "decode", "kv_transfer", "allreduce"):
            for span in tr.spans(track):
                rids = span.args["request_ids"]
                assert isinstance(rids, list), (track, span.name)
                assert rids, (track, span.name)
                assert all(isinstance(r, int) for r in rids)

    def test_allreduce_spans_carry_bottleneck(self, observed_run):
        """Sync spans name the congested link they were priced against."""
        observer, _, _ = observed_run
        spans = observer.trace.spans("allreduce")
        for span in spans:
            assert "bottleneck_link" in span.args
            assert "bottleneck_util" in span.args
            assert "switch" in span.args
        linked = [
            s for s in spans if s.args["bottleneck_link"] is not None
        ]
        assert linked, "no allreduce span recorded a bottleneck link"
        for span in linked:
            assert span.args["bottleneck_kind"]
            assert 0.0 <= span.args["bottleneck_util"] <= 1.0

    def test_lifecycle_spans_carry_request_id(self, observed_run):
        observer, _, _ = observed_run
        lanes = [
            s
            for s in observer.trace.spans("requests")
            if s.pid == REQUEST_PID and s.dur is not None
        ]
        assert lanes
        for span in lanes:
            assert span.args["request_id"] == span.tid

    def test_allreduce_nested_in_owning_pass(self, observed_run):
        """Group sync spans fall inside a pass span of the same phase."""
        observer, _, _ = observed_run
        tr = observer.trace
        eps = 1e-9
        passes = {
            "prefill": tr.spans("prefill"),
            "decode": tr.spans("decode"),
        }
        for ar in tr.spans("allreduce"):
            owners = passes[ar.args["phase"]]
            assert any(
                p.start - eps <= ar.start and ar.end <= p.end + eps
                for p in owners
            ), (ar.name, ar.start, ar.end)

    def test_request_lifecycle_swimlanes(self, observed_run):
        observer, observed, _ = observed_run
        lanes = [
            s
            for s in observer.trace.spans("requests")
            if s.pid == REQUEST_PID
        ]
        assert lanes
        decode_spans = [s for s in lanes if s.name == "decode"]
        assert len(decode_spans) == observed.n_finished
        assert all(s.tid is not None for s in lanes)

    def test_chrome_export_round_trips(self, observed_run, tmp_path):
        observer, _, _ = observed_run
        path = tmp_path / "trace.json"
        observer.export(trace_path=str(path))
        blob = json.loads(path.read_text())
        pids = {e["pid"] for e in blob["traceEvents"]}
        assert {ENGINE_PID, REQUEST_PID} <= pids
        assert blob["otherData"]["dropped_records"] == 0


class TestPlannerProfiling:
    def test_phase_times_populated(self):
        built = build_testbed()
        bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
        ctx = CommContext.from_built(built, heterogeneous=True)
        report = OfflinePlanner(
            ctx,
            OPT_66B,
            bank,
            SLA_TESTBED_CHATBOT,
            SchemeKind.HYBRID,
            observer=Observer(),
        ).plan(BatchSpec.uniform(8, 256, 220), arrival_rate=0.5)
        assert report.plan is not None
        phases = report.phase_times
        assert phases
        for expected in (
            "planner.candidates",
            "planner.objective",
            "grouping.kmeans",
        ):
            assert expected in phases, expected
        assert all(t >= 0.0 for t in phases.values())

    def test_phase_times_empty_without_observer(self):
        built = build_testbed()
        bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
        ctx = CommContext.from_built(built, heterogeneous=True)
        report = OfflinePlanner(
            ctx, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID
        ).plan(BatchSpec.uniform(8, 256, 220), arrival_rate=0.5)
        assert report.plan is not None
        assert report.phase_times == {}
