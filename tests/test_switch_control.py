"""Switch control plane: slot allocation fairness, counter polling."""

import numpy as np
import pytest

from repro.switch import (
    CounterPoller,
    SlotAllocator,
    SwitchDataplane,
    UpdatePacket,
    quantize,
)


class TestSlotAllocator:
    def test_grant_full_request_single_tenant(self):
        a = SlotAllocator()
        a.register_switch(0, 100)
        lease = a.request(1, 0, 40)
        assert lease.n_slots == 40
        assert a.free_slots(0) == 60

    def test_fair_share_caps_second_tenant(self):
        a = SlotAllocator()
        a.register_switch(0, 100)
        a.request(1, 0, 100)  # tenant 1 takes the fair cap (whole pool)
        # tenant 2's fair share is pool // 2 = 50, but only 0 free -> error
        with pytest.raises(RuntimeError):
            a.request(2, 0, 10)

    def test_fair_share_with_modest_first_tenant(self):
        a = SlotAllocator()
        a.register_switch(0, 100)
        a.request(1, 0, 30)
        lease2 = a.request(2, 0, 100)
        assert lease2.n_slots == 50  # fair cap among 2 tenants

    def test_release_recycles(self):
        a = SlotAllocator()
        a.register_switch(0, 10)
        a.request(1, 0, 10)
        a.release(1, 0)
        assert a.free_slots(0) == 10
        lease = a.request(2, 0, 10)
        assert lease.n_slots == 10

    def test_duplicate_lease_rejected(self):
        a = SlotAllocator()
        a.register_switch(0, 10)
        a.request(1, 0, 2)
        with pytest.raises(ValueError):
            a.request(1, 0, 2)

    def test_leases_of(self):
        a = SlotAllocator()
        a.register_switch(0, 10)
        a.register_switch(1, 10)
        a.request(7, 0, 3)
        a.request(7, 1, 3)
        assert len(a.leases_of(7)) == 2

    def test_duplicate_switch_rejected(self):
        a = SlotAllocator()
        a.register_switch(0, 10)
        with pytest.raises(ValueError):
            a.register_switch(0, 10)

    def test_unknown_switch_raises(self):
        with pytest.raises(KeyError):
            SlotAllocator().request(1, 42, 1)


class TestCounterPoller:
    def test_rates_from_two_polls(self):
        dp = SwitchDataplane(n_slots=4, slot_elements=8)
        poller = CounterPoller(dp)
        poller.poll(0.0)
        p = quantize(np.ones(8))
        for c in range(4):
            dp.process_update(UpdatePacket(0, c, 0, p), 1)
        rates = poller.poll(2.0)
        assert rates["packets_in_per_s"] == pytest.approx(2.0)
        assert rates["completions_per_s"] == pytest.approx(2.0)

    def test_first_poll_has_no_rates(self):
        dp = SwitchDataplane()
        rates = CounterPoller(dp).poll(1.0)
        assert "packets_in_per_s" not in rates
        assert rates["free_slots"] == dp.n_slots
