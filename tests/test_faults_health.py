"""Health registry: delayed detection, hold-down, MTTR reductions."""

import math

import pytest

from repro.faults import HealthConfig, HealthRegistry

CFG = HealthConfig(heartbeat_period=0.05, miss_threshold=3, holddown_s=1.0)


@pytest.fixture()
def reg():
    return HealthRegistry(CFG)


class TestDetection:
    def test_ground_truth_immediate_detection_delayed(self, reg):
        reg.mark_down("switch", 0, now=1.0)
        assert reg.is_faulted("switch", 0)
        assert reg.available("switch", 0)  # not yet detected
        assert reg.poll(1.0) == []
        assert reg.poll(1.1) == []  # 0.10s < detect_delay 0.15s
        edges = reg.poll(1.2)
        assert [e.state for e in edges] == ["down"]
        assert not reg.available("switch", 0)
        assert reg.detected_down("switch") == {0}

    def test_recovery_held_down(self, reg):
        reg.mark_down("switch", 0, now=0.0)
        reg.poll(0.2)
        reg.mark_up("switch", 0, now=2.0)
        assert not reg.is_faulted("switch", 0)
        assert reg.poll(2.5) == []  # hold-down still active
        edges = reg.poll(3.0)
        assert [e.state for e in edges] == ["up"]
        assert reg.available("switch", 0)

    def test_refault_during_holddown_keeps_episode_open(self, reg):
        reg.mark_down("switch", 0, now=0.0)
        reg.poll(0.2)
        reg.mark_up("switch", 0, now=1.0)
        reg.mark_down("switch", 0, now=1.5)  # flaps back inside hold-down
        assert reg.poll(5.0) == []  # never restored
        assert len(reg.episodes) == 1
        assert not reg.episodes[0].closed

    def test_unknown_kind_rejected(self, reg):
        with pytest.raises(ValueError, match="unknown resource kind"):
            reg.mark_down("tor", 0, now=0.0)

    def test_unknown_resource_is_available(self, reg):
        assert reg.available("server", 99)
        assert not reg.is_faulted("server", 99)


class TestReductions:
    def test_mttr_over_closed_episodes(self, reg):
        reg.mark_down("switch", 0, now=0.0)
        reg.poll(0.2)  # detected at 0.2
        reg.mark_up("switch", 0, now=2.0)
        reg.poll(3.0)  # restored at 3.0 -> repair 2.8
        assert reg.mttr() == pytest.approx(2.8)

    def test_mttr_nan_without_closed_episodes(self, reg):
        assert math.isnan(reg.mttr())
        reg.mark_down("switch", 0, now=0.0)
        reg.poll(0.2)
        assert math.isnan(reg.mttr())  # open episode does not count

    def test_degraded_seconds_counts_open_episodes(self, reg):
        reg.mark_down("switch", 0, now=0.0)
        reg.poll(0.2)
        assert reg.degraded_seconds(5.2) == pytest.approx(5.0)
        reg.mark_up("switch", 0, now=6.0)
        reg.poll(7.0)
        assert reg.degraded_seconds(100.0) == pytest.approx(6.8)

    def test_episode_detail_propagates(self, reg):
        reg.mark_down("switch", 1, now=0.0, detail="slot_storm")
        edges = reg.poll(0.2)
        assert edges[0].detail == "slot_storm"
        assert reg.episodes[0].detail == "slot_storm"
