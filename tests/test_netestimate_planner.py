"""Algorithm 2 network estimation and Algorithm 1 planner."""

import pytest

from repro.comm import CommContext, SchemeKind
from repro.core import (
    SLA_TESTBED_CHATBOT,
    OfflinePlanner,
    ParallelConfig,
    PlannerConfig,
    estimate_network_latency,
)
from repro.core.planner import ExhaustivePlanner, split_pools
from repro.llm import OPT_66B, A100, V100, BatchSpec, CostModelBank
from repro.network import build_testbed
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def homo(tb):
    return CommContext.from_built(tb, heterogeneous=False)


@pytest.fixture(scope="module")
def het(tb):
    return CommContext.from_built(tb, heterogeneous=True)


@pytest.fixture(scope="module")
def bank():
    return CostModelBank(OPT_66B, {"A100": A100, "V100": V100})


class TestNetworkEstimate:
    def test_groups_shape(self, homo, tb):
        est = estimate_network_latency(
            homo,
            tb.topology.gpu_ids()[:8],
            p_tens=4,
            p_pipe=2,
            model=OPT_66B,
            tokens=512,
            scheme=SchemeKind.RING,
            rng=make_rng(0),
        )
        assert len(est.stages) == 2
        assert all(len(s) == 4 for s in est.stages)
        assert est.t_network > 0

    def test_grouping_prefers_same_server(self, homo, tb):
        """TP4 groups on the 4-GPU-per-server testbed must be intra-server."""
        est = estimate_network_latency(
            homo,
            tb.topology.gpu_ids()[:8],
            4,
            2,
            OPT_66B,
            tokens=512,
            scheme=SchemeKind.RING,
            rng=make_rng(0),
        )
        topo = tb.topology
        for stage in est.stages:
            servers = {topo.nodes[g].server for g in stage}
            assert len(servers) == 1

    def test_insufficient_gpus_raises(self, homo, tb):
        with pytest.raises(ValueError):
            estimate_network_latency(
                homo,
                tb.topology.gpu_ids()[:3],
                4,
                1,
                OPT_66B,
                tokens=10,
                scheme=SchemeKind.RING,
            )

    def test_hybrid_not_worse_than_ring(self, homo, het, tb):
        g = tb.topology.gpu_ids()[:8]
        kw = dict(model=OPT_66B, tokens=2048, rng=make_rng(0))
        ring = estimate_network_latency(
            homo, g, 8, 1, scheme=SchemeKind.RING, **kw
        )
        hyb = estimate_network_latency(
            het, g, 8, 1, scheme=SchemeKind.HYBRID, **kw
        )
        assert hyb.t_network <= ring.t_network


class TestSplitPools:
    def test_disjoint_and_complete(self, tb):
        pre, dec = split_pools(tb)
        assert not set(pre) & set(dec)
        assert sorted(pre + dec) == tb.topology.gpu_ids()

    def test_high_memory_servers_go_to_decode(self, tb):
        """Paper III-B: decode favours servers with ample memory (A100)."""
        _, dec = split_pools(tb)
        assert all(tb.gpu_models[g] == "A100" for g in dec)


class TestPlanner:
    def test_finds_feasible_plan(self, het, bank):
        p = OfflinePlanner(
            het, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID
        )
        rep = p.plan(BatchSpec.uniform(8, 256, 200), arrival_rate=0.3)
        assert rep.plan is not None
        assert rep.plan.scalability > 0
        assert rep.plan.t_prefill <= SLA_TESTBED_CHATBOT.ttft
        assert rep.plan.t_decode <= SLA_TESTBED_CHATBOT.tpot

    def test_plan_pools_respected(self, het, bank, tb):
        pre, dec = split_pools(tb)
        p = OfflinePlanner(
            het, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID
        )
        rep = p.plan(BatchSpec.uniform(8, 256, 200), arrival_rate=0.3)
        assert set(rep.plan.prefill.gpu_ids) <= set(pre)
        assert set(rep.plan.decode.gpu_ids) <= set(dec)

    def test_forced_parallel(self, het, bank):
        p = OfflinePlanner(
            het, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID
        )
        forced = ParallelConfig(8, 1, 8, 1)
        rep = p.plan(
            BatchSpec.uniform(8, 256, 200), 0.3, forced_parallel=forced
        )
        assert rep.plan is not None
        assert rep.plan.parallel == forced
        assert rep.candidates_evaluated == 1

    def test_memory_filter_rejects_impossible(self, het, bank):
        """TP4xPP1 needs 51GB shards: no admissible GPUs exist."""
        p = OfflinePlanner(
            het, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID
        )
        rep = p.plan(
            BatchSpec.uniform(8, 256, 200),
            0.3,
            forced_parallel=ParallelConfig(4, 1, 4, 1),
        )
        assert rep.plan is None
        assert any("insufficient" in r for r in rejected_msgs(rep))

    def test_deterministic_given_seed(self, het, bank):
        cfg = PlannerConfig(seed=11, asynchronous=False)
        batch = BatchSpec.uniform(8, 256, 200)
        p1 = OfflinePlanner(
            het, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID,
            config=cfg,
        ).plan(batch, 0.3)
        p2 = OfflinePlanner(
            het, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID,
            config=PlannerConfig(seed=11, asynchronous=False),
        ).plan(batch, 0.3)
        assert p1.plan.parallel == p2.plan.parallel
        assert p1.plan.prefill.stages == p2.plan.prefill.stages

    def test_overlapping_pools_rejected(self, het, bank, tb):
        g = tb.topology.gpu_ids()
        with pytest.raises(ValueError):
            OfflinePlanner(
                het, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID,
                prefill_pool=g[:8], decode_pool=g[4:12],
            )

    def test_exhaustive_not_faster(self, homo, bank):
        """The heuristic planner must evaluate no more candidates than the
        exhaustive one and finish at least as fast (paper §III-C3)."""
        batch = BatchSpec.uniform(8, 256, 200)
        fast = OfflinePlanner(
            homo, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.RING
        ).plan(batch, 0.3)
        slow = ExhaustivePlanner(
            homo, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.RING
        ).plan(batch, 0.3)
        assert fast.candidates_evaluated <= slow.candidates_evaluated
        assert slow.plan is not None


def rejected_msgs(report):
    return report.rejected


class TestReplanExcluding:
    def _planner(self, het, bank):
        return OfflinePlanner(
            het, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID
        )

    def test_empty_exclusion_equals_plain_plan(self, het, bank):
        p = self._planner(het, bank)
        batch = BatchSpec.uniform(8, 256, 200)
        forced = ParallelConfig(8, 1, 8, 1)
        rep = p.replan_excluding(set(), batch, 0.3, prefer=forced)
        assert rep.plan is not None
        assert rep.plan.parallel == forced

    def test_whole_pool_lost_is_rejected_not_crashed(self, het, bank, tb):
        p = self._planner(het, bank)
        _, dec = split_pools(tb)
        rep = p.replan_excluding(
            set(dec), BatchSpec.uniform(8, 256, 200), 0.3
        )
        assert rep.plan is None
        assert any("surviving" in r for r in rep.rejected)

    def test_survivor_plan_avoids_failed_gpus(self, het, bank, tb):
        """Losing one prefill server: the replan must not place on it."""
        p = self._planner(het, bank)
        pre, _ = split_pools(tb)
        # fail the server hosting the first prefill GPU
        server = next(
            s for s, gl in tb.server_gpus.items() if pre[0] in gl
        )
        failed = set(tb.server_gpus[server])
        rep = p.replan_excluding(
            failed, BatchSpec.uniform(8, 256, 200), 0.3
        )
        if rep.plan is not None:  # feasibility depends on memory fit
            assert not (set(rep.plan.prefill.gpu_ids) & failed)
            assert not (set(rep.plan.decode.gpu_ids) & failed)

    def test_pools_restored_after_call(self, het, bank, tb):
        p = self._planner(het, bank)
        pre_before = list(p.prefill_pool)
        dec_before = list(p.decode_pool)
        p.replan_excluding(
            {pre_before[0]}, BatchSpec.uniform(8, 256, 200), 0.3
        )
        assert p.prefill_pool == pre_before
        assert p.decode_pool == dec_before
