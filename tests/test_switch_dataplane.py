"""Switch dataplane: slots, exact-match table, fixed-point exactness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switch import (
    SlotPoolExhausted,
    SwitchDataplane,
    UpdatePacket,
    dequantize,
    quantize,
)


def push(dp, job, chunk, worker, payload, fanout):
    return dp.process_update(
        UpdatePacket(job, chunk, worker, payload), fanout
    )


class TestQuantization:
    def test_roundtrip(self):
        x = np.array([0.5, -1.25, 3.0])
        assert np.allclose(dequantize(quantize(x)), x)

    def test_sum_exactness(self):
        """Fixed-point addition is exact: order of workers is irrelevant."""
        rng = np.random.default_rng(0)
        xs = [rng.normal(size=100) for _ in range(8)]
        qs = [quantize(x) for x in xs]
        total_fwd = sum(qs[i] for i in range(8))
        total_rev = sum(qs[i] for i in reversed(range(8)))
        assert np.array_equal(total_fwd, total_rev)

    def test_overflow_detected(self):
        with pytest.raises(OverflowError):
            quantize(np.array([1e30]))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=50))
    def test_quantize_error_bound(self, values):
        x = np.array(values)
        err = np.abs(dequantize(quantize(x)) - x)
        assert np.all(err <= 2.0 ** -24)


class TestAggregation:
    def test_basic_aggregate(self):
        dp = SwitchDataplane(n_slots=4, slot_elements=8)
        a = quantize(np.arange(8.0))
        b = quantize(np.ones(8))
        assert push(dp, 0, 0, 0, a, 2) is None
        res = push(dp, 0, 0, 1, b, 2)
        assert res is not None
        assert np.array_equal(res.payload, a + b)

    def test_slot_recycled_after_completion(self):
        dp = SwitchDataplane(n_slots=1, slot_elements=4)
        p = quantize(np.ones(4))
        push(dp, 0, 0, 0, p, 1)  # fanout 1 completes immediately
        assert dp.free_slots == 1
        push(dp, 0, 1, 0, p, 1)  # next chunk reuses the slot
        assert dp.free_slots == 1

    def test_duplicate_worker_idempotent(self):
        dp = SwitchDataplane(n_slots=2, slot_elements=4)
        p = quantize(np.ones(4))
        push(dp, 0, 0, 0, p, 2)
        assert push(dp, 0, 0, 0, p, 2) is None  # retransmit ignored
        res = push(dp, 0, 0, 1, p, 2)
        assert np.array_equal(res.payload, 2 * quantize(np.ones(4)))

    def test_pool_exhaustion(self):
        dp = SwitchDataplane(n_slots=1, slot_elements=4)
        p = quantize(np.ones(4))
        push(dp, 0, 0, 0, p, 2)  # occupies the only slot (incomplete)
        with pytest.raises(SlotPoolExhausted):
            push(dp, 0, 1, 0, p, 2)
        assert dp.drops_no_slot == 1

    def test_separate_jobs_separate_slots(self):
        dp = SwitchDataplane(n_slots=2, slot_elements=4)
        p = quantize(np.ones(4))
        push(dp, 0, 0, 0, p, 2)
        push(dp, 1, 0, 0, p, 2)
        assert dp.pending_chunks() == 2

    def test_fanout_mismatch_rejected(self):
        dp = SwitchDataplane(n_slots=2, slot_elements=4)
        p = quantize(np.ones(4))
        push(dp, 0, 0, 0, p, 2)
        with pytest.raises(ValueError, match="fanout"):
            push(dp, 0, 0, 1, p, 3)

    def test_oversize_payload_rejected(self):
        dp = SwitchDataplane(n_slots=1, slot_elements=4)
        with pytest.raises(ValueError):
            push(dp, 0, 0, 0, quantize(np.ones(5)), 2)

    def test_partial_final_chunk(self):
        dp = SwitchDataplane(n_slots=1, slot_elements=8)
        p = quantize(np.ones(3))
        res = push(dp, 0, 0, 0, p, 1)
        assert len(res.payload) == 3


class TestCounters:
    def test_counters_track_traffic(self):
        dp = SwitchDataplane(n_slots=2, slot_elements=4)
        p = quantize(np.ones(4))
        push(dp, 0, 0, 0, p, 2)
        push(dp, 0, 0, 1, p, 2)
        c = dp.counters()
        assert c["packets_in"] == 2
        assert c["completions"] == 1
        assert c["packets_out"] == 2  # broadcast to both contributors

    def test_reset_counters(self):
        dp = SwitchDataplane(n_slots=2, slot_elements=4)
        push(dp, 0, 0, 0, quantize(np.ones(4)), 1)
        dp.reset_counters()
        assert dp.counters()["packets_in"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SwitchDataplane(n_slots=0)
        with pytest.raises(ValueError):
            SwitchDataplane(slot_elements=0)


class TestFailureModes:
    def test_fail_blackholes_packets(self):
        dp = SwitchDataplane(n_slots=4, slot_elements=8)
        dp.fail()
        assert push(dp, 0, 0, 0, quantize(np.ones(8)), 2) is None
        assert dp.counters()["drops_down"] == 1
        assert dp.counters()["packets_in"] == 0

    def test_fail_wipes_sram(self):
        dp = SwitchDataplane(n_slots=4, slot_elements=8)
        push(dp, 0, 0, 0, quantize(np.ones(8)), 2)  # slot in use
        dp.fail()
        dp.recover()
        # the half-aggregated chunk is gone: a full pool is free again
        assert dp.counters()["pending"] == 0
        assert dp.counters()["free_slots"] == 4
        a, b = quantize(np.ones(8)), quantize(np.ones(8))
        assert push(dp, 0, 0, 0, a, 2) is None
        res = push(dp, 0, 0, 1, b, 2)
        assert res is not None
        assert np.array_equal(res.payload, a + b)

    def test_seize_slots_bounded_by_free(self):
        dp = SwitchDataplane(n_slots=4, slot_elements=8)
        assert dp.seize_slots(10) == 4
        assert dp.counters()["seized_slots"] == 4
        dp.release_seized()
        assert dp.counters()["seized_slots"] == 0

    def test_seized_slots_not_allocatable(self):
        dp = SwitchDataplane(n_slots=1, slot_elements=8)
        dp.seize_slots(1)
        with pytest.raises(SlotPoolExhausted):
            push(dp, 0, 0, 0, quantize(np.ones(8)), 2)
        dp.release_seized()
        assert push(dp, 0, 0, 0, quantize(np.ones(8)), 2) is None
