"""Unit tests for the trace recorder (repro.obs.trace)."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    ENGINE_PID,
    REQUEST_PID,
    SpanRecord,
    TraceRecorder,
)


class TestRecorder:
    def test_complete_span_recorded(self):
        tr = TraceRecorder()
        tr.complete("prefill", "prefill b=4", 1.0, 0.5, size=4)
        (span,) = tr.spans("prefill")
        assert span.name == "prefill b=4"
        assert span.start == 1.0
        assert span.dur == 0.5
        assert span.args["size"] == 4
        assert span.pid == ENGINE_PID

    def test_begin_end_pairing(self):
        tr = TraceRecorder()
        sid = tr.begin("ctrl", "tick", 2.0)
        tr.end(sid, 2.5, refreshed=True)
        (span,) = tr.spans("ctrl")
        assert span.start == 2.0
        assert span.dur == pytest.approx(0.5)
        assert span.args["refreshed"] is True

    def test_end_before_start_rejected(self):
        tr = TraceRecorder()
        sid = tr.begin("ctrl", "tick", 2.0)
        with pytest.raises(ValueError):
            tr.end(sid, 1.0)

    def test_end_unknown_span_raises(self):
        tr = TraceRecorder()
        with pytest.raises(KeyError):
            tr.end(999, 1.0)

    def test_instant_event(self):
        tr = TraceRecorder()
        tr.instant("req", "arrival", 0.25, request_id=7)
        (ev,) = tr.instants("req")
        assert ev.dur is None
        assert ev.args["request_id"] == 7

    def test_max_events_bound(self):
        tr = TraceRecorder(max_events=3)
        for i in range(10):
            tr.complete("t", f"s{i}", float(i), 0.1)
        assert len(tr.spans("t")) == 3
        assert tr.dropped == 7

    def test_negative_duration_rejected(self):
        tr = TraceRecorder()
        with pytest.raises(ValueError):
            tr.complete("t", "bad", 1.0, -0.1)


class TestChromeExport:
    def _sample(self) -> TraceRecorder:
        tr = TraceRecorder()
        tr.complete("prefill", "prefill b=8", 0.1, 0.05, batch=8)
        tr.complete(
            "allreduce",
            "allreduce:hybrid-ina@0",
            0.12,
            0.01,
            policy="hybrid-ina@0",
        )
        tr.instant("req", "arrival", 0.05, request_id=1)
        tr.complete(
            "lifecycle", "decode", 0.2, 0.3, pid=REQUEST_PID, tid=1
        )
        return tr

    def test_round_trips_json_loads(self):
        blob = json.loads(json.dumps(self._sample().to_chrome()))
        assert isinstance(blob["traceEvents"], list)
        assert blob["displayTimeUnit"] == "ms"

    def test_microsecond_conversion_and_phases(self):
        events = self._sample().to_chrome()["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 3
        assert len(instants) == 1
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert {"prefill", "allreduce", "req"} <= thread_names
        pre = next(e for e in complete if e["name"] == "prefill b=8")
        assert pre["ts"] == pytest.approx(0.1 * 1e6)
        assert pre["dur"] == pytest.approx(0.05 * 1e6)

    def test_request_swimlane_pid_tid(self):
        events = self._sample().to_chrome()["traceEvents"]
        life = next(e for e in events if e["name"] == "decode")
        assert life["pid"] == REQUEST_PID
        assert life["tid"] == 1

    def test_write_chrome_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        self._sample().write_chrome(str(path))
        blob = json.loads(path.read_text())
        assert blob["traceEvents"]

    def test_jsonl_one_record_per_line(self, tmp_path):
        tr = self._sample()
        path = tmp_path / "trace.jsonl"
        tr.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4
        for line in lines:
            rec = json.loads(line)
            assert "name" in rec and "track" in rec


def test_span_record_defaults():
    s = SpanRecord(name="x", track="t", start=0.0, dur=1.0)
    assert s.pid == ENGINE_PID
    assert s.tid is None
    assert s.args == {}
