"""Shaped-arrival generators: diurnal, flash-crowd, multi-tenant mixes.

Property tests for the workload library behind the scenario specs:
rate profiles integrate to the expected request counts, arrival streams
are deterministic under a fixed seed and strictly inside the horizon,
and multi-tenant composition re-tags QoE classes and namespaces session
ids without perturbing the per-tenant draws.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import make_rng
from repro.workloads import (
    TenantSpec,
    WorkloadGenerator,
    diurnal_arrivals,
    diurnal_rate,
    effective_rate,
    flash_crowd_arrivals,
    flash_crowd_rate,
    generate_diurnal_trace,
    generate_flash_crowd_trace,
    generate_multi_tenant_trace,
    get_workload,
    inhomogeneous_arrivals,
    registered_workloads,
)
from repro.workloads.registry import register_workload
from repro.workloads.tenants import SESSION_STRIDE


class TestInhomogeneousArrivals:
    def test_constant_rate_matches_poisson_mean(self):
        rng = make_rng(0)
        times = inhomogeneous_arrivals(
            lambda t: np.full_like(t, 2.0), 2.0, 500.0, rng
        )
        # lambda*T = 1000 expected arrivals; 5 sigma ~ 160.
        assert 800 <= len(times) <= 1200

    def test_sorted_within_horizon(self):
        times = inhomogeneous_arrivals(
            lambda t: 1.0 + 0.5 * np.sin(t), 1.5, 100.0, make_rng(1)
        )
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0.0 and times[-1] < 100.0

    def test_deterministic_under_seed(self):
        def rate_fn(t):
            return 1.0 + 0.5 * np.cos(t / 10.0)

        a = inhomogeneous_arrivals(rate_fn, 1.5, 200.0, make_rng(42))
        b = inhomogeneous_arrivals(rate_fn, 1.5, 200.0, make_rng(42))
        assert np.array_equal(a, b)

    def test_rate_above_envelope_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            inhomogeneous_arrivals(
                lambda t: np.full_like(t, 3.0), 2.0, 50.0, make_rng(0)
            )


class TestDiurnal:
    def test_rate_profile_trough_at_phase_zero(self):
        t = np.array([0.0, 50.0, 100.0])
        r = diurnal_rate(t, 1.0, 3.0, period=100.0)
        # Cosine profile: trough at t=0 and t=period, peak at period/2.
        assert r[0] == pytest.approx(1.0)
        assert r[1] == pytest.approx(3.0)
        assert r[2] == pytest.approx(1.0)

    def test_rate_profile_bounded(self):
        t = np.linspace(0.0, 400.0, 1000)
        r = diurnal_rate(t, 0.5, 2.0, period=86.4)
        assert np.all(r >= 0.5 - 1e-12) and np.all(r <= 2.0 + 1e-12)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_count_integrates_rate(self, seed):
        base, peak, T = 1.0, 3.0, 600.0
        times = diurnal_arrivals(
            base, peak, T, make_rng(seed), period=T
        )
        expected = (base + peak) / 2.0 * T  # mean of the cosine profile
        sigma = np.sqrt(expected)
        assert abs(len(times) - expected) < 6 * sigma

    def test_trace_tags_qos_and_sorts(self):
        trace = generate_diurnal_trace(
            1.0, 2.0, 60.0, make_rng(3), qos="interactive"
        )
        assert len(trace) > 0
        assert all(r.qos == "interactive" for r in trace.requests)
        arr = [r.arrival_time for r in trace.requests]
        assert np.all(np.diff(arr) >= 0)

    def test_trace_deterministic(self):
        a = generate_diurnal_trace(1.0, 2.0, 60.0, make_rng(9))
        b = generate_diurnal_trace(1.0, 2.0, 60.0, make_rng(9))
        assert [
            (r.arrival_time, r.input_len, r.output_len)
            for r in a.requests
        ] == [
            (r.arrival_time, r.input_len, r.output_len)
            for r in b.requests
        ]


class TestFlashCrowd:
    def test_rate_profile_shape(self):
        t = np.array([0.0, 30.0, 35.0, 36.0, 300.0])
        r = flash_crowd_rate(
            t, 1.0, 5.0, at=30.0, ramp_s=5.0, decay_s=10.0
        )
        assert r[0] == pytest.approx(1.0)   # pre-spike: base
        assert r[1] == pytest.approx(1.0)   # ramp starts at `at`
        assert r[2] == pytest.approx(5.0)   # peak at at+ramp
        assert 1.0 < r[3] < 5.0             # decaying
        assert r[4] == pytest.approx(1.0, abs=1e-6)  # long after: base

    def test_spike_concentrates_arrivals(self):
        base, peak, at, T = 0.5, 8.0, 100.0, 200.0
        times = flash_crowd_arrivals(
            base, peak, at, T, make_rng(7), ramp_s=2.0, decay_s=15.0
        )
        before = np.sum(times < at)
        during = np.sum((times >= at) & (times < at + 40.0))
        # The 40 s spike window outdraws the 100 s of base traffic.
        assert during > before

    def test_validation(self):
        with pytest.raises(ValueError):
            flash_crowd_arrivals(1.0, 5.0, 300.0, 200.0, make_rng(0))
        with pytest.raises(ValueError):
            flash_crowd_arrivals(5.0, 1.0, 10.0, 200.0, make_rng(0))

    def test_trace_deterministic_and_in_horizon(self):
        a = generate_flash_crowd_trace(
            0.5, 3.0, 20.0, 60.0, make_rng(5)
        )
        b = generate_flash_crowd_trace(
            0.5, 3.0, 20.0, 60.0, make_rng(5)
        )
        assert len(a) == len(b) > 0
        arr_a = [r.arrival_time for r in a.requests]
        arr_b = [r.arrival_time for r in b.requests]
        assert arr_a[-1] < 60.0
        assert arr_a == arr_b


class TestEffectiveRate:
    def test_mean_rate(self):
        times = np.linspace(0.0, 99.0, 100)
        assert effective_rate(times, 100.0) == pytest.approx(1.0)


class TestMultiTenant:
    TENANTS = [
        TenantSpec(name="chat", share=0.5, qos="interactive"),
        TenantSpec(
            name="batch", share=0.5, qos="batch", generator="longbench"
        ),
    ]

    def test_qos_retagged_per_tenant(self):
        trace = generate_multi_tenant_trace(
            self.TENANTS, 2.0, 60.0, make_rng(0)
        )
        classes = {r.qos for r in trace.requests}
        assert classes == {"interactive", "batch"}

    def test_session_ids_namespaced(self):
        tenants = [
            TenantSpec(name="a", share=0.5, generator="sessions"),
            TenantSpec(name="b", share=0.5, generator="sessions"),
        ]
        trace = generate_multi_tenant_trace(
            tenants, 0.5, 60.0, make_rng(1)
        )
        sids = [
            r.session_id
            for r in trace.requests
            if r.session_id is not None
        ]
        assert any(s < SESSION_STRIDE for s in sids)
        assert any(s >= SESSION_STRIDE for s in sids)

    def test_ids_renumbered_in_arrival_order(self):
        trace = generate_multi_tenant_trace(
            self.TENANTS, 2.0, 60.0, make_rng(2)
        )
        assert [r.request_id for r in trace.requests] == list(
            range(len(trace))
        )
        arr = [r.arrival_time for r in trace.requests]
        assert np.all(np.diff(arr) >= 0)

    def test_shares_split_offered_rate(self):
        tenants = [
            TenantSpec(name="big", share=3.0),
            TenantSpec(name="small", share=1.0),
        ]
        trace = generate_multi_tenant_trace(
            tenants, 4.0, 300.0, make_rng(3)
        )
        big = sum(1 for r in trace.requests if r.qos == "standard")
        # Both tenants are "standard"; count via session namespace
        # instead: single-shot sharegpt has no session ids, so split by
        # arrival interleave is not observable — assert the total.
        expected = 4.0 * 300.0
        assert abs(len(trace) - expected) < 6 * np.sqrt(expected)
        assert big == len(trace)

    def test_adding_tenant_preserves_other_streams(self):
        one = generate_multi_tenant_trace(
            [TenantSpec(name="chat", share=1.0)], 1.0, 60.0, make_rng(8)
        )
        two = generate_multi_tenant_trace(
            [
                TenantSpec(name="chat", share=1.0),
                TenantSpec(name="extra", share=1.0, qos="batch"),
            ],
            2.0,
            60.0,
            make_rng(8),
        )
        # Tenant 0 keeps rate 1.0 (share normalised) and its own child
        # RNG stream, so its requests are identical in both mixes.
        chat_two = [
            (r.arrival_time, r.input_len, r.output_len)
            for r in two.requests
            if r.qos == "standard"
        ]
        chat_one = [
            (r.arrival_time, r.input_len, r.output_len)
            for r in one.requests
        ]
        assert chat_two == chat_one

    def test_empty_tenants_rejected(self):
        with pytest.raises(ValueError):
            generate_multi_tenant_trace([], 1.0, 60.0, make_rng(0))
        with pytest.raises(ValueError):
            TenantSpec(name="", share=1.0)
        with pytest.raises(ValueError):
            TenantSpec(name="x", share=0.0)


class TestRegistry:
    def test_core_generators_registered(self):
        names = {g.name for g in registered_workloads()}
        assert {
            "sharegpt", "longbench", "sessions", "loadshift",
            "diurnal", "flash-crowd", "multi-tenant",
        } <= names

    def test_sorted_listing(self):
        names = [g.name for g in registered_workloads()]
        assert names == sorted(names)

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="sharegpt"):
            get_workload("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload(
                WorkloadGenerator(
                    "sharegpt", "dup", lambda *a, **k: None
                )
            )

    def test_build_signature_uniform(self):
        for gen in registered_workloads():
            if gen.name == "multi-tenant":
                trace = gen.build(
                    1.0,
                    20.0,
                    make_rng(0),
                    tenants=[{"name": "t", "share": 1.0}],
                )
            else:
                trace = gen.build(1.0, 20.0, make_rng(0))
            assert len(trace) > 0

    def test_loadshift_phase_split(self):
        gen = get_workload("loadshift")
        trace = gen.build(
            0.5, 100.0, make_rng(4), rate_b=2.0, shift_at=50.0
        )
        arr = np.array([r.arrival_time for r in trace.requests])
        before = int(np.sum(arr < 50.0))
        after = int(np.sum(arr >= 50.0))
        # 4x the rate after the shift: the split is decisively skewed.
        assert after > 2 * before
