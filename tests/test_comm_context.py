"""CommContext: network views, live pricing, distance matrices."""

import numpy as np
import pytest

from repro.comm import CommContext
from repro.network import LinkKind, LinkLoadTracker, build_testbed


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def het(tb):
    return CommContext.from_built(tb, heterogeneous=True)


@pytest.fixture(scope="module")
def homo(tb):
    return CommContext.from_built(tb, heterogeneous=False)


class TestViews:
    def test_same_server_direct_nvlink_both_views(self, het, homo, tb):
        g = tb.topology.gpu_ids()
        for ctx in (het, homo):
            links = ctx.path_links(g[0], g[1])
            assert len(links) == 1
            assert tb.topology.links[links[0]].kind == LinkKind.NVLINK

    def test_homogeneous_no_nvlink_forwarding(self, homo, tb):
        """Cross-server paths never detour over NVLink in the homo view."""
        g = tb.topology.gpu_ids()
        for dst in (g[4], g[7], g[13]):
            kinds = [
                tb.topology.links[lid].kind
                for lid in homo.path_links(g[0], dst)
            ]
            assert all(k == LinkKind.ETHERNET for k in kinds)

    def test_heterogeneous_may_forward_over_nvlink(self, het, tb):
        """A GPU whose port sits on the far switch reaches the near one
        via a buddy's NVLink in the heterogeneous view."""
        g = tb.topology.gpu_ids()
        sw0 = tb.access_switches[0]
        # GPU 1 of server 0 has its port on switch 1; route to switch 0.
        gpu = tb.server_gpus[0][1]
        kinds = {
            tb.topology.links[lid].kind
            for lid in het.path_links(gpu, sw0)
        }
        assert LinkKind.NVLINK in kinds

    def test_path_time_zero_self(self, het, tb):
        g = tb.topology.gpu_ids()[0]
        assert het.path_time(g, g, 1e6) == 0.0

    def test_transfer_time_alias(self, het, tb):
        g = tb.topology.gpu_ids()
        assert het.transfer_time(g[0], g[4], 1e6) == het.path_time(
            g[0], g[4], 1e6
        )


class TestLivePricing:
    def test_congestion_raises_path_time(self, tb):
        base = CommContext.from_built(tb, heterogeneous=False)
        ls = LinkLoadTracker(tb.topology)
        ctx = CommContext(
            built=tb,
            route_table=base.route_table,
            linkstate=ls,
            heterogeneous=False,
        )
        g = tb.topology.gpu_ids()
        t0 = ctx.path_time(g[0], g[4], 4e6)
        links = ctx.path_links(g[0], g[4])
        ls.register(links, 0.8 * 12.5e9)
        t1 = ctx.path_time(g[0], g[4], 4e6)
        assert t1 > 3 * t0

    def test_bottleneck_uses_live_bandwidth(self, tb):
        base = CommContext.from_built(tb, heterogeneous=False)
        ls = LinkLoadTracker(tb.topology)
        ctx = CommContext(
            built=tb,
            route_table=base.route_table,
            linkstate=ls,
            heterogeneous=False,
        )
        g = tb.topology.gpu_ids()
        b0 = ctx.path_bottleneck(g[0], g[4])
        ls.register(ctx.path_links(g[0], g[4]), 0.5 * 12.5e9)
        assert ctx.path_bottleneck(g[0], g[4]) == pytest.approx(b0 * 0.5)


class TestDistanceMatrix:
    def test_shape_and_diagonal(self, het, tb):
        g = tb.topology.gpu_ids()[:6]
        d = het.gpu_distance_matrix(g)
        assert d.shape == (6, 6)
        assert np.allclose(np.diag(d), 0.0)

    def test_same_server_much_closer(self, homo, tb):
        """Even the homogeneous view's grouping matrix sees NVLink
        locality (the physical direct hop), not the Ethernet detour."""
        g = tb.topology.gpu_ids()[:8]
        d = homo.gpu_distance_matrix(g)
        same = d[0, 1]   # server 0, GPUs 0-1
        cross = d[0, 4]  # server 0 -> server 1
        assert same < cross / 10

    def test_group_hardware(self, het, tb):
        g = tb.server_gpus[0][:2] + tb.server_gpus[2][:1]
        hw = het.group_hardware(g)
        assert hw == ["A100", "A100", "V100"]
