"""Fault injector: target resolution, event application, finalize."""

import pytest

from repro.comm import CommContext
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    HealthRegistry,
)
from repro.network import LinkLoadTracker, build_testbed
from repro.network.topology import LinkKind
from repro.serving.metrics import ServingMetrics
from repro.sim.eventqueue import EventQueue
from repro.core.objective import SlaSpec
from repro.switch import SwitchDataplane


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


def live_ctx(tb):
    base = CommContext.from_built(tb, heterogeneous=True)
    return CommContext(
        built=tb,
        route_table=base.route_table,
        linkstate=LinkLoadTracker(tb.topology),
        agg_latency=base.agg_latency,
        heterogeneous=True,
    )


def make_injector(tb, *events, seed=0):
    plan = FaultPlan(events=tuple(events), seed=seed)
    health = HealthRegistry()
    return FaultInjector(plan, health, live_ctx(tb)), health


class TestTargetResolution:
    def test_int_passthrough(self, tb):
        inj, _ = make_injector(tb)
        ev = FaultEvent(time=0.0, kind="switch_down", target=1)
        assert inj.resolve_target(ev) == 1

    def test_switch_reference(self, tb):
        inj, _ = make_injector(tb)
        ev = FaultEvent(time=0.0, kind="switch_down", target="switch#0")
        assert inj.resolve_target(ev) == tb.ina_capable_switches()[0]

    def test_server_reference(self, tb):
        inj, _ = make_injector(tb)
        ev = FaultEvent(time=0.0, kind="server_down", target="server#1")
        assert inj.resolve_target(ev) == sorted(tb.server_gpus)[1]

    def test_link_reference_is_ethernet(self, tb):
        inj, _ = make_injector(tb)
        ev = FaultEvent(time=0.0, kind="link_degrade", target="link#0")
        lid = inj.resolve_target(ev)
        assert tb.topology.links[lid].kind == LinkKind.ETHERNET

    def test_out_of_range_reference(self, tb):
        inj, _ = make_injector(tb)
        ev = FaultEvent(time=0.0, kind="switch_down", target="switch#99")
        with pytest.raises(ValueError, match="out of range"):
            inj.resolve_target(ev)

    def test_bad_reference_class(self, tb):
        inj, _ = make_injector(tb)
        ev = FaultEvent(time=0.0, kind="switch_down", target="tor#0")
        with pytest.raises(ValueError, match="target class"):
            inj.resolve_target(ev)


class TestApplication:
    def test_switch_crash_wipes_dataplane_and_recovers(self, tb):
        sw = tb.ina_capable_switches()[0]
        inj, health = make_injector(
            tb,
            FaultEvent(
                time=1.0, kind="switch_down", target=sw, duration=2.0
            ),
        )
        dp = SwitchDataplane(n_slots=4, slot_elements=8)
        inj.attach_dataplane(sw, dp)
        q = EventQueue()
        inj.arm(q)
        q.run(until=1.5)
        assert dp.failed
        assert health.is_faulted("switch", sw)
        q.run(until=4.0)
        assert not dp.failed
        assert not health.is_faulted("switch", sw)
        assert inj.counters.faults_injected == 2

    def test_slot_storm_seizes_then_releases(self, tb):
        sw = tb.ina_capable_switches()[0]
        inj, health = make_injector(
            tb,
            FaultEvent(
                time=0.5,
                kind="slot_storm",
                target=sw,
                slots=3,
                duration=1.0,
            ),
        )
        dp = SwitchDataplane(n_slots=4, slot_elements=8)
        inj.attach_dataplane(sw, dp)
        q = EventQueue()
        inj.arm(q)
        q.run(until=1.0)
        assert dp.counters()["seized_slots"] == 3
        assert health.is_faulted("switch", sw)
        q.run(until=2.0)
        assert dp.counters()["seized_slots"] == 0
        assert not health.is_faulted("switch", sw)

    def test_link_degrade_scales_capacity(self, tb):
        inj, health = make_injector(
            tb,
            FaultEvent(
                time=0.0,
                kind="link_degrade",
                target="link#2",
                duration=1.0,
                factor=0.5,
                loss=0.2,
            ),
        )
        lid = inj.resolve_target(inj.plan.events[0])
        base = inj.ctx.linkstate.base_capacity[lid]
        q = EventQueue()
        inj.arm(q)
        q.run(until=0.5)
        assert inj.ctx.linkstate.capacity[lid] == pytest.approx(0.4 * base)
        assert health.is_faulted("link", lid)
        q.run(until=2.0)
        assert inj.ctx.linkstate.capacity[lid] == pytest.approx(base)
        assert not health.is_faulted("link", lid)

    def test_backoff_is_seeded_and_bounded(self, tb):
        a, _ = make_injector(tb, seed=3)
        b, _ = make_injector(tb, seed=3)
        seq_a = [a.backoff(i) for i in range(6)]
        seq_b = [b.backoff(i) for i in range(6)]
        assert seq_a == seq_b  # same seed, same jitter
        for i, d in enumerate(seq_a):
            assert d >= a.retry.base_s * 2**i * 0.999 or d >= a.retry.cap_s
            assert d <= a.retry.cap_s * (1 + a.retry.jitter)


class TestFinalize:
    def _metrics(self):
        return ServingMetrics(sla=SlaSpec(ttft=1.0, tpot=0.1))

    def test_empty_plan_leaves_metrics_untouched(self, tb):
        inj, _ = make_injector(tb)
        m = self._metrics()
        inj.finalize(10.0, m)
        assert m.fault_stats is None
        assert "mttr_s" not in m.summary()

    def test_nonempty_plan_attaches_stats(self, tb):
        sw = tb.ina_capable_switches()[0]
        inj, health = make_injector(
            tb,
            FaultEvent(
                time=0.0, kind="switch_down", target=sw, duration=1.0
            ),
        )
        q = EventQueue()
        inj.arm(q)
        q.run(until=0.5)
        health.poll(0.2)  # detect while the switch is still down
        q.run(until=5.0)
        health.poll(3.0)  # restore after recovery + hold-down
        m = self._metrics()
        inj.finalize(5.0, m)
        assert m.fault_stats is not None
        s = m.summary()
        assert s["faults_injected"] == 2.0
        assert s["fault_episodes"] == 1.0
        assert s["mttr_s"] == pytest.approx(2.8)
