"""Seeded RNG helpers, ASCII tables, and validation utilities."""

import numpy as np
import pytest

from repro.util.rng import choice_without_replacement, make_rng, spawn
from repro.util.tables import format_table, speedup_rows
from repro.util.validation import (
    require_divides,
    require_in_range,
    require_nonnegative,
    require_positive,
    require_type,
)


class TestRng:
    def test_default_seed_deterministic(self):
        a = make_rng().integers(0, 1000, size=10)
        b = make_rng().integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_explicit_seed(self):
        a = make_rng(42).random()
        b = make_rng(42).random()
        assert a == b

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_spawn_independent(self):
        children = spawn(make_rng(0), 3)
        vals = [c.random() for c in children]
        assert len(set(vals)) == 3

    def test_spawn_deterministic(self):
        v1 = [c.random() for c in spawn(make_rng(0), 2)]
        v2 = [c.random() for c in spawn(make_rng(0), 2)]
        assert v1 == v2

    def test_choice_without_replacement(self):
        got = choice_without_replacement(make_rng(0), range(10), 5)
        assert len(got) == len(set(got)) == 5

    def test_choice_too_many_raises(self):
        with pytest.raises(ValueError):
            choice_without_replacement(make_rng(0), [1, 2], 3)


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, sep, 2 rows

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456789]], floatfmt=".2f")
        assert "1.23" in out

    def test_speedup_rows_higher_better(self):
        rows = speedup_rows(["base"], [2.0], "ours", 3.0)
        assert rows[0][1] == pytest.approx(1.5)

    def test_speedup_rows_lower_better(self):
        rows = speedup_rows(
            ["base"], [2.0], "ours", 1.0, higher_is_better=False
        )
        assert rows[0][1] == pytest.approx(0.5)  # 50% reduction

    def test_speedup_rows_zero_baseline(self):
        rows = speedup_rows(["base"], [0.0], "ours", 1.0)
        assert np.isnan(rows[0][1])


class TestValidation:
    def test_require_positive_ok(self):
        assert require_positive("x", 1.0) == 1.0

    def test_require_positive_zero(self):
        with pytest.raises(ValueError, match="x"):
            require_positive("x", 0)

    def test_require_nonnegative(self):
        assert require_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            require_nonnegative("x", -1)

    def test_require_in_range_inclusive(self):
        assert require_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_require_in_range_exclusive(self):
        with pytest.raises(ValueError):
            require_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_require_type(self):
        assert require_type("x", 3, int) == 3
        with pytest.raises(TypeError):
            require_type("x", "s", int)

    def test_require_divides(self):
        require_divides("a", 4, "b", 12)
        with pytest.raises(ValueError):
            require_divides("a", 5, "b", 12)
