"""Cross-protocol properties of the functional INA implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switch import (
    SwitchDataplane,
    atp_allreduce,
    switchml_allreduce,
)


class TestProtocolEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        n_workers=st.integers(1, 5),
        n=st.integers(1, 400),
        seed=st.integers(0, 1000),
    )
    def test_switchml_and_atp_agree(self, n_workers, n, seed):
        """Synchronous and asynchronous aggregation must produce the
        same fixed-point result for the same inputs."""
        rng = np.random.default_rng(seed)
        arrs = [rng.uniform(-50, 50, size=n) for _ in range(n_workers)]
        a, _ = switchml_allreduce(
            SwitchDataplane(n_slots=8, slot_elements=53), arrs
        )
        b, _ = atp_allreduce(
            SwitchDataplane(n_slots=8, slot_elements=53), arrs
        )
        assert np.array_equal(a, b)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        slot_elems=st.integers(8, 128),
    )
    def test_result_independent_of_chunking(self, seed, slot_elems):
        """Chunk size (slot payload) must not change the aggregate."""
        rng = np.random.default_rng(seed)
        arrs = [rng.normal(size=333) for _ in range(3)]
        a, _ = switchml_allreduce(
            SwitchDataplane(n_slots=16, slot_elements=slot_elems), arrs
        )
        b, _ = switchml_allreduce(
            SwitchDataplane(n_slots=16, slot_elements=256), arrs
        )
        assert np.allclose(a, b)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_result_independent_of_worker_order(self, seed):
        """Fixed-point commutativity: permuting workers is bit-exact."""
        rng = np.random.default_rng(seed)
        arrs = [rng.normal(size=100) for _ in range(4)]
        a, _ = switchml_allreduce(
            SwitchDataplane(n_slots=8, slot_elements=32), arrs
        )
        b, _ = switchml_allreduce(
            SwitchDataplane(n_slots=8, slot_elements=32),
            list(reversed(arrs)),
        )
        assert np.array_equal(a, b)

    def test_dataplane_reusable_across_jobs(self):
        """One dataplane serves consecutive jobs without residue."""
        dp = SwitchDataplane(n_slots=4, slot_elements=16)
        x = [np.ones(40), 2 * np.ones(40)]
        out1, _ = switchml_allreduce(dp, x, job_id=0)
        out2, _ = switchml_allreduce(dp, x, job_id=1)
        assert np.allclose(out1, out2)
        assert dp.pending_chunks() == 0
        assert dp.free_slots == 4
