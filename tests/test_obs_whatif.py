"""What-if profiler (:mod:`repro.obs.whatif`).

Three load-bearing properties:

1. **No-op perturbations are exact** — an `EngineConfig` whose
   perturbation fields hold their defaults (or explicit neutral values)
   produces a byte-identical run, so plain runs never pay for the
   counterfactual machinery.
2. **The ladder is deterministic** — same system/trace/seed, same
   payload, bit for bit.
3. **The analytic estimator agrees with the counterfactual
   re-simulation** at the pinned operating points, within the pinned
   per-resource tolerances (the golden test; also enforced in CI via
   ``python -m repro whatif --validate``).
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.__main__ import WHATIF_SETTINGS, _build_whatif_deployment, main
from repro.baselines.systems import simulate_trace
from repro.obs import (
    DEFAULT_CATALOG,
    DEFAULT_TOLERANCE,
    Intervention,
    RunStats,
    WhatIfEstimate,
    WhatIfProfiler,
    WhatIfResult,
    render_ladder,
)
from repro.obs.whatif import ERROR_FLOOR_FRAC, TOLERANCES, tolerance_for
from repro.serving import EngineConfig


def deployment(topology="testbed", rate=None, duration=None, seed=7):
    args = SimpleNamespace(
        topology=topology, rate=rate, duration=duration, seed=seed
    )
    system, trace, _, _ = _build_whatif_deployment(args)
    return system, trace


@pytest.fixture(scope="module")
def profiler():
    """One short observed testbed baseline shared across cheap tests."""
    system, trace = deployment(rate=1.0, duration=20.0)
    p = WhatIfProfiler(system, trace)
    p.run_baseline()
    return p


def stats(p99_ttft=1.0, throughput=1.0):
    return RunStats(10, 0.5, p99_ttft, 0.01, 0.02, throughput)


class TestTolerances:
    def test_default_and_overrides(self):
        assert tolerance_for("link:nvlink") == DEFAULT_TOLERANCE
        assert tolerance_for("ina_slots") == DEFAULT_TOLERANCE
        for resource, tol in TOLERANCES.items():
            assert tolerance_for(resource) == tol
            assert tol > DEFAULT_TOLERANCE  # overrides only relax

    def test_rel_error_unvalidated_is_none(self):
        est = WhatIfEstimate(
            DEFAULT_CATALOG[0], stats(), stats(p99_ttft=0.9)
        )
        assert est.rel_error is None
        assert est.within_tolerance is None

    def test_rel_error_exact_agreement(self):
        est = WhatIfEstimate(
            DEFAULT_CATALOG[0],
            stats(),
            stats(p99_ttft=0.8),
            resim=stats(p99_ttft=0.8),
        )
        assert est.rel_error == 0.0
        assert est.within_tolerance is True

    def test_rel_error_floor_on_near_zero_deltas(self):
        """A tiny absolute disagreement on a ~zero-effect intervention
        is judged against the floor, not the ~zero resim delta."""
        base = stats(p99_ttft=1.0)
        nudge = ERROR_FLOOR_FRAC * 0.5  # half the floor
        est = WhatIfEstimate(
            DEFAULT_CATALOG[0],
            base,
            stats(p99_ttft=1.0 - nudge),
            resim=stats(p99_ttft=1.0),
        )
        # raw ratio would be nudge/0 = inf; floored it is 0.5
        assert est.rel_error == pytest.approx(0.5)
        assert est.within_tolerance is False  # 0.5 > 0.15

    def test_divergence_flags_result(self):
        good = WhatIfEstimate(
            DEFAULT_CATALOG[0],
            stats(),
            stats(p99_ttft=0.8),
            resim=stats(p99_ttft=0.8),
        )
        bad = WhatIfEstimate(
            DEFAULT_CATALOG[0],
            stats(),
            stats(p99_ttft=0.2),
            resim=stats(p99_ttft=0.9),
        )
        assert WhatIfResult(stats(), [good]).all_within_tolerance
        assert not WhatIfResult(stats(), [good, bad]).all_within_tolerance
        # unvalidated rows (within_tolerance None) never flag
        plain = WhatIfEstimate(
            DEFAULT_CATALOG[0], stats(), stats(p99_ttft=0.8)
        )
        assert WhatIfResult(stats(), [plain]).all_within_tolerance


class TestCatalog:
    def test_keys_unique_and_resources_known(self):
        keys = [iv.key for iv in DEFAULT_CATALOG]
        assert len(keys) == len(set(keys))
        for iv in DEFAULT_CATALOG:
            assert iv.factor > 1.0
            assert iv.resource.startswith("link:") or iv.resource in (
                "compute:prefill",
                "compute:decode",
                "kv_path",
                "ina_slots",
                "sched_tick",
            )

    def test_perturbed_config_covers_catalog(self, profiler):
        """Every catalog entry maps to a real EngineConfig field, and
        the mapping hits the field the resource names."""
        for iv in DEFAULT_CATALOG:
            cfg = profiler.perturbed_config(iv)
            assert not cfg.observer.enabled
            if iv.resource.startswith("link:"):
                cls = iv.resource.split(":", 1)[1]
                assert cfg.link_scale == ((cls, iv.factor),)
            elif iv.resource == "compute:prefill":
                assert cfg.prefill_compute_scale == iv.factor
            elif iv.resource == "compute:decode":
                assert cfg.decode_compute_scale == iv.factor
            elif iv.resource == "kv_path":
                assert cfg.kv_time_scale == iv.factor
            elif iv.resource == "ina_slots":
                from repro.comm.latency import DEFAULT_N_SLOTS

                assert cfg.n_slots == DEFAULT_N_SLOTS * iv.factor
            elif iv.resource == "sched_tick":
                assert cfg.controller_period == pytest.approx(
                    profiler.base_config.controller_period / iv.factor
                )

    def test_unknown_resource_rejected(self, profiler):
        with pytest.raises(ValueError, match="warp_drive"):
            profiler.perturbed_config(
                Intervention("w", "warp", "warp_drive", 2.0)
            )


class TestNoOpPerturbations:
    def test_neutral_config_byte_identical(self):
        """Explicit neutral perturbation values take the exact same
        code paths as the defaults — the acceptance criterion that
        plain runs remain byte-identical."""
        system, trace = deployment(rate=1.0, duration=20.0)
        plain = simulate_trace(
            system, trace, engine_config=EngineConfig()
        )
        neutral = simulate_trace(
            system,
            trace,
            engine_config=EngineConfig(
                link_scale=(("nvlink", 1.0), ("ethernet_access", 1.0)),
                prefill_compute_scale=1.0,
                decode_compute_scale=1.0,
                kv_time_scale=1.0,
                n_slots=None,
            ),
        )
        assert json.dumps(
            plain.summary(), sort_keys=True
        ) == json.dumps(neutral.summary(), sort_keys=True)


class TestAnalyticLadder:
    def test_baseline_matches_observed_run(self, profiler):
        assert profiler.baseline.n_requests > 0
        assert (
            profiler.baseline.n_requests
            == profiler.baseline_metrics.n_finished
        )

    def test_predictions_never_hurt(self, profiler):
        """The first-order model only removes time, never adds it."""
        for iv in DEFAULT_CATALOG:
            pred = profiler.predict(iv)
            assert (
                pred.p99_ttft_s
                <= profiler.baseline.p99_ttft_s + 1e-12
            ), iv.key
            assert (
                pred.throughput_rps
                >= profiler.baseline.throughput_rps - 1e-12
            ), iv.key

    def test_slot_and_tick_predict_zero_first_order(self, profiler):
        base = profiler.baseline
        for key in ("ina_slots_4x", "sched_tick_4x"):
            iv = next(i for i in DEFAULT_CATALOG if i.key == key)
            pred = profiler.predict(iv)
            # components telescope exactly, so the replayed stats match
            # the measured baseline to float rounding
            assert pred.p99_ttft_s == pytest.approx(
                base.p99_ttft_s, rel=1e-9
            ), key
            assert pred.p99_tpot_s == pytest.approx(
                base.p99_tpot_s, rel=1e-9
            ), key
            assert pred.throughput_rps == pytest.approx(
                base.throughput_rps, rel=1e-9
            ), key

    def test_ladder_sorted_by_p99_gain(self, profiler):
        result = profiler.ladder()
        gains = [row.d_p99_ttft_s for row in result.rows]
        assert gains == sorted(gains, reverse=True)
        assert not result.validated
        assert len(result.top(3)) == 3

    def test_ladder_payload_deterministic(self, profiler):
        """Fresh deployment, same seed — identical payload, bit for
        bit (the ``<run>-whatif.json`` reproducibility guarantee)."""
        system, trace = deployment(rate=1.0, duration=20.0)
        other = WhatIfProfiler(system, trace)
        meta = {"seed": 7}
        assert json.dumps(
            other.ladder().to_payload(meta), sort_keys=True
        ) == json.dumps(
            profiler.ladder().to_payload(meta), sort_keys=True
        )

    def test_render_ladder_shape(self, profiler):
        text = render_ladder(profiler.ladder(), top=3)
        lines = text.splitlines()
        assert "what-if bottleneck ladder" in lines[0]
        assert len(lines) == 4  # header + top-3, unvalidated: no footer
        assert lines[1].lstrip().startswith("1.")
        assert "Δp99 TTFT" in lines[1]


class TestGoldenValidation:
    """The acceptance golden: at the pinned operating points every
    catalog intervention's analytic Δp99 TTFT agrees with its
    counterfactual re-simulation within the pinned tolerance."""

    @pytest.mark.parametrize("topology", sorted(WHATIF_SETTINGS))
    def test_analytic_within_tolerance_of_resim(self, topology):
        system, trace = deployment(topology=topology)
        result = WhatIfProfiler(system, trace).ladder(validate=True)
        assert result.validated
        assert result.all_within_tolerance, render_ladder(result)
        # and the regime is interesting: something actionable on top
        assert result.rows[0].d_p99_ttft_s > 0
        assert result.rows[0].resim_d_p99_ttft_s > 0


class TestWhatIfCli:
    def test_whatif_writes_json_ladder(self, capsys, tmp_path):
        out = tmp_path / "wi.json"
        assert (
            main(
                [
                    "whatif",
                    "--duration",
                    "15",
                    "--top",
                    "3",
                    "--json",
                    str(out),
                ]
            )
            == 0
        )
        assert "bottleneck ladder" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["meta"]["topology"] == "testbed"
        assert payload["baseline"]["n_requests"] > 0
        assert len(payload["interventions"]) == len(DEFAULT_CATALOG)
        assert not payload["validated"]


class TestFromDirDegradation:
    """`report`/`explain --from-dir` must explain themselves and exit
    zero on missing or stale dumps — never traceback (satellite 1)."""

    def test_report_missing_dir(self, capsys, tmp_path):
        assert (
            main(
                [
                    "report",
                    "--from-dir",
                    str(tmp_path / "nope"),
                    "--out",
                    str(tmp_path / "r.html"),
                ]
            )
            == 0
        )
        assert "is not a directory" in capsys.readouterr().out

    def test_report_empty_dir(self, capsys, tmp_path):
        assert (
            main(
                [
                    "report",
                    "--from-dir",
                    str(tmp_path),
                    "--out",
                    str(tmp_path / "r.html"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no *-flight.jsonl" in out
        assert not (tmp_path / "r.html").exists()

    def test_explain_old_format_dump(self, capsys, tmp_path):
        """A pre-PR7 digest-only dump degrades with a pointer, not a
        KeyError."""
        (tmp_path / "run-attribution.json").write_text(
            json.dumps({"slowest": []})
        )
        assert main(["explain", "--from-dir", str(tmp_path)]) == 0
        assert (
            "no per-request timelines" in capsys.readouterr().out
        )

    def test_explain_corrupt_dump(self, capsys, tmp_path):
        (tmp_path / "run-attribution.json").write_text("{not json")
        assert main(["explain", "--from-dir", str(tmp_path)]) == 0
        assert "cannot read" in capsys.readouterr().out

    def test_report_round_trips_a_real_dump(self, capsys, tmp_path):
        """An observed run dumped to disk replays into a full report
        (flight timeline + attribution + what-if section) offline."""
        from repro import quick_testbed
        from repro.obs import (
            AttributionCollector,
            FlightRecorder,
            Observer,
        )

        collector = AttributionCollector()
        observer = Observer(
            recorder=FlightRecorder(), attribution=collector
        )
        _, metrics = quick_testbed(
            rate=1.0,
            duration=20.0,
            seed=0,
            engine_config=EngineConfig(observer=observer),
        )
        observer.recorder.write_jsonl(
            str(tmp_path / "run-flight.jsonl")
        )
        (tmp_path / "run-attribution.json").write_text(
            json.dumps(collector.to_payload())
        )
        (tmp_path / "run-summary.json").write_text(
            json.dumps(metrics.summary())
        )
        out = tmp_path / "replay.html"
        assert (
            main(
                [
                    "report",
                    "--from-dir",
                    str(tmp_path),
                    "--run",
                    "run",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert "wrote" in capsys.readouterr().out
        html = out.read_text()
        assert "Critical-path attribution" in html
        assert "What-if: counterfactual bottleneck ladder" in html

    def test_explain_round_trips_a_real_dump(self, capsys, tmp_path):
        from repro import quick_testbed
        from repro.obs import AttributionCollector, Observer

        collector = AttributionCollector()
        _, _ = quick_testbed(
            rate=1.0,
            duration=20.0,
            seed=0,
            engine_config=EngineConfig(
                observer=Observer(attribution=collector)
            ),
        )
        (tmp_path / "run-attribution.json").write_text(
            json.dumps(collector.to_payload())
        )
        assert (
            main(
                ["explain", "--from-dir", str(tmp_path), "--slowest", "3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "dominant:" in out
