"""Observer overhead guard: telemetry must stay near-free.

Benchmark-smoke regression test for the zero-overhead-when-disabled
design: an observer-enabled planner run must land within 10 % wall-clock
of the disabled run (plus a small absolute slack so sub-second timings
do not flake on noisy CI machines). The planner is the densest profiling
surface — every candidate crosses the candidates / estimation /
grouping / objective hooks.
"""

from __future__ import annotations

import time

from repro import SLA_TESTBED_CHATBOT, OPT_66B, CostModelBank, Observer
from repro.comm import CommContext, SchemeKind
from repro.core.planner import OfflinePlanner
from repro.llm import A100, V100, BatchSpec
from repro.network import build_testbed
from repro.obs import NULL_OBSERVER

#: Relative + absolute tolerance: 10 % per the acceptance criterion,
#: plus slack absorbing scheduler jitter on sub-second runs.
REL_TOLERANCE = 1.10
ABS_SLACK_S = 0.15
REPS = 3


def _plan_once(observer) -> float:
    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    ctx = CommContext.from_built(built, heterogeneous=True)
    planner = OfflinePlanner(
        ctx,
        OPT_66B,
        bank,
        SLA_TESTBED_CHATBOT,
        SchemeKind.HYBRID,
        observer=observer,
    )
    t0 = time.perf_counter()
    report = planner.plan(
        BatchSpec.uniform(8, 256, 220), arrival_rate=0.5
    )
    elapsed = time.perf_counter() - t0
    assert report.plan is not None
    return elapsed


def _best_of(reps: int, make_observer) -> float:
    """Min over repetitions — the standard noise-robust wall-clock
    estimator (a fresh observer per rep so traces do not accumulate)."""
    return min(_plan_once(make_observer()) for _ in range(reps))


def test_observer_overhead_within_budget():
    baseline = _best_of(REPS, lambda: NULL_OBSERVER)
    observed = _best_of(REPS, Observer)
    budget = baseline * REL_TOLERANCE + ABS_SLACK_S
    assert observed <= budget, (
        f"observer-enabled planner run took {observed:.3f}s, "
        f"budget {budget:.3f}s (baseline {baseline:.3f}s)"
    )
