"""Integration: the four systems end-to-end on the testbed.

These tests assert the paper's *qualitative* results at small scale:
HeroServe leads the baselines on latency under the cross-server
deployment, and the online scheduler actually routes traffic.
"""

import pytest

from repro.baselines import (
    ALL_SYSTEMS,
    DISTSERVE,
    DS_SWITCHML,
    HEROSERVE,
    SYSTEM_BY_NAME,
    build_system,
    make_rate_runner,
    simulate_trace,
)
from repro.core import SLA_TESTBED_CHATBOT
from repro.core.plan import ParallelConfig
from repro.llm import OPT_66B, A100, V100, CostModelBank
from repro.network import build_testbed
from repro.serving import EngineConfig
from repro.util.rng import make_rng
from repro.workloads import generate_sharegpt_trace

FORCED = ParallelConfig(8, 1, 8, 1)  # the paper's cross-server regime


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def bank():
    return CostModelBank(OPT_66B, {"A100": A100, "V100": V100})


@pytest.fixture(scope="module")
def systems(tb, bank):
    trace = generate_sharegpt_trace(1.0, 30, make_rng(0))
    fore = trace.representative_batch(8)
    return {
        spec.name: build_system(
            spec, tb, OPT_66B, bank, SLA_TESTBED_CHATBOT, fore,
            arrival_rate=1.0, forced_parallel=FORCED,
        )
        for spec in ALL_SYSTEMS
    }


@pytest.fixture(scope="module")
def results(systems):
    trace = generate_sharegpt_trace(1.0, 60, make_rng(42))
    return {
        name: simulate_trace(sys_, trace)
        for name, sys_ in systems.items()
    }


class TestSpecs:
    def test_registry(self):
        assert SYSTEM_BY_NAME["HeroServe"] is HEROSERVE
        assert len(ALL_SYSTEMS) == 4

    def test_only_heroserve_heterogeneous_online(self):
        for s in ALL_SYSTEMS:
            assert s.heterogeneous == (s.name == "HeroServe")
            assert s.online == (s.name == "HeroServe")


class TestPlans:
    def test_all_plans_built(self, systems):
        for name, sys_ in systems.items():
            assert sys_.plan.parallel == FORCED, name

    def test_pools_disjoint_across_phases(self, systems):
        for sys_ in systems.values():
            pre = set(sys_.plan.prefill.gpu_ids)
            dec = set(sys_.plan.decode.gpu_ids)
            assert not pre & dec

    def test_fresh_context_isolated(self, systems):
        s = systems["HeroServe"]
        c1, c2 = s.fresh_context(), s.fresh_context()
        c1.linkstate.register([0], 1e9)
        assert c2.linkstate.load()[0] == 0.0


class TestPaperOrdering:
    def test_heroserve_lowest_ttft(self, results):
        hero = results["HeroServe"].mean_ttft()
        for name in ("DistServe", "DS-ATP", "DS-SwitchML"):
            assert hero < results[name].mean_ttft(), name

    def test_heroserve_lowest_tpot(self, results):
        hero = results["HeroServe"].mean_tpot()
        for name in ("DistServe", "DS-ATP", "DS-SwitchML"):
            assert hero <= results[name].mean_tpot() * 1.02, name

    def test_ina_beats_ring_on_ttft(self, results):
        """Both INA baselines improve on plain ring (Section II-C)."""
        ring = results["DistServe"].mean_ttft()
        assert results["DS-SwitchML"].mean_ttft() < ring
        assert results["DS-ATP"].mean_ttft() < ring

    def test_attainment_ordering(self, results):
        assert (
            results["HeroServe"].attainment()
            >= results["DistServe"].attainment()
        )

    def test_all_complete(self, results):
        counts = {m.n_finished for m in results.values()}
        assert len(counts) == 1  # same trace, all completed


class TestOnlineScheduler:
    def test_controller_engaged(self, systems):
        """HeroServe's run must exercise the policy tables."""
        from repro.core import CentralController

        sys_ = systems["HeroServe"]
        ctx = sys_.fresh_context()
        controller = CentralController(ctx=ctx, scheme=sys_.spec.scheme)
        from repro.serving import ServingSimulator

        trace = generate_sharegpt_trace(1.0, 20, make_rng(1))
        sim = ServingSimulator(
            ctx=ctx, plan=sys_.plan, model=OPT_66B, bank=sys_.bank,
            sla=SLA_TESTBED_CHATBOT, trace=trace, controller=controller,
        )
        sim.run()
        assert controller.n_groups() >= 1
        assert controller.refreshes > 0
        sched = controller.scheduler_for(sys_.plan.prefill.stages[0])
        assert sched.table.selections.sum() > 0


class TestRateRunner:
    def test_runner_interface(self, systems):
        sys_ = systems["DistServe"]

        def trace_at(rate):
            return generate_sharegpt_trace(rate, 20, make_rng(5))

        run = make_rate_runner(
            sys_, trace_at, engine_config=EngineConfig(drain_time=120)
        )
        metrics, offered = run(0.5)
        assert offered > 0
        assert metrics.n_finished <= offered
