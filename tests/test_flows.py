"""Max-min fair flow allocation: feasibility, fairness, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.flows import (
    Flow,
    build_incidence,
    flow_completion_times,
    max_min_fair_rates,
)


def mk_flows(paths, demands=None):
    demands = demands or [float("inf")] * len(paths)
    return [
        Flow(flow_id=i, links=tuple(p), demand=d)
        for i, (p, d) in enumerate(zip(paths, demands))
    ]


class TestBasics:
    def test_single_flow_gets_capacity(self):
        flows = mk_flows([[0]])
        rates = max_min_fair_rates(flows, np.array([10.0]))
        assert rates[0] == pytest.approx(10.0)

    def test_two_flows_share_equally(self):
        flows = mk_flows([[0], [0]])
        rates = max_min_fair_rates(flows, np.array([10.0]))
        assert np.allclose(rates, [5.0, 5.0])

    def test_demand_cap_respected(self):
        flows = mk_flows([[0], [0]], demands=[2.0, float("inf")])
        rates = max_min_fair_rates(flows, np.array([10.0]))
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)

    def test_classic_parking_lot(self):
        """Long flow across both links, one short flow per link."""
        # link 0 and link 1 capacity 10; flow A uses [0,1], B uses [0], C [1]
        flows = mk_flows([[0, 1], [0], [1]])
        rates = max_min_fair_rates(flows, np.array([10.0, 10.0]))
        assert np.allclose(rates, [5.0, 5.0, 5.0])

    def test_bottleneck_isolation(self):
        """A flow on an empty link is not throttled by others."""
        flows = mk_flows([[0], [1], [1]])
        rates = max_min_fair_rates(flows, np.array([10.0, 4.0]))
        assert rates[0] == pytest.approx(10.0)
        assert np.allclose(rates[1:], [2.0, 2.0])

    def test_empty_flow_list(self):
        assert max_min_fair_rates([], np.array([1.0])).size == 0

    def test_flow_id_mismatch_raises(self):
        flows = [Flow(flow_id=1, links=(0,))]
        with pytest.raises(ValueError):
            max_min_fair_rates(flows, np.array([1.0]))

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Flow(flow_id=0, links=())

    def test_bad_link_id_raises(self):
        flows = mk_flows([[5]])
        with pytest.raises(ValueError):
            build_incidence(flows, 2)


class TestCompletionTimes:
    def test_sizes_over_rates(self):
        flows = mk_flows([[0], [0]])
        times = flow_completion_times(
            flows, np.array([10.0, 20.0]), np.array([10.0])
        )
        assert times[0] == pytest.approx(2.0)  # 10 bytes at 5 B/s
        assert times[1] == pytest.approx(4.0)

    def test_shape_mismatch_raises(self):
        flows = mk_flows([[0]])
        with pytest.raises(ValueError):
            flow_completion_times(flows, np.array([1.0, 2.0]), np.array([1.0]))


class TestMaxMinProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n_links=st.integers(1, 6),
        n_flows=st.integers(1, 12),
        seed=st.integers(0, 10_000),
    )
    def test_feasible_and_pareto(self, n_links, n_flows, seed):
        """No link oversubscribed; every flow crosses a saturated link or
        meets its demand (max-min optimality certificate)."""
        rng = np.random.default_rng(seed)
        caps = rng.uniform(1.0, 100.0, size=n_links)
        paths = []
        for _ in range(n_flows):
            k = int(rng.integers(1, n_links + 1))
            paths.append(
                list(rng.choice(n_links, size=k, replace=False))
            )
        flows = mk_flows(paths)
        rates = max_min_fair_rates(flows, caps)
        # Feasibility.
        load = np.zeros(n_links)
        for f, r in zip(flows, rates):
            for lid in f.links:
                load[lid] += r
        assert np.all(load <= caps * (1 + 1e-6))
        # Optimality: each flow is blocked by some saturated link.
        sat = load >= caps * (1 - 1e-6)
        for f in flows:
            assert any(sat[lid] for lid in f.links)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_equal_paths_equal_rates(self, seed):
        """Flows with identical paths must receive identical rates."""
        rng = np.random.default_rng(seed)
        n_links = 4
        caps = rng.uniform(1.0, 50.0, size=n_links)
        path = list(rng.choice(n_links, size=2, replace=False))
        flows = mk_flows([path, path, path])
        rates = max_min_fair_rates(flows, caps)
        assert np.allclose(rates, rates[0])
