"""SwitchML / ATP protocols: functional exactness and timing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switch import (
    SwitchDataplane,
    UpdatePacket,
    atp_allreduce,
    atp_time,
    ina_effective_throughput,
    quantize,
    switchml_allreduce,
    switchml_time,
)


class TestSwitchMLFunctional:
    def test_exact_sum(self):
        rng = np.random.default_rng(1)
        arrs = [rng.normal(size=500) for _ in range(4)]
        dp = SwitchDataplane(n_slots=8, slot_elements=64)
        out, stats = switchml_allreduce(dp, arrs)
        assert np.allclose(out, sum(arrs), atol=1e-6)
        assert stats.fallback_chunks == 0

    def test_window_smaller_than_chunks(self):
        rng = np.random.default_rng(2)
        arrs = [rng.normal(size=1000) for _ in range(3)]
        dp = SwitchDataplane(n_slots=2, slot_elements=32)
        out, stats = switchml_allreduce(dp, arrs, window=2)
        assert np.allclose(out, sum(arrs), atol=1e-6)
        assert stats.n_chunks == int(np.ceil(1000 / 32))

    def test_packet_count(self):
        arrs = [np.ones(64) for _ in range(4)]
        dp = SwitchDataplane(n_slots=4, slot_elements=32)
        _, stats = switchml_allreduce(dp, arrs)
        assert stats.packets_sent == stats.n_chunks * 4

    def test_single_worker(self):
        dp = SwitchDataplane(n_slots=4, slot_elements=32)
        out, _ = switchml_allreduce(dp, [np.arange(10.0)])
        assert np.allclose(out, np.arange(10.0))

    def test_mismatched_lengths_rejected(self):
        dp = SwitchDataplane()
        with pytest.raises(ValueError):
            switchml_allreduce(dp, [np.ones(4), np.ones(5)])

    def test_empty_worker_list_rejected(self):
        with pytest.raises(ValueError):
            switchml_allreduce(SwitchDataplane(), [])

    @settings(max_examples=20, deadline=None)
    @given(
        n_workers=st.integers(1, 6),
        n=st.integers(1, 300),
        seed=st.integers(0, 1000),
    )
    def test_exactness_property(self, n_workers, n, seed):
        rng = np.random.default_rng(seed)
        arrs = [rng.uniform(-10, 10, size=n) for _ in range(n_workers)]
        dp = SwitchDataplane(n_slots=4, slot_elements=37)
        out, _ = switchml_allreduce(dp, arrs)
        assert np.allclose(out, np.sum(arrs, axis=0), atol=1e-5)


class TestATPFunctional:
    def test_exact_sum_no_contention(self):
        rng = np.random.default_rng(3)
        arrs = [rng.normal(size=400) for _ in range(4)]
        dp = SwitchDataplane(n_slots=64, slot_elements=64)
        out, stats = atp_allreduce(dp, arrs)
        assert np.allclose(out, sum(arrs), atol=1e-6)
        assert stats.fallback_chunks == 0

    def test_fallback_under_slot_contention(self):
        """Slots held by another tenant force end-host fallback — and the
        result must still be exact."""
        dp = SwitchDataplane(n_slots=2, slot_elements=32)
        # Another job occupies both slots with incomplete chunks.
        blocker = quantize(np.ones(32))
        dp.process_update(UpdatePacket(99, 0, 0, blocker), 2)
        dp.process_update(UpdatePacket(99, 1, 0, blocker), 2)
        rng = np.random.default_rng(4)
        arrs = [rng.normal(size=128) for _ in range(3)]
        out, stats = atp_allreduce(dp, arrs, job_id=1)
        assert stats.fallback_chunks == stats.n_chunks  # all fell back
        assert np.allclose(out, sum(arrs), atol=1e-6)

    def test_stats_add_up(self):
        dp = SwitchDataplane(n_slots=64, slot_elements=64)
        arrs = [np.ones(256) for _ in range(2)]
        _, stats = atp_allreduce(dp, arrs)
        assert stats.switch_chunks + stats.fallback_chunks == stats.n_chunks


class TestTimingModels:
    def test_switchml_link_bound(self):
        """Large window: goodput equals the slowest link."""
        t = switchml_time(
            1e8, np.array([12.5e9, 10e9]), n_slots=10_000,
            slot_payload_bytes=1024,
        )
        assert 1e8 / t == pytest.approx(10e9, rel=0.01)

    def test_switchml_window_bound(self):
        """Tiny window: goodput equals slots * payload / RTT."""
        t = switchml_time(
            1e8, np.array([12.5e9]), n_slots=8, slot_payload_bytes=1024,
            rtt=8e-6,
        )
        expected = 8 * 1024 / 8e-6
        assert 1e8 / t == pytest.approx(expected, rel=0.01)

    def test_switchml_zero_message(self):
        assert switchml_time(0, np.array([1e9]), 8, 1024) == 0.0

    def test_switchml_monotone_in_size(self):
        bw = np.array([12.5e9])
        t1 = switchml_time(1e6, bw, 128, 1024)
        t2 = switchml_time(2e6, bw, 128, 1024)
        assert t2 > t1

    def test_atp_no_contention_close_to_link(self):
        t = atp_time(
            1e8, np.array([12.5e9]), n_slots=1024,
            slot_payload_bytes=1024, contention=0.0,
        )
        assert 1e8 / t == pytest.approx(12.5e9, rel=0.02)

    def test_atp_degrades_with_contention(self):
        kw = dict(
            worker_bandwidths=np.array([12.5e9]),
            n_slots=128,
            slot_payload_bytes=1024,
        )
        t0 = atp_time(1e8, contention=0.0, **kw)
        t9 = atp_time(1e8, contention=0.9, **kw)
        assert t9 > t0 * 1.3  # fallback penalty visible

    def test_atp_contention_bounds(self):
        with pytest.raises(ValueError):
            atp_time(1.0, np.array([1e9]), 8, 1024, contention=1.5)

    def test_bad_bandwidths_rejected(self):
        with pytest.raises(ValueError):
            switchml_time(1.0, np.array([]), 8, 1024)
        with pytest.raises(ValueError):
            atp_time(1.0, np.array([-1.0]), 8, 1024)

    def test_effective_throughput(self):
        assert ina_effective_throughput(100.0, 2.0) == 50.0
        with pytest.raises(ValueError):
            ina_effective_throughput(1.0, 0.0)


class TestDegradedSwitch:
    """Exhaustion stalls and crashed switches degrade to host-side sums."""

    def test_exhausted_pool_falls_back_not_raises(self):
        rng = np.random.default_rng(3)
        arrs = [rng.normal(size=256) for _ in range(4)]
        dp = SwitchDataplane(n_slots=4, slot_elements=32)
        assert dp.seize_slots(4) == 4  # storm holds the whole pool
        out, stats = switchml_allreduce(dp, arrs)
        assert np.allclose(out, sum(arrs), atol=1e-6)
        assert stats.fallback_chunks == stats.n_chunks
        assert stats.stalled_chunks > 0

    def test_partial_pool_still_uses_switch(self):
        rng = np.random.default_rng(4)
        arrs = [rng.normal(size=256) for _ in range(4)]
        dp = SwitchDataplane(n_slots=4, slot_elements=32)
        dp.seize_slots(3)  # one slot left: lock-step still drains
        out, stats = switchml_allreduce(dp, arrs)
        assert np.allclose(out, sum(arrs), atol=1e-6)
        assert stats.fallback_chunks == 0

    def test_failed_switch_host_sums_everything(self):
        rng = np.random.default_rng(5)
        arrs = [rng.normal(size=256) for _ in range(4)]
        dp = SwitchDataplane(n_slots=8, slot_elements=32)
        dp.fail()
        out, stats = switchml_allreduce(dp, arrs)
        assert np.allclose(out, sum(arrs), atol=1e-6)
        assert stats.packets_sent == 0
        assert stats.switch_chunks == 0
        assert stats.fallback_chunks == stats.n_chunks

    def test_atp_failed_switch_host_sums(self):
        rng = np.random.default_rng(6)
        arrs = [rng.normal(size=128) for _ in range(3)]
        dp = SwitchDataplane(n_slots=8, slot_elements=32)
        dp.fail()
        out, stats = atp_allreduce(dp, arrs)
        assert np.allclose(out, sum(arrs), atol=1e-6)
        assert stats.fallback_chunks == stats.n_chunks

    def test_stats_unchanged_on_healthy_pool(self):
        arrs = [np.ones(64) for _ in range(4)]
        dp = SwitchDataplane(n_slots=4, slot_elements=32)
        _, stats = switchml_allreduce(dp, arrs)
        assert stats.stalled_chunks == 0
        assert stats.packets_sent == stats.n_chunks * 4
