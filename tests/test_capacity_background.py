"""Capacity search (max rate under SLA) and background traffic."""

import numpy as np
import pytest

from repro.core import SLA_TESTBED_CHATBOT
from repro.network import LinkLoadTracker, build_testbed
from repro.serving import (
    BackgroundTraffic,
    BackgroundTrafficConfig,
    RatePoint,
    ServingMetrics,
    find_max_rate,
    rate_sweep,
)
from repro.serving.request import RequestState
from repro.sim import EventQueue
from repro.workloads import TraceRequest


def synthetic_runner(capacity: float):
    """A fake system: attainment is 1 below `capacity`, 0 above."""

    def run(rate: float):
        m = ServingMetrics(sla=SLA_TESTBED_CHATBOT)
        n = 50
        for i in range(n):
            r = RequestState(TraceRequest(i, float(i), 10, 11))
            r.first_token_time = r.arrival_time + (
                0.1 if rate <= capacity else 10.0
            )
            r.finish_time = r.first_token_time + 1.0
            r.phase = r.phase
            m.record_finish(r)
        return m, n

    return run


class TestFindMaxRate:
    def test_bisection_converges(self):
        run = synthetic_runner(capacity=2.0)
        best, probes = find_max_rate(run, lo=0.5, hi=4.0, iterations=10)
        assert best == pytest.approx(2.0, abs=0.02)
        assert len(probes) >= 3

    def test_lo_fails_returns_zero(self):
        run = synthetic_runner(capacity=0.1)
        best, _ = find_max_rate(run, lo=0.5, hi=4.0)
        assert best == 0.0

    def test_hi_passes_returns_hi(self):
        run = synthetic_runner(capacity=100.0)
        best, _ = find_max_rate(run, lo=0.5, hi=4.0)
        assert best == 4.0

    def test_bad_bracket(self):
        with pytest.raises(ValueError):
            find_max_rate(synthetic_runner(1.0), lo=2.0, hi=1.0)

    def test_rate_sweep(self):
        run = synthetic_runner(capacity=2.0)
        pts = rate_sweep(run, [1.0, 3.0])
        assert pts[0].attainment == 1.0
        assert pts[1].attainment == 0.0

    def test_completion_guard(self):
        """A run that finishes too few requests cannot pass."""

        def run(rate):
            m = ServingMetrics(sla=SLA_TESTBED_CHATBOT)
            r = RequestState(TraceRequest(0, 0.0, 10, 11))
            r.first_token_time = 0.1
            r.finish_time = 1.0
            m.record_finish(r)
            return m, 100  # 1 of 100 finished

        best, _ = find_max_rate(run, lo=0.5, hi=1.0)
        assert best == 0.0

    def test_rate_point_completion(self):
        pt = RatePoint(1.0, 1.0, 0.1, 0.01, finished=80, offered=100)
        assert pt.completion == pytest.approx(0.8)


class TestBackgroundTraffic:
    def test_bursts_register_and_release(self):
        built = build_testbed()
        ls = LinkLoadTracker(built.topology)
        q = EventQueue()
        bg = BackgroundTraffic(
            built.topology, ls, q,
            BackgroundTrafficConfig(mean_gap=0.1, mean_duration=0.05),
            seed=0,
        )
        bg.start(horizon=10.0)
        q.run()
        assert bg.bursts_started > 10
        assert np.allclose(ls.load(), 0.0)  # everything released

    def test_load_present_during_run(self):
        built = build_testbed()
        ls = LinkLoadTracker(built.topology)
        q = EventQueue()
        bg = BackgroundTraffic(
            built.topology, ls, q,
            BackgroundTrafficConfig(
                mean_gap=0.01, mean_duration=1.0, intensity=0.5
            ),
            seed=1,
        )
        bg.start(horizon=5.0)
        q.run(until=2.0)
        assert ls.load().max() > 0

    def test_intensity_validation(self):
        built = build_testbed()
        ls = LinkLoadTracker(built.topology)
        with pytest.raises(ValueError):
            BackgroundTraffic(
                built.topology, ls, EventQueue(),
                BackgroundTrafficConfig(intensity=1.5),
            )

    def test_requires_ethernet(self):
        from repro.network import LinkKind, Topology
        from repro.util import units

        t = Topology()
        a = t.add_gpu("a", 0, units.gib(1))
        b = t.add_gpu("b", 0, units.gib(1))
        t.add_link(a, b, LinkKind.NVLINK, 1e9)
        with pytest.raises(ValueError, match="Ethernet"):
            BackgroundTraffic(t, LinkLoadTracker(t), EventQueue())
