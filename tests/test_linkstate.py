"""Link-load tracker: registration, availability floor, EWMA polling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import LinkLoadTracker, build_testbed
from repro.network.linkstate import MIN_AVAILABLE_FRACTION


@pytest.fixture
def tracker():
    return LinkLoadTracker(build_testbed().topology)


class TestRegistration:
    def test_register_reduces_available(self, tracker):
        before = tracker.available()[0]
        tracker.register([0], 1e9)
        assert tracker.available()[0] == pytest.approx(before - 1e9)

    def test_release_restores(self, tracker):
        before = tracker.available().copy()
        h = tracker.register([0, 2, 4], 5e8)
        tracker.release(h)
        assert np.allclose(tracker.available(), before)

    def test_additive_loads(self, tracker):
        tracker.register([0], 1e9)
        tracker.register([0], 2e9)
        assert tracker.load()[0] == pytest.approx(3e9)

    def test_duplicate_links_in_one_registration(self, tracker):
        tracker.register([0, 0], 1e9)
        assert tracker.load()[0] == pytest.approx(2e9)

    def test_release_unknown_handle_raises(self, tracker):
        with pytest.raises(KeyError):
            tracker.release(999)

    def test_negative_rate_rejected(self, tracker):
        with pytest.raises(ValueError):
            tracker.register([0], -1.0)

    def test_bad_link_rejected(self, tracker):
        with pytest.raises(ValueError):
            tracker.register([10**6], 1.0)

    def test_active_registrations(self, tracker):
        h = tracker.register([0], 1.0)
        assert tracker.active_registrations() == 1
        tracker.release(h)
        assert tracker.active_registrations() == 0


class TestAvailability:
    def test_floor_never_zero(self, tracker):
        cap = tracker.capacity[0]
        tracker.register([0], cap * 10)  # oversubscribe wildly
        avail = tracker.available()[0]
        assert avail == pytest.approx(MIN_AVAILABLE_FRACTION * cap)

    def test_utilization_can_exceed_one(self, tracker):
        cap = tracker.capacity[0]
        tracker.register([0], 2 * cap)
        assert tracker.utilization()[0] == pytest.approx(2.0)

    def test_path_bottleneck(self, tracker):
        tracker.register([0], tracker.capacity[0] * 0.5)
        b = tracker.path_bottleneck([0, 2])
        assert b == pytest.approx(
            min(tracker.available()[0], tracker.available()[2])
        )

    def test_path_bottleneck_empty(self, tracker):
        assert tracker.path_bottleneck([]) == float("inf")

    def test_path_max_utilization(self, tracker):
        cap = tracker.capacity
        tracker.register([0], 0.5 * cap[0])
        tracker.register([2], 0.25 * cap[2])
        assert tracker.path_max_utilization([0, 2]) == pytest.approx(0.5)

    def test_path_max_utilization_empty(self, tracker):
        assert tracker.path_max_utilization([]) == 0.0


class TestPolling:
    def test_ewma_converges_to_constant_load(self, tracker):
        cap = tracker.capacity[0]
        tracker.register([0], 0.4 * cap)
        for _ in range(50):
            tracker.poll()
        assert tracker.ewma_utilization()[0] == pytest.approx(0.4, abs=1e-3)

    def test_ewma_starts_at_zero(self, tracker):
        assert np.all(tracker.ewma_utilization() == 0.0)

    def test_reset(self, tracker):
        tracker.register([0], 1e9)
        tracker.poll()
        tracker.reset()
        assert np.all(tracker.load() == 0.0)
        assert np.all(tracker.ewma_utilization() == 0.0)
        assert tracker.active_registrations() == 0

    def test_bad_alpha_rejected(self):
        topo = build_testbed().topology
        with pytest.raises(ValueError):
            LinkLoadTracker(topo, ewma_alpha=0.0)


class TestRegisterReleaseProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.lists(st.integers(0, 20), min_size=1, max_size=5),
                st.floats(0.0, 1e9),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_all_released_returns_to_zero(self, ops):
        """Any register/release sequence fully undone leaves zero load."""
        tracker = LinkLoadTracker(build_testbed().topology)
        handles = [tracker.register(links, rate) for links, rate in ops]
        for h in handles:
            tracker.release(h)
        assert np.allclose(tracker.load(), 0.0, atol=1e-3)


class TestDoubleRelease:
    def test_strict_double_release_raises_descriptive(self, tracker):
        h = tracker.register([0], 1e9)
        tracker.release(h)
        with pytest.raises(KeyError, match="already released"):
            tracker.release(h)

    def test_tolerant_double_release_counted(self, tracker):
        h = tracker.register([0], 1e9)
        tracker.release(h)
        tracker.release(h, strict=False)
        tracker.release(h, strict=False)
        assert tracker.double_releases == 2
        assert np.allclose(tracker.load(), 0.0)

    def test_release_after_reset(self, tracker):
        h = tracker.register([0], 1e9)
        tracker.reset()
        with pytest.raises(KeyError, match="reset"):
            tracker.release(h)
        tracker.release(h, strict=False)
        assert tracker.double_releases == 1


class TestLinkDegradation:
    def test_factor_scales_capacity(self, tracker):
        base = tracker.base_capacity[3]
        tracker.set_link_factor(3, 0.5)
        assert tracker.capacity[3] == pytest.approx(0.5 * base)
        assert tracker.degraded_links() == {3: 0.5}
        # availability shrinks with the capacity
        assert tracker.available()[3] <= 0.5 * base

    def test_restore_removes_degradation(self, tracker):
        tracker.set_link_factor(3, 0.25)
        tracker.set_link_factor(3, 1.0)
        assert tracker.capacity[3] == pytest.approx(tracker.base_capacity[3])
        assert tracker.degraded_links() == {}

    def test_reset_clears_degradation(self, tracker):
        tracker.set_link_factor(3, 0.25)
        tracker.reset()
        assert tracker.degraded_links() == {}
        assert np.allclose(tracker.capacity, tracker.base_capacity)

    def test_bad_factor_rejected(self, tracker):
        with pytest.raises(ValueError):
            tracker.set_link_factor(3, 0.0)
        with pytest.raises(ValueError):
            tracker.set_link_factor(3, -1.0)

    def test_bad_link_rejected(self, tracker):
        with pytest.raises(ValueError):
            tracker.set_link_factor(10**6, 0.5)
