"""Remaining small-surface coverage: arrivals helpers, netestimate
contention passthrough, sim exports."""

import pytest

from repro.comm import CommContext, SchemeKind
from repro.core import estimate_network_latency
from repro.llm import OPT_66B
from repro.network import build_testbed
from repro.util.rng import make_rng
from repro.workloads import effective_rate, poisson_arrivals


class TestEffectiveRate:
    def test_matches_poisson(self):
        times = poisson_arrivals(4.0, 500.0, make_rng(0))
        assert effective_rate(times, 500.0) == pytest.approx(4.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_rate([], 0.0)


class TestNetEstimateContention:
    def test_contention_reaches_atp_model(self):
        """estimate_network_latency must forward contention to the
        per-group ATP pricing: high contention inflates T_n."""
        built = build_testbed()
        ctx = CommContext.from_built(built, heterogeneous=False)
        gpus = built.topology.gpu_ids()[:8]
        kw = dict(
            p_tens=8, p_pipe=1, model=OPT_66B, tokens=2048,
            scheme=SchemeKind.INA_ASYNC, rng=make_rng(0), perturb=False,
        )
        t0 = estimate_network_latency(ctx, gpus, contention=0.0, **kw)
        t1 = estimate_network_latency(ctx, gpus, contention=0.95, **kw)
        assert t1.t_network >= t0.t_network

    def test_perturb_flag_respected(self):
        built = build_testbed()
        ctx = CommContext.from_built(built, heterogeneous=False)
        gpus = built.topology.gpu_ids()
        est = estimate_network_latency(
            ctx, gpus, 4, 2, OPT_66B, tokens=256,
            scheme=SchemeKind.RING, rng=make_rng(1),
            perturb=False,
        )
        assert len(est.stages) == 2


class TestSimExports:
    def test_module_surface(self):
        import repro.sim as sim

        assert sim.__all__ == ["Event", "EventQueue"]
        q = sim.EventQueue()
        ev = q.schedule(1.0, lambda: None, tag="t")
        assert isinstance(ev, sim.Event)
        assert "pending" in repr(ev)
        ev.cancel()
        assert "cancelled" in repr(ev)
