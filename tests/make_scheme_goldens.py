"""Regenerate the registry-parity golden file.

``tests/data/golden_scheme_parity.json`` pins the pre-refactor behaviour
of the four classic schemes (ring / ina_sync / ina_async / hybrid): the
Eq. 7 group-step estimates for representative groups and the full
planner output (``repr(Plan)`` hashes) across seeds 0/7/13 on the
``testbed`` and ``2tracks`` topologies. The registry refactor
(``repro.comm.scheme``) must keep every value byte-identical — run this
script only when an *intentional* physics change lands, and explain the
regeneration in the commit message.

Usage::

    PYTHONPATH=src python tests/make_scheme_goldens.py
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.comm import CommContext, SchemeKind
from repro.comm.latency import estimate_group_step, price_group_step
from repro.core import SLA_TESTBED_CHATBOT
from repro.core.planner import OfflinePlanner, PlannerConfig
from repro.llm import OPT_66B, A100, V100, BatchSpec, CostModelBank
from repro.network import build_testbed, build_xtracks_cluster

OUT = os.path.join(os.path.dirname(__file__), "data", "golden_scheme_parity.json")

SEEDS = (0, 7, 13)
SCHEMES = ("ring", "ina_sync", "ina_async", "hybrid")
#: payloads spanning the latency- and bandwidth-dominated regimes
PAYLOADS = (65_536.0, 8_388_608.0)


def _topologies():
    return {
        "testbed": build_testbed(),
        "2tracks": build_xtracks_cluster(2, n_units=1),
    }


def _groups(built) -> dict[str, list[int]]:
    """Deterministic representative groups: cross-server, one-server,
    two-GPU, and a single-GPU degenerate group."""
    gpus = built.topology.gpu_ids()
    first_server = built.server_gpus[sorted(built.server_gpus)[0]]
    return {
        "cross8": list(gpus[:8]),
        "server0": list(first_server),
        "pair": [gpus[0], gpus[-1]],
        "solo": [gpus[0]],
    }


def _estimates(built) -> dict:
    out: dict = {}
    for scheme_name in SCHEMES:
        scheme = SchemeKind(scheme_name)
        hetero = scheme == SchemeKind.HYBRID
        ctx = CommContext.from_built(built, heterogeneous=hetero)
        per_scheme: dict = {}
        for gname, gpus in _groups(built).items():
            for data in PAYLOADS:
                est = estimate_group_step(ctx, gpus, data, scheme)
                forced = price_group_step(
                    ctx, gpus, scheme, est.mode, est.ina_switch, data
                )
                per_scheme[f"{gname}@{data:.0f}"] = {
                    "mode": est.mode,
                    "ina_switch": est.ina_switch,
                    "step_time": repr(est.step_time),
                    "links_sha": hashlib.sha256(
                        repr(est.links).encode()
                    ).hexdigest()[:16],
                    "forced_time": repr(forced),
                }
        out[scheme_name] = per_scheme
    return out


def _plans(built) -> dict:
    out: dict = {}
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    batch = BatchSpec.uniform(8, 256, 220)
    for scheme_name in SCHEMES:
        scheme = SchemeKind(scheme_name)
        hetero = scheme == SchemeKind.HYBRID
        ctx = CommContext.from_built(built, heterogeneous=hetero)
        for seed in SEEDS:
            planner = OfflinePlanner(
                ctx,
                OPT_66B,
                bank,
                SLA_TESTBED_CHATBOT,
                scheme,
                config=PlannerConfig(seed=seed, max_candi=6),
            )
            report = planner.plan(batch, arrival_rate=0.5)
            plan = report.plan
            key = f"{scheme_name}/seed{seed}"
            if plan is None:
                out[key] = {"plan": None}
                continue
            out[key] = {
                "repr_sha": hashlib.sha256(
                    repr(plan).encode()
                ).hexdigest(),
                "t_prefill": repr(plan.t_prefill),
                "t_decode": repr(plan.t_decode),
                "scalability": repr(plan.scalability),
                "t_network_prefill": repr(plan.prefill.t_network),
                "t_network_decode": repr(plan.decode.t_network),
            }
    return out


def main() -> None:
    golden: dict = {"topologies": {}}
    for name, built in _topologies().items():
        golden["topologies"][name] = {
            "estimates": _estimates(built),
            "plans": _plans(built),
        }
    os.makedirs(os.path.dirname(OUT), exist_ok=True)
    with open(OUT, "w") as fh:
        json.dump(golden, fh, indent=1, sort_keys=True)
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
