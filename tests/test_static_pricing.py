"""Static policy pricing: executing plan-time decisions at live state.

``price_group_step`` is how static systems (the baselines, or HeroServe
with the online scheduler ablated) run: the mode/switch chosen by the
offline plan is fixed; only the physics (live link bandwidths) varies.
These tests pin its consistency with the adaptive estimator and its
response to congestion.
"""

import pytest

from repro.comm import (
    CommContext,
    SchemeKind,
    estimate_group_step,
    hybrid_forced_time,
    price_group_step,
    ring_allreduce_time,
    select_ina_switch,
)
from repro.network import LinkLoadTracker, build_testbed


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def homo(tb):
    return CommContext.from_built(tb, heterogeneous=False)


@pytest.fixture(scope="module")
def het(tb):
    return CommContext.from_built(tb, heterogeneous=True)


def live(tb, base):
    return CommContext(
        built=tb,
        route_table=base.route_table,
        linkstate=LinkLoadTracker(tb.topology),
        heterogeneous=base.heterogeneous,
    )


class TestConsistency:
    """On an idle network, pricing the estimator's own choice must
    reproduce the estimator's time."""

    @pytest.mark.parametrize(
        "scheme",
        [SchemeKind.RING, SchemeKind.INA_SYNC, SchemeKind.INA_ASYNC],
    )
    def test_homogeneous_schemes(self, homo, tb, scheme):
        g = tb.topology.gpu_ids()[:8]
        d = 8e6
        est = estimate_group_step(homo, g, d, scheme)
        t = price_group_step(
            homo, g, scheme, est.mode, est.ina_switch, d
        )
        assert t == pytest.approx(est.step_time, rel=1e-6)

    def test_hybrid_scheme(self, het, tb):
        g = tb.topology.gpu_ids()[:8]
        d = 8e6
        est = estimate_group_step(het, g, d, SchemeKind.HYBRID)
        t = price_group_step(
            het, g, SchemeKind.HYBRID, est.mode, est.ina_switch, d
        )
        assert t == pytest.approx(est.step_time, rel=1e-6)

    def test_trivial_cases(self, homo, tb):
        g1 = tb.topology.gpu_ids()[:1]
        assert price_group_step(
            homo, g1, SchemeKind.RING, "ring", None, 1e6
        ) == 0.0
        g = tb.topology.gpu_ids()[:4]
        assert price_group_step(
            homo, g, SchemeKind.RING, "ring", None, 0.0
        ) == 0.0

    def test_ina_without_switch_rejected(self, homo, tb):
        g = tb.topology.gpu_ids()[:8]
        with pytest.raises(ValueError, match="switch"):
            price_group_step(
                homo, g, SchemeKind.INA_SYNC, "ina", None, 1e6
            )


class TestStaticUnderCongestion:
    def test_committed_route_pays_for_congestion(self, tb, homo):
        """A static INA policy cannot flee its congested switch."""
        ctx = live(tb, homo)
        g = tb.topology.gpu_ids()[:8]
        sw = select_ina_switch(ctx, g)
        d = 8e6
        t0 = price_group_step(ctx, g, SchemeKind.INA_SYNC, "ina", sw, d)
        # Saturate every link adjacent to the committed switch.
        links = [
            lid
            for lid in range(tb.topology.n_links)
            if sw in (tb.topology.links[lid].src, tb.topology.links[lid].dst)
        ]
        ctx.linkstate.register(links, 0.9 * 12.5e9)
        t1 = price_group_step(ctx, g, SchemeKind.INA_SYNC, "ina", sw, d)
        assert t1 > 2 * t0

    def test_adaptive_estimator_escapes(self, tb, homo):
        """Eq. 7's re-selection escapes to ring when the committed INA
        resource degrades (here: a starved slot window) — the contrast
        that motivates comparing static vs adaptive execution."""
        g = tb.topology.gpu_ids()[:8]
        d = 8e6
        starved = dict(n_slots=1, slot_payload=64)
        static = price_group_step(
            homo, g, SchemeKind.INA_SYNC, "ina",
            select_ina_switch(homo, g), d, **starved,
        )
        adaptive = estimate_group_step(
            homo, g, d, SchemeKind.INA_SYNC, **starved
        )
        assert adaptive.mode == "ring"
        assert adaptive.step_time < static


class TestHybridForced:
    def test_forced_ina_matches_components(self, het, tb):
        g = tb.topology.gpu_ids()[:8]
        sw = select_ina_switch(het, g)
        d = 4e6
        t = hybrid_forced_time(het, g, d, "ina", switch=sw)
        assert t > 0

    def test_forced_ring_differs_from_plain_ring(self, het, tb):
        """Leader ring moves the full payload between 2 leaders; plain
        ring shards across 8 members — different quantities."""
        g = tb.topology.gpu_ids()[:8]
        d = 16e6
        t_leader = hybrid_forced_time(het, g, d, "ring")
        t_plain = ring_allreduce_time(het, g, d)
        assert t_leader != pytest.approx(t_plain, rel=1e-3)

    def test_single_server_none(self, het, tb):
        g = tb.server_gpus[0]
        t = hybrid_forced_time(het, g, 1e6, "none")
        assert t == pytest.approx(ring_allreduce_time(het, g, 1e6))

    def test_unknown_mode_rejected(self, het, tb):
        g = tb.topology.gpu_ids()[:8]
        with pytest.raises(ValueError, match="ethernet_mode"):
            hybrid_forced_time(het, g, 1e6, "teleport")

    def test_trivial(self, het, tb):
        assert hybrid_forced_time(
            het, tb.topology.gpu_ids()[:1], 1e6, "ina"
        ) == 0.0
