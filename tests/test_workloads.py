"""Workload generators: arrivals, traces, length statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import make_rng
from repro.workloads import (
    Trace,
    TraceRequest,
    bursty_arrivals,
    generate_longbench_trace,
    generate_sharegpt_trace,
    poisson_arrivals,
)


class TestArrivals:
    def test_poisson_rate(self):
        times = poisson_arrivals(10.0, 1000.0, make_rng(0))
        assert len(times) == pytest.approx(10_000, rel=0.05)

    def test_poisson_sorted_in_range(self):
        times = poisson_arrivals(5.0, 100.0, make_rng(1))
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0 and times[-1] < 100.0

    def test_poisson_deterministic(self):
        a = poisson_arrivals(2.0, 50.0, make_rng(7))
        b = poisson_arrivals(2.0, 50.0, make_rng(7))
        assert np.array_equal(a, b)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10.0, make_rng(0))

    def test_bursty_rate_between_base_and_burst(self):
        times = bursty_arrivals(1.0, 10.0, 2000.0, make_rng(0))
        rate = len(times) / 2000.0
        assert 1.0 < rate < 10.0

    def test_bursty_sorted(self):
        times = bursty_arrivals(1.0, 5.0, 100.0, make_rng(2))
        assert np.all(np.diff(times) >= 0)

    def test_bursty_has_bursts(self):
        """Index-of-dispersion of counts must exceed Poisson's ~1."""
        times = bursty_arrivals(1.0, 20.0, 2000.0, make_rng(3))
        counts, _ = np.histogram(times, bins=np.arange(0, 2001, 10.0))
        iod = counts.var() / counts.mean()
        assert iod > 2.0


class TestTrace:
    def test_sorted_on_construction(self):
        t = Trace(
            "x",
            [
                TraceRequest(0, 5.0, 10, 10),
                TraceRequest(1, 1.0, 10, 10),
            ],
        )
        assert [r.arrival_time for r in t] == [1.0, 5.0]

    def test_request_validation(self):
        with pytest.raises(ValueError):
            TraceRequest(0, -1.0, 10, 10)
        with pytest.raises(ValueError):
            TraceRequest(0, 0.0, 0, 10)
        with pytest.raises(ValueError):
            TraceRequest(0, 0.0, 10, 0)

    def test_mean_rate(self):
        t = Trace(
            "x",
            [TraceRequest(i, float(i), 10, 10) for i in range(1, 11)],
        )
        assert t.mean_rate == pytest.approx(1.0)

    def test_rescale_rate(self):
        t = generate_sharegpt_trace(2.0, 100.0, make_rng(0))
        t2 = t.rescale_rate(4.0)
        assert t2.mean_rate == pytest.approx(4.0, rel=0.01)
        assert len(t2) == len(t)

    def test_representative_batch_preserves_moments(self):
        t = generate_sharegpt_trace(2.0, 200.0, make_rng(0))
        b = t.representative_batch(8)
        ins = t.input_lengths().astype(float)
        rms = np.sqrt((ins**2).mean())
        assert b.q == 8
        assert b.k_in / 8 == pytest.approx(rms, rel=0.02)

    def test_representative_batch_validation(self):
        t = generate_sharegpt_trace(2.0, 20.0, make_rng(0))
        with pytest.raises(ValueError):
            t.representative_batch(0)
        with pytest.raises(ValueError):
            Trace("empty").representative_batch(1)

    def test_stats_keys(self):
        t = generate_sharegpt_trace(2.0, 50.0, make_rng(0))
        s = t.stats()
        assert s["n"] == len(t)
        assert s["input_p95"] >= s["input_p50"]


class TestShareGPT:
    def test_length_scales(self):
        t = generate_sharegpt_trace(5.0, 500.0, make_rng(0))
        s = t.stats()
        # Chatbot shape: moderate prompts, conversational outputs.
        assert 100 < s["input_mean"] < 500
        assert 100 < s["output_mean"] < 500

    def test_clipping(self):
        t = generate_sharegpt_trace(5.0, 500.0, make_rng(1))
        assert t.input_lengths().max() <= 2048
        assert t.input_lengths().min() >= 4

    def test_bursty_flag(self):
        t = generate_sharegpt_trace(
            2.0, 500.0, make_rng(2), bursty=True
        )
        assert len(t) > 0


class TestLongBench:
    def test_longer_inputs_shorter_outputs_than_chat(self):
        rng = make_rng(0)
        chat = generate_sharegpt_trace(5.0, 300.0, rng)
        lb = generate_longbench_trace(5.0, 300.0, rng)
        assert lb.stats()["input_mean"] > 5 * chat.stats()["input_mean"]
        assert lb.stats()["output_mean"] < chat.stats()["output_mean"]

    def test_clipping(self):
        t = generate_longbench_trace(5.0, 200.0, make_rng(1))
        assert t.input_lengths().min() >= 1024
        assert t.input_lengths().max() <= 16384

    @settings(max_examples=10, deadline=None)
    @given(rate=st.floats(0.5, 5.0), seed=st.integers(0, 100))
    def test_rate_property(self, rate, seed):
        t = generate_longbench_trace(rate, 400.0, make_rng(seed))
        assert t.mean_rate == pytest.approx(rate, rel=0.35)
