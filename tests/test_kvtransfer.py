"""KV-cache transfer latency (Eqs. 14-15) and pairings."""

import pytest

from repro.comm import CommContext
from repro.core import estimate_kv_transfer_time, kv_pairings, kv_transfer_flows
from repro.llm import OPT_66B, TINY
from repro.network import build_testbed


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def ctx(tb):
    return CommContext.from_built(tb, heterogeneous=False)


class TestPairings:
    def test_shares_sum_to_one(self):
        pre = [(0, 1, 2, 3), (4, 5, 6, 7)]
        dec = [(8, 9), (10, 11), (12, 13)]
        pairs = kv_pairings(pre, dec)
        assert sum(s for _, _, s in pairs) == pytest.approx(1.0)

    def test_identical_layouts_one_to_one(self):
        pre = [(0, 1), (2, 3)]
        dec = [(8, 9), (10, 11)]
        pairs = kv_pairings(pre, dec)
        assert len(pairs) == 4
        assert all(s == pytest.approx(0.25) for _, _, s in pairs)
        assert {(p, d) for p, d, _ in pairs} == {
            (0, 8), (1, 9), (2, 10), (3, 11)
        }

    def test_tp_mismatch_overlaps(self):
        """Prefill TP4 -> decode TP2: each decode GPU receives from 2."""
        pre = [(0, 1, 2, 3)]
        dec = [(8, 9)]
        pairs = kv_pairings(pre, dec)
        receivers = {}
        for p, d, s in pairs:
            receivers.setdefault(d, 0.0)
            receivers[d] += s
        assert receivers[8] == pytest.approx(0.5)
        assert receivers[9] == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kv_pairings([], [(1,)])


class TestTransferTime:
    def test_positive_cross_cluster(self, ctx, tb):
        g = tb.topology.gpu_ids()
        t = estimate_kv_transfer_time(
            ctx, OPT_66B, 1024, [g[:4]], [g[8:12]]
        )
        assert t > 0

    def test_scales_with_kin(self, ctx, tb):
        g = tb.topology.gpu_ids()
        t1 = estimate_kv_transfer_time(ctx, OPT_66B, 512, [g[:4]], [g[8:12]])
        t2 = estimate_kv_transfer_time(ctx, OPT_66B, 2048, [g[:4]], [g[8:12]])
        assert t2 > t1

    def test_more_decode_tp_parallelises(self, ctx, tb):
        """Wider decode TP spreads the same bytes over more NICs, but each
        prefill GPU then serialises more destinations - the net must stay
        within 2x of the one-to-one case (sanity envelope)."""
        g = tb.topology.gpu_ids()
        t_pair = estimate_kv_transfer_time(
            ctx, OPT_66B, 1024, [g[:4]], [g[8:12]]
        )
        t_wide = estimate_kv_transfer_time(
            ctx, OPT_66B, 1024, [g[:4]], [g[8:16]]
        )
        assert t_wide < 2 * t_pair

    def test_zero_kin_rejected(self, ctx, tb):
        g = tb.topology.gpu_ids()
        with pytest.raises(ValueError):
            estimate_kv_transfer_time(ctx, TINY, 0, [g[:2]], [g[8:10]])


class TestFlows:
    def test_flow_paths_valid(self, ctx, tb):
        g = tb.topology.gpu_ids()
        flows = kv_transfer_flows(ctx, TINY, 256, [g[:4]], [g[8:12]])
        assert flows
        topo = tb.topology
        for links, nbytes in flows:
            assert nbytes > 0
            for a, b in zip(links, links[1:]):
                assert topo.links[a].dst == topo.links[b].src

    def test_total_bytes_conserved(self, ctx, tb):
        from repro.llm import kv_bytes_per_token

        g = tb.topology.gpu_ids()
        k_in = 256
        flows = kv_transfer_flows(ctx, TINY, k_in, [g[:4]], [g[8:12]])
        total = sum(b for _, b in flows)
        assert total == pytest.approx(kv_bytes_per_token(TINY) * k_in)


class TestExcludedGpus:
    """Re-pairing around decode GPUs believed failed."""

    def test_excluded_gpu_receives_nothing(self):
        pre = [(0, 1), (2, 3)]
        dec = [(8, 9), (10, 11)]
        pairs = kv_pairings(pre, dec, exclude_gpus={9})
        assert all(d != 9 for _, d, _ in pairs)
        assert sum(s for _, _, s in pairs) == pytest.approx(1.0)

    def test_share_redistributed_to_stage_survivor(self):
        pre = [(0, 1), (2, 3)]
        dec = [(8, 9), (10, 11)]
        pairs = kv_pairings(pre, dec, exclude_gpus={9})
        to_8 = sum(s for _, d, s in pairs if d == 8)
        # survivor 8 absorbs its own quarter plus the orphaned quarter
        assert to_8 == pytest.approx(0.5)

    def test_dead_stage_exclusion_ignored(self):
        """A stage with no survivors keeps its original owners."""
        pre = [(0, 1)]
        dec = [(8, 9)]
        pairs = kv_pairings(pre, dec, exclude_gpus={8, 9})
        assert {d for _, d, _ in pairs} == {8, 9}
        assert sum(s for _, _, s in pairs) == pytest.approx(1.0)

    def test_no_exclusions_identical(self):
        pre = [(0, 1, 2, 3), (4, 5, 6, 7)]
        dec = [(8, 9), (10, 11), (12, 13)]
        assert kv_pairings(pre, dec, exclude_gpus=()) == kv_pairings(
            pre, dec
        )

    def test_flows_avoid_excluded_gpus(self, ctx, tb):
        g = tb.topology.gpu_ids()
        flows = kv_transfer_flows(
            ctx, TINY, 256, [g[:4]], [g[8:12]], exclude_gpus={g[8]}
        )
        assert flows  # transfer still happens, routed to survivors

    def test_estimate_with_exclusions_positive(self, ctx, tb):
        g = tb.topology.gpu_ids()
        t = estimate_kv_transfer_time(
            ctx, TINY, 256, [g[:4]], [g[8:12]], exclude_gpus={g[8]}
        )
        assert t > 0
