"""The CollectiveScheme registry and the two registry-added schemes.

Covers the registry API, the uniform degenerate-group pricing fix, the
``ring-2stage`` and ``tree`` time formulas against independently
recomputed values, extra-scheme policy tables + failover masking, the
``DS-2Stage`` baseline assembly, and the ``python -m repro schemes``
subcommand. (Byte-parity of the four classic schemes is pinned by
``tests/test_planner_equivalence.py::TestGoldenSchemeParity``.)
"""

import pytest

from repro.__main__ import main
from repro.baselines import (
    ALL_SYSTEMS,
    DS_2STAGE,
    EXTRA_SYSTEMS,
    SYSTEM_BY_NAME,
    build_system,
    simulate_trace,
)
from repro.comm import (
    CommContext,
    SchemeKind,
    allreduce_bytes,
    estimate_group_step,
    get_scheme,
    group_by_server,
    price_group_step,
    register_scheme,
    registered_schemes,
    ring_allreduce_time,
    ring_order,
    tree_allreduce_time,
    twostage_allreduce_time,
)
from repro.core import SLA_TESTBED_CHATBOT, LoadAwareScheduler
from repro.core.estcache import EstimationCache
from repro.core.plan import ParallelConfig
from repro.llm import OPT_66B, A100, V100, CostModelBank
from repro.network import LinkLoadTracker, build_testbed
from repro.util.rng import make_rng
from repro.workloads import generate_sharegpt_trace

ALL_KINDS = list(SchemeKind)


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


def ctx_for(tb, scheme):
    return CommContext.from_built(
        tb, heterogeneous=get_scheme(scheme).heterogeneous
    )


def live_ctx(tb, heterogeneous=True):
    base = CommContext.from_built(tb, heterogeneous=heterogeneous)
    return CommContext(
        built=tb,
        route_table=base.route_table,
        linkstate=LinkLoadTracker(tb.topology),
        heterogeneous=heterogeneous,
    )


class TestRegistryApi:
    def test_six_schemes_registered(self):
        names = [s.name for s in registered_schemes()]
        assert names == [
            "ring", "ina_sync", "ina_async", "hybrid",
            "ring-2stage", "tree",
        ]

    def test_resolution_spellings(self):
        by_kind = get_scheme(SchemeKind.HYBRID)
        assert get_scheme("hybrid") is by_kind
        assert get_scheme(by_kind) is by_kind
        assert get_scheme("ring-2stage").kind is SchemeKind.RING_2STAGE

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError, match="teleportation"):
            get_scheme("teleportation")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(get_scheme("ring"))

    def test_network_views(self):
        assert not get_scheme("ring").heterogeneous
        assert not get_scheme("ina_sync").heterogeneous
        assert not get_scheme("ina_async").heterogeneous
        assert not get_scheme("tree").heterogeneous
        assert get_scheme("hybrid").heterogeneous
        assert get_scheme("ring-2stage").heterogeneous

    def test_failover_targets(self):
        for scheme in registered_schemes():
            assert scheme.failover_target() == "ring"

    def test_switch_demand(self):
        for name in ("ring", "ring-2stage", "tree"):
            assert get_scheme(name).switch_demand(3) == 0
        for name in ("ina_sync", "ina_async", "hybrid"):
            assert get_scheme(name).switch_demand(3) == 3

    def test_policy_key_uniform(self):
        scheme = get_scheme("ina_sync")
        assert scheme.policy_key("ring") == "ring"
        assert scheme.policy_key("ina", 5) == "ina@5"
        assert get_scheme("hybrid").policy_key("hybrid-ina", 7) == (
            "hybrid-ina@7"
        )

    def test_estimate_accepts_string_scheme(self, tb):
        ctx = ctx_for(tb, "tree")
        gpus = tb.topology.gpu_ids()[:8]
        a = estimate_group_step(ctx, gpus, 1e6, "tree")
        b = estimate_group_step(ctx, gpus, 1e6, SchemeKind.TREE)
        assert a == b


class TestDegenerateGroups:
    """Satellite fix: single-GPU groups cost 0 under *every* scheme."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_single_gpu_estimate_is_free(self, tb, kind):
        ctx = ctx_for(tb, kind)
        solo = [tb.topology.gpu_ids()[0]]
        est = estimate_group_step(ctx, solo, 8e6, kind)
        assert est.mode == "ring"
        assert est.step_time == 0.0
        assert est.links == ()
        assert price_group_step(ctx, solo, kind, est.mode,
                                est.ina_switch, 8e6) == 0.0

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_single_gpu_policy_table_uniform(self, tb, kind):
        ctx = live_ctx(tb, get_scheme(kind).heterogeneous)
        s = LoadAwareScheduler(ctx, [tb.topology.gpu_ids()[0]], kind)
        assert [p.name for p in s.table.policies] == ["ring"]
        d = s.decide(8e6)
        assert d.step_time == 0.0 and d.links == ()


class TestTwoStageFormula:
    def test_matches_reconstruction(self, tb):
        ctx = ctx_for(tb, "ring-2stage")
        gpus = tb.topology.gpu_ids()[:8]
        data = 4e6
        by_server = group_by_server(ctx, gpus)
        assert len(by_server) > 1, "need a cross-server group"
        stage_local = 0.0
        for members in by_server.values():
            leader, k = members[0], len(members)
            if k > 1:
                t = (k - 1) * max(
                    ctx.path_time(g, leader, data / k)
                    for g in members if g != leader
                )
                stage_local = max(stage_local, t)
        leaders = [m[0] for m in by_server.values()]
        expected = 2.0 * stage_local + ring_allreduce_time(
            ctx, leaders, data
        )
        assert twostage_allreduce_time(ctx, gpus, data) == expected

    def test_single_server_is_nvlink_ring(self, tb):
        ctx = ctx_for(tb, "ring-2stage")
        gpus = list(tb.server_gpus[0])
        data = 4e6
        expected = ring_allreduce_time(
            ctx, gpus, data, order=ring_order(ctx, gpus)
        )
        assert twostage_allreduce_time(ctx, gpus, data) == expected
        est = estimate_group_step(ctx, gpus, data, "ring-2stage")
        assert est.mode in ("none", "ring")

    def test_degenerate_zero(self, tb):
        ctx = ctx_for(tb, "ring-2stage")
        g = tb.topology.gpu_ids()[0]
        assert twostage_allreduce_time(ctx, [g], 1e6) == 0.0
        assert twostage_allreduce_time(ctx, [g, g + 1], 0.0) == 0.0

    def test_estimate_is_eq7_argmin(self, tb):
        ctx = ctx_for(tb, "ring-2stage")
        gpus = tb.topology.gpu_ids()[:8]
        for data in (1e4, 8e6):
            est = estimate_group_step(ctx, gpus, data, "ring-2stage")
            t_ring = ring_allreduce_time(ctx, gpus, data)
            t_2s = twostage_allreduce_time(ctx, gpus, data)
            assert est.step_time == min(t_ring, t_2s)
            assert est.mode == ("2stage" if t_2s <= t_ring else "ring")

    def test_nvlink_staging_beats_plain_ring_large_payload(self, tb):
        # The point of the scheme: at bandwidth-dominated payloads the
        # NVLink first stage shrinks the Ethernet ring to one GPU per
        # server, so 2stage wins on the heterogeneous testbed.
        ctx = ctx_for(tb, "ring-2stage")
        gpus = tb.topology.gpu_ids()[:8]
        data = 8e6
        assert twostage_allreduce_time(ctx, gpus, data) < (
            ring_allreduce_time(ctx, gpus, data)
        )


class TestTreeFormula:
    def test_matches_reconstruction(self, tb):
        ctx = ctx_for(tb, "tree")
        gpus = tb.topology.gpu_ids()[:8]
        data = 2e6
        members = ring_order(ctx, gpus)
        p2 = 1
        while p2 * 2 <= len(members):
            p2 *= 2
        assert p2 == len(members) == 8, "power-of-two core expected"
        expected = 0.0
        dist, r = 1, 0
        while dist < p2:
            chunk = data / float(2 ** (r + 1))
            expected += max(
                max(
                    ctx.path_time(members[i], members[i ^ dist], chunk),
                    ctx.path_time(members[i ^ dist], members[i], chunk),
                )
                for i in range(p2)
            )
            dist <<= 1
            r += 1
        expected *= 2.0
        assert tree_allreduce_time(ctx, gpus, data) == expected

    def test_non_power_of_two_folds_extras(self, tb):
        ctx = ctx_for(tb, "tree")
        gpus = tb.topology.gpu_ids()[:6]
        data = 2e6
        members = ring_order(ctx, gpus)
        t6 = tree_allreduce_time(ctx, gpus, data)
        t4 = tree_allreduce_time(ctx, members[:4], data)
        pre = max(
            ctx.path_time(members[4 + i], members[i], data)
            for i in range(2)
        )
        post = max(
            ctx.path_time(members[i], members[4 + i], data)
            for i in range(2)
        )
        assert t6 == pytest.approx(t4 + pre + post)

    def test_degenerate_zero(self, tb):
        ctx = ctx_for(tb, "tree")
        g = tb.topology.gpu_ids()[0]
        assert tree_allreduce_time(ctx, [g], 1e6) == 0.0
        assert tree_allreduce_time(ctx, [g, g + 1], 0.0) == 0.0

    def test_estimate_is_eq7_argmin(self, tb):
        ctx = ctx_for(tb, "tree")
        gpus = tb.topology.gpu_ids()[:8]
        for data in (1e4, 8e6):
            est = estimate_group_step(ctx, gpus, data, "tree")
            t_ring = ring_allreduce_time(ctx, gpus, data)
            t_tree = tree_allreduce_time(ctx, gpus, data)
            assert est.step_time == min(t_ring, t_tree)
            assert est.mode == ("tree" if t_tree <= t_ring else "ring")

    def test_fewer_rounds_than_ring_small_payload(self, tb):
        # log2(p) exchange rounds beat 2(p-1) ring steps when per-step
        # latency dominates (tiny payloads).
        ctx = ctx_for(tb, "tree")
        gpus = tb.topology.gpu_ids()[:8]
        assert tree_allreduce_time(ctx, gpus, 1e3) < (
            ring_allreduce_time(ctx, gpus, 1e3)
        )


class TestExtraSchemesOnline:
    def test_policy_tables_gain_extra_rows(self, tb):
        ctx = live_ctx(tb)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.HYBRID,
            n_switch_candidates=2,
            extra_schemes=("ring-2stage", "tree"),
        )
        names = [p.name for p in s.table.policies]
        # Extra rows joined the table, deduplicated by name (one shared
        # "ring" fallback instead of three).
        assert "2stage" in names and "tree" in names
        assert names.count("ring") == 1

    def test_extras_prefix_matches_plain_table(self, tb):
        gpus = tb.topology.gpu_ids()[:8]
        plain = LoadAwareScheduler(
            live_ctx(tb), gpus, SchemeKind.HYBRID, n_switch_candidates=2
        )
        extended = LoadAwareScheduler(
            live_ctx(tb), gpus, SchemeKind.HYBRID, n_switch_candidates=2,
            extra_schemes=("ring-2stage", "tree"),
        )
        n = len(plain.table.policies)
        assert [
            (p.name, p.mode, p.switch, p.links)
            for p in extended.table.policies[:n]
        ] == [
            (p.name, p.mode, p.switch, p.links)
            for p in plain.table.policies
        ]

    def test_extra_rows_priced_and_selectable(self, tb):
        ctx = live_ctx(tb)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.RING,
            extra_schemes=("ring-2stage", "tree"),
        )
        by_name = {p.name: p for p in s.table.policies}
        data = 8e6
        assert s._estimate_time(by_name["2stage"], data) == (
            twostage_allreduce_time(ctx, s.gpus, data)
        )
        assert s._estimate_time(by_name["tree"], data) == (
            tree_allreduce_time(ctx, s.gpus, data)
        )
        d = s.decide(data)
        assert d.step_time > 0.0

    def test_primary_scheme_not_duplicated_by_extras(self, tb):
        s = LoadAwareScheduler(
            live_ctx(tb), tb.topology.gpu_ids()[:8], SchemeKind.TREE,
            extra_schemes=("tree",),
        )
        assert [p.name for p in s.table.policies] == ["tree", "ring"]

    def test_extras_survive_switch_death(self, tb):
        from repro.faults import HealthRegistry

        ctx = live_ctx(tb)
        s = LoadAwareScheduler(
            ctx, tb.topology.gpu_ids()[:8], SchemeKind.HYBRID,
            n_switch_candidates=2,
            extra_schemes=("ring-2stage", "tree"),
        )
        health = HealthRegistry()
        for sw in tb.access_switches:
            health.mark_down("switch", sw, now=0.0)
        health.poll(1.0)
        changed, degraded = s.apply_health(health)
        assert changed and degraded
        # Switchless routes (hybrid-ring, ring, 2stage, tree) remain.
        d = s.decide(8e6)
        assert d.policy.switch is None


class TestDs2StageBaseline:
    def test_spec_registered_outside_core_four(self):
        assert len(ALL_SYSTEMS) == 4
        assert DS_2STAGE not in ALL_SYSTEMS
        assert EXTRA_SYSTEMS == (DS_2STAGE,)
        assert SYSTEM_BY_NAME["DS-2Stage"] is DS_2STAGE
        assert DS_2STAGE.scheme is SchemeKind.RING_2STAGE
        assert DS_2STAGE.heterogeneous and not DS_2STAGE.online

    def test_plans_and_serves(self, tb):
        bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
        trace = generate_sharegpt_trace(0.5, 15, make_rng(0))
        system = build_system(
            DS_2STAGE, tb, OPT_66B, bank, SLA_TESTBED_CHATBOT,
            trace.representative_batch(8),
            arrival_rate=0.5,
            forced_parallel=ParallelConfig(8, 1, 8, 1),
        )
        assert system.plan.scheme is SchemeKind.RING_2STAGE
        prefill_modes = {est.mode for est in system.plan.prefill.comm}
        assert prefill_modes <= {"2stage", "none", "ring"}
        metrics = simulate_trace(system, trace)
        assert metrics.n_finished > 0
        assert metrics.mean_ttft() > 0.0


class TestEstcacheCanonicalKeys:
    def test_kind_and_string_share_entries(self, tb):
        ctx = ctx_for(tb, "tree")
        cache = EstimationCache(ctx)
        gpus = tuple(tb.topology.gpu_ids()[:8])
        a = cache.group_step(gpus, 1e6, SchemeKind.TREE)
        b = cache.group_step(gpus, 1e6, "tree")
        assert a == b
        assert cache.group_hits == 1


class TestSchemesCli:
    def test_lists_all_registered(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for name in (
            "ring", "ina_sync", "ina_async", "hybrid",
            "ring-2stage", "tree",
        ):
            assert name in out
        assert "failover" in out

    def test_2tracks_topology(self, capsys):
        assert main(
            ["schemes", "--topology", "2tracks", "--group-size", "4",
             "--tokens", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "4 GPUs" in out and "2tracks" in out

    def test_quickstart_with_extra_schemes(self, capsys):
        assert main(
            ["quickstart", "--rate", "0.4", "--duration", "10",
             "--schemes", "ring-2stage,tree"]
        ) == 0
        assert "attainment" in capsys.readouterr().out

    def test_bad_extra_scheme_rejected(self):
        with pytest.raises(KeyError):
            main(
                ["quickstart", "--rate", "0.4", "--duration", "5",
                 "--schemes", "warp-drive"]
            )
