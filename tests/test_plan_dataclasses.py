"""Plan dataclasses: Table II structure and invariants."""

import pytest

from repro.comm.latency import GroupCommEstimate, SchemeKind
from repro.core.plan import ParallelConfig, PhasePlan, Plan


def est(mode="ina", switch=3, t=1e-3):
    return GroupCommEstimate(
        scheme=SchemeKind.INA_SYNC,
        mode=mode,
        ina_switch=switch if mode == "ina" else None,
        step_time=t,
        links=(0, 1),
    )


class TestParallelConfig:
    def test_counts(self):
        p = ParallelConfig(8, 2, 4, 3)
        assert p.prefill_gpus == 16
        assert p.decode_gpus == 12
        assert p.total_gpus == 28

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(0, 1, 1, 1)
        with pytest.raises(ValueError):
            ParallelConfig(1, 1, 1, 0)

    def test_str(self):
        s = str(ParallelConfig(8, 1, 2, 4))
        assert "TP8" in s and "PP4" in s

    def test_equality(self):
        assert ParallelConfig(2, 2, 2, 2) == ParallelConfig(2, 2, 2, 2)


class TestPhasePlan:
    def test_gpu_ids_flatten(self):
        pp = PhasePlan(
            stages=((1, 2), (3, 4)),
            comm=(est(), est("ring", None)),
            t_network=1.0,
            t_compute=2.0,
        )
        assert pp.gpu_ids == (1, 2, 3, 4)

    def test_alpha_beta_complement(self):
        pp = PhasePlan(
            stages=((1, 2), (3, 4), (5, 6)),
            comm=(est("ina"), est("ring", None), est("ina")),
            t_network=1.0,
            t_compute=2.0,
        )
        assert pp.alpha == (1, 0, 1)
        assert pp.beta == (0, 1, 0)
        # Eq. 7: alpha(i) + beta(i) = 1 for plain INA/ring selectors.
        assert all(a + b == 1 for a, b in zip(pp.alpha, pp.beta))

    def test_ina_switches(self):
        pp = PhasePlan(
            stages=((1, 2), (3, 4)),
            comm=(est("ina", 9), est("ring", None)),
            t_network=1.0,
            t_compute=2.0,
        )
        assert pp.ina_switches == (9, None)


class TestPlan:
    def make_plan(self):
        pp = PhasePlan(
            stages=((1, 2),),
            comm=(est(),),
            t_network=0.1,
            t_compute=0.4,
        )
        dp = PhasePlan(
            stages=((3, 4),),
            comm=(est("ring", None),),
            t_network=0.01,
            t_compute=0.02,
        )
        return Plan(
            parallel=ParallelConfig(2, 1, 2, 1),
            scheme=SchemeKind.HYBRID,
            prefill=pp,
            decode=dp,
            t_kv_transfer=0.05,
            t_prefill=0.5,
            t_decode=0.03,
            scalability=0.2,
            planned_rate=0.5,
        )

    def test_summary_contents(self):
        s = self.make_plan().summary()
        assert "hybrid" in s
        assert "H=0.200" in s
        assert "prefill GPUs: (1, 2)" in s

    def test_frozen(self):
        p = self.make_plan()
        with pytest.raises(AttributeError):
            p.scalability = 1.0
