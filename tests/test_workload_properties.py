"""Cross-cutting property tests on workloads feeding the planner.

These tie the workload generators to the Table I quantities the planner
actually consumes, over randomised parameters.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import BatchSpec
from repro.util.rng import make_rng
from repro.workloads import (
    generate_longbench_trace,
    generate_sharegpt_trace,
)


class TestForecastProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        rate=st.floats(0.5, 4.0),
        seed=st.integers(0, 500),
        q=st.integers(1, 32),
    )
    def test_representative_batch_is_valid_batchspec(self, rate, seed, q):
        trace = generate_sharegpt_trace(rate, 60.0, make_rng(seed))
        b = trace.representative_batch(q)
        assert isinstance(b, BatchSpec)
        assert b.q == q
        assert b.k_in > 0 and b.k_out > 0
        # Cauchy-Schwarz on the uniform representative batch.
        assert b.k_in2 * b.q >= b.k_in**2 - 1e-6

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_forecast_kin_tracks_trace_mean(self, seed):
        """The RMS-based forecast never *under*-estimates the mean K_in
        (it preserves the second moment, which bounds the first)."""
        trace = generate_sharegpt_trace(2.0, 120.0, make_rng(seed))
        b = trace.representative_batch(8)
        mean_in = float(trace.input_lengths().mean())
        assert b.k_in / b.q >= mean_in * 0.99

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500), factor=st.floats(1.5, 4.0))
    def test_rescale_preserves_lengths(self, seed, factor):
        trace = generate_longbench_trace(1.0, 100.0, make_rng(seed))
        scaled = trace.rescale_rate(trace.mean_rate * factor)
        assert np.array_equal(
            trace.input_lengths(), scaled.input_lengths()
        )
        assert np.array_equal(
            trace.output_lengths(), scaled.output_lengths()
        )
        assert len(scaled) == len(trace)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_chat_vs_longbench_separation(self, seed):
        """The two workloads must stay distinguishable for any seed —
        the planner's per-workload configurations depend on it."""
        rng = make_rng(seed)
        chat = generate_sharegpt_trace(3.0, 120.0, rng)
        lb = generate_longbench_trace(3.0, 120.0, rng)
        assert (
            lb.input_lengths().mean() > 3 * chat.input_lengths().mean()
        )
