"""Fault plans: validation, ordering, JSON round-trip, MTBF generator."""

import json

import pytest

from repro.faults import FaultEvent, FaultPlan, poisson_plan
from repro.util.rng import make_rng


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(time=0.0, kind="meteor_strike", target=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(time=-1.0, kind="switch_down", target=0)

    def test_degrade_factor_bounds(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(time=0.0, kind="link_degrade", target=0, factor=0.0)
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(time=0.0, kind="link_degrade", target=0, factor=1.5)

    def test_degrade_loss_bounds(self):
        with pytest.raises(ValueError, match="loss"):
            FaultEvent(
                time=0.0, kind="link_degrade", target=0, loss=1.0
            )

    def test_slot_storm_needs_slots_and_duration(self):
        with pytest.raises(ValueError, match="slots"):
            FaultEvent(time=0.0, kind="slot_storm", target=0, duration=1.0)
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(time=0.0, kind="slot_storm", target=0, slots=4)

    def test_effective_capacity_factor(self):
        ev = FaultEvent(
            time=0.0, kind="link_degrade", target=0, factor=0.5, loss=0.2
        )
        assert ev.effective_capacity_factor == pytest.approx(0.4)

    def test_recovery_event_implied_by_duration(self):
        ev = FaultEvent(
            time=2.0, kind="switch_down", target="switch#0", duration=4.0
        )
        rec = ev.recovery_event()
        assert rec is not None
        assert rec.kind == "switch_up"
        assert rec.time == pytest.approx(6.0)
        assert rec.target == "switch#0"

    def test_no_recovery_without_duration(self):
        ev = FaultEvent(time=2.0, kind="switch_down", target=0)
        assert ev.recovery_event() is None

    def test_storm_has_no_recovery_event(self):
        ev = FaultEvent(
            time=1.0, kind="slot_storm", target=0, slots=8, duration=2.0
        )
        assert ev.recovery_event() is None  # release is injector-internal


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=5.0, kind="switch_up", target=0),
                FaultEvent(time=1.0, kind="switch_down", target=0),
            )
        )
        assert [e.time for e in plan.events] == [1.0, 5.0]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.empty()
        assert len(FaultPlan.empty()) == 0

    def test_json_roundtrip(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=2.0,
                    kind="switch_down",
                    target="switch#0",
                    duration=4.0,
                ),
                FaultEvent(
                    time=3.0,
                    kind="link_degrade",
                    target="link#4",
                    duration=3.0,
                    factor=0.5,
                    loss=0.05,
                ),
            ),
            seed=7,
        )
        back = FaultPlan.from_json(plan.to_json())
        assert back == plan

    def test_load_save_roundtrip(self, tmp_path):
        plan = FaultPlan(
            events=(FaultEvent(time=1.0, kind="server_down", target=2),)
        )
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_json_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan fields"):
            FaultPlan.from_json(json.dumps({"seed": 0, "bogus": 1}))
        with pytest.raises(ValueError, match="unknown fault event fields"):
            FaultPlan.from_json(
                json.dumps(
                    {
                        "events": [
                            {
                                "time": 0.0,
                                "kind": "switch_down",
                                "target": 0,
                                "blast_radius": 3,
                            }
                        ]
                    }
                )
            )

    def test_example_plan_parses(self):
        # keep examples/faultplan.json loadable by the library forever
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "examples", "faultplan.json"
        )
        plan = FaultPlan.load(path)
        assert len(plan) == 2
        assert plan.events[0].kind == "switch_down"


class TestPoissonPlan:
    def test_deterministic_for_seed(self):
        a = poisson_plan(60.0, 20.0, 2.0, make_rng(5), switches=1, seed=5)
        b = poisson_plan(60.0, 20.0, 2.0, make_rng(5), switches=1, seed=5)
        assert a == b

    def test_outages_paired_and_bounded(self):
        plan = poisson_plan(
            60.0, 10.0, 1.0, make_rng(0), switches=1, servers=1, seed=0
        )
        for ev in plan.events:
            assert ev.kind in ("switch_down", "server_down")
            assert 0.0 <= ev.time <= 60.0
            assert ev.duration > 0.0
