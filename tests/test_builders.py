"""Topology builders: testbed, xtracks clusters, Fig. 2 example."""

import pytest

from repro.network import (
    ETH_100G,
    LinkKind,
    build_fig2_example,
    build_testbed,
    build_xtracks_cluster,
)
from repro.network.builders import XTRACKS_PRESETS
from repro.util import units


class TestTestbed:
    def test_gpu_count(self):
        tb = build_testbed()
        assert len(tb.topology.gpu_ids()) == 16  # 4 servers x 4 GPUs

    def test_server_specs(self):
        tb = build_testbed()
        mems = {
            tb.topology.nodes[g].memory_bytes
            for g in tb.topology.gpu_ids()
        }
        assert mems == {units.gib(40), units.gib(32)}

    def test_gpu_models_recorded(self):
        tb = build_testbed()
        models = set(tb.gpu_models.values())
        assert models == {"A100", "V100"}

    def test_two_access_switches(self):
        tb = build_testbed(tracks=2)
        assert len(tb.access_switches) == 2
        assert tb.core_switches == []

    def test_cross_connected_ports(self):
        """GPU g of a server attaches to switch g % tracks."""
        tb = build_testbed(tracks=2)
        topo = tb.topology
        for server, gpus in tb.server_gpus.items():
            for i, g in enumerate(gpus):
                eth_neighbors = [
                    topo.links[lid].dst
                    for lid in topo.adj[g]
                    if topo.links[lid].kind == LinkKind.ETHERNET
                ]
                assert eth_neighbors == [tb.access_switches[i % 2]]

    def test_intra_server_nvlink_clique(self):
        tb = build_testbed()
        topo = tb.topology
        gpus = tb.server_gpus[0]
        for i, u in enumerate(gpus):
            for v in gpus[i + 1 :]:
                link = topo.find_link(u, v)
                assert link is not None and link.kind == LinkKind.NVLINK

    def test_validates(self):
        build_testbed().topology.validate()

    def test_bad_tracks(self):
        with pytest.raises(ValueError):
            build_testbed(tracks=0)

    def test_ina_capable_switches(self):
        tb = build_testbed()
        assert tb.ina_capable_switches() == tb.access_switches


class TestXtracks:
    @pytest.mark.parametrize("tracks", [2, 8])
    def test_unit_structure(self, tracks):
        built = build_xtracks_cluster(tracks, n_units=2)
        preset = XTRACKS_PRESETS[tracks]
        n_servers = 2 * preset["servers_per_unit"]
        assert len(built.topology.servers()) == n_servers
        assert len(built.access_switches) == 2 * tracks

    def test_core_ratio_2tracks_smaller(self):
        """2tracks is core-constrained relative to 8tracks (paper V-B)."""
        c2 = build_xtracks_cluster(2, n_units=4)
        c8 = build_xtracks_cluster(8, n_units=4)
        ratio2 = len(c2.access_switches) / max(1, len(c2.core_switches))
        ratio8 = len(c8.access_switches) / max(1, len(c8.core_switches))
        assert ratio2 > ratio8

    def test_eight_gpus_per_server(self):
        built = build_xtracks_cluster(2, n_units=1)
        for gpus in built.server_gpus.values():
            assert len(gpus) == 8

    def test_port_striping(self):
        built = build_xtracks_cluster(2, n_units=1)
        topo = built.topology
        gpus = built.server_gpus[0]
        switches = {
            topo.links[lid].dst
            for g in gpus
            for lid in topo.adj[g]
            if topo.links[lid].kind == LinkKind.ETHERNET
        }
        assert len(switches) == 2  # striped over both unit switches

    def test_validates(self):
        build_xtracks_cluster(8, n_units=1).topology.validate()

    def test_bad_tracks_rejected(self):
        with pytest.raises(ValueError):
            build_xtracks_cluster(3)

    def test_bad_units_rejected(self):
        with pytest.raises(ValueError):
            build_xtracks_cluster(2, n_units=0)


class TestFig2:
    def test_shape(self):
        f = build_fig2_example()
        assert len(f.topology.gpu_ids()) == 4
        assert len(f.access_switches) == 2
        assert len(f.core_switches) == 1

    def test_eth_bandwidth_default(self):
        f = build_fig2_example()
        eth = [
            l for l in f.topology.links if l.kind == LinkKind.ETHERNET
        ]
        assert all(l.capacity == ETH_100G for l in eth)

    def test_validates(self):
        build_fig2_example().topology.validate()
