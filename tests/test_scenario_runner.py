"""Scenario runner: hand-wired parity, matrix fan-out, sweep reports.

The load-bearing guarantee: a scenario-built run is byte-identical to
the equivalent hand-wired constructor sequence (the refactored benches
assert the same against their checked-in result baselines), and matrix
fan-out across processes cannot perturb any cell.
"""

import pytest

from repro.baselines import HEROSERVE, build_fleet, build_system, simulate_trace
from repro.core import SLA_TESTBED_CHATBOT
from repro.core.plan import ParallelConfig
from repro.llm import OPT_66B, A100, V100, CostModelBank
from repro.network import build_testbed
from repro.obs import build_sweep_data, render_sweep_html, render_sweep_text
from repro.scenario import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    build_runtime,
    run_matrix,
    run_scenario,
)
from repro.util.rng import make_rng
from repro.workloads import generate_session_trace, generate_sharegpt_trace

RATE = 1.0
DURATION = 20.0


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="runner-test",
        model="OPT-66B",
        workload=WorkloadSpec(
            generator="sharegpt", rate=RATE, duration=DURATION, seed=0
        ),
        topology=TopologySpec(kind="testbed"),
        system="HeroServe",
        slo="testbed-chatbot",
        parallel=(8, 1, 8, 1),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _request_key(metrics):
    finished = (
        metrics.all_finished()
        if hasattr(metrics, "all_finished")
        else metrics.finished
    )
    return sorted(
        (r.request_id, r.ttft, r.finish_time) for r in finished
    )


class TestHandWiredParity:
    def test_single_system_byte_parity(self):
        """Scenario path == hand-wired build_system + simulate_trace."""
        built = build_testbed()
        bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
        trace = generate_sharegpt_trace(RATE, DURATION, make_rng(0))
        system = build_system(
            HEROSERVE,
            built,
            OPT_66B,
            bank,
            SLA_TESTBED_CHATBOT,
            trace.representative_batch(8),
            arrival_rate=RATE,
            forced_parallel=ParallelConfig(8, 1, 8, 1),
        )
        hand = simulate_trace(system, trace)

        res = run_scenario(_spec())
        assert _request_key(res.metrics) == _request_key(hand)
        assert res.metrics.summary() == hand.summary()

    def test_fleet_byte_parity(self):
        from repro.network import build_xtracks_cluster

        built = build_xtracks_cluster(2, n_units=2)
        bank = CostModelBank(OPT_66B, {"A100": A100})
        trace = generate_session_trace(0.2, DURATION, make_rng(3))
        fleet = build_fleet(
            HEROSERVE,
            built,
            OPT_66B,
            bank,
            SLA_TESTBED_CHATBOT,
            trace.representative_batch(8),
            arrival_rate=trace.mean_rate,
            n_replicas=2,
            forced_parallel=ParallelConfig(16, 1, 16, 1),
            router="kv-affinity",
        )
        hand = fleet.run(trace)

        res = run_scenario(
            _spec(
                workload=WorkloadSpec(
                    generator="sessions",
                    rate=0.2,
                    duration=DURATION,
                    seed=3,
                ),
                topology=TopologySpec(kind="xtracks", tracks=2, n_units=2),
                parallel=(16, 1, 16, 1),
                arrival_rate="trace-mean",
                n_replicas=2,
                router="kv-affinity",
            )
        )
        assert _request_key(res.metrics) == _request_key(hand)

    def test_runtime_realises_spec(self):
        rt = build_runtime(_spec(arrival_rate="trace-mean"))
        assert rt.model is OPT_66B
        assert rt.sla == SLA_TESTBED_CHATBOT
        assert rt.parallel == ParallelConfig(8, 1, 8, 1)
        assert rt.arrival_rate == pytest.approx(rt.trace.mean_rate)
        assert len(rt.trace) > 0

    def test_summary_shape(self):
        res = run_scenario(_spec(), cell="x=1")
        s = res.summary
        assert s["scenario"] == "runner-test"
        assert s["system"] == "HeroServe"
        assert s["cell"] == "x=1"
        assert s["finished"] == s["offered"]
        for key in ("attainment", "p50_ttft_s", "p99_ttft_s"):
            assert key in s

    def test_observer_attached_on_request(self):
        res = run_scenario(_spec(observer={"flight": True}))
        assert res.observer is not None
        assert res.observer.recorder is not None
        assert res.observer.attribution is None
        plain = run_scenario(_spec())
        assert plain.observer is None


class TestMatrix:
    MATRIX_SPEC = dict(
        name="matrix-test",
        model="OPT-66B",
        workload=WorkloadSpec(
            generator="sharegpt", rate=0.8, duration=12.0, seed=1
        ),
        topology=TopologySpec(kind="testbed"),
        slo="testbed-chatbot",
        parallel=(8, 1, 8, 1),
        matrix={
            "system": ["DistServe", "HeroServe"],
            "workload.rate": [0.8, 1.2],
        },
    )

    def test_fanout_matches_inline(self):
        """processes=2 fan-out is byte-identical to inline execution."""
        spec = ScenarioSpec(**self.MATRIX_SPEC)
        inline = run_matrix(spec, processes=1)
        fanned = run_matrix(spec, processes=2)
        assert len(inline.summaries) == 4
        assert inline.summaries == fanned.summaries
        labels = [c.label for c in fanned.cells]
        assert labels == [
            "system=DistServe workload.rate=0.8",
            "system=DistServe workload.rate=1.2",
            "system=HeroServe workload.rate=0.8",
            "system=HeroServe workload.rate=1.2",
        ]
        for cell, summary in zip(fanned.cells, fanned.summaries):
            assert summary["cell"] == cell.label
            assert summary["system"] == cell.point["system"]

    def test_progress_callback_in_order(self):
        spec = ScenarioSpec(**self.MATRIX_SPEC)
        seen = []
        out = run_matrix(
            spec,
            processes=2,
            progress=lambda label, s: seen.append(label),
        )
        assert seen == [c.label for c in out.cells]


class TestSweepReport:
    SUMMARIES = [
        {
            "cell": "router=jsq",
            "finished": 10.0,
            "attainment": 0.9,
            "p50_ttft_s": 0.1,
            "p99_ttft_s": 0.4,
            "mean_tpot_s": 0.02,
            "router_affinity_hit_rate": 0.75,
            "router_kv_bytes_moved": 2.5e9,
        },
        {
            "cell": "router=round-robin",
            "finished": 10.0,
            "attainment": 0.8,
            "p50_ttft_s": 0.2,
            "p99_ttft_s": 0.9,
            "mean_tpot_s": 0.03,
            # sessionless run: no affinity hit rate at all
            "router_affinity_hit_rate": None,
            "router_kv_bytes_moved": 0.0,
        },
    ]

    def test_text_renders_na_for_missing_hit_rate(self):
        data = build_sweep_data(
            self.SUMMARIES, title="t", axes={"router": ["a", "b"]}
        )
        text = render_sweep_text(data)
        assert "router hit" in text
        assert "n/a" in text
        assert "0.75" in text
        # KV bytes scale to GB.
        assert "2.50" in text

    def test_optional_columns_dropped_when_absent(self):
        plain = [
            {
                "cell": "c",
                "finished": 1.0,
                "attainment": 1.0,
                "p50_ttft_s": 0.1,
                "p99_ttft_s": 0.2,
                "mean_tpot_s": 0.01,
            }
        ]
        text = render_sweep_text(build_sweep_data(plain))
        assert "router hit" not in text
        assert "replans" not in text
        assert "failovers" not in text

    def test_html_self_contained(self):
        data = build_sweep_data(
            self.SUMMARIES,
            title="sweep title",
            axes={"router": ["jsq", "round-robin"]},
            meta={"processes": 2},
        )
        page = render_sweep_html(data)
        assert page.lower().startswith("<!doctype html>")
        assert "sweep title" in page
        assert "n/a" in page
        assert "sweep-data" in page

    def test_end_to_end_matrix_report(self, tmp_path):
        from repro.obs import write_sweep_report

        spec = ScenarioSpec(**TestMatrix.MATRIX_SPEC)
        out = run_matrix(spec, processes=2)
        path = tmp_path / "sweep.html"
        data = write_sweep_report(
            str(path),
            out.summaries,
            title=spec.name,
            axes=out.axes,
        )
        assert path.exists() and path.stat().st_size > 0
        assert len(data["cells"]) == 4
        text = render_sweep_text(data)
        for label in ("system=DistServe workload.rate=0.8",):
            assert label in text
