"""GPU memory model: shards, KV capacity, feasibility."""

import pytest

from repro.llm import (
    OPT_66B,
    TINY,
    MemoryBudget,
    kv_bytes_per_token,
    kv_bytes_per_token_per_gpu,
    min_memory_per_gpu,
    weight_shard_bytes,
)
from repro.util import units


class TestShards:
    def test_weight_shard_divides(self):
        full = weight_shard_bytes(OPT_66B, 1, 1)
        assert weight_shard_bytes(OPT_66B, 4, 2) == pytest.approx(full / 8)

    def test_min_memory_formula(self):
        """Algorithm 1: m_req = R / (pt * pp * r_frac)."""
        m = min_memory_per_gpu(OPT_66B, 4, 1, 0.65)
        assert m == pytest.approx(OPT_66B.param_bytes / (4 * 0.65))

    def test_min_memory_bad_rfrac(self):
        with pytest.raises(ValueError):
            min_memory_per_gpu(OPT_66B, 1, 1, 1.0)

    def test_kv_bytes_per_token(self):
        expected = 2 * OPT_66B.n_layers * OPT_66B.hidden_size * 2
        assert kv_bytes_per_token(OPT_66B) == expected

    def test_kv_per_gpu_divides(self):
        whole = kv_bytes_per_token(OPT_66B)
        assert kv_bytes_per_token_per_gpu(OPT_66B, 4, 2) == whole / 8


class TestMemoryBudget:
    def test_opt66b_tp4_on_40gb_infeasible_at_065(self):
        """The cross-server regime: TP4 shard exceeds 65% of a 40GB A100."""
        b = MemoryBudget(OPT_66B, 4, 1, units.gib(40), r_frac=0.65)
        assert not b.feasible

    def test_opt66b_tp8_on_40gb_feasible(self):
        b = MemoryBudget(OPT_66B, 8, 1, units.gib(40), r_frac=0.65)
        assert b.feasible

    def test_kv_capacity_positive_when_feasible(self):
        b = MemoryBudget(OPT_66B, 8, 1, units.gib(40))
        assert b.max_cached_tokens() > 0

    def test_kv_capacity_zero_when_weights_overflow(self):
        b = MemoryBudget(OPT_66B, 1, 1, units.gib(40))
        assert b.kv_capacity_bytes_per_gpu == 0.0
        assert b.max_cached_tokens() == 0

    def test_more_parallelism_more_tokens(self):
        t8 = MemoryBudget(OPT_66B, 8, 1, units.gib(40)).max_cached_tokens()
        t16 = MemoryBudget(OPT_66B, 8, 2, units.gib(40)).max_cached_tokens()
        assert t16 > t8

    def test_utilization(self):
        b = MemoryBudget(TINY, 1, 1, units.gib(4))
        cap = b.max_cached_tokens()
        assert b.utilization(cap // 2) == pytest.approx(0.5, rel=0.01)

    def test_utilization_no_capacity_is_inf(self):
        b = MemoryBudget(OPT_66B, 1, 1, units.gib(40))
        assert b.utilization(10) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBudget(TINY, 1, 1, 0.0)
        with pytest.raises(ValueError):
            MemoryBudget(TINY, 1, 1, units.gib(1), r_frac=0.0)
