"""Regenerate the golden quickstart summary for the replan parity test.

Run from the repo root after an *intentional* behaviour change to the
plain (replanning-off) serving path::

    PYTHONPATH=src python tests/make_quickstart_golden.py

The golden pins the full ``ServingMetrics.summary()`` of the default
testbed quickstart at (rate=1.0, duration=12.0, seed=0).
``tests/test_replan.py::TestByteIdentity`` asserts that (a) a plain run
still reproduces it exactly and (b) arming an idle
:class:`~repro.core.replan.OnlineReplanner` changes nothing but the
zero-valued ``replan_*`` keys.
"""

import json
import os

from repro import quick_testbed

OUT = os.path.join(
    os.path.dirname(__file__), "data", "golden_quickstart_summary.json"
)


def main() -> None:
    _, metrics = quick_testbed(rate=1.0, duration=12.0, seed=0)
    with open(OUT, "w") as fh:
        json.dump(metrics.summary(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
