"""Model zoo and batch descriptors (Table I quantities)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import (
    OPT_66B,
    OPT_175B,
    TINY,
    BatchSpec,
    ModelConfig,
    MovingAverageEstimator,
    get_model,
)


class TestModelConfig:
    def test_opt_175b_param_count(self):
        """OPT-175B must land near 175e9 parameters."""
        assert OPT_175B.param_count == pytest.approx(175e9, rel=0.05)

    def test_opt_66b_param_count(self):
        assert OPT_66B.param_count == pytest.approx(66e9, rel=0.05)

    def test_param_bytes_fp16(self):
        assert TINY.param_bytes == TINY.param_count * 2

    def test_head_dim(self):
        assert OPT_66B.head_dim == 9216 // 72

    def test_heads_divide_hidden(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 100, 7, 400)

    def test_positive_dims_required(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", 0, 128, 4, 512)

    def test_flops_per_token(self):
        """Dense-path FLOPs/token ~ 2 * params (embedding excluded)."""
        f = OPT_66B.flops_per_token_prefill()
        assert f == pytest.approx(2 * OPT_66B.param_count, rel=0.05)

    def test_get_model(self):
        assert get_model("OPT-66B") is OPT_66B
        with pytest.raises(KeyError, match="available"):
            get_model("GPT-5")


class TestBatchSpec:
    def test_table_i_sums(self):
        b = BatchSpec((10, 20), (5, 7))
        assert b.q == 2
        assert b.k_in == 30
        assert b.k_out == 12
        assert b.k_in2 == 100 + 400

    def test_uniform(self):
        b = BatchSpec.uniform(4, 128, 32)
        assert b.q == 4 and b.k_in == 512 and b.k_out == 128
        assert b.k_in2 == 4 * 128**2

    def test_from_arrays(self):
        b = BatchSpec.from_arrays(np.array([3, 4]), np.array([1, 2]))
        assert b.input_lengths == (3, 4)

    def test_max_total_len(self):
        b = BatchSpec((10, 20), (5, 1))
        assert b.max_total_len == 21

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BatchSpec((), ())

    def test_mismatched_rejected(self):
        with pytest.raises(ValueError):
            BatchSpec((1, 2), (1,))

    def test_nonpositive_input_rejected(self):
        with pytest.raises(ValueError):
            BatchSpec((0,), (1,))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(1, 4096), min_size=1, max_size=32),
        st.integers(1, 512),
    )
    def test_k_in2_at_least_mean_square(self, lens, out):
        """Cauchy-Schwarz: sum(l^2) >= (sum l)^2 / n."""
        b = BatchSpec(tuple(lens), (out,) * len(lens))
        assert b.k_in2 >= b.k_in**2 / b.q - 1e-9


class TestMovingAverage:
    def test_first_observation_initialises(self):
        est = MovingAverageEstimator(alpha=0.5)
        est.observe(BatchSpec.uniform(4, 100, 50))
        assert est.k_in == 400 and est.k_out == 200 and est.q == 4

    def test_ewma_update(self):
        est = MovingAverageEstimator(alpha=0.5)
        est.observe(BatchSpec.uniform(1, 100, 100))
        est.observe(BatchSpec.uniform(1, 200, 100))
        assert est.k_in == pytest.approx(150.0)

    def test_estimate_roundtrip(self):
        est = MovingAverageEstimator()
        est.observe(BatchSpec.uniform(8, 256, 64))
        b = est.estimate()
        assert b.q == 8 and b.k_in == 8 * 256

    def test_estimate_before_observe_raises(self):
        with pytest.raises(RuntimeError):
            MovingAverageEstimator().estimate()

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            MovingAverageEstimator(alpha=0.0)
