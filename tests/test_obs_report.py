"""HTML/text report rendering: self-containment and section coverage.

Acceptance: ``write_report`` produces a *single self-contained* HTML
file — no external assets — with per-link utilisation sparklines, an
SLO attainment table and the alert log; ``render_text`` summarises the
same data for terminals.
"""

from __future__ import annotations

import json
import re
from html.parser import HTMLParser

import pytest

from repro.core.objective import SlaSpec
from repro.obs import AttributionCollector, Observer
from repro.obs.recorder import FlightRecorder, FlightSample
from repro.obs.report import (
    build_report_data,
    render_html,
    render_text,
    write_report,
)
from repro.obs.slo import SLOMonitor, SLOTarget
from repro.serving.metrics import ServingMetrics
from repro.serving.request import RequestState
from repro.workloads.traces import TraceRequest

VOID_TAGS = frozenset(
    {"meta", "br", "img", "input", "link", "hr",
     "circle", "rect", "polyline", "path", "line"}
)


class _WellFormed(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.errors: list[str] = []

    def handle_starttag(self, tag, attrs):
        if tag not in VOID_TAGS:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in VOID_TAGS:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unexpected </{tag}>")
        else:
            self.stack.pop()


def assert_well_formed(html_src: str) -> None:
    p = _WellFormed()
    p.feed(html_src)
    assert not p.errors, p.errors[:3]
    assert not p.stack, f"unclosed tags: {p.stack}"


def finished_request(rid: int, ttft: float, tpot: float) -> RequestState:
    tr = TraceRequest(
        request_id=rid, arrival_time=0.0, input_len=128, output_len=11
    )
    r = RequestState(trace=tr)
    r.prefill_start = 0.0
    r.first_token_time = ttft
    r.kv_done_time = ttft
    r.decode_start = ttft
    r.finish_time = ttft + 10 * tpot
    r.tokens_generated = 11
    return r


def synthetic_observer() -> Observer:
    slo = SLOMonitor(
        [SLOTarget("ttft", 0.5, fast_window_s=12.0, slow_window_s=60.0)]
    )
    rec = FlightRecorder()
    for i in range(20):
        rec.record(
            FlightSample(
                time=float(i),
                prefill_queue=i % 4,
                decode_pending=1,
                decode_active=2 + i % 3,
                prefill_busy=True,
                decode_busy=True,
                kv_used=10 * i,
                kv_capacity=400,
                link_util={"ethernet": (0.1 + 0.01 * i, 0.3 + 0.02 * i)},
                busy_links=[(5, "ethernet", 0.3 + 0.02 * i)],
                policy_tables={
                    "0-1": {
                        "policies": ["ring", "ina@1"],
                        "b": [0.1, 0.2],
                        "selections": [i if i < 10 else 10, max(0, i - 10)],
                    }
                },
                switch_pressure={3: (0.2, 0.4)},
            )
        )
        slo.observe(float(i), "ttft", 5.0)
    slo.evaluate(19.0)
    return Observer(
        slo=slo, recorder=rec, attribution=synthetic_attribution()
    )


def synthetic_attribution() -> AttributionCollector:
    """Three requests fed through the collector's own event hooks."""
    att = AttributionCollector()
    for i in range(3):
        r = finished_request(i, 0.3 + 0.1 * i, 0.05)
        att.on_arrival(r.arrival_time, r)
        att.on_prefill(r.prefill_start, (i,), 0.05)
        att.on_allreduce(
            "prefill", (i,), "hybrid-ina@0", 0.05, 7, "ethernet", 0.6, 0
        )
        att.on_kv_span(0.0, (i,))
        att.on_decode((i,), 0.01)
        att.on_finished(r.finish_time, r)
    return att


def synthetic_metrics() -> ServingMetrics:
    m = ServingMetrics(sla=SlaSpec(ttft=0.5, tpot=0.1))
    for i in range(10):
        m.record_finish(finished_request(i, 0.2 + 0.1 * i, 0.05))
    return m


@pytest.fixture(scope="module")
def report_data():
    return build_report_data(
        observer=synthetic_observer(),
        serving_metrics=synthetic_metrics(),
        title="test run",
        meta={"system": "HeroServe", "seed": 0},
    )


class TestBuildReportData:
    def test_sections_present(self, report_data):
        assert report_data["title"] == "test run"
        assert report_data["summary"]["finished"] == 10.0
        assert report_data["slo"]["targets"]
        assert report_data["slo"]["alerts"]
        assert report_data["flight"]["n_samples"] == 20

    def test_json_serialisable(self, report_data):
        json.dumps(report_data)

    def test_flight_series_and_flips(self, report_data):
        flight = report_data["flight"]
        assert len(flight["times"]) == 20
        assert set(flight["series"]) == {
            "prefill_queue",
            "decode_pending",
            "decode_active",
            "kv_utilization",
        }
        assert flight["top_links"] == [(5, "ethernet", pytest.approx(0.68))]
        assert any(f["to"] == "ina@1" for f in flight["policy_flips"])

    def test_without_observer(self):
        data = build_report_data(serving_metrics=synthetic_metrics())
        assert data["flight"] is None and data["slo"] is None
        html_src = render_html(data)
        assert_well_formed(html_src)
        assert "no SLO targets configured" in html_src
        assert "attribution disabled" in html_src


class TestAttributionSection:
    def test_data_populated(self, report_data):
        att = report_data["attribution"]
        assert att["n_requests"] == 3
        assert "queue_wait" in att["budget"]
        assert att["slowest"]
        worst = att["slowest"][0]
        # request 2 has the largest ttft in the synthetic set
        assert worst["request_id"] == 2
        assert worst["dominant"]
        assert worst["total_s"] == pytest.approx(
            sum(worst["components"].values())
        )

    def test_html_renders_bars_and_table(self, report_data):
        html_src = render_html(report_data)
        assert "Critical-path attribution" in html_src
        assert 'class="cpbar"' in html_src
        assert 'class="cplegend"' in html_src
        assert "Slowest requests" in html_src
        assert "p50 budget" in html_src and "p99 budget" in html_src

    def test_text_renders_budget(self, report_data):
        text = render_text(report_data)
        assert "critical path (3 requests attributed)" in text
        assert "slowest req 2:" in text


class TestRenderHtml:
    def test_well_formed_and_self_contained(self, report_data):
        html_src = render_html(report_data)
        assert_well_formed(html_src)
        assert not re.findall(
            r'(?:src|href)\s*=\s*"(?:https?:|//)', html_src
        )
        assert "@import" not in html_src

    def test_required_sections(self, report_data):
        html_src = render_html(report_data)
        for section in (
            "SLO attainment",
            "Alert log",
            "Cluster timeline",
            "Busiest links",
            "Policy-flip timeline",
        ):
            assert section in html_src, section

    def test_link_sparklines_rendered(self, report_data):
        html_src = render_html(report_data)
        assert "ethernet link util" in html_src
        assert html_src.count('<svg class="spark"') >= 5
        assert 'stroke="var(--series-1)"' in html_src

    def test_alert_rows_rendered(self, report_data):
        html_src = render_html(report_data)
        assert "burning error budget" in html_src
        assert '<span class="status page">' in html_src

    def test_embedded_data_payload(self, report_data):
        html_src = render_html(report_data)
        m = re.search(
            r'<script type="application/json" id="report-data">(.*?)'
            r"</script>",
            html_src,
            re.S,
        )
        assert m
        payload = json.loads(m.group(1))
        assert payload["title"] == "test run"

    def test_dark_mode_tokens(self, report_data):
        html_src = render_html(report_data)
        assert "prefers-color-scheme: dark" in html_src
        assert "--series-1: #2a78d6" in html_src
        assert "--series-1: #3987e5" in html_src


class TestRenderText:
    def test_summary_lines(self, report_data):
        text = render_text(report_data)
        assert "test run" in text
        assert "SLOs:" in text
        assert "alerts:" in text
        assert "flight recorder: 20 samples" in text
        assert "[PAGE]" in text

    def test_no_markup(self, report_data):
        text = render_text(report_data)
        # SLO names legitimately contain "<=", but no HTML should leak
        assert "<div" not in text and "<span" not in text
        assert "</" not in text


class TestWriteReport:
    def test_writes_single_file(self, tmp_path):
        out = tmp_path / "report.html"
        data = write_report(
            str(out),
            observer=synthetic_observer(),
            serving_metrics=synthetic_metrics(),
        )
        assert out.exists()
        assert list(tmp_path.iterdir()) == [out]
        assert data["summary"]["finished"] == 10.0
        assert_well_formed(out.read_text())
