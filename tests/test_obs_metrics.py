"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("reqs", "requests")
        assert c.total() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.total() == 3.5

    def test_labels_separate_series(self):
        c = Counter("policy", "policy picks")
        c.inc(policy="ring", mode="homogeneous")
        c.inc(policy="hybrid", mode="heterogeneous")
        c.inc(policy="hybrid", mode="heterogeneous")
        assert c.value(policy="ring", mode="homogeneous") == 1.0
        assert c.value(policy="hybrid", mode="heterogeneous") == 2.0
        assert c.total() == 3.0

    def test_label_order_irrelevant(self):
        c = Counter("x", "")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self):
        c = Counter("x", "")
        with pytest.raises(ValueError):
            c.inc(-1.0)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("util", "link util")
        g.set(0.3, link="l0")
        g.set(0.7, link="l0")
        assert g.value(link="l0") == 0.7

    def test_unset_label_is_nan(self):
        g = Gauge("util", "")
        assert np.isnan(g.value(link="missing"))


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("lat", "", buckets=[0.1, 1.0, 10.0])
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)
        assert h.mean() == pytest.approx(5.55 / 3)

    def test_quantile_within_one_bucket_of_exact(self):
        """The acceptance criterion: histogram quantiles agree with the
        exact np.percentile within one bucket width."""
        rng = np.random.default_rng(42)
        samples = rng.lognormal(mean=-2.0, sigma=1.0, size=2000)
        h = Histogram("ttft", "", buckets=default_latency_buckets())
        for s in samples:
            h.observe(float(s))
        for q in (0.5, 0.9, 0.99):
            exact = float(np.percentile(samples, q * 100))
            est = h.quantile(q)
            lo, hi = h.bucket_bounds(exact)
            assert lo <= est <= hi, (q, exact, est, lo, hi)

    def test_quantile_empty_is_nan(self):
        h = Histogram("x", "", buckets=[1.0])
        assert np.isnan(h.quantile(0.9))

    def test_buckets_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram("x", "", buckets=[1.0, 0.5])

    def test_labelled_series_independent(self):
        h = Histogram("x", "", buckets=[1.0, 2.0])
        h.observe(0.5, kind="prefill")
        h.observe(1.5, kind="decode")
        assert h.count(kind="prefill") == 1
        assert h.count(kind="decode") == 1
        assert h.sum(kind="prefill") == pytest.approx(0.5)
        assert h.sum(kind="decode") == pytest.approx(1.5)


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        c1 = reg.counter("a", "help")
        c2 = reg.counter("a", "help")
        assert c1 is c2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a", "")
        with pytest.raises(ValueError):
            reg.gauge("a", "")

    def test_snapshot_and_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("reqs", "n requests").inc(3, route="prefill")
        reg.gauge("util", "link util").set(0.5, link="l0")
        h = reg.histogram("lat", "latency", buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        blob = json.loads(reg.to_json())
        names = {m["name"] for m in blob["metrics"]}
        assert {"reqs", "util", "lat"} <= names
        hist = next(m for m in blob["metrics"] if m["name"] == "lat")
        series = hist["values"][0]
        assert series["count"] == 2
        assert "quantiles" in series
        assert series["buckets"][-1]["le"] == "+Inf"
        assert series["buckets"][-1]["count"] == 2

    def test_render_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("reqs", "n requests").inc(2, route="x")
        text = reg.render_text()
        assert "# HELP reqs n requests" in text
        assert "# TYPE reqs counter" in text
        assert 'reqs{route="x"} 2' in text

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a", "").inc()
        path = tmp_path / "metrics.json"
        reg.write_json(str(path))
        assert json.loads(path.read_text())["metrics"]


def test_default_latency_buckets_cover_sim_scales():
    b = default_latency_buckets()
    assert list(b) == sorted(b)
    assert b[0] <= 1e-4
    assert b[-1] >= 100.0
