"""Serving-engine internals: batching, memory admission, load feedback."""

import pytest

from repro.baselines import DISTSERVE, HEROSERVE, build_system
from repro.core import SLA_TESTBED_CHATBOT
from repro.core.controller import CentralController
from repro.llm import OPT_66B, A100, V100, CostModelBank
from repro.network import build_testbed
from repro.serving import EngineConfig, ServingSimulator
from repro.util.rng import make_rng
from repro.workloads import Trace, TraceRequest, generate_sharegpt_trace


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def bank():
    return CostModelBank(OPT_66B, {"A100": A100, "V100": V100})


@pytest.fixture(scope="module")
def system(tb, bank):
    trace = generate_sharegpt_trace(0.5, 20, make_rng(0))
    return build_system(
        DISTSERVE, tb, OPT_66B, bank, SLA_TESTBED_CHATBOT,
        trace.representative_batch(8), arrival_rate=0.5,
    )


def make_sim(system, trace, cfg=None, controller=False):
    ctx = system.fresh_context()
    ctrl = (
        CentralController(ctx=ctx, scheme=system.spec.scheme)
        if controller
        else None
    )
    return ServingSimulator(
        ctx=ctx,
        plan=system.plan,
        model=OPT_66B,
        bank=system.bank,
        sla=system.sla,
        trace=trace,
        controller=ctrl,
        config=cfg,
    )


class TestConstruction:
    def test_requires_linkstate(self, system):
        ctx = system.plan_ctx  # no tracker attached
        with pytest.raises(ValueError, match="LinkLoadTracker"):
            ServingSimulator(
                ctx=ctx, plan=system.plan, model=OPT_66B,
                bank=system.bank, sla=system.sla,
                trace=Trace("t", [TraceRequest(0, 0.0, 8, 2)]),
            )

    def test_kv_capacity_positive(self, system):
        sim = make_sim(system, Trace("t", [TraceRequest(0, 0.0, 8, 2)]))
        assert sim.kv_capacity > 0

    def test_run_without_trace_rejected(self, system):
        sim = make_sim(system, None)
        with pytest.raises(ValueError, match="trace"):
            sim.run()


class TestMemoryAdmission:
    def test_decode_waits_for_memory(self, system):
        """Requests larger than the remaining KV pool queue up, and
        kv_used never exceeds capacity despite the backlog."""
        sim0 = make_sim(system, Trace("t", [TraceRequest(0, 0.0, 8, 2)]))
        cap = sim0.kv_capacity
        big = max(256, cap // 3)
        trace = Trace(
            "t",
            [TraceRequest(i, 0.0, big, 16) for i in range(8)],
        )
        cfg = EngineConfig(
            max_prefill_tokens=10 * big,
            max_prefill_requests=8,
            drain_time=3600,
        )
        sim = make_sim(system, trace, cfg)
        m = sim.run()
        assert m.n_finished == 8
        assert max(s.used_tokens for s in m.memory_timeline) <= cap

    def test_request_bigger_than_pool_wedges_gracefully(self, system):
        """A single request that can never fit stays pending; smaller
        ones around it are not started out of order (FIFO admission),
        and the simulation terminates."""
        sim0 = make_sim(system, Trace("t", [TraceRequest(0, 0.0, 8, 2)]))
        cap = sim0.kv_capacity
        trace = Trace("t", [TraceRequest(0, 0.0, cap + 10, 4)])
        # A 75k-token prefill takes minutes of simulated time; give the
        # request time to clear prefill and hit the admission check.
        cfg = EngineConfig(
            max_prefill_tokens=cap + 100, drain_time=2000
        )
        sim = make_sim(system, trace, cfg)
        m = sim.run()
        assert m.n_finished == 0  # cannot ever be admitted
        assert len(sim.decode_pending) == 1


class TestLoadFeedback:
    def test_no_leaked_registrations(self, system):
        trace = generate_sharegpt_trace(1.0, 20, make_rng(1))
        sim = make_sim(system, trace)
        sim.run()
        assert sim.ctx.linkstate.active_registrations() == 0

    def test_heroserve_controller_load_feedback(self, tb, bank):
        trace = generate_sharegpt_trace(1.0, 20, make_rng(2))
        hero = build_system(
            HEROSERVE, tb, OPT_66B, bank, SLA_TESTBED_CHATBOT,
            trace.representative_batch(8), arrival_rate=1.0,
        )
        sim = make_sim(hero, trace, controller=True)
        sim.run()
        assert sim.ctx.linkstate.active_registrations() == 0
        assert sim.controller.refreshes > 0

    def test_decode_comm_cache_refreshes(self, system):
        trace = generate_sharegpt_trace(1.0, 30, make_rng(3))
        cfg = EngineConfig(comm_refresh_every=2)
        sim = make_sim(system, trace, cfg)
        m = sim.run()
        assert m.decode_iterations > 0
        # The cache must have been populated during the run.
        assert sim._decode_comm_cache is not None


class TestContention:
    def test_contention_metric_bounds(self, system):
        sim = make_sim(
            system, Trace("t", [TraceRequest(0, 0.0, 8, 2)])
        )
        assert 0.0 <= sim._contention() <= 1.0
        sim.ctx.linkstate.register(
            list(sim._eth_links), 5 * 12.5e9
        )
        for _ in range(30):
            sim.ctx.linkstate.poll()
        assert sim._contention() == pytest.approx(1.0)
