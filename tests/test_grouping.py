"""Constrained k-means grouping and random-swap perturbation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    constrained_kmeans_groups,
    group_cohesion_cost,
    group_gpus,
    swap_perturbation,
)
from repro.util.rng import make_rng


def two_cluster_dist(n_per=4, near=1.0, far=100.0):
    """Block distance matrix with two tight clusters."""
    n = 2 * n_per
    d = np.full((n, n), far)
    for blk in (slice(0, n_per), slice(n_per, n)):
        d[blk, blk] = near
    np.fill_diagonal(d, 0.0)
    return d


class TestConstrainedKmeans:
    def test_exact_sizes(self):
        d = two_cluster_dist(4)
        groups = constrained_kmeans_groups(d, 2, 4, make_rng(0))
        assert sorted(len(g) for g in groups) == [4, 4]

    def test_recovers_clusters(self):
        d = two_cluster_dist(4)
        groups = constrained_kmeans_groups(d, 2, 4, make_rng(0))
        sets = [frozenset(g) for g in groups]
        assert frozenset(range(4)) in sets
        assert frozenset(range(4, 8)) in sets

    def test_partial_assignment(self):
        """More points than needed: exactly n_groups*size are placed."""
        d = two_cluster_dist(5)  # 10 points
        groups = constrained_kmeans_groups(d, 2, 3, make_rng(0))
        placed = [i for g in groups for i in g]
        assert len(placed) == len(set(placed)) == 6

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            constrained_kmeans_groups(np.zeros((3, 3)), 2, 2, make_rng(0))


class TestCohesion:
    def test_worst_pair(self):
        d = two_cluster_dist(2)
        assert group_cohesion_cost(d, [0, 1]) == 1.0
        assert group_cohesion_cost(d, [0, 2]) == 100.0

    def test_singleton_zero(self):
        assert group_cohesion_cost(np.zeros((2, 2)), [0]) == 0.0


class TestSwapPerturbation:
    def test_improves_bad_grouping(self):
        # One misplaced member per group: a single improving swap fixes it
        # (the paper's greedy accept-if-better swaps cannot do multi-swap
        # escapes, so the seed grouping must be one swap from optimal).
        d = two_cluster_dist(4)
        bad = [[0, 1, 2, 4], [3, 5, 6, 7]]

        def cost(g):
            return group_cohesion_cost(d, g)

        groups, final, rounds = swap_perturbation(bad, cost, make_rng(0))
        assert final == pytest.approx(2.0)  # both groups tight
        assert rounds >= 1

    def test_no_worsening(self):
        d = two_cluster_dist(4)
        good = [[0, 1, 2, 3], [4, 5, 6, 7]]

        def cost(g):
            return group_cohesion_cost(d, g)

        groups, final, _ = swap_perturbation(good, cost, make_rng(0))
        assert final == pytest.approx(2.0)
        assert [sorted(g) for g in groups] == good

    def test_converges_within_five_rounds(self):
        """The paper's claim: perturbation converges within ~5 rounds."""
        rng = np.random.default_rng(0)
        n = 16
        pts = rng.normal(size=(n, 2))
        d = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        init = [list(range(0, 8)), list(range(8, 16))]
        _, _, rounds = swap_perturbation(
            init, lambda g: group_cohesion_cost(d, g), make_rng(1),
            max_rounds=10,
        )
        assert rounds <= 6

    def test_single_group_noop(self):
        groups, cost, rounds = swap_perturbation(
            [[0, 1]], lambda g: 1.0, make_rng(0)
        )
        assert rounds == 0

    def test_preserves_membership(self):
        d = two_cluster_dist(4)
        init = [[0, 1, 4, 5], [2, 3, 6, 7]]
        groups, _, _ = swap_perturbation(
            init, lambda g: group_cohesion_cost(d, g), make_rng(0)
        )
        assert sorted(i for g in groups for i in g) == list(range(8))


class TestGroupGpus:
    def test_maps_to_gpu_ids(self):
        d = two_cluster_dist(2)
        gpu_ids = [10, 11, 20, 21]
        groups = group_gpus(d, gpu_ids, 2, 2, rng=make_rng(0))
        sets = {frozenset(g) for g in groups}
        assert sets == {frozenset({10, 11}), frozenset({20, 21})}

    def test_spare_pool_can_swap_in(self):
        """A far outlier initially chosen must be swappable for a spare."""
        # 5 points: 0-3 tight cluster, 4 far away. One group of 2.
        d = np.full((5, 5), 1.0)
        d[4, :] = d[:, 4] = 1000.0
        np.fill_diagonal(d, 0.0)
        groups = group_gpus(
            d, [0, 1, 2, 3, 4], 1, 2, rng=make_rng(3), perturb=True
        )
        assert 4 not in groups[0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            group_gpus(np.zeros((3, 3)), [0, 1], 1, 2)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_partition_validity_property(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        pts = rng.normal(size=(n, 3))
        d = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        groups = group_gpus(d, list(range(n)), 3, 4, rng=make_rng(seed))
        flat = [i for g in groups for i in g]
        assert len(flat) == 12 and len(set(flat)) == 12
        assert all(len(g) == 4 for g in groups)
