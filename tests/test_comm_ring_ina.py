"""Ring and INA collective latency models (Eqs. 8-11)."""

import pytest

from repro.comm import (
    CommContext,
    ina_allreduce_time,
    ina_collection_time,
    ina_link_footprint,
    ina_throughput_limit,
    ring_allreduce_time,
    ring_bottleneck_bandwidth,
    ring_link_footprint,
    ring_order,
    select_ina_switch,
)
from repro.network import LinkLoadTracker, build_fig2_example, build_testbed


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def ctx(tb):
    return CommContext.from_built(tb, heterogeneous=False)


@pytest.fixture(scope="module")
def hctx(tb):
    return CommContext.from_built(tb, heterogeneous=True)


class TestRingOrder:
    def test_server_major(self, ctx, tb):
        gpus = tb.topology.gpu_ids()[:8]
        order = ring_order(ctx, list(reversed(gpus)))
        servers = [tb.topology.nodes[g].server for g in order]
        assert servers == sorted(servers)


class TestRing:
    def test_single_gpu_zero(self, ctx, tb):
        assert ring_allreduce_time(ctx, tb.topology.gpu_ids()[:1], 1e6) == 0.0

    def test_zero_bytes_zero(self, ctx, tb):
        assert ring_allreduce_time(ctx, tb.topology.gpu_ids()[:4], 0.0) == 0.0

    def test_empty_group_rejected(self, ctx):
        with pytest.raises(ValueError):
            ring_allreduce_time(ctx, [], 1e6)

    def test_intra_server_fast(self, ctx, tb):
        """Same-server ring rides NVLink in the homogeneous view too."""
        g = tb.topology.gpu_ids()
        t_intra = ring_allreduce_time(ctx, g[:4], 1e6)
        t_cross = ring_allreduce_time(ctx, [g[0], g[1], g[4], g[5]], 1e6)
        assert t_intra < t_cross / 5

    def test_eq11_shape(self, ctx, tb):
        """2(P-1) steps of D/P each: doubling D roughly doubles the time
        (per-hop latency constants keep it slightly sub-linear)."""
        g = tb.topology.gpu_ids()[:8]
        t1 = ring_allreduce_time(ctx, g, 1e6)
        t2 = ring_allreduce_time(ctx, g, 2e6)
        assert 1.5 * t1 < t2 <= 2 * t1

    def test_bottleneck_bandwidth(self, ctx, tb):
        g = tb.topology.gpu_ids()[:8]  # spans two servers
        bw = ring_bottleneck_bandwidth(ctx, g)
        assert 0 < bw <= 12.5e9 * 2  # bounded by Ethernet path

    def test_footprint_nonempty_cross_server(self, ctx, tb):
        g = [tb.topology.gpu_ids()[0], tb.topology.gpu_ids()[4]]
        assert len(ring_link_footprint(ctx, g)) > 0

    def test_footprint_empty_single(self, ctx, tb):
        assert ring_link_footprint(ctx, tb.topology.gpu_ids()[:1]) == []


class TestIna:
    def test_collection_is_max_over_workers(self, ctx, tb):
        g = tb.topology.gpu_ids()[:8]
        sw = tb.access_switches[0]
        t = ina_collection_time(ctx, g, sw, 1e6)
        per = [ctx.path_time(x, sw, 1e6) for x in g]
        assert t == pytest.approx(max(per))

    def test_store_and_forward_sums_phases(self, ctx, tb):
        """pipelined=False is the paper's Fig. 2 sum T_col+T_agg+T_dis."""
        g = tb.topology.gpu_ids()[:8]
        sw = tb.access_switches[0]
        t = ina_allreduce_time(ctx, g, sw, 1e6, pipelined=False)
        t_col = ina_collection_time(ctx, g, sw, 1e6)
        assert t >= 2 * t_col * 0.99

    def test_pipelined_default_faster(self, ctx, tb):
        """The default (streaming) overlaps collection and distribution."""
        g = tb.topology.gpu_ids()[:8]
        sw = tb.access_switches[0]
        assert ina_allreduce_time(ctx, g, sw, 1e6) < ina_allreduce_time(
            ctx, g, sw, 1e6, pipelined=False
        )

    def test_single_gpu_zero(self, ctx, tb):
        sw = tb.access_switches[0]
        assert ina_allreduce_time(
            ctx, tb.topology.gpu_ids()[:1], sw, 1e6
        ) == 0.0

    def test_select_switch_prefers_near(self):
        f = build_fig2_example()
        c = CommContext.from_built(f, heterogeneous=False)
        g = f.server_gpus[0]  # both GPUs on server 0, behind access S2
        sw = select_ina_switch(c, g)
        assert sw == f.access_switches[0]  # not the core switch

    def test_select_switch_no_candidates(self, ctx, tb):
        with pytest.raises(ValueError):
            select_ina_switch(ctx, tb.topology.gpu_ids()[:2], candidates=[])

    def test_footprint_covers_both_directions(self, ctx, tb):
        g = tb.topology.gpu_ids()[:4]
        sw = tb.access_switches[0]
        links = ina_link_footprint(ctx, g, sw)
        topo = tb.topology
        assert any(topo.links[l].dst == sw for l in links)
        assert any(topo.links[l].src == sw for l in links)

    def test_throughput_limit_bounded_by_link(self, ctx, tb):
        g = tb.topology.gpu_ids()[:8]
        sw = tb.access_switches[0]
        lim = ina_throughput_limit(ctx, g, sw, 512, 1024)
        assert lim <= 12.5e9 * 1.01

    def test_linkstate_raises_latency(self, tb):
        """Congesting a collection link slows INA (live B(e) pricing)."""
        ls = LinkLoadTracker(tb.topology)
        c = CommContext.from_built(tb, heterogeneous=False)
        c_live = CommContext(
            built=tb,
            route_table=c.route_table,
            linkstate=ls,
            heterogeneous=False,
        )
        g = tb.topology.gpu_ids()[:8]
        sw = tb.access_switches[0]
        t0 = ina_allreduce_time(c_live, g, sw, 1e6)
        # Saturate every Ethernet link 80%.
        import numpy as np

        from repro.network.topology import LinkKind

        eth = np.where(
            tb.topology.kind_array() == int(LinkKind.ETHERNET)
        )[0]
        ls.register(eth, 0.8 * 12.5e9)
        t1 = ina_allreduce_time(c_live, g, sw, 1e6)
        assert t1 > 2 * t0
