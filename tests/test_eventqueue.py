"""Discrete-event kernel: ordering, cancellation, bounded runs."""

import pytest

from repro.sim import EventQueue


class TestScheduling:
    def test_fires_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(2.0, log.append, "b")
        q.schedule(1.0, log.append, "a")
        q.schedule(3.0, log.append, "c")
        q.run()
        assert log == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        q = EventQueue()
        log = []
        for i in range(5):
            q.schedule(1.0, log.append, i)
        q.run()
        assert log == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(1.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [1.5]
        assert q.now == 1.5

    def test_schedule_at_absolute(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.step()
        ev = q.schedule_at(5.0, lambda: None)
        assert ev.time == 5.0

    def test_negative_delay_raises(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-0.1, lambda: None)

    def test_schedule_at_past_raises(self):
        q = EventQueue()
        q.schedule(2.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        q = EventQueue()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                q.schedule(1.0, chain, n + 1)

        q.schedule(0.0, chain, 0)
        q.run()
        assert log == [0, 1, 2, 3]
        assert q.now == 3.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, log.append, "x")
        q.schedule(2.0, log.append, "y")
        ev.cancel()
        q.run()
        assert log == ["y"]

    def test_len_ignores_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 2.0


class TestBoundedRun:
    def test_run_until(self):
        q = EventQueue()
        log = []
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, log.append, t)
        q.run(until=2.5)
        assert log == [1.0, 2.0]
        assert q.now == 2.5
        q.run()
        assert log == [1.0, 2.0, 3.0]

    def test_run_until_advances_clock_when_empty(self):
        q = EventQueue()
        q.run(until=10.0)
        assert q.now == 10.0

    def test_max_events(self):
        q = EventQueue()
        log = []
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, log.append, t)
        q.run(max_events=2)
        assert log == [1.0, 2.0]

    def test_events_fired_counter(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        q.run()
        assert q.events_fired == 2

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False
