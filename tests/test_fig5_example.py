"""The paper's Fig. 5 worked example, end to end.

Fig. 5 narrates one online-scheduling round on the policy selection
table: GN1-GN3 hold a table with policy c1 (INA via one route) and c2
(ring via another); "suppose B[e5] is lower than B[e3], and policy c1 is
selected. Next, all GPUs report their selection to the centralized
controller [which] instructs all GPUs to update their policy cost tables
synchronously according to Equation 17."

We reproduce the example with a two-policy table over two routes whose
bandwidths we control directly.
"""

import pytest

from repro.core.policy import Policy, PolicyCostTable
from repro.network import LinkLoadTracker, build_testbed


@pytest.fixture
def setup():
    built = build_testbed()
    ls = LinkLoadTracker(built.topology)
    # Two disjoint GPU-to-switch Ethernet routes; call them e5 and e3.
    topo = built.topology
    gpus = topo.gpu_ids()
    e5 = next(
        lid for lid in topo.adj[gpus[0]]
        if topo.links[lid].dst == built.access_switches[0]
    )
    e3 = next(
        lid for lid in topo.adj[gpus[1]]
        if topo.links[lid].dst == built.access_switches[1]
    )
    c1 = Policy(
        policy_id=0, name="c1-ina", mode="ina", switch=0,
        links=(e5,), bottleneck_capacity=12.5e9,
    )
    c2 = Policy(
        policy_id=1, name="c2-ring", mode="ring", switch=None,
        links=(e3,), bottleneck_capacity=12.5e9,
    )
    table = PolicyCostTable([c1, c2], window=0.1)
    return built, ls, table, e5, e3


class TestFig5Narrative:
    def test_lower_utilised_route_selected(self, setup):
        built, ls, table, e5, e3 = setup
        # B[e5] "lower" in the paper means less *utilised* -> more
        # bandwidth available on c1's route.
        ls.register([e3], 0.6 * 12.5e9)   # c2's route is busier
        table.refresh_utilization(ls)
        chosen = table.select(1_000_000)
        assert chosen.name == "c1-ina"

    def test_controller_update_is_synchronous_eq17(self, setup):
        """After selection every policy's b_c moves per Eq. 17 — the
        winner by delta, others by delta * f — in one atomic step."""
        built, ls, table, e5, e3 = setup
        table.refresh_utilization(ls)  # idle: b = 0 everywhere
        d = 1_250_000  # bytes; delta = d / (0.1 * 12.5e9) = 1e-3
        chosen = table.select(d)
        delta = d / (0.1 * 12.5e9)
        assert table.b[chosen.policy_id] == pytest.approx(delta)
        other = 1 - chosen.policy_id
        # Disjoint routes: static sharing ratio is 0 -> no penalty.
        assert table.b[other] == pytest.approx(0.0)

    def test_shared_link_penalty_propagates(self, setup):
        """If c2 shared c1's link, Eq. 17 would bump it by f * delta."""
        built, ls, table, e5, e3 = setup
        c1 = Policy(
            policy_id=0, name="c1", mode="ina", switch=0,
            links=(e5, e3), bottleneck_capacity=12.5e9,
        )
        c2 = Policy(
            policy_id=1, name="c2", mode="ring", switch=None,
            links=(e3,), bottleneck_capacity=12.5e9,
        )
        t = PolicyCostTable([c1, c2], window=0.1)
        d = 1_250_000
        chosen = t.select(d)
        delta = d / (0.1 * 12.5e9)
        other = 1 - chosen.policy_id
        assert t.b[other] == pytest.approx(
            delta * t.f[chosen.policy_id, other]
        )
        assert t.b[other] > 0.0

    def test_periodic_trigger_on_allreduce(self, setup):
        """Selections happen per ncclAllreduce call; over many calls on
        symmetric routes the table alternates — the load balancing the
        figure's table encodes."""
        built, ls, table, e5, e3 = setup
        names = [table.select(1_000_000).name for _ in range(6)]
        assert set(names) == {"c1-ina", "c2-ring"}
