"""Top-level package API: exports and the README quickstart path."""

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_systems_exported(self):
        assert repro.HEROSERVE.name == "HeroServe"
        assert len(repro.ALL_SYSTEMS) == 4

    def test_subpackage_alls_resolve(self):
        import repro.baselines
        import repro.comm
        import repro.core
        import repro.llm
        import repro.network
        import repro.serving
        import repro.switch
        import repro.util
        import repro.workloads

        for mod in (
            repro.baselines,
            repro.comm,
            repro.core,
            repro.llm,
            repro.network,
            repro.serving,
            repro.switch,
            repro.util,
            repro.workloads,
        ):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"


class TestQuickstart:
    @pytest.fixture(scope="class")
    def result(self):
        return repro.quick_testbed(rate=0.5, duration=20.0, seed=1)

    def test_returns_system_and_metrics(self, result):
        system, metrics = result
        assert system.spec.name == "HeroServe"
        assert metrics.n_finished > 0

    def test_metrics_sane(self, result):
        _, metrics = result
        s = metrics.summary()
        assert 0.0 <= s["attainment"] <= 1.0
        assert s["mean_ttft_s"] > 0
        assert s["mean_tpot_s"] > 0

    def test_plan_uses_testbed_gpus(self, result):
        system, _ = result
        gpus = set(system.plan.prefill.gpu_ids) | set(
            system.plan.decode.gpu_ids
        )
        assert gpus <= set(system.built.topology.gpu_ids())
