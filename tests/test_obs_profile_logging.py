"""Phase profiler and logging-config unit tests."""

from __future__ import annotations

import logging
import threading

import pytest

from repro.obs.logging_config import (
    PACKAGE_LOGGER,
    get_logger,
    setup_logging,
    verbosity_to_level,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    PhaseStat,
)


class TestPhaseProfiler:
    def test_record_accumulates(self):
        p = PhaseProfiler()
        p.record("a", 0.1)
        p.record("a", 0.2)
        stat = p.breakdown()["a"]
        assert stat.total == pytest.approx(0.3)
        assert stat.count == 2
        assert stat.mean == pytest.approx(0.15)

    def test_phase_context_times_body(self):
        p = PhaseProfiler()
        with p.phase("work"):
            pass
        times = p.phase_times()
        assert "work" in times
        assert times["work"] >= 0.0

    def test_phase_records_on_exception(self):
        p = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with p.phase("boom"):
                raise RuntimeError("x")
        assert p.breakdown()["boom"].count == 1

    def test_breakdown_sorted_by_total_desc(self):
        p = PhaseProfiler()
        p.record("small", 0.01)
        p.record("big", 1.0)
        assert list(p.breakdown()) == ["big", "small"]

    def test_thread_safety(self):
        p = PhaseProfiler()

        def worker():
            for _ in range(500):
                p.record("t", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert p.breakdown()["t"].count == 2000

    def test_reset(self):
        p = PhaseProfiler()
        p.record("a", 1.0)
        p.reset()
        assert p.phase_times() == {}

    def test_report_mentions_phases(self):
        p = PhaseProfiler()
        p.record("grouping.kmeans", 0.25)
        assert "grouping.kmeans" in p.report()


class TestNullProfiler:
    def test_shared_context_is_allocation_free(self):
        n = NullProfiler()
        assert n.phase("a") is n.phase("b")

    def test_usable_as_context(self):
        with NULL_PROFILER.phase("x"):
            pass
        assert NULL_PROFILER.phase_times() == {}

    def test_disabled_flag(self):
        assert NULL_PROFILER.enabled is False
        assert PhaseProfiler().enabled is True


def test_phase_stat_empty_mean_nan():
    import math

    assert math.isnan(PhaseStat().mean)


@pytest.fixture
def clean_package_logger():
    """Snapshot/restore the package logger so tests do not leak handlers."""
    logger = logging.getLogger(PACKAGE_LOGGER)
    saved_handlers = list(logger.handlers)
    saved_level = logger.level
    yield logger
    logger.handlers = saved_handlers
    logger.setLevel(saved_level)


class TestLogging:
    def test_verbosity_mapping(self):
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(5) == logging.DEBUG

    def test_get_logger_namespaces_bare_names(self):
        assert get_logger("planner").name == "repro.planner"
        assert (
            get_logger("repro.serving.engine").name
            == "repro.serving.engine"
        )

    def test_library_stays_silent_by_default(self, clean_package_logger):
        has_null = any(
            isinstance(h, logging.NullHandler)
            for h in clean_package_logger.handlers
        )
        assert has_null

    def test_setup_idempotent(self, clean_package_logger):
        logger = setup_logging(1)
        n_before = len(logger.handlers)
        logger2 = setup_logging(2)
        assert logger2 is logger
        assert len(logger.handlers) == n_before
        assert logger.level == logging.DEBUG

    def test_setup_emits_to_stream(self, clean_package_logger):
        import io

        buf = io.StringIO()
        setup_logging(1, stream=buf)
        get_logger("test_module").info("hello observability")
        assert "hello observability" in buf.getvalue()
