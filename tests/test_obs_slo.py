"""SLO targets, burn-rate alerting and the alert feedback loop.

Covers the tentpole acceptance criteria:

* the multi-window multi-burn-rate rule fires and resolves on edges,
  guarded by ``min_samples``;
* an SLO-violating workload at a fixed seed deterministically fires at
  least one burn-rate alert that reaches the autoscaler through the
  :class:`AlertSink`;
* page alerts force the autoscaler to scale out and throttle the
  background-traffic injector.
"""

from __future__ import annotations

import pytest

from repro import (
    HEROSERVE,
    SLA_TESTBED_CHATBOT,
    OPT_66B,
    CostModelBank,
    Observer,
    build_system,
    build_testbed,
    generate_sharegpt_trace,
    simulate_trace,
)
from repro.llm import A100, V100
from repro.obs.slo import (
    PAGE,
    TICKET,
    Alert,
    AlertSink,
    SLOMonitor,
    SLOTarget,
    alert_to_dict,
    default_slo_targets,
)
from repro.serving import EngineConfig
from repro.serving.autoscale import AutoScaler
from repro.sim.eventqueue import EventQueue
from repro.util.rng import make_rng


class TestSLOTarget:
    def test_name_and_budget(self):
        t = SLOTarget("ttft", 2.5, objective=0.9)
        assert t.name == "ttft<=2.5s@90%"
        assert t.error_budget == pytest.approx(0.1)
        assert t.is_good(2.5) and not t.is_good(2.6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold_s": 0.0},
            {"objective": 0.0},
            {"objective": 1.0},
            {"fast_window_s": 0.0},
            {"fast_window_s": 7200.0},  # > slow window
            {"ticket_burn": 0.0},
            {"ticket_burn": 9.0},  # > page_burn
        ],
    )
    def test_validation(self, kwargs):
        base = {"metric": "ttft", "threshold_s": 1.0}
        with pytest.raises(ValueError):
            SLOTarget(**{**base, **kwargs})

    def test_default_targets_from_sla(self):
        targets = default_slo_targets(SLA_TESTBED_CHATBOT)
        assert [t.metric for t in targets] == ["ttft", "tpot"]
        assert targets[0].threshold_s == SLA_TESTBED_CHATBOT.ttft
        assert targets[1].threshold_s == SLA_TESTBED_CHATBOT.tpot


def tight_monitor(**kwargs) -> SLOMonitor:
    """A monitor whose windows suit second-scale test timelines."""
    return SLOMonitor(
        [
            SLOTarget(
                "ttft",
                0.5,
                objective=0.9,
                fast_window_s=12.0,
                slow_window_s=60.0,
            )
        ],
        **kwargs,
    )


class TestBurnRates:
    def test_burn_zero_when_all_good(self):
        mon = tight_monitor()
        for i in range(20):
            mon.observe(float(i), "ttft", 0.1)
        fast, slow = mon.burn_rates(20.0)["ttft<=0.5s@90%"]
        assert fast == 0.0 and slow == 0.0

    def test_burn_ceiling_when_all_bad(self):
        mon = tight_monitor()
        for i in range(20):
            mon.observe(float(i), "ttft", 5.0)
        fast, slow = mon.burn_rates(20.0)["ttft<=0.5s@90%"]
        # every request bad => bad fraction 1.0 / budget 0.1 = 10x
        assert fast == pytest.approx(10.0)
        assert slow == pytest.approx(10.0)

    def test_attainment_window(self):
        mon = tight_monitor()
        for i in range(10):
            mon.observe(float(i), "ttft", 0.1 if i % 2 else 5.0)
        att = mon.attainment(10.0, "ttft<=0.5s@90%", 60.0)
        assert att == pytest.approx(0.5)

    def test_old_samples_pruned(self):
        mon = tight_monitor()
        mon.observe(0.0, "ttft", 5.0)
        mon.observe(100.0, "ttft", 0.1)
        # the bad sample at t=0 is outside the 60 s slow window
        _, slow = mon.burn_rates(100.0)["ttft<=0.5s@90%"]
        assert slow == 0.0


class TestAlertEdges:
    def test_min_samples_guard(self):
        mon = tight_monitor(min_samples=5)
        for i in range(4):
            mon.observe(float(i), "ttft", 5.0)
        assert mon.evaluate(4.0) == []

    def test_fires_once_then_resolves(self):
        mon = tight_monitor(min_samples=5)
        for i in range(10):
            mon.observe(float(i), "ttft", 5.0)
        edges = mon.evaluate(10.0)
        assert {(a.severity, a.state) for a in edges} == {
            (PAGE, "firing"),
            (TICKET, "firing"),
        }
        # steady state: no new edges while still burning
        mon.observe(10.2, "ttft", 5.0)
        assert mon.evaluate(10.4) == []
        # recovery: good requests push the short windows clean
        for i in range(200):
            mon.observe(11.0 + i * 0.3, "ttft", 0.1)
        resolved = mon.evaluate(75.0)
        assert {(a.severity, a.state) for a in resolved} == {
            (PAGE, "resolved"),
            (TICKET, "resolved"),
        }
        assert mon.sink.firing() == []

    def test_sink_fanout_and_log(self):
        seen: list[Alert] = []
        sink = AlertSink()
        sink.subscribe(seen.append)
        mon = tight_monitor(sink=sink)
        for i in range(10):
            mon.observe(float(i), "ttft", 5.0)
        mon.evaluate(10.0)
        assert seen and seen == sink.alerts
        assert {a.severity for a in sink.firing()} == {PAGE, TICKET}

    def test_alert_to_dict_round_trip(self):
        mon = tight_monitor()
        for i in range(10):
            mon.observe(float(i), "ttft", 5.0)
        (alert, *_) = mon.evaluate(10.0)
        d = alert_to_dict(alert)
        assert d["slo"] == "ttft<=0.5s@90%"
        assert d["state"] == "firing"
        assert d["message"] == alert.message

    def test_snapshot_shape(self):
        mon = tight_monitor()
        for i in range(10):
            mon.observe(float(i), "ttft", 5.0)
        mon.evaluate(10.0)
        snap = mon.snapshot(10.0)
        (t,) = snap["targets"]
        assert t["paging"] and t["ticketing"]
        assert t["burn_fast"] == pytest.approx(10.0)
        assert t["attainment_slow"] == pytest.approx(0.0)
        assert len(snap["alerts"]) == 2


class _FakeReplica:
    queued_requests = 0
    degraded = False


class _FakeFleet:
    """Just enough surface for the AutoScaler's fleet interactions."""

    def __init__(self, n: int, active: int) -> None:
        self.replicas = [_FakeReplica() for _ in range(n)]
        self.active = [i < active for i in range(n)]
        self.routed = [0] * n

    @property
    def n_active(self) -> int:
        return sum(self.active)

    def set_active(self, idx: int, value: bool) -> None:
        self.active[idx] = value


def page_alert(ts: float, state: str = "firing") -> Alert:
    return Alert(
        time=ts,
        slo="ttft<=0.5s@90%",
        metric="ttft",
        severity=PAGE,
        state=state,
        burn_long=8.0,
        burn_short=9.0,
        window_s=12.0,
        attainment=0.2,
        n_requests=25,
        message="test",
    )


class TestAutoscalerAlertPath:
    def make_scaler(self, n=3, active=1) -> AutoScaler:
        return AutoScaler(
            fleet=_FakeFleet(n, active),
            queue=EventQueue(),
            replica_capacity=10.0,
            window=5.0,
        )

    def test_page_alert_forces_scale_out(self):
        scaler = self.make_scaler()
        scaler.on_alert(page_alert(1.0))
        # observed rate is 0 — without the alert this tick would scale in
        scaler._tick(end=100.0)
        action = scaler.actions[-1]
        assert action.kind == "out"
        assert action.reason == "slo_page_burn"
        assert scaler.fleet.n_active == 2

    def test_unresolved_page_blocks_scale_in(self):
        scaler = self.make_scaler(n=3, active=2)
        scaler.on_alert(page_alert(1.0))
        scaler._tick(end=100.0)  # consumes the pending scale-out
        scaler._tick(end=100.0)
        # still firing: rate 0 would scale in, but the page blocks it
        assert scaler.fleet.n_active == 3
        assert scaler.actions[-1].kind == "hold"

    def test_resolved_page_restores_scale_in(self):
        scaler = self.make_scaler(n=3, active=2)
        scaler.on_alert(page_alert(1.0))
        scaler.on_alert(page_alert(2.0, state="resolved"))
        scaler._tick(end=100.0)  # pending rising edge still honoured
        scaler._tick(end=100.0)
        assert scaler.actions[-1].kind == "in"

    def test_ticket_alerts_only_logged(self):
        scaler = self.make_scaler()
        ticket = Alert(
            time=1.0, slo="s", metric="ttft", severity=TICKET,
            state="firing", burn_long=3.0, burn_short=3.0,
            window_s=60.0, attainment=0.7, n_requests=50, message="t",
        )
        scaler.on_alert(ticket)
        scaler._tick(end=100.0)
        assert scaler.alerts_received == [ticket]
        assert scaler.actions[-1].kind != "out"

    def test_subscribe_wires_sink(self):
        scaler = self.make_scaler()
        sink = AlertSink()
        scaler.subscribe(sink)
        sink.emit(page_alert(1.0))
        assert scaler.alerts_received


class TestDeterministicAlertFiring:
    """Acceptance: an SLO-violating workload fires alerts reproducibly."""

    def run_violating(self) -> tuple[SLOMonitor, AutoScaler]:
        built = build_testbed()
        bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
        trace = generate_sharegpt_trace(2.0, 30.0, make_rng(11))
        system = build_system(
            HEROSERVE,
            built,
            OPT_66B,
            bank,
            SLA_TESTBED_CHATBOT,
            trace.representative_batch(8),
            arrival_rate=2.0,
        )
        # An impossible TTFT bound: every request violates, so the burn
        # rate pins at the 10x ceiling and the page condition must trip.
        slo = SLOMonitor(
            [
                SLOTarget(
                    "ttft",
                    1e-4,
                    fast_window_s=10.0,
                    slow_window_s=30.0,
                )
            ]
        )
        scaler = AutoScaler(
            fleet=_FakeFleet(3, 1),
            queue=EventQueue(),
            replica_capacity=10.0,
            window=5.0,
        )
        scaler.subscribe(slo.sink)
        simulate_trace(
            system,
            trace,
            engine_config=EngineConfig(observer=Observer(slo=slo)),
        )
        return slo, scaler

    def test_alert_reaches_autoscaler_sink(self):
        slo, scaler = self.run_violating()
        firing = [a for a in slo.sink.alerts if a.firing]
        assert firing, "violating workload must fire at least one alert"
        assert any(a.severity == PAGE for a in firing)
        assert scaler.alerts_received  # fan-out reached the subscriber
        assert scaler._page_pending or scaler._pages_active > 0

    def test_firing_is_deterministic(self):
        slo_a, _ = self.run_violating()
        slo_b, _ = self.run_violating()
        key = [
            (a.time, a.slo, a.severity, a.state) for a in slo_a.sink.alerts
        ]
        assert key == [
            (a.time, a.slo, a.severity, a.state) for a in slo_b.sink.alerts
        ]
