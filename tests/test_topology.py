"""Topology graph model: construction, invariants, queries."""

import numpy as np
import pytest

from repro.network import LinkKind, NodeKind, Topology
from repro.util import units


@pytest.fixture
def small_topo():
    t = Topology(name="t")
    g0 = t.add_gpu("g0", server=0, memory_bytes=units.gib(40))
    g1 = t.add_gpu("g1", server=0, memory_bytes=units.gib(40))
    g2 = t.add_gpu("g2", server=1, memory_bytes=units.gib(32))
    s = t.add_switch("s0")
    t.add_link(g0, g1, LinkKind.NVLINK, units.gbyte_per_s(300))
    t.add_link(g0, s, LinkKind.ETHERNET, units.gbit_per_s(100))
    t.add_link(g1, s, LinkKind.ETHERNET, units.gbit_per_s(100))
    t.add_link(g2, s, LinkKind.ETHERNET, units.gbit_per_s(100))
    return t, (g0, g1, g2, s)


class TestConstruction:
    def test_node_ids_sequential(self, small_topo):
        t, (g0, g1, g2, s) = small_topo
        assert (g0, g1, g2, s) == (0, 1, 2, 3)

    def test_links_paired(self, small_topo):
        t, _ = small_topo
        for link in t.links:
            twin = t.links[link.reverse_id]
            assert (twin.src, twin.dst) == (link.dst, link.src)

    def test_full_duplex_counts(self, small_topo):
        t, _ = small_topo
        assert t.n_links == 8  # 4 physical links x 2 directions

    def test_self_loop_rejected(self, small_topo):
        t, (g0, *_ ) = small_topo
        with pytest.raises(ValueError):
            t.add_link(g0, g0, LinkKind.NVLINK, 1e9)

    def test_nonpositive_capacity_rejected(self, small_topo):
        t, (g0, g1, *_ ) = small_topo
        with pytest.raises(ValueError):
            t.add_link(g0, g1, LinkKind.ETHERNET, 0.0)

    def test_gpu_requires_memory(self):
        t = Topology()
        with pytest.raises(ValueError):
            t.add_gpu("g", server=0, memory_bytes=0)

    def test_default_hop_latency_by_kind(self, small_topo):
        t, _ = small_topo
        nv = [l for l in t.links if l.kind == LinkKind.NVLINK][0]
        eth = [l for l in t.links if l.kind == LinkKind.ETHERNET][0]
        assert nv.hop_latency < eth.hop_latency


class TestQueries:
    def test_gpu_ids(self, small_topo):
        t, (g0, g1, g2, s) = small_topo
        assert t.gpu_ids() == [g0, g1, g2]

    def test_switch_ids(self, small_topo):
        t, (_, _, _, s) = small_topo
        assert t.switch_ids() == [s]
        assert t.switch_ids(core=True) == []
        assert t.switch_ids(core=False) == [s]

    def test_gpus_on_server(self, small_topo):
        t, (g0, g1, g2, _) = small_topo
        assert t.gpus_on_server(0) == [g0, g1]
        assert t.gpus_on_server(1) == [g2]

    def test_servers(self, small_topo):
        t, _ = small_topo
        assert t.servers() == [0, 1]

    def test_neighbors(self, small_topo):
        t, (g0, g1, g2, s) = small_topo
        assert set(t.neighbors(s)) == {g0, g1, g2}

    def test_find_link(self, small_topo):
        t, (g0, g1, *_ ) = small_topo
        link = t.find_link(g0, g1)
        assert link is not None and link.kind == LinkKind.NVLINK
        assert t.find_link(2, 0) is None  # g2 and g0 not adjacent


class TestArrays:
    def test_capacity_array(self, small_topo):
        t, _ = small_topo
        cap = t.capacity_array()
        assert cap.shape == (t.n_links,)
        assert np.all(cap > 0)

    def test_kind_array_matches_links(self, small_topo):
        t, _ = small_topo
        kinds = t.kind_array()
        for i, link in enumerate(t.links):
            assert kinds[i] == int(link.kind)

    def test_endpoints_arrays(self, small_topo):
        t, _ = small_topo
        src, dst = t.endpoints_arrays()
        assert src[0] == t.links[0].src
        assert dst[0] == t.links[0].dst


class TestValidate:
    def test_valid_passes(self, small_topo):
        t, _ = small_topo
        t.validate()

    def test_cross_server_nvlink_rejected(self, small_topo):
        t, (g0, _, g2, _) = small_topo
        t.add_link(g0, g2, LinkKind.NVLINK, 1e9)
        with pytest.raises(ValueError, match="NVLINK crossing"):
            t.validate()

    def test_cross_server_pcie_rejected(self, small_topo):
        t, (g0, _, g2, _) = small_topo
        t.add_link(g0, g2, LinkKind.PCIE, 1e9)
        with pytest.raises(ValueError, match="PCIE crossing"):
            t.validate()

    def test_summary_mentions_counts(self, small_topo):
        t, _ = small_topo
        s = t.summary()
        assert "3 GPUs" in s and "2 servers" in s
