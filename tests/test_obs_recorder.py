"""Flight recorder: ring semantics, live sampling, export, parity.

Covers the tentpole acceptance criteria:

* enabling the recorder leaves ``ServingMetrics.summary()`` byte-
  identical to an unobserved run at the same seed;
* per-link gauges honour ``LINK_GAUGE_MIN_UTIL`` (quiet links are
  suppressed);
* live samples carry queue depths, link utilisation, policy tables and
  INA switch pressure, and round-trip through JSONL.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    HEROSERVE,
    SLA_TESTBED_CHATBOT,
    OPT_66B,
    CostModelBank,
    Observer,
    build_system,
    build_testbed,
    generate_sharegpt_trace,
    simulate_trace,
)
from repro.llm import A100, V100
from repro.obs.observer import LINK_GAUGE_MIN_UTIL
from repro.obs.recorder import FlightRecorder, FlightSample
from repro.obs.slo import SLOMonitor, SLOTarget
from repro.serving import EngineConfig
from repro.switch.dataplane import SwitchDataplane, UpdatePacket, quantize
from repro.util.rng import make_rng

RATE = 1.0
DURATION = 30.0
SEED = 3


def make_sample(
    t: float,
    selections=(0, 0),
    policies=("ring", "ina@1"),
    link_util=None,
    busy=(),
) -> FlightSample:
    return FlightSample(
        time=t,
        prefill_queue=1,
        decode_pending=2,
        decode_active=3,
        prefill_busy=True,
        decode_busy=False,
        kv_used=50,
        kv_capacity=100,
        link_util=link_util or {"ethernet": (0.2, 0.6)},
        busy_links=list(busy),
        policy_tables={
            "0-1": {
                "policies": list(policies),
                "b": [0.1, 0.2],
                "selections": list(selections),
            }
        },
    )


class TestRing:
    def test_capacity_eviction_and_count(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(make_sample(float(i)))
        assert len(rec) == 4
        assert rec.samples_total == 10
        assert rec.evicted == 6
        assert [s.time for s in rec.samples()] == [6.0, 7.0, 8.0, 9.0]

    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0}, {"top_k_links": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FlightRecorder(**kwargs)

    def test_series(self):
        rec = FlightRecorder()
        for i in range(3):
            rec.record(make_sample(float(i)))
        times, vals = rec.series("decode_active")
        assert times == [0.0, 1.0, 2.0]
        assert vals == [3.0, 3.0, 3.0]
        _, kv = rec.series("kv_utilization")
        assert kv == [0.5, 0.5, 0.5]

    def test_link_kind_series_stats(self):
        rec = FlightRecorder()
        rec.record(make_sample(0.0, link_util={"nvlink": (0.1, 0.3)}))
        rec.record(make_sample(1.0, link_util={"ethernet": (0.2, 0.6)}))
        t, mean = rec.link_kind_series("nvlink", "mean")
        assert (t, mean) == ([0.0], [0.1])
        t, mx = rec.link_kind_series("ethernet", "max")
        assert (t, mx) == ([1.0], [0.6])

    def test_top_links_by_peak(self):
        rec = FlightRecorder(top_k_links=2)
        rec.record(make_sample(0.0, busy=[(1, "ethernet", 0.4)]))
        rec.record(
            make_sample(
                1.0, busy=[(1, "ethernet", 0.9), (2, "nvlink", 0.5)]
            )
        )
        assert rec.top_links() == [
            (1, "ethernet", 0.9),
            (2, "nvlink", 0.5),
        ]


class TestPolicyFlips:
    def test_flip_detected_on_dominant_change(self):
        rec = FlightRecorder()
        rec.record(make_sample(0.0, selections=(0, 0)))
        rec.record(make_sample(1.0, selections=(5, 0)))  # ring dominant
        rec.record(make_sample(2.0, selections=(6, 1)))  # still ring? no:
        # delta (1, 1): tie -> argmax picks first (ring), no flip
        rec.record(make_sample(3.0, selections=(6, 9)))  # ina takes over
        flips = rec.policy_flips()
        assert flips == [
            {"time": 3.0, "group": "0-1", "from": "ring", "to": "ina@1"}
        ]

    def test_no_flip_without_activity(self):
        rec = FlightRecorder()
        for i in range(5):
            rec.record(make_sample(float(i), selections=(4, 0)))
        assert rec.policy_flips() == []


class TestDataplaneSampling:
    def test_occupancy_tracks_table(self):
        dp = SwitchDataplane(n_slots=4, slot_elements=8)
        assert dp.occupancy() == 0.0
        dp.process_update(
            UpdatePacket(1, 0, 0, quantize(np.ones(8))), fanout=2
        )
        assert dp.occupancy() == pytest.approx(0.25)
        # second contribution completes the chunk and frees the slot
        dp.process_update(
            UpdatePacket(1, 0, 1, quantize(np.ones(8))), fanout=2
        )
        assert dp.occupancy() == 0.0

    def test_attached_counters_in_samples(self):
        rec = FlightRecorder()
        dp = SwitchDataplane(n_slots=4, slot_elements=8)
        dp.process_update(
            UpdatePacket(1, 0, 0, quantize(np.ones(8))), fanout=2
        )
        rec.attach_dataplane(7, dp)
        s = make_sample(0.0)
        s.aggregators = {sw: d.counters() for sw, d in rec._dataplanes.items()}
        rec.record(s)
        agg = rec.samples()[0].aggregators[7]
        assert agg["pending"] == 1
        assert agg["free_slots"] == 3
        assert json.loads(rec.to_jsonl())["aggregators"]["7"] == agg


@pytest.fixture(scope="module")
def recorded_run():
    """HeroServe run with recorder + SLO attached, plus its plain twin."""
    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    trace = generate_sharegpt_trace(RATE, DURATION, make_rng(SEED))
    system = build_system(
        HEROSERVE,
        built,
        OPT_66B,
        bank,
        SLA_TESTBED_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=RATE,
    )
    observer = Observer(
        slo=SLOMonitor([SLOTarget("ttft", SLA_TESTBED_CHATBOT.ttft)]),
        recorder=FlightRecorder(),
    )
    observed = simulate_trace(
        system, trace, engine_config=EngineConfig(observer=observer)
    )
    plain = simulate_trace(system, trace)
    return built, observer, observed, plain


class TestLiveSampling:
    def test_recorder_parity_with_unobserved_run(self, recorded_run):
        _, _, observed, plain = recorded_run
        assert json.dumps(observed.summary(), sort_keys=True) == json.dumps(
            plain.summary(), sort_keys=True
        )

    def test_samples_populated(self, recorded_run):
        _, observer, _, _ = recorded_run
        rec = observer.recorder
        assert len(rec) > 10
        times = [s.time for s in rec.samples()]
        assert times == sorted(times)
        assert any(s.link_util for s in rec.samples())
        assert any(s.policy_tables for s in rec.samples())

    def test_switch_pressure_covers_ina_switches(
        self, recorded_run
    ):
        built, observer, _, _ = recorded_run
        ina = set(built.ina_capable_switches())
        sampled = {
            sw
            for s in observer.recorder.samples()
            for sw in s.switch_pressure
        }
        assert sampled == ina
        for s in observer.recorder.samples():
            for mean_u, max_u in s.switch_pressure.values():
                assert 0.0 <= mean_u <= max_u

    def test_jsonl_round_trip(self, recorded_run, tmp_path):
        _, observer, _, _ = recorded_run
        path = tmp_path / "flight.jsonl"
        observer.recorder.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == len(observer.recorder)
        first = json.loads(lines[0])
        assert {
            "time",
            "prefill_queue",
            "link_util",
            "policy_tables",
            "switch_pressure",
        } <= set(first)


class TestLinkGaugeThreshold:
    def test_quiet_links_suppressed(self, recorded_run):
        built, _, _, _ = recorded_run
        from repro.network.linkstate import LinkLoadTracker

        ls = LinkLoadTracker(built.topology)
        # one clearly busy link, everything else idle
        busy_id = int(np.argmax(ls.capacity))
        ls.register([busy_id], 0.5 * float(ls.capacity[busy_id]))
        obs = Observer()
        obs.sample_links(0.0, ls)
        gauge = obs.metrics.get("repro_link_utilization")
        exported = {dict(k)["link"] for k in gauge._values}
        assert exported == {str(busy_id)}

    def test_threshold_boundary(self, recorded_run):
        built, _, _, _ = recorded_run
        from repro.network.linkstate import LinkLoadTracker

        ls = LinkLoadTracker(built.topology)
        lid = int(np.argmax(ls.capacity))
        # just below the export threshold: nothing exported
        ls.register(
            [lid], 0.5 * LINK_GAUGE_MIN_UTIL * float(ls.capacity[lid])
        )
        obs = Observer()
        obs.sample_links(0.0, ls)
        assert not obs.metrics.get("repro_link_utilization")._values


class TestEventLog:
    def test_log_event_and_filter(self):
        rec = FlightRecorder(capacity=8)
        rec.log_event(1.0, "fault_injected", kind="switch_down", target=0)
        rec.log_event(2.0, "failover", group="0-1", direction="ina->ring")
        assert rec.events_total == 2
        assert len(rec.events()) == 2
        assert rec.events("failover")[0]["direction"] == "ina->ring"
        assert rec.events("nothing") == []

    def test_events_ring_bounded(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.log_event(float(i), "fault_injected")
        assert len(rec.events()) == 4
        assert rec.events_total == 10

    def test_jsonl_interleaves_time_ordered(self):
        rec = FlightRecorder(capacity=8)
        rec.record(make_sample(1.0))
        rec.log_event(1.5, "failover", group="0-1", direction="ina->ring")
        rec.record(make_sample(2.0))
        rows = [json.loads(line) for line in rec.to_jsonl().splitlines()]
        assert [r["time"] for r in rows] == [1.0, 1.5, 2.0]
        assert "event" not in rows[0]
        assert rows[1]["event"] == "failover"

    def test_jsonl_without_events_unchanged(self):
        rec = FlightRecorder(capacity=8)
        rec.record(make_sample(1.0))
        with_events = FlightRecorder(capacity=8)
        with_events.record(make_sample(1.0))
        assert rec.to_jsonl() == with_events.to_jsonl()
