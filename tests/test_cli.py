"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "OPT-66B" in out
        assert "testbed" in out

    def test_plan_hybrid(self, capsys):
        assert main(["plan", "--scheme", "hybrid", "--rate", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "scheme=hybrid" in out
        assert "prefill" in out

    def test_plan_ring(self, capsys):
        assert main(["plan", "--scheme", "ring", "--rate", "0.3"]) == 0
        assert "scheme=ring" in capsys.readouterr().out

    def test_plan_unknown_model(self):
        with pytest.raises(KeyError):
            main(["plan", "--model", "GPT-7"])

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "--scheme", "teleportation"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_quickstart_small(self, capsys):
        assert main(
            ["quickstart", "--rate", "0.4", "--duration", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "attainment" in out

    def test_compare_small(self, capsys):
        assert main(
            ["compare", "--rate", "0.8", "--duration", "20"]
        ) == 0
        out = capsys.readouterr().out
        for name in ("DistServe", "DS-ATP", "DS-SwitchML", "HeroServe"):
            assert name in out
