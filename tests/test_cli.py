"""The ``python -m repro`` command-line interface."""

import json
import logging

import pytest

from repro.__main__ import main
from repro.obs.logging_config import PACKAGE_LOGGER


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "OPT-66B" in out
        assert "testbed" in out

    def test_plan_hybrid(self, capsys):
        assert main(["plan", "--scheme", "hybrid", "--rate", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "scheme=hybrid" in out
        assert "prefill" in out

    def test_plan_ring(self, capsys):
        assert main(["plan", "--scheme", "ring", "--rate", "0.3"]) == 0
        assert "scheme=ring" in capsys.readouterr().out

    def test_plan_unknown_model(self):
        with pytest.raises(KeyError):
            main(["plan", "--model", "GPT-7"])

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "--scheme", "teleportation"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_quickstart_small(self, capsys):
        assert main(
            ["quickstart", "--rate", "0.4", "--duration", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "attainment" in out

    def test_compare_small(self, capsys):
        assert main(
            ["compare", "--rate", "0.8", "--duration", "20"]
        ) == 0
        out = capsys.readouterr().out
        for name in ("DistServe", "DS-ATP", "DS-SwitchML", "HeroServe"):
            assert name in out


class TestCliObservability:
    def test_quickstart_writes_trace_and_metrics(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(
            [
                "quickstart",
                "--rate",
                "0.4",
                "--duration",
                "20",
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert f"wrote {trace_path}" in out
        assert f"wrote {metrics_path}" in out

        blob = json.loads(trace_path.read_text())
        names = {e["name"] for e in blob["traceEvents"]}
        assert any(n.startswith("prefill[") for n in names)
        assert any(n.startswith("allreduce:") for n in names)

        metrics = json.loads(metrics_path.read_text())
        metric_names = {m["name"] for m in metrics["metrics"]}
        assert "repro_ttft_seconds" in metric_names
        assert "repro_policy_selections_total" in metric_names

    def test_quickstart_jsonl_trace(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main(
            [
                "quickstart",
                "--rate",
                "0.4",
                "--duration",
                "10",
                "--trace-out",
                str(trace_path),
            ]
        ) == 0
        lines = trace_path.read_text().strip().splitlines()
        assert lines
        assert all(json.loads(line)["name"] for line in lines)

    def test_metrics_text_exposition(self, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        assert main(
            [
                "quickstart",
                "--rate",
                "0.4",
                "--duration",
                "10",
                "--metrics-out",
                str(metrics_path),
            ]
        ) == 0
        text = metrics_path.read_text()
        assert "# TYPE repro_ttft_seconds histogram" in text
        assert "repro_ttft_seconds_count" in text

    def test_plan_phase_breakdown_with_metrics_out(
        self, capsys, tmp_path
    ):
        assert main(
            [
                "plan",
                "--rate",
                "0.3",
                "--metrics-out",
                str(tmp_path / "m.json"),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "planner phase breakdown" in out
        assert "grouping.kmeans" in out

    def test_compare_suffixes_outputs_per_system(self, tmp_path):
        assert main(
            [
                "compare",
                "--rate",
                "0.8",
                "--duration",
                "10",
                "--metrics-out",
                str(tmp_path / "m.json"),
            ]
        ) == 0
        written = sorted(p.name for p in tmp_path.iterdir())
        assert written == [
            "m-distserve.json",
            "m-ds-atp.json",
            "m-ds-switchml.json",
            "m-heroserve.json",
        ]

    def test_verbose_flag_configures_logging(self, tmp_path):
        logger = logging.getLogger(PACKAGE_LOGGER)
        saved_handlers = list(logger.handlers)
        saved_level = logger.level
        try:
            assert main(
                ["-v", "quickstart", "--rate", "0.4", "--duration", "10"]
            ) == 0
            assert logger.level == logging.INFO
        finally:
            logger.handlers = saved_handlers
            logger.setLevel(saved_level)


class TestCliFaults:
    def test_quickstart_with_fault_plan(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {
                    "seed": 0,
                    "events": [
                        {
                            "time": 2.0,
                            "kind": "switch_down",
                            "target": "switch#0",
                            "duration": 4.0,
                        }
                    ],
                }
            )
        )
        assert main(
            [
                "quickstart",
                "--rate", "0.5",
                "--duration", "15",
                "--fault-plan", str(plan),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "faults_injected" in out
        assert "degraded_seconds" in out

    def test_quickstart_mtbf_generates_chaos(self, capsys):
        assert main(
            [
                "quickstart",
                "--rate", "0.5",
                "--duration", "20",
                "--mtbf", "8",
                "--mttr", "2",
            ]
        ) == 0
        assert "faults_injected" in capsys.readouterr().out

    def test_demo_writes_flight_and_report(self, capsys, tmp_path):
        out_html = tmp_path / "demo.html"
        flight = tmp_path / "flight.jsonl"
        assert main(
            [
                "demo",
                "--duration", "10",
                "--out", str(out_html),
                "--flight-out", str(flight),
            ]
        ) == 0
        text = capsys.readouterr().out
        assert "recorded failovers" in text
        assert out_html.exists()
        lines = [
            json.loads(line)
            for line in flight.read_text().splitlines()
        ]
        assert any(
            row.get("event") == "failover" for row in lines
        )


class TestCliExplain:
    def test_explain_prints_waterfalls(self, capsys):
        assert main(
            [
                "explain",
                "--rate", "0.8",
                "--duration", "15",
                "--slowest", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "critical-path budget" in out
        assert "slowest 2 requests" in out
        assert "dominant:" in out
        # names the concrete network element the comm priced through
        assert "via link" in out

    def test_explain_with_fault_plan(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {
                    "seed": 0,
                    "events": [
                        {
                            "time": 2.0,
                            "kind": "server_down",
                            "target": "server#0",
                            "duration": 2.0,
                        }
                    ],
                }
            )
        )
        assert main(
            [
                "explain",
                "--rate", "1.0",
                "--duration", "12",
                "--fault-plan", str(plan),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "kv_retry_backoff" in out

    def test_report_includes_attribution_section(
        self, capsys, tmp_path
    ):
        out_html = tmp_path / "report.html"
        assert main(
            [
                "report",
                "--rate", "0.8",
                "--duration", "15",
                "--out", str(out_html),
            ]
        ) == 0
        text = capsys.readouterr().out
        assert "critical path" in text
        html_text = out_html.read_text()
        assert "Critical-path attribution" in html_text
        assert "cpbar" in html_text
        assert "Slowest requests" in html_text
