"""Simulator self-profiling (:mod:`repro.obs.selfprof`).

The BENCH_engine measurement harness: host wall-clock accumulators for
the engine hot path. The load-bearing property is *non-interference* —
a run measured through :class:`SelfProfilingObserver` must produce a
byte-identical ``summary()`` to an unobserved run, because the profiler
only times handlers, it never participates in simulation decisions.
"""

from __future__ import annotations

import json

import inspect

from repro import quick_testbed
from repro.obs import Observer, SelfProfiler, SelfProfilingObserver
from repro.obs.observer import NullObserver
from repro.serving import EngineConfig
from repro.sim.eventqueue import EventQueue


class TestSelfProfilerUnit:
    def test_accumulates_sections_and_events(self):
        sp = SelfProfiler()
        sp.add("engine.link_load", 0.5)
        sp.add("engine.link_load", 0.25)
        sp.event("decode_iter", 0.1)
        assert sp.sections["engine.link_load"] == [0.75, 2]
        assert sp.handlers["decode_iter"] == [0.1, 1]

    def test_run_bracketing_and_rates(self):
        sp = SelfProfiler()
        sp.run_started()
        sp.run_finished(n_finished=10, events_fired=100)
        assert sp.runs == 1
        assert sp.requests_finished == 10
        assert sp.events_fired == 100
        assert sp.wall_s > 0.0
        assert sp.requests_per_s > 0.0
        assert sp.events_per_s > sp.requests_per_s

    def test_zero_wall_clock_rates(self):
        sp = SelfProfiler()
        assert sp.requests_per_s == 0.0
        assert sp.events_per_s == 0.0

    def test_snapshot_shape(self):
        sp = SelfProfiler()
        sp.add("a", 0.1)
        sp.event("t", 0.2)
        sp.run_started()
        sp.run_finished(1, 2)
        snap = sp.snapshot()
        for key in (
            "runs",
            "wall_s",
            "events_fired",
            "events_per_s",
            "requests_finished",
            "requests_per_s",
            "sections",
            "event_handlers",
        ):
            assert key in snap, key
        assert snap["sections"]["a"] == {"total_s": 0.1, "count": 1.0}
        # snapshot is JSON-serialisable as-is (the bench file format)
        json.dumps(snap)

    def test_report_text(self):
        sp = SelfProfiler()
        sp.add("engine.batch_formation", 0.002)
        sp.event("decode_iter", 0.004)
        text = sp.report()
        assert "engine.batch_formation" in text
        assert "decode_iter" in text
        assert "us/call" in text


class TestEventQueueProfiling:
    def test_handler_time_by_tag(self):
        q = EventQueue()
        fired = []
        q.schedule(0.1, fired.append, "a", tag="alpha")
        q.schedule(0.2, fired.append, "b", tag="alpha")
        q.schedule(0.3, fired.append, "c")  # untagged
        sp = SelfProfiler()
        q.run(profiler=sp)
        assert fired == ["a", "b", "c"]
        assert sp.handlers["alpha"][1] == 2
        assert sp.handlers["untagged"][1] == 1
        assert all(acc[0] >= 0.0 for acc in sp.handlers.values())

    def test_no_profiler_records_nothing(self):
        q = EventQueue()
        q.schedule(0.1, lambda: None, tag="alpha")
        q.run()
        assert q.events_fired == 1


class TestEngineIntegration:
    def run_profiled(self):
        observer = SelfProfilingObserver()
        _, metrics = quick_testbed(
            rate=1.0,
            duration=20.0,
            seed=0,
            engine_config=EngineConfig(observer=observer),
        )
        return observer.selfprof, metrics

    def test_hot_path_sections_populated(self):
        sp, metrics = self.run_profiled()
        snap = sp.snapshot()
        assert snap["requests_finished"] == metrics.n_finished
        assert snap["requests_per_s"] > 0.0
        for section in (
            "engine.batch_formation",
            "engine.link_load",
            "engine.controller_tick",
            "controller.poll",
            "controller.refresh",
        ):
            assert section in snap["sections"], section
        for tag in ("arrival", "prefill_done", "decode_iter"):
            assert tag in snap["event_handlers"], tag

    def test_profiled_run_byte_identical(self):
        """The throughput number prices the simulator, not telemetry —
        and the profiler must not perturb the simulation at all."""
        _, profiled = self.run_profiled()
        _, plain = quick_testbed(rate=1.0, duration=20.0, seed=0)
        assert json.dumps(
            profiled.summary(), sort_keys=True
        ) == json.dumps(plain.summary(), sort_keys=True)

    def test_full_observer_carries_selfprof(self):
        """Observer(selfprof=...) profiles an otherwise-observed run."""
        sp = SelfProfiler()
        observer = Observer(selfprof=sp)
        _, metrics = quick_testbed(
            rate=1.0,
            duration=15.0,
            seed=0,
            engine_config=EngineConfig(observer=observer),
        )
        assert sp.requests_finished == metrics.n_finished
        assert "engine.batch_formation" in sp.sections


class TestSnapshotReportRoundTrip:
    """The snapshot IS the bench file format — it must survive JSON and
    the human-readable report must cover everything in it."""

    def populated(self) -> SelfProfiler:
        observer = SelfProfilingObserver()
        quick_testbed(
            rate=1.0,
            duration=15.0,
            seed=0,
            engine_config=EngineConfig(observer=observer),
        )
        return observer.selfprof

    def test_snapshot_survives_json(self):
        snap = self.populated().snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_report_names_every_snapshot_entry(self):
        sp = self.populated()
        snap = sp.snapshot()
        text = sp.report()
        for section in snap["sections"]:
            assert section in text, section
        for tag in snap["event_handlers"]:
            assert tag in text, tag
        # headline rates appear with the snapshot's values
        assert f"{snap['requests_per_s']:,.0f}" in text


class TestObserverHookParity:
    """Every hook the engine may call on a full :class:`Observer` must
    exist on :class:`NullObserver` (and thus on
    :class:`SelfProfilingObserver`) — a hook added to one but not the
    other crashes unobserved runs, the worst possible failure mode for
    an observability layer."""

    @staticmethod
    def public_hooks(cls) -> set[str]:
        return {
            name
            for name, member in inspect.getmembers(
                cls, predicate=inspect.isfunction
            )
            if not name.startswith("_")
        }

    def test_null_observer_covers_observer_hooks(self):
        missing = self.public_hooks(Observer) - self.public_hooks(
            NullObserver
        )
        assert not missing, missing

    def test_selfprofiling_observer_is_a_null_observer(self):
        obs = SelfProfilingObserver()
        assert isinstance(obs, NullObserver)
        assert obs.enabled is False  # engine stays on the no-op path
        assert obs.selfprof is not None
        missing = self.public_hooks(Observer) - self.public_hooks(
            SelfProfilingObserver
        )
        assert not missing, missing

    def test_null_hooks_are_callable_no_ops(self):
        obs = NullObserver()
        obs.request_arrival(0.0, None)
        obs.request_dropped(0.0, None)
        obs.request_finished(0.0, None)
        obs.prefill_span()
        obs.decode_span()
        obs.kv_transfer_span()
        obs.allreduce_span()
        obs.policy_selected(0, "p", "m")
        obs.controller_tick(0.0, True)
        obs.sample_links(0.0, None)
        obs.kv_sample(0.0, 0, 1)
        obs.engine_tick(0.0, None)
        obs.fault_injected(0.0, "k", 0)
        obs.health_transition(0.0, "k", 0, "s")
        obs.failover(0.0, 0, "d")
        obs.kv_retry(0.0, 1, 0.1)
        obs.requests_requeued(0.0, 1)
        obs.run_finished(0.0, None)
        with obs.phase("x"):
            pass
        obs.export()
