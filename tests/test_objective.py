"""Queueing model and SLA objective (Eq. 1, P-K formula)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SLA_TESTBED_CHATBOT,
    ServiceEstimate,
    SlaSpec,
    evaluate_objective,
    queueing_delay,
)


def est(tn_p=0.1, tc_p=0.5, tn_d=0.01, tc_d=0.03, tf=0.2, out=100.0):
    return ServiceEstimate(
        t_network_prefill=tn_p,
        t_compute_prefill=tc_p,
        t_network_decode=tn_d,
        t_compute_decode=tc_d,
        t_kv_transfer=tf,
        mean_output_tokens=out,
    )


class TestQueueing:
    def test_pk_formula(self):
        lam, s = 0.5, 1.0
        rho = lam * s
        expected = lam * s**2 / (2 * (1 - rho))
        assert queueing_delay(lam, s) == pytest.approx(expected)

    def test_unstable_infinite(self):
        assert queueing_delay(1.0, 1.0) == float("inf")
        assert queueing_delay(2.0, 1.0) == float("inf")

    def test_zero_rate_zero_delay(self):
        assert queueing_delay(0.0, 5.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            queueing_delay(-1.0, 1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        lam=st.floats(0.01, 10.0),
        s=st.floats(0.001, 10.0),
    )
    def test_monotone_in_load(self, lam, s):
        if lam * s >= 0.99:
            return
        d1 = queueing_delay(lam, s)
        d2 = queueing_delay(lam * 1.01, s)
        assert d2 >= d1


class TestServiceEstimate:
    def test_ttft_eq3(self):
        e = est()
        assert e.t_prefill == pytest.approx(0.6)

    def test_tpot_eq4_amortises_kv(self):
        e = est()
        assert e.t_decode == pytest.approx(0.01 + 0.03 + 0.2 / 100.0)

    def test_t_serve_eq2(self):
        e = est()
        expected = 0.6 + 100 * 0.04 + 0.2
        assert e.t_serve == pytest.approx(expected)

    def test_kv_amortisation_floor(self):
        e = est(out=0.5)  # degenerate tiny outputs
        assert math.isfinite(e.t_decode)


class TestEvaluate:
    def test_sla_pass(self):
        r = evaluate_objective(
            est(), 0.1, SLA_TESTBED_CHATBOT, concurrency=32
        )
        assert r.sla_ok
        assert r.scalability > 0

    def test_ttft_violation(self):
        r = evaluate_objective(
            est(tc_p=5.0), 0.1, SLA_TESTBED_CHATBOT, concurrency=32
        )
        assert not r.sla_ok

    def test_tpot_violation(self):
        r = evaluate_objective(
            est(tc_d=0.3), 0.1, SLA_TESTBED_CHATBOT, concurrency=32
        )
        assert not r.sla_ok

    def test_unstable_fails(self):
        r = evaluate_objective(est(), 100.0, SLA_TESTBED_CHATBOT)
        assert not r.sla_ok
        assert r.scalability == 0.0

    def test_concurrency_stabilises(self):
        """Batching width turns an unstable queue into a stable one."""
        lam = 2.0
        r1 = evaluate_objective(est(), lam, SLA_TESTBED_CHATBOT, 1)
        r64 = evaluate_objective(est(), lam, SLA_TESTBED_CHATBOT, 64)
        assert not r1.sla_ok and r64.sla_ok

    def test_h_is_reciprocal(self):
        r = evaluate_objective(est(), 0.1, SLA_TESTBED_CHATBOT, 64)
        assert r.scalability == pytest.approx(1.0 / r.t_request)

    def test_bad_concurrency(self):
        with pytest.raises(ValueError):
            evaluate_objective(est(), 0.1, SLA_TESTBED_CHATBOT, 0)

    def test_sla_spec_validation(self):
        with pytest.raises(ValueError):
            SlaSpec(ttft=0, tpot=1)
