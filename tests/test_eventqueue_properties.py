"""Property-based tests of the DES kernel against a reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import EventQueue

# An operation is (delay_or_time, cancel_index_or_None).
ops_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 100.0),
        st.one_of(st.none(), st.integers(0, 50)),
    ),
    min_size=1,
    max_size=50,
)


class TestAgainstReferenceModel:
    @settings(max_examples=60, deadline=None)
    @given(ops=ops_strategy)
    def test_fire_order_matches_sorted_model(self, ops):
        """Whatever is scheduled up front fires in (time, insertion)
        order, cancelled events excepted."""
        q = EventQueue()
        fired: list[int] = []
        events = []
        for i, (delay, _) in enumerate(ops):
            events.append(
                q.schedule(delay, fired.append, i)
            )
        # Cancel the requested subset.
        cancelled = set()
        for i, (_, cancel) in enumerate(ops):
            if cancel is not None and cancel < len(events):
                events[cancel].cancel()
                cancelled.add(cancel)
        q.run()
        expected = [
            i
            for i, (delay, _) in sorted(
                enumerate(ops), key=lambda t: (t[1][0], t[0])
            )
            if i not in cancelled
        ]
        assert fired == expected

    @settings(max_examples=40, deadline=None)
    @given(
        ops=ops_strategy,
        cutoff=st.floats(0.0, 100.0),
    )
    def test_run_until_is_prefix(self, ops, cutoff):
        """run(until=t) fires exactly the events with time <= t, and a
        subsequent run() completes the rest — no loss, no duplication."""
        q = EventQueue()
        fired: list[int] = []
        for i, (delay, _) in enumerate(ops):
            q.schedule(delay, fired.append, i)
        q.run(until=cutoff)
        n_early = len(fired)
        for i in fired:
            assert ops[i][0] <= cutoff
        q.run()
        assert len(fired) == len(ops)
        assert sorted(fired) == list(range(len(ops)))
        # The early prefix stayed a prefix.
        assert all(
            ops[i][0] <= cutoff for i in fired[:n_early]
        )

    @settings(max_examples=40, deadline=None)
    @given(ops=ops_strategy)
    def test_clock_monotone(self, ops):
        q = EventQueue()
        stamps: list[float] = []
        for delay, _ in ops:
            q.schedule(delay, lambda: stamps.append(q.now))
        q.run()
        assert stamps == sorted(stamps)

    @settings(max_examples=30, deadline=None)
    @given(ops=ops_strategy)
    def test_events_fired_counter_exact(self, ops):
        q = EventQueue()
        for delay, _ in ops:
            q.schedule(delay, lambda: None)
        q.run()
        assert q.events_fired == len(ops)
