"""Cost model: fitting quality, Eq. 12/13 scaling behaviour."""

import pytest

from repro.llm import (
    TEST_GPU,
    TINY,
    A100,
    V100,
    BatchSpec,
    CostModelBank,
    SyntheticExecutor,
    fit_compute_model,
    get_hardware,
    profile_decode,
    profile_prefill,
)


@pytest.fixture(scope="module")
def tiny_model():
    return fit_compute_model(TINY, TEST_GPU, seed=0)


class TestProfiler:
    def test_prefill_samples_features(self):
        samples = profile_prefill(TINY, TEST_GPU, p_tens=2, seed=0)
        assert all(s.features.shape == (3,) for s in samples)
        assert all(s.latency > 0 for s in samples)

    def test_decode_samples(self):
        samples = profile_decode(TINY, TEST_GPU, 2, 2, seed=0)
        assert all(s.latency > 0 for s in samples)

    def test_executor_deterministic_given_seed(self):
        b = BatchSpec.uniform(2, 64, 8)
        a = SyntheticExecutor(TINY, TEST_GPU, seed=1).prefill_time(b, 1)
        c = SyntheticExecutor(TINY, TEST_GPU, seed=1).prefill_time(b, 1)
        assert a == c

    def test_executor_tp_speedup(self):
        b = BatchSpec.uniform(2, 512, 8)
        ex = SyntheticExecutor(TINY, TEST_GPU, jitter=0.0)
        assert ex.prefill_time(b, 4) < ex.prefill_time(b, 1)

    def test_decode_memory_bound_floor(self):
        """At q=1 decode time is dominated by the weight-read floor."""
        ex = SyntheticExecutor(TINY, TEST_GPU, jitter=0.0)
        t1 = ex.decode_time(BatchSpec.uniform(1, 8, 1), 8, 1)
        t2 = ex.decode_time(BatchSpec.uniform(2, 8, 1), 16, 1)
        # Doubling the batch shouldn't double the time (bandwidth bound).
        assert t2 < 1.5 * t1

    def test_get_hardware(self):
        assert get_hardware("A100") is A100
        with pytest.raises(KeyError):
            get_hardware("H100")

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            SyntheticExecutor(TINY, TEST_GPU, jitter=0.6)


class TestFit:
    def test_coefficients_nonnegative(self, tiny_model):
        assert all(c >= 0 for c in tiny_model.coeffs.as_array())

    def test_fit_accuracy_against_executor(self, tiny_model):
        """Fitted model predicts fresh noise-free measurements within 20%."""
        ex = SyntheticExecutor(TINY, TEST_GPU, jitter=0.0)
        b = BatchSpec.uniform(3, 200, 10)
        pred = tiny_model.prefill_time(b, 2)
        truth = ex.prefill_time(b, 2)
        assert pred == pytest.approx(truth, rel=0.2)

    def test_fit_cache_returns_same_object(self):
        a = fit_compute_model(TINY, TEST_GPU, seed=0)
        b = fit_compute_model(TINY, TEST_GPU, seed=0)
        assert a is b

    def test_different_hardware_different_model(self):
        a = fit_compute_model(TINY, TEST_GPU, seed=0)
        b = fit_compute_model(TINY, A100, seed=0)
        assert a is not b


class TestEq12Eq13Scaling:
    def test_prefill_scales_down_with_tp(self, tiny_model):
        b = BatchSpec.uniform(4, 256, 16)
        assert tiny_model.prefill_time(b, 4) < tiny_model.prefill_time(b, 1)

    def test_prefill_grows_with_kin(self, tiny_model):
        b1 = BatchSpec.uniform(4, 128, 16)
        b2 = BatchSpec.uniform(4, 512, 16)
        assert tiny_model.prefill_time(b2, 2) > tiny_model.prefill_time(b1, 2)

    def test_prefill_quadratic_term(self, tiny_model):
        """Same K_in, more skewed lengths -> higher K_in2 -> slower."""
        uniform = BatchSpec((100, 100), (1, 1))
        skewed = BatchSpec((190, 10), (1, 1))
        assert tiny_model.prefill_time(
            skewed, 1
        ) >= tiny_model.prefill_time(uniform, 1)

    def test_decode_scales_with_context(self, tiny_model):
        t1 = tiny_model.decode_time(4, 100, 1, 1)
        t2 = tiny_model.decode_time(4, 10_000, 1, 1)
        assert t2 > t1

    def test_decode_scales_down_with_parallelism(self, tiny_model):
        t1 = tiny_model.decode_time(4, 1000, 1, 1)
        t2 = tiny_model.decode_time(4, 1000, 2, 2)
        assert t2 < t1

    def test_validation(self, tiny_model):
        b = BatchSpec.uniform(1, 8, 1)
        with pytest.raises(ValueError):
            tiny_model.prefill_time(b, 0)
        with pytest.raises(ValueError):
            tiny_model.decode_time(0, 10, 1, 1)
        with pytest.raises(ValueError):
            tiny_model.decode_time(1, 10, 0, 1)


class TestBank:
    def test_group_times_take_slowest(self):
        bank = CostModelBank(TINY, {"TEST": TEST_GPU, "V100": V100}, seed=0)
        b = BatchSpec.uniform(2, 128, 8)
        slow = bank.group_prefill_time(["TEST"], b, 1)
        fast = bank.group_prefill_time(["V100"], b, 1)
        mixed = bank.group_prefill_time(["TEST", "V100"], b, 1)
        assert mixed == max(slow, fast)

    def test_unknown_hardware_raises(self):
        bank = CostModelBank(TINY, {"TEST": TEST_GPU}, seed=0)
        with pytest.raises(KeyError):
            bank.for_hardware("A100")

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            CostModelBank(TINY, {})
