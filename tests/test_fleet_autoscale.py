"""Replica fleets and the §VII rapid scale-in/out mechanism."""

import numpy as np
import pytest

from repro.baselines import DISTSERVE, HEROSERVE, build_fleet
from repro.core import SLA_SIM_CHATBOT
from repro.core.plan import ParallelConfig
from repro.llm import OPT_175B, A100, CostModelBank
from repro.network import build_xtracks_cluster
from repro.serving import (
    AutoScaler,
    EngineConfig,
    estimate_replica_capacity,
)
from repro.util.rng import make_rng
from repro.workloads import Trace, TraceRequest, generate_sharegpt_trace
from repro.workloads.sharegpt import ShareGPTConfig, sample_lengths

FORCED = ParallelConfig(16, 1, 16, 1)


@pytest.fixture(scope="module")
def built():
    return build_xtracks_cluster(2, n_units=2)  # 12 servers x 8 GPUs


@pytest.fixture(scope="module")
def bank():
    return CostModelBank(OPT_175B, {"A100": A100})


def make_fleet(built, bank, spec=HEROSERVE, n=3, rate=1.5):
    trace = generate_sharegpt_trace(rate, 20, make_rng(0))
    return build_fleet(
        spec,
        built,
        OPT_175B,
        bank,
        SLA_SIM_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=rate,
        n_replicas=n,
        forced_parallel=FORCED,
    )


class TestFleetConstruction:
    def test_disjoint_replica_gpus(self, built, bank):
        fleet = make_fleet(built, bank)
        seen: set[int] = set()
        for sim in fleet.replicas:
            gpus = set(sim.plan.prefill.gpu_ids) | set(
                sim.plan.decode.gpu_ids
            )
            assert not gpus & seen
            seen |= gpus

    def test_shared_queue_and_linkstate(self, built, bank):
        fleet = make_fleet(built, bank)
        assert all(s.queue is fleet.queue for s in fleet.replicas)
        assert all(
            s.ctx.linkstate is fleet.replicas[0].ctx.linkstate
            for s in fleet.replicas
        )

    def test_too_many_replicas_rejected(self, built, bank):
        with pytest.raises(ValueError, match="servers"):
            make_fleet(built, bank, n=7)

    def test_bad_replica_count(self, built, bank):
        with pytest.raises(ValueError):
            make_fleet(built, bank, n=0)


class TestFleetRun:
    def test_conservation(self, built, bank):
        fleet = make_fleet(built, bank, n=2)
        trace = generate_sharegpt_trace(1.0, 30, make_rng(1))
        fm = fleet.run(trace)
        assert fm.n_finished == len(trace)
        assert sum(fm.routed) == len(trace)

    def test_routing_spreads_under_load(self, built, bank):
        fleet = make_fleet(built, bank, n=3, rate=3.0)
        trace = generate_sharegpt_trace(3.0, 40, make_rng(2))
        fm = fleet.run(trace)
        used = sum(1 for r in fm.routed if r > 0)
        assert used >= 2  # backlog forces spillover

    def test_inactive_replica_gets_nothing(self, built, bank):
        fleet = make_fleet(built, bank, n=2)
        fleet.set_active(1, False)
        trace = generate_sharegpt_trace(1.0, 20, make_rng(3))
        fm = fleet.run(trace)
        assert fm.routed[1] == 0
        assert fm.n_finished == len(trace)

    def test_cannot_deactivate_last(self, built, bank):
        fleet = make_fleet(built, bank, n=2)
        fleet.set_active(0, False)
        with pytest.raises(ValueError, match="last active"):
            fleet.set_active(1, False)

    def test_metrics_aggregation(self, built, bank):
        fleet = make_fleet(built, bank, n=2)
        trace = generate_sharegpt_trace(1.0, 20, make_rng(4))
        fm = fleet.run(trace)
        assert 0.0 <= fm.attainment() <= 1.0
        assert fm.mean_ttft() > 0
        assert fm.mean_tpot() > 0


class TestAutoScaler:
    def ramp_trace(self):
        rng = make_rng(5)
        times = np.concatenate(
            [
                np.sort(rng.uniform(0, 60, 30)),       # ~0.5 r/s
                np.sort(rng.uniform(60, 180, 360)),    # ~3 r/s burst
                np.sort(rng.uniform(180, 240, 30)),    # ~0.5 r/s
            ]
        )
        ins, outs = sample_lengths(len(times), ShareGPTConfig(), rng)
        return Trace(
            "ramp",
            [
                TraceRequest(i, float(t), int(a), int(b))
                for i, (t, a, b) in enumerate(zip(times, ins, outs))
            ],
        )

    def test_scales_out_and_back(self, built, bank):
        fleet = make_fleet(built, bank, n=3, rate=2.0)
        cap = estimate_replica_capacity(
            fleet.replicas[0].plan,
            generate_sharegpt_trace(
                2.0, 20, make_rng(0)
            ).representative_batch(8),
        )
        fleet.set_active(1, False)
        fleet.set_active(2, False)
        scaler = AutoScaler(
            fleet, fleet.queue, replica_capacity=cap, window=10.0
        )
        scaler.start(horizon=400.0)
        fm = fleet.run(self.ramp_trace())
        events = scaler.scale_events()
        assert fm.n_finished == sum(fm.routed)
        assert any(e.kind == "out" for e in events)
        assert any(e.kind == "in" for e in events)
        peak = max(e.active_after for e in events)
        final = events[-1].active_after
        assert peak >= 2
        assert final < peak  # scaled back down after the burst

    def test_never_drops_work(self, built, bank):
        fleet = make_fleet(built, bank, n=2, rate=2.0)
        cap = 0.5  # deliberately tiny: constant flapping pressure
        scaler = AutoScaler(
            fleet, fleet.queue, replica_capacity=cap, window=5.0
        )
        scaler.start(horizon=200.0)
        trace = generate_sharegpt_trace(1.5, 40, make_rng(6))
        fm = fleet.run(trace)
        assert fm.n_finished == len(trace)

    def test_drain_guard_holds_backlogged_victim(self, built, bank):
        # Scale-in pressure (observed rate 0), but the would-be victim
        # still has queued work and its only peer is degraded: draining
        # would strand the backlog, so the scaler holds instead.
        fleet = make_fleet(built, bank, n=2)
        scaler = AutoScaler(
            fleet, fleet.queue, replica_capacity=10.0, window=5.0
        )
        fleet.replicas[0].submit(TraceRequest(0, 0.0, 16, 4))
        fleet.replicas[1].submit(TraceRequest(1, 0.0, 16, 4))
        fleet.replicas[1].submit(TraceRequest(2, 0.0, 16, 4))
        fleet.replicas[1]._prefill_down = True
        scaler._tick(end=0.0)
        assert fleet.n_active == 2
        act = scaler.actions[-1]
        assert act.kind == "hold"
        assert act.reason == "drain_guard"

    def test_drain_proceeds_with_healthy_peer(self, built, bank):
        # Same backlog, but the peer is healthy: scale-in goes ahead.
        fleet = make_fleet(built, bank, n=2)
        scaler = AutoScaler(
            fleet, fleet.queue, replica_capacity=10.0, window=5.0
        )
        fleet.replicas[0].submit(TraceRequest(0, 0.0, 16, 4))
        fleet.replicas[1].submit(TraceRequest(1, 0.0, 16, 4))
        fleet.replicas[1].submit(TraceRequest(2, 0.0, 16, 4))
        scaler._tick(end=0.0)
        assert fleet.n_active == 1
        assert scaler.actions[-1].kind == "in"

    def test_validation(self, built, bank):
        fleet = make_fleet(built, bank, n=2)
        with pytest.raises(ValueError):
            AutoScaler(fleet, fleet.queue, replica_capacity=0.0)
        with pytest.raises(ValueError):
            AutoScaler(
                fleet, fleet.queue, replica_capacity=1.0,
                low_water=0.9, high_water=0.8,
            )
        with pytest.raises(ValueError):
            estimate_replica_capacity(
                fleet.replicas[0].plan,
                generate_sharegpt_trace(
                    1.0, 10, make_rng(0)
                ).representative_batch(4),
                utilization=0.0,
            )


class TestFaultAwareRouting:
    def test_degraded_replica_skipped(self, built, bank):
        fleet = make_fleet(built, bank, n=2)
        # replica 0 would win JSQ (equal queues -> lowest index), but a
        # failed prefill server makes it degraded, so routing avoids it.
        fleet.replicas[0]._prefill_down = True
        idx = fleet.route(TraceRequest(0, 0.0, 16, 4))
        assert idx == 1

    def test_all_degraded_falls_back_to_jsq(self, built, bank):
        fleet = make_fleet(built, bank, n=2)
        for sim in fleet.replicas:
            sim._prefill_down = True
        idx = fleet.route(TraceRequest(1, 0.0, 16, 4))
        assert idx == 0  # queued on the least-loaded degraded replica

    def test_recovered_replica_routable_again(self, built, bank):
        fleet = make_fleet(built, bank, n=2)
        fleet.replicas[0]._prefill_down = True
        fleet.route(TraceRequest(2, 0.0, 16, 4))
        fleet.replicas[0]._prefill_down = False
        idx = fleet.route(TraceRequest(3, 0.0, 16, 4))
        assert idx == 0  # healthy again and now the shortest queue

    def test_all_degraded_event_is_edge_triggered(self, built, bank):
        events = []

        class _Obs:
            def fleet_all_degraded(self, ts, n):
                events.append((ts, n))

        fleet = make_fleet(built, bank, n=2)
        fleet.observer = _Obs()
        for sim in fleet.replicas:
            sim._prefill_down = True
        fleet.route(TraceRequest(0, 0.0, 16, 4))
        fleet.route(TraceRequest(1, 0.0, 16, 4))
        assert events == [(0.0, 2)]  # once per episode, not per request
        # Recovery clears the edge; a relapse emits a second event.
        fleet.replicas[0]._prefill_down = False
        fleet.route(TraceRequest(2, 0.0, 16, 4))
        fleet.replicas[0]._prefill_down = True
        fleet.route(TraceRequest(3, 0.0, 16, 4))
        assert len(events) == 2
