"""summary() exports the diagnostic counters and tail percentiles.

Regression tests for two historical gaps: the ``dropped`` counter was
tracked but never exported, and the summary stopped at p90 although the
SLO-burn view production dashboards watch is p99.
"""

import numpy as np
import pytest

from repro.core import SLA_TESTBED_CHATBOT
from repro.serving import ServingMetrics
from repro.serving.request import RequestState
from repro.workloads import TraceRequest


def finished(rid, arrival, ttft, tpot, out_len=11):
    r = RequestState(TraceRequest(rid, arrival, 100, out_len))
    r.first_token_time = arrival + ttft
    r.finish_time = r.first_token_time + tpot * (out_len - 1)
    return r


def make_metrics(n=200):
    rng = np.random.default_rng(0)
    m = ServingMetrics(sla=SLA_TESTBED_CHATBOT)
    for i in range(n):
        m.record_finish(
            finished(
                i,
                float(i),
                float(rng.lognormal(-1.0, 0.8)),
                float(rng.lognormal(-3.0, 0.5)),
            )
        )
    return m


class TestSummaryKeys:
    def test_dropped_exported(self):
        m = make_metrics(5)
        m.dropped = 3
        assert m.summary()["dropped"] == 3.0

    def test_p99_keys_present(self):
        s = make_metrics().summary()
        assert "p99_ttft_s" in s
        assert "p99_tpot_s" in s

    def test_existing_keys_preserved(self):
        s = make_metrics().summary()
        for key in (
            "finished",
            "attainment",
            "mean_ttft_s",
            "p90_ttft_s",
            "mean_tpot_s",
            "p90_tpot_s",
            "mean_mem_util",
            "prefill_batches",
            "decode_iterations",
        ):
            assert key in s, key


class TestP99:
    def test_p99_matches_numpy(self):
        m = make_metrics()
        ttfts = np.array([r.ttft for r in m.finished])
        tpots = np.array([r.tpot for r in m.finished])
        assert m.p99_ttft() == pytest.approx(np.percentile(ttfts, 99))
        assert m.p99_tpot() == pytest.approx(np.percentile(tpots, 99))

    def test_p99_at_least_p90(self):
        m = make_metrics()
        assert m.p99_ttft() >= m.p90_ttft()
        assert m.p99_tpot() >= m.p90_tpot()

    def test_empty_is_nan(self):
        m = ServingMetrics(sla=SLA_TESTBED_CHATBOT)
        assert np.isnan(m.p99_ttft())
        assert np.isnan(m.p99_tpot())
