"""Candidate generation (Algorithm 1 step 1)."""

import numpy as np
import pytest

from repro.core import generate_candidates, min_gpus_required, phase_configs
from repro.llm import OPT_66B, OPT_175B, TINY
from repro.util import units


def mems(n, gib):
    return np.full(n, units.gib(gib))


class TestMinGpus:
    def test_formula(self):
        m = mems(8, 40)
        need = min_gpus_required(OPT_66B, m, 0.65)
        assert need == int(
            np.ceil(OPT_66B.param_bytes / (units.gib(40) * 0.65))
        )

    def test_tiny_fits_one(self):
        assert min_gpus_required(TINY, mems(4, 40), 0.65) == 1

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            min_gpus_required(TINY, np.array([]), 0.5)
        with pytest.raises(ValueError):
            min_gpus_required(TINY, mems(2, 40), 1.5)


class TestPhaseConfigs:
    def test_tp_divides_heads(self):
        for pt, _ in phase_configs(OPT_66B, 16, mems(16, 40), 0.65):
            assert OPT_66B.n_heads % pt == 0

    def test_memory_filter(self):
        """Every returned config's shard fits the given GPUs."""
        m = mems(8, 40)
        for pt, pp in phase_configs(OPT_66B, 8, m, 0.65):
            shard = OPT_66B.param_bytes / (pt * pp)
            assert shard <= units.gib(40) * 0.65 + 1

    def test_opt66b_tp4_excluded_on_40g(self):
        cfgs = phase_configs(OPT_66B, 16, mems(16, 40), 0.65)
        assert (4, 1) not in cfgs   # 51 GB shard demand > 26 GB budget
        assert (8, 1) in cfgs

    def test_respects_available_count(self):
        cfgs = phase_configs(OPT_66B, 8, mems(8, 40), 0.65)
        assert all(pt * pp <= 8 for pt, pp in cfgs)

    def test_sorted_fewest_gpus_first(self):
        cfgs = phase_configs(OPT_175B, 48, mems(48, 40), 0.65)
        sizes = [pt * pp for pt, pp in cfgs]
        assert sizes == sorted(sizes)

    def test_pp_bounded_by_layers(self):
        cfgs = phase_configs(TINY, 64, mems(64, 40), 0.65, max_pipe=8)
        assert all(pp <= TINY.n_layers for _, pp in cfgs)


class TestGenerateCandidates:
    def test_cap_respected(self):
        space = generate_candidates(
            OPT_66B, mems(16, 40), mems(16, 40), max_candi=5
        )
        assert len(space.candidates) <= 5

    def test_stratified_keeps_extremes(self):
        """Truncation must keep both the smallest and largest configs."""
        full = generate_candidates(
            OPT_175B, mems(48, 40), mems(48, 40), max_candi=10_000
        )
        capped = generate_candidates(
            OPT_175B, mems(48, 40), mems(48, 40), max_candi=10
        )
        assert capped.candidates[0] == full.candidates[0]
        assert capped.candidates[-1] == full.candidates[-1]

    def test_empty_when_infeasible(self):
        """OPT-175B cannot fit on four 40GB GPUs."""
        space = generate_candidates(OPT_175B, mems(4, 40), mems(4, 40))
        assert space.candidates == ()
        assert space.min_gpus_prefill > 4

    def test_min_counts_reported(self):
        space = generate_candidates(OPT_66B, mems(16, 40), mems(16, 32))
        # 132 GB of weights over 40 GiB GPUs at r_frac=0.65 -> >= 5 GPUs;
        # the smaller V100 pool needs at least as many.
        assert space.min_gpus_prefill >= 5
        assert space.min_gpus_decode >= space.min_gpus_prefill

    def test_bad_max_candi(self):
        with pytest.raises(ValueError):
            generate_candidates(
                TINY, mems(2, 40), mems(2, 40), max_candi=0
            )
