"""Hybrid heterogeneous all-reduce: the HeroServe collective."""

import pytest

from repro.comm import (
    CommContext,
    elect_leader,
    group_by_server,
    hybrid_allreduce_time,
    hybrid_link_footprint,
    ina_allreduce_time,
    local_reduce_time,
    plan_hybrid_allreduce,
    ring_allreduce_time,
    select_ina_switch,
)
from repro.network import LinkKind, build_fig2_example, build_testbed


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


@pytest.fixture(scope="module")
def hctx(tb):
    return CommContext.from_built(tb, heterogeneous=True)


class TestGrouping:
    def test_group_by_server(self, hctx, tb):
        g = tb.topology.gpu_ids()[:8]
        by = group_by_server(hctx, g)
        assert set(by) == {0, 1}
        assert all(len(v) == 4 for v in by.values())

    def test_elect_leader_prefers_direct_port(self, hctx, tb):
        """The leader should have a direct link to the target switch."""
        members = tb.server_gpus[0]
        sw = tb.access_switches[0]
        leader = elect_leader(hctx, members, sw)
        assert tb.topology.find_link(leader, sw) is not None

    def test_local_reduce_zero_for_leader_only(self, hctx, tb):
        g = [tb.topology.gpu_ids()[0]]
        assert local_reduce_time(hctx, g, g[0], 1e6) == 0.0

    def test_local_reduce_uses_nvlink(self, hctx, tb):
        members = tb.server_gpus[0]
        t = local_reduce_time(hctx, members, members[0], 1e6)
        # 1MB over 300 GB/s NVLink ~ 3.3 us; far under an Ethernet hop.
        assert t < 20e-6


class TestPlan:
    def test_single_server_pure_nvlink(self, hctx, tb):
        decision = plan_hybrid_allreduce(hctx, tb.server_gpus[0], 1e6)
        assert decision.ethernet_mode == "none"
        assert decision.stage2_time == 0.0
        assert decision.total_time < 50e-6

    def test_multi_server_has_ethernet_stage(self, hctx, tb):
        g = tb.topology.gpu_ids()[:8]
        decision = plan_hybrid_allreduce(hctx, g, 1e6)
        assert decision.ethernet_mode in ("ina", "ring")
        assert len(decision.leaders) == 2
        assert decision.stage2_time > 0

    def test_hybrid_beats_homogeneous_ina(self, tb):
        """The headline Fig. 2 claim: hybrid < homogeneous INA latency."""
        homo = CommContext.from_built(tb, heterogeneous=False)
        het = CommContext.from_built(tb, heterogeneous=True)
        g = tb.topology.gpu_ids()[:8]
        sw = select_ina_switch(homo, g)
        t_homo = ina_allreduce_time(homo, g, sw, 1e6)
        t_hyb = hybrid_allreduce_time(het, g, 1e6)
        assert t_hyb < t_homo

    def test_hybrid_beats_ring(self, hctx, tb):
        g = tb.topology.gpu_ids()[:8]
        assert hybrid_allreduce_time(hctx, g, 1e6) < ring_allreduce_time(
            hctx, g, 1e6
        )

    def test_fig2_43_percent_reduction(self):
        """Fig. 2: hetero collection ~90us vs homogeneous ~160us (~43%)."""
        f = build_fig2_example()
        homo = CommContext.from_built(f, heterogeneous=False)
        het = CommContext.from_built(f, heterogeneous=True)
        gn1, gn2 = f.server_gpus[0]
        core = f.core_switches[0]
        acc = f.access_switches[0]
        d = 1_000_000
        t_homo = homo.path_time(gn1, core, d)          # 2 Ethernet hops
        t_het = het.path_time(gn1, gn2, d) + het.path_time(gn2, acc, d)
        assert t_homo == pytest.approx(160e-6, rel=0.1)
        assert t_het == pytest.approx(90e-6, rel=0.15)
        assert 1 - t_het / t_homo == pytest.approx(0.43, abs=0.1)

    def test_empty_group_rejected(self, hctx):
        with pytest.raises(ValueError):
            plan_hybrid_allreduce(hctx, [], 1e6)


class TestFootprint:
    def test_footprint_contains_nvlink_and_ethernet(self, hctx, tb):
        g = tb.topology.gpu_ids()[:8]
        decision = plan_hybrid_allreduce(hctx, g, 1e6)
        links = hybrid_link_footprint(hctx, g, decision)
        kinds = {tb.topology.links[l].kind for l in links}
        assert LinkKind.NVLINK in kinds
        assert LinkKind.ETHERNET in kinds

    def test_single_server_footprint_nvlink_only(self, hctx, tb):
        g = tb.server_gpus[0]
        decision = plan_hybrid_allreduce(hctx, g, 1e6)
        links = hybrid_link_footprint(hctx, g, decision)
        kinds = {tb.topology.links[l].kind for l in links}
        assert kinds <= {LinkKind.NVLINK}
