"""PCIe intra-server fallback (the paper's §VII future work).

"For scenarios without NVLink, we will investigate how to leverage
high-performance PCIe bandwidth for intra-server communication while
avoiding performance degradation due to cross-NUMA effects."

These tests cover the PCIe server spec: the hybrid collective still
works (and still beats homogeneous schemes), but with a smaller margin
than NVLink; cross-NUMA pairs pay the halved inter-socket bandwidth.
"""

import pytest

from repro.comm import (
    CommContext,
    SchemeKind,
    estimate_group_step,
    hybrid_allreduce_time,
)
from repro.network import (
    PCIE_GEN4_X16,
    LinkKind,
    build_testbed,
    pcie_server,
)
from repro.util import units


def pcie_testbed():
    spec = pcie_server(
        "pcie-a100", n_gpus=4, gpu_memory_bytes=units.gib(40),
        numa_domains=2,
    )
    return build_testbed(server_specs=[spec] * 4)


@pytest.fixture(scope="module")
def pcie_tb():
    return pcie_testbed()


@pytest.fixture(scope="module")
def nvlink_tb():
    return build_testbed()


class TestPcieTopology:
    def test_intra_links_are_pcie(self, pcie_tb):
        topo = pcie_tb.topology
        gpus = pcie_tb.server_gpus[0]
        link = topo.find_link(gpus[0], gpus[1])
        assert link.kind == LinkKind.PCIE

    def test_cross_numa_half_bandwidth(self, pcie_tb):
        topo = pcie_tb.topology
        gpus = pcie_tb.server_gpus[0]  # 4 GPUs, 2 NUMA domains of 2
        same = topo.find_link(gpus[0], gpus[1])
        cross = topo.find_link(gpus[0], gpus[2])
        assert same.capacity == pytest.approx(PCIE_GEN4_X16)
        assert cross.capacity == pytest.approx(PCIE_GEN4_X16 / 2)

    def test_validates(self, pcie_tb):
        pcie_tb.topology.validate()


class TestPcieHybrid:
    def test_hybrid_works_over_pcie(self, pcie_tb):
        ctx = CommContext.from_built(pcie_tb, heterogeneous=True)
        g = pcie_tb.topology.gpu_ids()[:8]
        t = hybrid_allreduce_time(ctx, g, 1e6)
        assert 0 < t < 1.0

    def test_hybrid_falls_back_to_ring_over_pcie(self, pcie_tb):
        """Over PCIe the leaders' full-payload push loses to the ring's
        D/P sharding, so Eq. 7 must select ring — the graceful fallback
        that makes §VII's PCIe question genuinely open."""
        het = CommContext.from_built(pcie_tb, heterogeneous=True)
        homo = CommContext.from_built(pcie_tb, heterogeneous=False)
        g = pcie_tb.topology.gpu_ids()[:8]
        d = 16e6
        hyb = estimate_group_step(het, g, d, SchemeKind.HYBRID)
        ring = estimate_group_step(homo, g, d, SchemeKind.RING)
        assert hyb.mode == "ring"
        assert hyb.step_time <= ring.step_time * (1 + 1e-9)

    def test_nvlink_margin_larger_than_pcie(self, pcie_tb, nvlink_tb):
        """The heterogeneous offload gains less from a slower intra
        fabric: NVLink margin > 1, PCIe margin collapses to ~1 (ring
        fallback)."""
        d = 16e6

        def margin(built):
            het = CommContext.from_built(built, heterogeneous=True)
            homo = CommContext.from_built(built, heterogeneous=False)
            g = built.topology.gpu_ids()[:8]
            t_hyb = estimate_group_step(
                het, g, d, SchemeKind.HYBRID
            ).step_time
            t_ring = estimate_group_step(
                homo, g, d, SchemeKind.RING
            ).step_time
            return t_ring / t_hyb

        assert margin(nvlink_tb) > 1.2
        assert margin(pcie_tb) >= 1.0 - 1e-9
        assert margin(nvlink_tb) > margin(pcie_tb)

    def test_homogeneous_view_excludes_pcie_forwarding(self, pcie_tb):
        """Baselines must not route multi-hop detours over PCIe."""
        homo = CommContext.from_built(pcie_tb, heterogeneous=False)
        g = pcie_tb.topology.gpu_ids()
        # Path to a remote GPU: every hop must be Ethernet except a
        # possible first/last direct intra-server hop.
        links = homo.path_links(g[0], g[12])
        topo = pcie_tb.topology
        kinds = [topo.links[lid].kind for lid in links]
        assert all(
            k in (LinkKind.ETHERNET, LinkKind.PCIE) for k in kinds
        )
        assert LinkKind.ETHERNET in kinds

    def test_planner_runs_on_pcie_testbed(self, pcie_tb):
        from repro.core import SLA_TESTBED_CHATBOT, OfflinePlanner
        from repro.comm import SchemeKind as SK
        from repro.llm import OPT_66B, A100, BatchSpec, CostModelBank

        ctx = CommContext.from_built(pcie_tb, heterogeneous=True)
        bank = CostModelBank(OPT_66B, {"A100": A100})
        rep = OfflinePlanner(
            ctx, OPT_66B, bank, SLA_TESTBED_CHATBOT, SK.HYBRID
        ).plan(BatchSpec.uniform(8, 256, 200), arrival_rate=0.3)
        assert rep.plan is not None
