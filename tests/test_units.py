"""Unit conversions and formatting helpers."""

import math

import pytest

from repro.util import units


class TestConversions:
    def test_gbit_per_s(self):
        assert units.gbit_per_s(100.0) == pytest.approx(12.5e9)

    def test_gbyte_per_s(self):
        assert units.gbyte_per_s(600.0) == pytest.approx(600e9)

    def test_gib(self):
        assert units.gib(40) == 40 * (1 << 30)

    def test_gbit_gbyte_ratio(self):
        assert units.gbyte_per_s(1.0) == pytest.approx(
            8.0 * units.gbit_per_s(1.0)
        )

    def test_to_us_roundtrip(self):
        assert units.to_us(1.5e-6) == pytest.approx(1.5)

    def test_to_ms_roundtrip(self):
        assert units.to_ms(0.25) == pytest.approx(250.0)


class TestFormatting:
    def test_fmt_bytes_gb(self):
        assert units.fmt_bytes(2.5e9) == "2.50 GB"

    def test_fmt_bytes_mb(self):
        assert units.fmt_bytes(1_500_000) == "1.50 MB"

    def test_fmt_bytes_small(self):
        assert units.fmt_bytes(12) == "12 B"

    def test_fmt_bandwidth_gbps(self):
        assert units.fmt_bandwidth(12.5e9) == "100.0 Gbps"

    def test_fmt_seconds_scales(self):
        assert units.fmt_seconds(2.0).endswith(" s")
        assert units.fmt_seconds(2e-3).endswith(" ms")
        assert units.fmt_seconds(2e-6).endswith(" us")

    def test_fmt_seconds_value(self):
        assert units.fmt_seconds(160e-6) == "160.0 us"


class TestConstants:
    def test_minute(self):
        assert units.MINUTE == 60.0

    def test_mb_decimal(self):
        assert units.MB == 10**6

    def test_mib_binary(self):
        assert units.MIB == 2**20

    def test_us_ms(self):
        assert math.isclose(units.US * 1000, units.MS)
