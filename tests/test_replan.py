"""Online replanning: drift detection, live plan transitions, parity.

Covers the :mod:`repro.core.replan` subsystem end to end on the
testbed: the hysteresis primitives, the drift detector, KV-migration
planning, a complete load-shift transition, rollback on a mid-migration
endpoint fault, and the byte-identity guarantees (plain runs match the
pinned golden; an armed-but-idle replanner changes nothing but the
zero-valued ``replan_*`` keys).
"""

import json
import math
import os

import pytest

from repro import (
    HEROSERVE,
    OPT_66B,
    CostModelBank,
    ReplanConfig,
    build_system,
    build_testbed,
    quick_testbed,
    simulate_trace,
)
from repro.core.kvtransfer import plan_kv_migration
from repro.core.plan import ParallelConfig
from repro.core.replan import (
    DriftDetector,
    OnlineReplanner,
    describe_plan,
    plan_signature,
)
from repro.core.objective import SLA_TESTBED_CHATBOT
from repro.faults import FaultEvent, FaultPlan
from repro.faults.health import HoldDown, SustainedThreshold
from repro.llm import A100, V100
from repro.obs import FlightRecorder, Observer
from repro.serving import EngineConfig
from repro.util.rng import make_rng
from repro.workloads import generate_loadshift_trace

GOLDEN = os.path.join(
    os.path.dirname(__file__), "data", "golden_quickstart_summary.json"
)

#: Aggressive detector settings that reliably trigger on the load shift.
AGGRESSIVE = dict(
    queue_high=3,
    pending_high=12,
    sustain_checks=4,
    cooldown_s=5.0,
    window_s=20.0,
    min_window_requests=4,
    target_parallel=ParallelConfig(8, 1, 8, 1),
)


@pytest.fixture(scope="module")
def built():
    return build_testbed()


@pytest.fixture(scope="module")
def bank():
    return CostModelBank(OPT_66B, {"A100": A100, "V100": V100})


def loadshift_setup(built, bank, seed=0):
    """(system, trace) for the canonical load-shift scenario: a modest
    TP4xPP2 starting plan that the post-shift backlog outgrows."""
    trace = generate_loadshift_trace(1.2, 0.5, 30.0, 60.0, make_rng(seed))
    system = build_system(
        HEROSERVE,
        built,
        OPT_66B,
        bank,
        SLA_TESTBED_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=1.2,
        forced_parallel=ParallelConfig(4, 2, 4, 2),
    )
    return system, trace


class TestHysteresisPrimitives:
    def test_sustained_threshold_needs_consecutive_hits(self):
        st = SustainedThreshold(high=10.0, sustain=3)
        assert not st.update(11)
        assert not st.update(11)
        assert st.update(11)
        assert st.update(11)  # stays fired while over

    def test_any_dip_rearms(self):
        st = SustainedThreshold(high=10.0, sustain=2)
        assert not st.update(11)
        assert not st.update(9)  # dip resets the streak
        assert not st.update(11)
        assert st.update(11)

    def test_reset(self):
        st = SustainedThreshold(high=1.0, sustain=1)
        assert st.update(2)
        st.reset()
        assert st._over == 0

    def test_sustain_validated(self):
        with pytest.raises(ValueError):
            SustainedThreshold(high=1.0, sustain=0)

    def test_holddown_never_started_is_elapsed(self):
        hd = HoldDown(period=5.0)
        assert hd.elapsed(0.0)

    def test_holddown_blocks_then_releases(self):
        hd = HoldDown(period=5.0)
        hd.start(10.0)
        assert not hd.elapsed(14.9)
        assert hd.elapsed(15.0)


class TestDriftDetector:
    CALM = {
        "prefill_backlog": 0.0,
        "decode_backlog": 0.0,
        "fabric_congestion": 0.0,
        "policy_cost_drift": 1.0,
        "switch_pressure": 0.0,
    }

    def test_fires_after_sustained_breach(self):
        det = DriftDetector(ReplanConfig(sustain_checks=3, queue_high=8))
        hot = dict(self.CALM, prefill_backlog=9.0)
        assert det.update(hot) is None
        assert det.update(hot) is None
        assert det.update(hot) == "prefill_backlog"

    def test_dip_resets(self):
        det = DriftDetector(ReplanConfig(sustain_checks=2, queue_high=8))
        hot = dict(self.CALM, prefill_backlog=9.0)
        assert det.update(hot) is None
        assert det.update(self.CALM) is None
        assert det.update(hot) is None
        assert det.update(hot) == "prefill_backlog"

    def test_reset_clears_all(self):
        det = DriftDetector(ReplanConfig(sustain_checks=1, link_high=0.5))
        hot = dict(self.CALM, fabric_congestion=0.9)
        assert det.update(hot) == "fabric_congestion"
        det.reset()
        assert det.update(self.CALM) is None


class TestPlanHelpers:
    def test_signature_and_describe(self, built, bank):
        system, _ = loadshift_setup(built, bank)
        sig = plan_signature(system.plan)
        assert sig == plan_signature(system.plan)
        assert describe_plan(system.plan) == "pTP4xPP2/dTP4xPP2"

    def test_replanner_rejects_double_attach(self, built, bank):
        rp = OnlineReplanner(config=ReplanConfig())
        rp.attach("engine-a")
        rp.attach("engine-a")  # idempotent
        with pytest.raises(ValueError):
            rp.attach("engine-b")


class TestPlanKvMigration:
    def test_zero_tokens_is_free(self, built, bank):
        system, _ = loadshift_setup(built, bank)
        ctx = system.fresh_context()
        stages = system.plan.decode.stages
        dur, flows, moved = plan_kv_migration(
            ctx, system.model, 0, stages, stages
        )
        assert (dur, flows, moved) == (0.0, [], 0.0)

    def test_cross_placement_move_costs_time(self, built, bank):
        system, _ = loadshift_setup(built, bank)
        ctx = system.fresh_context()
        src = system.plan.decode.stages
        # Target: the prefill placement — guaranteed disjoint GPUs.
        dst = system.plan.prefill.stages
        dur, flows, moved = plan_kv_migration(
            ctx, system.model, 4096, src, dst
        )
        assert dur > 0.0
        assert flows
        assert moved > 0.0


class TestTransition:
    @pytest.fixture(scope="class")
    def outcome(self, built, bank):
        system, trace = loadshift_setup(built, bank)
        obs = Observer(recorder=FlightRecorder())
        metrics = simulate_trace(
            system,
            trace,
            engine_config=EngineConfig(observer=obs),
            replan=ReplanConfig(**AGGRESSIVE),
        )
        return trace, metrics, obs.recorder

    def test_transition_completes(self, outcome):
        _, metrics, _ = outcome
        s = metrics.summary()
        assert s["replan_transitions"] >= 1.0
        assert s["replan_rollbacks"] == 0.0
        assert s["replan_kv_bytes_moved"] > 0.0
        assert s["replan_transition_seconds"] > 0.0

    def test_no_request_dropped(self, outcome):
        trace, metrics, _ = outcome
        assert metrics.dropped == 0
        assert metrics.n_finished == len(trace)

    def test_timeline_records_cutover(self, outcome):
        _, _, recorder = outcome
        events = recorder.replan_timeline()
        done = [e for e in events if e["event"] == "transition_complete"]
        assert done
        assert done[0]["to_plan"] == "pTP8xPP1/dTP8xPP1"
        phases = [
            e["phase"]
            for e in events
            if e["event"] == "plan_transition"
        ]
        assert phases[:3] == ["quiesced", "migrate", "warm"]

    def test_budget_eventually_suppresses(self, outcome):
        _, _, recorder = outcome
        sup = [
            e
            for e in recorder.replan_timeline()
            if e["event"] == "replan_suppressed"
        ]
        # After the cutover the detector keeps firing on the tail
        # backlog but the plan is already optimal -> suppressions.
        assert sup
        assert all("why" in e for e in sup)


class TestRollback:
    def test_endpoint_fault_mid_migration_rolls_back(self, built, bank):
        system, trace = loadshift_setup(built, bank)
        # Kill a decode-endpoint server inside the migration window
        # (the fault-free migration spans ~42.6-43.1s).
        fault = FaultPlan(
            events=(
                FaultEvent(
                    time=42.8,
                    kind="server_down",
                    target="server#0",
                    duration=3.0,
                ),
            ),
            seed=0,
        )
        obs = Observer(recorder=FlightRecorder())
        metrics = simulate_trace(
            system,
            trace,
            engine_config=EngineConfig(observer=obs),
            fault_plan=fault,
            replan=ReplanConfig(**AGGRESSIVE),
        )
        s = metrics.summary()
        assert s["replan_rollbacks"] >= 1.0
        rb = [
            e
            for e in obs.recorder.replan_timeline()
            if e["event"] == "transition_rollback"
        ]
        assert rb and rb[0]["why"] == "fault_during_migration"
        # Rolled back cleanly: nothing dropped, every request finishes
        # (a later trigger completes the transition after recovery).
        assert metrics.dropped == 0
        assert metrics.n_finished == len(trace)
        assert s["replan_transitions"] >= 1.0


class TestByteIdentity:
    def test_plain_run_matches_golden(self):
        with open(GOLDEN) as fh:
            golden = json.load(fh)
        _, metrics = quick_testbed(rate=1.0, duration=12.0, seed=0)
        summary = metrics.summary()
        assert set(summary) == set(golden)
        for key, want in golden.items():
            got = summary[key]
            if isinstance(want, float) and math.isnan(want):
                assert math.isnan(got), key
            else:
                assert got == want, key

    def test_armed_idle_replanner_changes_nothing(self):
        # Default thresholds never fire at this gentle load: the armed
        # replanner must not perturb the simulation at all, only attach
        # zero-valued replan_* keys.
        with open(GOLDEN) as fh:
            golden = json.load(fh)
        _, metrics = quick_testbed(
            rate=1.0, duration=12.0, seed=0, replan=ReplanConfig()
        )
        summary = metrics.summary()
        replan_keys = {k for k in summary if k.startswith("replan_")}
        assert replan_keys
        assert all(summary[k] == 0.0 for k in replan_keys)
        for key, want in golden.items():
            got = summary[key]
            if isinstance(want, float) and math.isnan(want):
                assert math.isnan(got), key
            else:
                assert got == want, key

    def test_plain_summary_has_no_replan_keys(self):
        _, metrics = quick_testbed(rate=0.5, duration=10.0, seed=3)
        assert metrics.replan_stats is None
        assert not any(
            k.startswith("replan_") for k in metrics.summary()
        )
