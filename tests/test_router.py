"""Fleet routing policies: registry, affinity, fallbacks, QoE classes."""

import math

import pytest

from repro.baselines import HEROSERVE, build_fleet
from repro.core import SLA_SIM_CHATBOT
from repro.core.plan import ParallelConfig
from repro.llm import OPT_175B, A100, CostModelBank
from repro.network import build_xtracks_cluster
from repro.serving import (
    DEFAULT_ROUTER,
    QOS_CLASSES,
    Router,
    RoutingDecision,
    get_qos,
    get_router,
    register_router,
    registered_routers,
)
from repro.serving.router.policies import KvAffinityRouter, RoundRobinRouter
from repro.util.rng import make_rng
from repro.workloads import (
    SessionConfig,
    TraceRequest,
    generate_session_trace,
    generate_sharegpt_trace,
)

FORCED = ParallelConfig(16, 1, 16, 1)


@pytest.fixture(scope="module")
def built():
    return build_xtracks_cluster(2, n_units=2)  # 12 servers x 8 GPUs


@pytest.fixture(scope="module")
def bank():
    return CostModelBank(OPT_175B, {"A100": A100})


def make_fleet(built, bank, router=None, n=2, rate=1.5):
    trace = generate_sharegpt_trace(rate, 20, make_rng(0))
    return build_fleet(
        HEROSERVE,
        built,
        OPT_175B,
        bank,
        SLA_SIM_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=rate,
        n_replicas=n,
        forced_parallel=FORCED,
        router=router,
    )


def turn(request_id, t, session=None, qos="standard", k_in=64, k_out=16):
    return TraceRequest(request_id, t, k_in, k_out, session, qos)


class TestRegistry:
    def test_all_policies_registered(self):
        names = [cls.name for cls in registered_routers()]
        assert names == [
            "jsq",
            "round-robin",
            "least-loaded",
            "kv-affinity",
            "network-aware",
        ]

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="registered"):
            get_router("no-such-policy")

    def test_none_resolves_default(self):
        assert get_router(None).name == DEFAULT_ROUTER

    def test_fresh_instance_per_call(self):
        a, b = get_router("round-robin"), get_router("round-robin")
        assert a is not b

    def test_instance_passthrough(self):
        r = KvAffinityRouter(max_backlog_gap=2)
        assert get_router(r) is r

    def test_duplicate_registration_rejected(self):
        class Dup(RoundRobinRouter):
            name = "round-robin"

        with pytest.raises(ValueError, match="already registered"):
            register_router(Dup)

    def test_qos_classes(self):
        assert set(QOS_CLASSES) == {"interactive", "standard", "batch"}
        assert get_qos(None).name == "standard"
        with pytest.raises(KeyError, match="known"):
            get_qos("platinum")


class TestDefaultByteIdentity:
    def test_default_matches_explicit_jsq(self, built, bank):
        trace = generate_sharegpt_trace(1.5, 30, make_rng(1))
        a = make_fleet(built, bank, router=None).run(trace)
        b = make_fleet(built, bank, router="jsq").run(trace)
        assert a.routed == b.routed
        sa, sb = a.summary(), b.summary()
        assert sa.keys() == sb.keys()
        for k in sa:
            if math.isnan(sa[k]):
                assert math.isnan(sb[k]), k
            else:
                assert sa[k] == sb[k], k

    def test_sessionless_trace_has_zero_router_stats(self, built, bank):
        trace = generate_sharegpt_trace(1.0, 20, make_rng(2))
        fm = make_fleet(built, bank, router="kv-affinity").run(trace)
        st = fm.router_stats
        assert st.router == "kv-affinity"
        assert st.new_sessions == 0
        assert st.kv_bytes_moved == 0.0
        # Sessionless: no follow-up turns, so the rate is undefined —
        # reported as None (and omitted from summary()), never NaN.
        assert st.hit_rate() is None
        assert "router_affinity_hit_rate" not in fm.summary()


class TestRoundRobin:
    def test_cycles_over_candidates(self, built, bank):
        fleet = make_fleet(built, bank, router="round-robin", n=2)
        picks = [fleet.route(turn(i, 0.0)) for i in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_skips_degraded(self, built, bank):
        fleet = make_fleet(built, bank, router="round-robin", n=2)
        fleet.replicas[0]._prefill_down = True
        picks = [fleet.route(turn(i, 0.0)) for i in range(3)]
        assert picks == [1, 1, 1]


class TestDegradedAvoidance:
    def test_every_policy_avoids_degraded_replica(self, built, bank):
        for cls in registered_routers():
            fleet = make_fleet(built, bank, router=cls.name, n=2)
            fleet.replicas[0]._prefill_down = True
            idx = fleet.route(turn(0, 0.0, session=1))
            assert idx == 1, cls.name

    def test_router_cannot_escape_candidates(self, built, bank):
        class Rogue(Router):
            name = "rogue"
            description = "picks nonsense"

            def select(self, tr, candidates, fleet):
                return RoutingDecision(99, "rogue")

        fleet = make_fleet(built, bank, router=Rogue(), n=2)
        with pytest.raises(ValueError, match="outside the candidate"):
            fleet.route(turn(0, 0.0))


class TestKvAffinity:
    def test_affinity_hit_routes_to_holder(self, built, bank):
        fleet = make_fleet(built, bank, router="kv-affinity", n=2)
        first = fleet.route(turn(0, 0.0, session=7))
        second = fleet.route(turn(1, 1.0, session=7))
        assert second == first
        st = fleet.router_stats
        assert st.new_sessions == 1
        assert st.affinity_hits == 1
        assert st.affinity_misses == 0
        assert st.kv_bytes_saved > 0
        assert st.hit_rate() == 1.0

    def test_miss_fetches_kv_and_delays_admission(self, built, bank):
        fleet = make_fleet(built, bank, router="kv-affinity", n=2)
        first = fleet.route(turn(0, 0.0, session=7))
        fleet.replicas[first]._prefill_down = True
        other = 1 - first
        idx = fleet.route(turn(1, 0.0, session=7))
        assert idx == other
        st = fleet.router_stats
        assert st.affinity_misses == 1
        assert st.kv_fetches == 1
        assert st.kv_bytes_moved > 0
        assert st.kv_fetch_wait_s > 0
        # Admission is deferred until the resident KV lands: the turn is
        # not on the replica yet, only the scheduled kv_fetch event.
        assert fleet.replicas[other].queued_requests == 0
        fleet.queue.run(until=st.kv_fetch_wait_s + 0.01)
        assert (
            fleet.replicas[other].queued_requests
            + fleet.replicas[other].metrics.n_finished
            >= 1
        )

    def test_residency_follows_the_session(self, built, bank):
        fleet = make_fleet(built, bank, router="kv-affinity", n=2)
        first = fleet.route(turn(0, 0.0, session=7))
        fleet.replicas[first]._prefill_down = True
        moved_to = fleet.route(turn(1, 0.0, session=7))
        fleet.replicas[first]._prefill_down = False
        # Holder recovered, but the KV now lives on the new replica.
        third = fleet.route(turn(2, 0.0, session=7))
        assert third == moved_to
        assert fleet.router_stats.affinity_hits == 1

    def test_congested_kv_path_falls_back(self, built, bank):
        fleet = make_fleet(built, bank, router="kv-affinity", n=2)
        h = fleet.route(turn(0, 0.0, session=7))
        # Squeeze the holder's internal prefill->decode KV path to 10%
        # headroom: the affinity fast path must refuse it.
        sim = fleet.replicas[h]
        links = fleet.ctx.path_links(
            sim.prefill_stages[0][0], sim.decode_stages[0][0]
        )
        assert links, "test needs a cross-GPU KV path"
        ls = fleet.ctx.linkstate
        handles = [
            ls.register([lid], 0.9 * float(ls.capacity[lid]))
            for lid in links
        ]
        assert fleet.kv_path_headroom(h) < 0.25
        decision = fleet.router.select(
            turn(1, 1.0, session=7), [0, 1], fleet
        )
        assert decision.reason == "congested-fallback"
        assert decision.replica != h
        for hd in handles:
            ls.release(hd)
        # With the congestion gone the fast path hits again.
        decision = fleet.router.select(
            turn(2, 2.0, session=7), [0, 1], fleet
        )
        assert decision.reason == "affinity-hit"
        assert decision.replica == h

    def test_backlog_fallback_is_qos_weighted(self, built, bank):
        fleet = make_fleet(built, bank, router="kv-affinity", n=2)
        h = fleet.route(turn(0, 0.0, session=7))
        other = 1 - h
        # Back the holder up past the interactive gap (8/2=4) but not
        # the batch gap (8/0.25=32).
        for i in range(6):
            fleet.replicas[h].submit(turn(100 + i, 0.0))
        router = fleet.router
        batch = router.select(
            turn(1, 0.0, session=7, qos="batch"), [0, 1], fleet
        )
        assert batch.reason == "affinity-hit"
        assert batch.replica == h
        interactive = router.select(
            turn(2, 0.0, session=7, qos="interactive"), [0, 1], fleet
        )
        assert interactive.reason == "backlog-fallback"
        assert interactive.replica == other


class TestNetworkAware:
    def test_prefers_kv_resident_replica(self, built, bank):
        fleet = make_fleet(built, bank, router="network-aware", n=2)
        first = fleet.route(turn(0, 0.0, session=3, k_in=512, k_out=64))
        second = fleet.route(turn(1, 1.0, session=3))
        assert second == first
        assert fleet.router_stats.affinity_hits == 1

    def test_large_backlog_outweighs_affinity(self, built, bank):
        fleet = make_fleet(built, bank, router="network-aware", n=2)
        first = fleet.route(turn(0, 0.0, session=3))
        for i in range(200):
            fleet.replicas[first].submit(turn(100 + i, 0.0))
        second = fleet.route(turn(1, 0.0, session=3))
        assert second == 1 - first
        assert fleet.router_stats.affinity_misses == 1


class TestSessionTraceEndToEnd:
    def test_affinity_beats_round_robin(self, built, bank):
        trace = generate_session_trace(
            0.3,
            30,
            make_rng(5),
            SessionConfig(mean_turns=3.0, mean_think_s=3.0),
        )
        rr = make_fleet(built, bank, router="round-robin").run(trace)
        ka = make_fleet(built, bank, router="kv-affinity").run(trace)
        assert rr.n_finished == len(trace)
        assert ka.n_finished == len(trace)
        assert (
            ka.router_stats.kv_bytes_moved
            < rr.router_stats.kv_bytes_moved
        )
        assert ka.router_stats.hit_rate() > rr.router_stats.hit_rate()

    def test_summary_and_qos_keys(self, built, bank):
        trace = generate_session_trace(0.3, 20, make_rng(6))
        fm = make_fleet(built, bank, router="kv-affinity").run(trace)
        s = fm.summary()
        for key in (
            "router_affinity_hit_rate",
            "router_kv_bytes_moved",
            "router_kv_bytes_saved",
            "router_kv_fetches",
            "p99_ttft_s",
        ):
            assert key in s, key
        qos = fm.qos_attainment()
        assert set(qos) <= set(QOS_CLASSES)
        assert all(0.0 <= v <= 1.0 for v in qos.values())


class TestSessionTraceGenerator:
    def test_shape_and_ordering(self):
        trace = generate_session_trace(0.5, 40, make_rng(7))
        times = [r.arrival_time for r in trace]
        assert times == sorted(times)
        assert [r.request_id for r in trace] == list(range(len(trace)))
        by_session = {}
        for r in trace:
            assert r.session_id is not None
            assert r.qos in QOS_CLASSES
            by_session.setdefault(r.session_id, []).append(r)
        # A session keeps one QoE class across turns.
        for reqs in by_session.values():
            assert len({r.qos for r in reqs}) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(mean_turns=0.0)
        with pytest.raises(ValueError):
            SessionConfig(qos_mix=())
        with pytest.raises(ValueError):
            TraceRequest(0, 0.0, 16, 4, qos="")

    def test_rescale_preserves_session_fields(self):
        trace = generate_session_trace(0.5, 20, make_rng(8))
        scaled = trace.rescale_rate(trace.mean_rate * 2)
        for a, b in zip(trace, scaled):
            assert a.session_id == b.session_id
            assert a.qos == b.qos


class TestObserverEvents:
    def test_route_decisions_reach_the_recorder(self, built, bank):
        from repro.obs import FlightRecorder, Observer

        obs = Observer(recorder=FlightRecorder())
        fleet = make_fleet(built, bank, router="kv-affinity", n=2)
        fleet.observer = obs
        fleet.route(turn(0, 0.0, session=1))
        fleet.route(turn(1, 0.0, session=1))
        events = obs.recorder.events("routing_decision")
        assert len(events) == 2
        assert events[1]["affinity_hit"] is True
        assert events[1]["router"] == "kv-affinity"
        assert events[0]["reason"] == "new-session"
