"""Cached vs uncached planner: byte-identical plans, safe invalidation.

The estimation cache (``repro.core.estcache``) must never change a
planning decision: every memoized value is a pure recomputation, and the
rng draw sequence is untouched. These tests sweep seeds and topologies
comparing the full ``Plan`` dataclasses (``==`` over every nested field
plus ``repr`` equality, i.e. byte-identical rendering), and exercise the
fault-replan path that must invalidate the cache.

``TestGoldenSchemeParity`` additionally pins the CollectiveScheme
registry refactor against ``tests/data/golden_scheme_parity.json``,
captured from the pre-registry branch ladders: Eq. 7 estimates and full
planner output for ring/ina_sync/ina_async/hybrid must stay
byte-identical across seeds 0/7/13 on the testbed and 2tracks
topologies (regenerate only for intentional physics changes, via
``tests/make_scheme_goldens.py``).
"""

import json
import os

import pytest

from repro.comm import CommContext, SchemeKind
from repro.core import SLA_TESTBED_CHATBOT
from repro.core.planner import OfflinePlanner, PlannerConfig
from repro.llm import OPT_66B, A100, V100, BatchSpec, CostModelBank
from repro.network import build_testbed, build_xtracks_cluster

SEEDS = [0, 1, 2, 7, 13]

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_scheme_parity.json"
)


@pytest.fixture(scope="module")
def testbed_ctx():
    return CommContext.from_built(build_testbed(), heterogeneous=True)


@pytest.fixture(scope="module")
def cluster_ctx():
    return CommContext.from_built(
        build_xtracks_cluster(2, n_units=1), heterogeneous=True
    )


@pytest.fixture(scope="module")
def bank():
    return CostModelBank(OPT_66B, {"A100": A100, "V100": V100})


def _plan(ctx, bank, seed, use_cache, scheme=SchemeKind.HYBRID):
    config = PlannerConfig(seed=seed, use_cache=use_cache, max_candi=6)
    planner = OfflinePlanner(
        ctx, OPT_66B, bank, SLA_TESTBED_CHATBOT, scheme, config=config
    )
    report = planner.plan(
        BatchSpec.uniform(8, 256, 220), arrival_rate=0.5
    )
    return planner, report


class TestByteIdenticalPlans:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_testbed(self, testbed_ctx, bank, seed):
        _, cached = _plan(testbed_ctx, bank, seed, use_cache=True)
        _, plain = _plan(testbed_ctx, bank, seed, use_cache=False)
        assert cached.plan == plain.plan
        assert repr(cached.plan) == repr(plain.plan)
        assert cached.cache_stats["hits"] > 0
        assert plain.cache_stats == {}

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cluster(self, cluster_ctx, bank, seed):
        _, cached = _plan(cluster_ctx, bank, seed, use_cache=True)
        _, plain = _plan(cluster_ctx, bank, seed, use_cache=False)
        assert cached.plan == plain.plan
        assert repr(cached.plan) == repr(plain.plan)

    def test_cache_shared_across_solves(self, testbed_ctx, bank):
        planner, first = _plan(testbed_ctx, bank, 7, use_cache=True)
        second = planner.plan(
            BatchSpec.uniform(8, 256, 220), arrival_rate=0.5
        )
        assert second.plan == first.plan
        # A warm cache re-solve is almost entirely hits.
        assert second.cache_stats["hit_rate"] > first.cache_stats[
            "hit_rate"
        ]


class TestGoldenSchemeParity:
    """Registry dispatch reproduces the pre-refactor ladders exactly."""

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH) as fh:
            return json.load(fh)

    @pytest.fixture(scope="class")
    def goldgen(self):
        # The golden generator doubles as the recompute harness: it
        # renders estimates/plans in exactly the pinned format.
        import sys

        sys.path.insert(0, os.path.dirname(__file__))
        try:
            import make_scheme_goldens
        finally:
            sys.path.pop(0)
        return make_scheme_goldens

    @pytest.fixture(scope="class")
    def topologies(self, goldgen):
        return goldgen._topologies()

    @pytest.mark.parametrize("topo", ["testbed", "2tracks"])
    def test_estimates_byte_identical(
        self, golden, goldgen, topologies, topo
    ):
        now = goldgen._estimates(topologies[topo])
        want = golden["topologies"][topo]["estimates"]
        for scheme, cases in want.items():
            for case, vals in cases.items():
                assert now[scheme][case] == vals, (
                    f"{topo}/{scheme}/{case} diverged from golden"
                )

    @pytest.mark.parametrize("topo", ["testbed", "2tracks"])
    def test_plans_byte_identical(
        self, golden, goldgen, topologies, topo
    ):
        now = goldgen._plans(topologies[topo])
        want = golden["topologies"][topo]["plans"]
        # seeds 0/7/13 x ring/ina_sync/ina_async/hybrid, repr-hash level
        assert len(want) == 12
        for key, vals in want.items():
            assert now[key] == vals, f"{topo}/plans/{key} diverged"


class TestReplanInvalidation:
    def test_replan_excluding_invalidates(self, testbed_ctx, bank):
        planner, report = _plan(testbed_ctx, bank, 7, use_cache=True)
        assert report.plan is not None
        cache = planner._active_cache()
        assert cache is not None and cache.invalidations == 0
        failed = list(report.plan.prefill.stages[0][:1])
        replan = planner.replan_excluding(
            failed,
            BatchSpec.uniform(8, 256, 220),
            arrival_rate=0.5,
            prefer=report.plan.parallel,
        )
        assert cache.invalidations == 1
        if replan.plan is not None:
            survivors = {
                g for st in replan.plan.prefill.stages for g in st
            }
            assert not survivors & set(failed)

    def test_replan_matches_uncached_replan(self, testbed_ctx, bank):
        planner_c, report_c = _plan(testbed_ctx, bank, 7, use_cache=True)
        planner_u, report_u = _plan(testbed_ctx, bank, 7, use_cache=False)
        failed = list(report_c.plan.prefill.stages[0][:1])
        batch = BatchSpec.uniform(8, 256, 220)
        replan_c = planner_c.replan_excluding(
            failed, batch, 0.5, prefer=report_c.plan.parallel
        )
        replan_u = planner_u.replan_excluding(
            failed, batch, 0.5, prefer=report_u.plan.parallel
        )
        assert replan_c.plan == replan_u.plan
        assert repr(replan_c.plan) == repr(replan_u.plan)
