"""Failover — serving through an INA switch-crash window.

Both access switches of the testbed crash mid-trace and recover ten
seconds later. HeroServe's online controller detects the outage
(heartbeat misses), masks the INA policies and fails the groups over to
ring all-reduce until the switches return (plus a hold-down); the
static DS-SwitchML baseline has no fallback path and its synchronous
INA collectives time out against the dead dataplane for the whole
outage.

The bench replays the identical chatbot trace through both systems and
reports overall metrics plus the TTFT of exactly the requests that
arrived inside the crash window — the cohort a failover exists to
protect. Runs are built through :mod:`repro.scenario` — one spec per
system with the crash schedule in the ``faults`` block — and the table
is asserted byte-identical to the checked-in baseline. With
``--obs-dir`` active each run additionally dumps its trace, metrics
snapshot, summary and flight JSONL there.
"""

import math

import pytest

from repro.scenario import ScenarioSpec, TopologySpec, WorkloadSpec, run_scenario
from repro.util.tables import format_table

from common import (
    assert_matches_baseline,
    bench_seed,
    dump_observation,
    maybe_scenario_observer,
    save_result,
)

RATE = 2.0
DURATION = 40.0
CRASH_AT = 10.0
OUTAGE = 10.0
SEED = bench_seed(3)

#: Crash *both* access switches: with one alive, HeroServe simply
#: re-homes aggregation onto the survivor and the ring path never runs.
CRASH_FAULTS = {
    "seed": SEED,
    "events": [
        {
            "time": CRASH_AT, "kind": "switch_down", "target": "switch#0",
            "duration": OUTAGE,
        },
        {
            "time": CRASH_AT, "kind": "switch_down", "target": "switch#1",
            "duration": OUTAGE,
        },
    ],
}


def crash_spec(system: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"failover-{system}",
        model="OPT-66B",
        workload=WorkloadSpec(
            generator="sharegpt", rate=RATE, duration=DURATION, seed=SEED
        ),
        topology=TopologySpec(kind="testbed"),
        system=system,
        slo="testbed-chatbot",
        parallel=(8, 1, 8, 1),
        arrival_rate=RATE,
        faults=CRASH_FAULTS,
        observer=maybe_scenario_observer(),
    )


def window_ttfts(metrics) -> list[float]:
    """TTFTs of the requests that arrived during the outage."""
    return [
        r.ttft
        for r in metrics.finished
        if CRASH_AT <= r.arrival_time < CRASH_AT + OUTAGE
        and not math.isnan(r.ttft)
    ]


def run_crash_window():
    results = {}
    for name in ("HeroServe", "DS-SwitchML"):
        res = run_scenario(crash_spec(name))
        dump_observation(
            f"failover_{name.lower()}", res.observer, res.metrics
        )
        results[name] = res.metrics
    return results


@pytest.mark.benchmark(group="failover")
def test_failover_switch_crash(benchmark):
    results = benchmark.pedantic(
        run_crash_window, rounds=1, iterations=1
    )
    rows = []
    for name, m in results.items():
        s = m.summary()
        win = window_ttfts(m)
        rows.append(
            [
                name,
                f"{s['finished']:.0f}",
                f"{s['attainment']:.1%}",
                f"{s['mean_ttft_s'] * 1e3:.0f}",
                f"{(sum(win) / len(win) * 1e3) if win else float('nan'):.0f}",
                f"{s['failovers']:.0f}",
                f"{s['degraded_seconds']:.1f}",
            ]
        )
    table = format_table(
        [
            "system",
            "finished",
            "SLA att.",
            "TTFT ms",
            "crash-window TTFT ms",
            "failovers",
            "degraded s",
        ],
        rows,
        title=(
            f"both INA switches down t={CRASH_AT:g}s for {OUTAGE:g}s, "
            f"chatbot @ {RATE:g} req/s"
        ),
    )
    print("\n" + table)
    assert_matches_baseline("failover_switch_crash", table)
    save_result("failover_switch_crash", table)

    hero, switchml = results["HeroServe"], results["DS-SwitchML"]
    # HeroServe detected the outage and failed over at least once.
    assert hero.fault_stats is not None
    assert hero.fault_stats.failovers >= 1
    assert hero.fault_stats.degraded_seconds > 0.0
    # Both systems finish the trace without losing requests outright.
    assert hero.n_finished >= switchml.n_finished
    # The cohort arriving mid-outage is where failover pays: ring
    # all-reduce beats synchronous INA timing out against a dead switch.
    hero_win, switchml_win = window_ttfts(hero), window_ttfts(switchml)
    assert hero_win and switchml_win
    assert (
        sum(hero_win) / len(hero_win)
        < sum(switchml_win) / len(switchml_win)
    )


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-v", "-s"]))
