"""Planner solve-time — the §III-C3 claim.

Paper: "our algorithm typically finds a solution within 10 minutes, a
reduction of 28.57 % compared to DistServe", attributed to (a) the
constant-size candidate list, (b) asynchronous prefill/decode estimation
threads and (c) offline precomputation of the shortest-path/latency
matrices. We time Algorithm 1 against the reference planner that lacks
all three (candidate sweep, sequential estimation, per-candidate
Dijkstra) on both the testbed and a cluster miniature, and break the
Algorithm 1 time down by phase (candidate enumeration, k-means grouping,
perturbation, objective evaluation) via the profiling hooks.
"""

import pytest

from repro.comm import CommContext, SchemeKind
from repro.core import SLA_TESTBED_CHATBOT
from repro.core.planner import ExhaustivePlanner, OfflinePlanner
from repro.llm import OPT_66B, OPT_175B, BatchSpec
from repro.network import build_testbed, build_xtracks_cluster
from repro.obs import Observer

from common import (
    make_cluster_bank,
    phase_breakdown_rows,
    save_result,
    make_testbed_bank,
)
from repro.util.tables import format_table


def plan_pair(built, model, bank, batch):
    ctx = CommContext.from_built(built, heterogeneous=True)
    fast = OfflinePlanner(
        ctx, model, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID,
        observer=Observer(),
    ).plan(batch, arrival_rate=0.5)
    slow = ExhaustivePlanner(
        ctx, model, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID
    ).plan(batch, arrival_rate=0.5)
    return fast, slow


def run_planner_comparison():
    out = []
    tb = build_testbed()
    fast, slow = plan_pair(
        tb, OPT_66B, make_testbed_bank(OPT_66B), BatchSpec.uniform(8, 256, 220)
    )
    out.append(("testbed OPT-66B", fast, slow))
    cl = build_xtracks_cluster(2, n_units=1)
    fast, slow = plan_pair(
        cl,
        OPT_175B,
        make_cluster_bank(OPT_175B),
        BatchSpec.uniform(8, 256, 220),
    )
    out.append(("2tracks OPT-175B", fast, slow))
    return out


def phase_table(results):
    """Per-phase breakdown of Algorithm 1's solve time, per setting."""
    rows = []
    for label, fast, _slow in results:
        for phase_row in phase_breakdown_rows(fast.phase_times):
            rows.append([label, *phase_row])
    return format_table(
        ["setting", "phase", "ms", "share"],
        rows,
        title="Algorithm 1 phase breakdown (profiling hooks)",
    )


@pytest.mark.benchmark(group="planner")
def test_planner_solve_time(benchmark):
    results = benchmark.pedantic(
        run_planner_comparison, rounds=1, iterations=1
    )
    rows = []
    for label, fast, slow in results:
        saving = (
            1.0 - fast.wall_time / slow.wall_time
            if slow.wall_time > 0
            else float("nan")
        )
        rows.append(
            [
                label,
                fast.candidates_evaluated,
                f"{fast.wall_time:.2f}",
                slow.candidates_evaluated,
                f"{slow.wall_time:.2f}",
                f"{saving:.0%}",
            ]
        )
    table = format_table(
        [
            "setting",
            "Alg.1 cands",
            "Alg.1 s",
            "sweep cands",
            "sweep s",
            "saving",
        ],
        rows,
        title=(
            "Planner solve time: Algorithm 1 vs reference sweep "
            "(paper: 28.57% faster than DistServe's search)"
        ),
    )
    breakdown = phase_table(results)
    print("\n" + table)
    print("\n" + breakdown)
    save_result("planner_time", table + "\n\n" + breakdown)

    for label, fast, slow in results:
        assert fast.plan is not None, label
        assert slow.plan is not None, label
        # The profiling hooks must attribute the solve time to phases.
        assert fast.phase_times, label
        assert any(
            name.startswith("planner.") for name in fast.phase_times
        ), label
        # Heuristic at least 25% faster (the paper's 28.57% claim scale).
        assert fast.wall_time < slow.wall_time * 0.75, label
        # And it must not lose solution quality materially.
        assert (
            fast.plan.scalability >= slow.plan.scalability * 0.95
        ), label
