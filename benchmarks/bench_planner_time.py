"""Planner solve-time — the §III-C3 claim, plus the fast-path baseline.

Paper: "our algorithm typically finds a solution within 10 minutes, a
reduction of 28.57 % compared to DistServe", attributed to (a) the
constant-size candidate list, (b) asynchronous prefill/decode estimation
threads and (c) offline precomputation of the shortest-path/latency
matrices. On top of those, this repo memoizes the comm-latency
evaluations (``repro.core.estcache``), so each setting is timed three
ways:

* **cached**   — Algorithm 1 with the estimation cache (the default),
* **pre-cache** — the same planner with ``use_cache=False``, i.e. the
  code path before the cache existed (the speedup baseline),
* **sweep**    — the reference planner without any of the paper's
  heuristics (candidate sweep, sequential estimation, per-candidate
  Dijkstra).

The cached and pre-cache planners must produce *byte-identical* plans —
the cache only skips recomputation of pure functions. Results land in
``planner_time.txt`` (tables) and ``BENCH_planner.json`` (the
machine-readable perf baseline: per-phase ms, cache hit rate, speedups)
under ``benchmarks/results/``.
"""

import pytest

from repro.comm import CommContext, SchemeKind
from repro.core import SLA_TESTBED_CHATBOT
from repro.core.planner import (
    ExhaustivePlanner,
    OfflinePlanner,
    PlannerConfig,
)
from repro.llm import OPT_66B, OPT_175B, BatchSpec
from repro.network import build_testbed, build_xtracks_cluster
from repro.obs import Observer

from common import (
    BENCH_SEED,
    check_stable_hashing,
    make_cluster_bank,
    make_testbed_bank,
    phase_breakdown_rows,
    save_json,
    save_result,
)
from repro.util.tables import format_table

#: The tentpole target: cached must beat pre-cache by at least this on
#: the cluster setting (measured ~5.8x on the reference container).
MIN_SPEEDUP_2TRACKS = 3.0


def plan_three_way(built, model, bank, batch):
    ctx = CommContext.from_built(built, heterogeneous=True)
    cached = OfflinePlanner(
        ctx, model, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID,
        config=PlannerConfig(seed=BENCH_SEED),
        observer=Observer(),
    ).plan(batch, arrival_rate=0.5)
    precache = OfflinePlanner(
        ctx, model, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID,
        config=PlannerConfig(seed=BENCH_SEED, use_cache=False),
    ).plan(batch, arrival_rate=0.5)
    sweep = ExhaustivePlanner(
        ctx, model, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID,
        config=PlannerConfig(seed=BENCH_SEED),
    ).plan(batch, arrival_rate=0.5)
    return cached, precache, sweep


def run_planner_comparison():
    check_stable_hashing()
    out = []
    tb = build_testbed()
    out.append(
        (
            "testbed OPT-66B",
            *plan_three_way(
                tb,
                OPT_66B,
                make_testbed_bank(OPT_66B),
                BatchSpec.uniform(8, 256, 220),
            ),
        )
    )
    cl = build_xtracks_cluster(2, n_units=1)
    out.append(
        (
            "2tracks OPT-175B",
            *plan_three_way(
                cl,
                OPT_175B,
                make_cluster_bank(OPT_175B),
                BatchSpec.uniform(8, 256, 220),
            ),
        )
    )
    return out


def phase_table(results):
    """Per-phase breakdown of the cached planner's solve time."""
    rows = []
    for label, cached, _precache, _sweep in results:
        for phase_row in phase_breakdown_rows(cached.phase_times):
            rows.append([label, *phase_row])
    return format_table(
        ["setting", "phase", "ms", "share"],
        rows,
        title="Algorithm 1 phase breakdown (profiling hooks)",
    )


def baseline_payload(results):
    """The BENCH_planner.json structure (see docs/PERFORMANCE.md)."""
    settings = {}
    for label, cached, precache, sweep in results:
        identical = repr(cached.plan) == repr(precache.plan) and (
            cached.plan == precache.plan
        )
        settings[label] = {
            "cached_s": round(cached.wall_time, 4),
            "precache_s": round(precache.wall_time, 4),
            "sweep_s": round(sweep.wall_time, 4),
            "speedup_vs_precache": round(
                precache.wall_time / cached.wall_time, 2
            ),
            "saving_vs_sweep": round(
                1.0 - cached.wall_time / sweep.wall_time, 4
            ),
            "plans_identical": identical,
            "cache": {
                k: round(v, 4) for k, v in cached.cache_stats.items()
            },
            "phases_ms": {
                name: round(secs * 1e3, 2)
                for name, secs in cached.phase_times.items()
            },
            "candidates": cached.candidates_evaluated,
            "scalability": round(cached.plan.scalability, 6)
            if cached.plan
            else None,
        }
    return {"seed": BENCH_SEED, "settings": settings}


@pytest.mark.benchmark(group="planner")
def test_planner_solve_time(benchmark):
    results = benchmark.pedantic(
        run_planner_comparison, rounds=1, iterations=1
    )
    rows = []
    for label, cached, precache, sweep in results:
        speedup = (
            precache.wall_time / cached.wall_time
            if cached.wall_time > 0
            else float("nan")
        )
        saving = (
            1.0 - cached.wall_time / sweep.wall_time
            if sweep.wall_time > 0
            else float("nan")
        )
        rows.append(
            [
                label,
                cached.candidates_evaluated,
                f"{cached.wall_time:.2f}",
                f"{precache.wall_time:.2f}",
                f"{speedup:.2f}x",
                f"{cached.cache_stats.get('hit_rate', 0.0):.0%}",
                f"{sweep.wall_time:.2f}",
                f"{saving:.0%}",
            ]
        )
    table = format_table(
        [
            "setting",
            "cands",
            "cached s",
            "pre-cache s",
            "speedup",
            "hit rate",
            "sweep s",
            "saving",
        ],
        rows,
        title=(
            "Planner solve time: cached Algorithm 1 vs pre-cache vs "
            "reference sweep (paper: 28.57% faster than DistServe)"
        ),
    )
    breakdown = phase_table(results)
    print("\n" + table)
    print("\n" + breakdown)
    save_result("planner_time", table + "\n\n" + breakdown)
    save_json("BENCH_planner", baseline_payload(results))

    for label, cached, precache, sweep in results:
        assert cached.plan is not None, label
        assert precache.plan is not None, label
        assert sweep.plan is not None, label
        # The estimation cache must not change the answer at all.
        assert cached.plan == precache.plan, label
        assert repr(cached.plan) == repr(precache.plan), label
        # The profiling hooks must attribute the solve time to phases,
        # and the cache must report its hit/miss totals.
        assert cached.phase_times, label
        assert any(
            name.startswith("planner.") for name in cached.phase_times
        ), label
        assert cached.cache_stats.get("hits", 0) > 0, label
        # Heuristic at least 25% faster (the paper's 28.57% claim scale).
        assert cached.wall_time < sweep.wall_time * 0.75, label
        # And it must not lose solution quality materially.
        assert (
            cached.plan.scalability >= sweep.plan.scalability * 0.95
        ), label

    by_label = {label: r for label, *r in results}
    cached, precache, _ = by_label["2tracks OPT-175B"]
    assert (
        precache.wall_time / cached.wall_time >= MIN_SPEEDUP_2TRACKS
    ), (
        f"2tracks OPT-175B speedup "
        f"{precache.wall_time / cached.wall_time:.2f}x "
        f"< {MIN_SPEEDUP_2TRACKS}x target"
    )
