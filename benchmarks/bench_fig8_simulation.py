"""Fig. 8 — Large-scale simulation: scalability/latency, OPT-175B.

Paper: on APEX-simulated clusters (2tracks and 8tracks wiring), HeroServe
improves scalability by 1.12-1.94x (2tracks) and 1.09-1.83x (8tracks)
over the baselines, and cuts per-token delay by 28.4-42.1 %; the 2tracks
fabric is core-constrained, so the Ethernet-only INA baselines suffer
extra congestion there.

Our rendition runs a scaled miniature of each wiring (one unit of the
paper's layout, 8-GPU A100 servers) with the cross-server TP16
deployment, sweeping offered rate under the simulation SLAs (4 s TTFT /
0.2 s TPOT chatbot).
"""

import pytest

from repro.core import SLA_SIM_CHATBOT
from repro.llm import OPT_175B
from repro.network import build_xtracks_cluster

from common import (
    CLUSTER_PARALLEL,
    bench_seed,
    build_all_systems,
    chatbot_trace,
    make_cluster_bank,
    save_result,
    scalability_summary,
    sweep_systems,
    sweep_table,
)

RATES = [0.6, 0.9, 1.2, 1.5, 1.65, 1.8, 1.95, 2.1]
DURATION = 90.0


def run_tracks(tracks: int):
    built = build_xtracks_cluster(tracks, n_units=1)
    bank = make_cluster_bank(OPT_175B)
    mid = RATES[len(RATES) // 2]
    systems = build_all_systems(
        built,
        OPT_175B,
        bank,
        SLA_SIM_CHATBOT,
        chatbot_trace(mid, DURATION, seed=bench_seed(8)),
        arrival_rate=mid,
        forced=CLUSTER_PARALLEL,
    )
    points = sweep_systems(
        systems,
        RATES,
        lambda r: chatbot_trace(r, DURATION, seed=bench_seed(8)),
        obs_prefix=f"fig8_{tracks}tracks",
    )
    return points


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("tracks", [2, 8])
def test_fig8_scalability(benchmark, tracks):
    points = benchmark.pedantic(
        run_tracks, args=(tracks,), rounds=1, iterations=1
    )
    n_gpus = CLUSTER_PARALLEL.total_gpus
    table = sweep_table(
        points,
        n_gpus,
        f"Fig. 8 — {tracks}tracks miniature, OPT-175B chatbot "
        f"(SLA {4}s TTFT / 200ms TPOT)",
    )
    band = "1.12-1.94x" if tracks == 2 else "1.09-1.83x"
    summary, maxima = scalability_summary(
        points, f"scalability (paper {tracks}tracks: {band})"
    )
    # Paper: TPOT down 28.4-42.1% at scale; report at the mid rate.
    mid = RATES[len(RATES) // 2]
    hero = next(
        p for p in points if p.system == "HeroServe" and p.rate == mid
    )
    reductions = {
        n: 1.0
        - hero.mean_tpot
        / next(
            p for p in points if p.system == n and p.rate == mid
        ).mean_tpot
        for n in ("DistServe", "DS-ATP", "DS-SwitchML")
    }
    text = (
        table
        + "\n\n"
        + summary
        + f"\n\nTPOT reduction at {mid} req/s "
        "(paper: 28.4-42.1%): "
        + ", ".join(f"{k}: {v:.1%}" for k, v in reductions.items())
    )
    print("\n" + text)
    save_result(f"fig8_{tracks}tracks", text)

    assert maxima["HeroServe"] > 0
    for name in ("DistServe", "DS-ATP", "DS-SwitchML"):
        assert maxima["HeroServe"] >= maxima[name], name
    assert maxima["HeroServe"] > maxima["DistServe"]
    assert reductions["DistServe"] > 0.05
