"""Ablations on HeroServe's communication machinery.

* **online scheduler on/off** — HeroServe with the load-aware policy
  tables vs the same hybrid scheme statically re-estimated, under bursty
  background traffic: the online scheduler's dynamic path/mode switching
  is what recovers latency when links congest (§III-D);
* **hybrid vs single-mode** — per-group Eq. 7 selection against forcing
  INA-only or ring-only for a cross-server group across message sizes:
  the argmin must trace the lower envelope.
"""

import numpy as np
import pytest

from repro.baselines import HEROSERVE, build_system, simulate_trace
from repro.comm import (
    CommContext,
    hybrid_allreduce_time,
    ina_allreduce_time,
    ring_allreduce_time,
    select_ina_switch,
    tree_allreduce_time,
    twostage_allreduce_time,
)
from repro.core import SLA_TESTBED_CHATBOT
from repro.core.controller import CentralController
from repro.llm import OPT_66B
from repro.obs import NULL_OBSERVER
from repro.network import build_testbed
from repro.serving import BackgroundTrafficConfig, ServingSimulator
from repro.serving.background import BackgroundTraffic
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads import generate_sharegpt_trace

from common import (
    TESTBED_PARALLEL,
    bench_seed,
    dump_observation,
    make_testbed_bank,
    maybe_observed_config,
    save_json,
    save_result,
)


def run_online_ablation():
    built = build_testbed()
    bank = make_testbed_bank(OPT_66B)
    rate = 2.0
    trace = generate_sharegpt_trace(
        rate, 90, make_rng(bench_seed(21)), bursty=True
    )
    system = build_system(
        HEROSERVE, built, OPT_66B, bank, SLA_TESTBED_CHATBOT,
        trace.representative_batch(8), arrival_rate=rate,
        forced_parallel=TESTBED_PARALLEL,
    )
    bg = BackgroundTrafficConfig(intensity=0.5, mean_gap=0.4)
    out = {}
    for online in (True, False):
        ctx = system.fresh_context()
        cfg, obs = maybe_observed_config()
        controller = (
            CentralController(
                ctx=ctx,
                scheme=system.spec.scheme,
                observer=(obs or NULL_OBSERVER),
            )
            if online
            else None
        )
        sim = ServingSimulator(
            ctx=ctx, plan=system.plan, model=OPT_66B, bank=bank,
            sla=SLA_TESTBED_CHATBOT, trace=trace, controller=controller,
            config=cfg,
        )
        BackgroundTraffic(
            built.topology, ctx.linkstate, sim.queue, bg, seed=bench_seed(5)
        ).start(trace.duration + 300)
        m = sim.run()
        dump_observation(
            f"ablation_scheduler-{'online' if online else 'static'}",
            obs,
            m,
        )
        out["online" if online else "static"] = {
            "attainment": m.attainment(),
            "ttft": m.mean_ttft(),
            "tpot": m.mean_tpot(),
        }
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_online_scheduler(benchmark):
    res = benchmark.pedantic(run_online_ablation, rounds=1, iterations=1)
    rows = [
        [
            k,
            f"{v['attainment']:.2f}",
            f"{v['ttft'] * 1e3:.0f}",
            f"{v['tpot'] * 1e3:.1f}",
        ]
        for k, v in res.items()
    ]
    table = format_table(
        ["scheduler", "attainment", "TTFT ms", "TPOT ms"],
        rows,
        title=(
            "Ablation — load-aware online scheduler vs static hybrid, "
            "bursty arrivals + background bursts @ 2.0 req/s"
        ),
    )
    print("\n" + table)
    save_result("ablation_online_scheduler", table)
    # The online scheduler must not lose to the static variant.
    assert res["online"]["ttft"] <= res["static"]["ttft"] * 1.05
    assert res["online"]["attainment"] >= res["static"]["attainment"] - 0.02


def run_mode_envelope():
    built = build_testbed()
    ctx = CommContext.from_built(built, heterogeneous=True)
    group = built.topology.gpu_ids()[:8]
    sw = select_ina_switch(ctx, group)
    sizes = [2**k * 1_000_000 for k in range(0, 7)]  # 1..64 MB
    rows = []
    for d in sizes:
        t_ina = ina_allreduce_time(ctx, group, sw, d)
        t_ring = ring_allreduce_time(ctx, group, d)
        t_hyb = hybrid_allreduce_time(ctx, group, d)
        t_two = twostage_allreduce_time(ctx, group, d)
        t_tree = tree_allreduce_time(ctx, group, d)
        rows.append((d, t_ina, t_ring, t_hyb, t_two, t_tree))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_hybrid_envelope(benchmark):
    rows_raw = benchmark.pedantic(run_mode_envelope, rounds=1, iterations=1)
    rows = [
        [
            f"{d / 1e6:.0f} MB",
            f"{ti * 1e3:.2f}",
            f"{tr * 1e3:.2f}",
            f"{th * 1e3:.2f}",
            f"{t2 * 1e3:.2f}",
            f"{tt * 1e3:.2f}",
        ]
        for d, ti, tr, th, t2, tt in rows_raw
    ]
    table = format_table(
        [
            "message",
            "INA-only ms",
            "ring-only ms",
            "hybrid ms",
            "2stage ms",
            "tree ms",
        ],
        rows,
        title=(
            "Ablation — hybrid mode selection vs forced single mode "
            "(TP8 across two A100 servers)"
        ),
    )
    print("\n" + table)
    save_result("ablation_hybrid_envelope", table)
    sizes = [d for d, *_ in rows_raw]
    save_json(
        "BENCH_collectives",
        {
            "topology": "testbed (two A100 servers, TP8 cross-server)",
            "sizes_bytes": sizes,
            "times_s": {
                "ina_sync": [r[1] for r in rows_raw],
                "ring": [r[2] for r in rows_raw],
                "hybrid": [r[3] for r in rows_raw],
                "ring-2stage": [r[4] for r in rows_raw],
                "tree": [r[5] for r in rows_raw],
            },
        },
    )
    arr = np.array([(ti, tr, th, t2, tt) for _, ti, tr, th, t2, tt in rows_raw])
    # Hybrid must trace (or beat, thanks to NVLink offload) the envelope.
    assert np.all(arr[:, 2] <= np.minimum(arr[:, 0], arr[:, 1]) * 1.05)
    # The hierarchical ring moves (p-k)/p of the hops onto NVLink, so it
    # must never lose to the flat Ethernet ring on this testbed.
    assert np.all(arr[:, 3] <= arr[:, 1] * 1.05)
