"""What-if profiler baseline — the ranked bottleneck ladder per topology.

Runs :class:`repro.obs.WhatIfProfiler` end-to-end (observed baseline,
analytic catalog ranking, counterfactual re-simulation of every
intervention) on the two pinned operating points the tolerances were
measured at, and records the top-3 interventions per topology in
``BENCH_whatif.json``. The checked-in file is the answer to "what should
I upgrade first?" on each topology — docs/PERFORMANCE.md points here
before any optimisation work — and the validation assertion keeps the
analytic estimator honest against the simulator as both evolve.

With ``--obs-dir`` the full ladder lands as ``<label>-whatif.json``
alongside the other telemetry dumps.
"""

import json

import pytest

from repro.core import SLA_SIM_CHATBOT, SLA_TESTBED_CHATBOT
from repro.baselines import HEROSERVE, build_system
from repro.llm import OPT_66B, OPT_175B
from repro.network import build_testbed, build_xtracks_cluster
from repro.obs import WhatIfProfiler, render_ladder

import common
from common import (
    BENCH_SEED,
    CLUSTER_PARALLEL,
    TESTBED_PARALLEL,
    chatbot_trace,
    check_stable_hashing,
    make_cluster_bank,
    make_testbed_bank,
    obs_path,
    save_json,
    save_result,
)

#: Pinned loaded-but-unsaturated operating points (matching the
#: ``python -m repro whatif`` defaults): saturated regimes amplify
#: second-order congestion coupling the first-order analytic model does
#: not capture (see docs/OBSERVABILITY.md, "What-if profiling").
SETTINGS = {
    "testbed": dict(
        builder=lambda: build_testbed(),
        model=OPT_66B,
        bank=make_testbed_bank,
        sla=SLA_TESTBED_CHATBOT,
        parallel=TESTBED_PARALLEL,
        rate=1.0,
        duration=40.0,
    ),
    "2tracks": dict(
        builder=lambda: build_xtracks_cluster(2, n_units=1),
        model=OPT_175B,
        bank=make_cluster_bank,
        sla=SLA_SIM_CHATBOT,
        parallel=CLUSTER_PARALLEL,
        rate=0.6,
        duration=60.0,
    ),
}

TOP_K = 3


def profile_setting(label: str, spec: dict):
    """One validated what-if ladder; returns (result, payload)."""
    built = spec["builder"]()
    trace = chatbot_trace(
        spec["rate"], spec["duration"], seed=BENCH_SEED
    )
    system = build_system(
        HEROSERVE,
        built,
        spec["model"],
        spec["bank"](spec["model"]),
        spec["sla"],
        trace.representative_batch(8),
        arrival_rate=spec["rate"],
        forced_parallel=spec["parallel"],
    )
    profiler = WhatIfProfiler(system, trace)
    result = profiler.ladder(validate=True)
    payload = result.to_payload(
        meta={
            "topology": label,
            "system": system.spec.name,
            "rate": spec["rate"],
            "duration": spec["duration"],
            "seed": BENCH_SEED,
        }
    )
    if common.OBS_DIR is not None:
        with open(obs_path(f"{label}-whatif.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return result, payload


def baseline_payload(results: dict) -> dict:
    """The BENCH_whatif.json structure: top-K ladder per topology."""
    settings = {}
    for label, (result, payload) in results.items():
        settings[label] = {
            "baseline": payload["baseline"],
            "max_rel_error": max(
                (
                    row["rel_error"]
                    for row in payload["interventions"]
                    if "rel_error" in row
                ),
                default=0.0,
            ),
            "top": [
                {
                    "key": row["intervention"]["key"],
                    "label": row["intervention"]["label"],
                    "d_p99_ttft_s": row["delta"]["p99_ttft_s"],
                    "d_throughput_rps": row["delta"]["throughput_rps"],
                    "resim_d_p99_ttft_s": row["resim_delta"][
                        "p99_ttft_s"
                    ],
                    "rel_error": row["rel_error"],
                }
                for row in payload["interventions"][:TOP_K]
            ],
        }
    return {"seed": BENCH_SEED, "top_k": TOP_K, "settings": settings}


@pytest.mark.benchmark(group="whatif")
def test_whatif_ladder(benchmark):
    check_stable_hashing()
    results = benchmark.pedantic(
        lambda: {
            label: profile_setting(label, spec)
            for label, spec in SETTINGS.items()
        },
        rounds=1,
        iterations=1,
    )
    ladders = "\n\n".join(
        f"== {label} ==\n" + render_ladder(result)
        for label, (result, _) in results.items()
    )
    print("\n" + ladders)
    save_result("whatif_ladder", ladders)
    save_json("BENCH_whatif", baseline_payload(results))

    for label, (result, payload) in results.items():
        assert result.baseline.n_requests > 0, label
        # The analytic estimator must agree with the counterfactual
        # re-simulation on every catalog entry at the pinned settings.
        assert result.validated and result.all_within_tolerance, (
            label,
            render_ladder(result),
        )
        # The ladder must rank something actionable at the top.
        top = payload["interventions"][0]
        assert top["delta"]["p99_ttft_s"] > 0, (label, top)
