"""Engine throughput — the simulator's own hot-path baseline.

Unlike the ``bench_fig*`` benches (which reproduce the *paper's*
numbers), this one measures the *reproduction*: how many requests per
host wall-clock second the discrete-event engine simulates, and where
its Python time goes (event-queue handlers by tag, batch formation,
link-load bookkeeping, controller ticks). The measurement harness is
:class:`repro.obs.SelfProfilingObserver` — a NullObserver carrying only
a :class:`~repro.obs.selfprof.SelfProfiler`, so the simulated *results*
stay byte-identical to an unobserved run and the throughput number
prices the simulator, not the telemetry.

Results land in ``engine_throughput.txt`` (tables) and
``BENCH_engine.json`` (the machine-readable perf baseline the CI
perf-smoke job gates on: a >25 % drop in requests-simulated/sec on
either topology fails the build). The ROADMAP's engine-vectorization
work is measured against this file.
"""

import pytest

from repro.core import SLA_SIM_CHATBOT, SLA_TESTBED_CHATBOT
from repro.baselines import HEROSERVE, build_system, simulate_trace
from repro.llm import OPT_66B, OPT_175B
from repro.network import build_testbed, build_xtracks_cluster
from repro.obs import SelfProfiler, SelfProfilingObserver
from repro.serving import EngineConfig

from common import (
    BENCH_SEED,
    CLUSTER_PARALLEL,
    TESTBED_PARALLEL,
    chatbot_trace,
    check_stable_hashing,
    make_cluster_bank,
    make_testbed_bank,
    save_json,
    save_result,
)
from repro.util.tables import format_table

#: Simulated seconds per setting — long enough that per-run fixed costs
#: (planning happens outside the profiled window) don't dominate and the
#: wall-clock window is wide enough for a stable req/s reading.
DURATION = 60.0

SETTINGS = {
    "testbed OPT-66B": dict(
        builder=lambda: build_testbed(),
        model=OPT_66B,
        bank=make_testbed_bank,
        sla=SLA_TESTBED_CHATBOT,
        parallel=TESTBED_PARALLEL,
        rate=1.0,
    ),
    "2tracks OPT-175B": dict(
        builder=lambda: build_xtracks_cluster(2, n_units=1),
        model=OPT_175B,
        bank=make_cluster_bank,
        sla=SLA_SIM_CHATBOT,
        parallel=CLUSTER_PARALLEL,
        rate=1.2,
    ),
}


def profile_setting(spec: dict) -> dict:
    """One profiled HeroServe run; returns the SelfProfiler snapshot."""
    built = spec["builder"]()
    trace = chatbot_trace(spec["rate"], DURATION, seed=BENCH_SEED)
    system = build_system(
        HEROSERVE,
        built,
        spec["model"],
        spec["bank"](spec["model"]),
        spec["sla"],
        trace.representative_batch(8),
        arrival_rate=spec["rate"],
        forced_parallel=spec["parallel"],
    )
    selfprof = SelfProfiler()
    metrics = simulate_trace(
        system,
        trace,
        engine_config=EngineConfig(
            observer=SelfProfilingObserver(selfprof)
        ),
    )
    snap = selfprof.snapshot()
    snap["sim_finished"] = metrics.n_finished
    snap["report"] = selfprof.report()
    return snap


def run_engine_profile() -> dict[str, dict]:
    check_stable_hashing()
    return {
        label: profile_setting(spec)
        for label, spec in SETTINGS.items()
    }


def baseline_payload(snaps: dict[str, dict]) -> dict:
    """The BENCH_engine.json structure (see docs/PERFORMANCE.md).

    ``requests_per_s`` is the gated number; section/handler tables are
    recorded so a regression can be attributed without re-profiling.
    """
    settings = {}
    for label, snap in snaps.items():
        settings[label] = {
            "requests_per_s": round(snap["requests_per_s"], 1),
            "events_per_s": round(snap["events_per_s"], 1),
            "wall_s": round(snap["wall_s"], 4),
            "requests_finished": snap["requests_finished"],
            "events_fired": snap["events_fired"],
            "sections_ms": {
                name: round(row["total_s"] * 1e3, 3)
                for name, row in snap["sections"].items()
            },
            "event_handlers_ms": {
                name: round(row["total_s"] * 1e3, 3)
                for name, row in snap["event_handlers"].items()
            },
        }
    return {
        "seed": BENCH_SEED,
        "duration_s": DURATION,
        "settings": settings,
    }


@pytest.mark.benchmark(group="engine")
def test_engine_throughput(benchmark):
    snaps = benchmark.pedantic(
        run_engine_profile, rounds=1, iterations=1
    )
    rows = []
    for label, snap in snaps.items():
        rows.append(
            [
                label,
                str(snap["requests_finished"]),
                str(snap["events_fired"]),
                f"{snap['wall_s']:.3f}",
                f"{snap['requests_per_s']:.0f}",
                f"{snap['events_per_s']:.0f}",
            ]
        )
    table = format_table(
        ["setting", "requests", "events", "wall s", "req/s", "ev/s"],
        rows,
        title=(
            "Engine throughput: requests simulated per host wall-clock "
            "second (SelfProfilingObserver — results byte-identical "
            "to an unobserved run)"
        ),
    )
    reports = "\n\n".join(snap["report"] for snap in snaps.values())
    print("\n" + table)
    print("\n" + reports)
    save_result("engine_throughput", table + "\n\n" + reports)
    save_json("BENCH_engine", baseline_payload(snaps))

    for label, snap in snaps.items():
        assert snap["requests_finished"] > 0, label
        assert snap["requests_per_s"] > 0, label
        assert snap["requests_finished"] == snap["sim_finished"], label
        # The hot-path sections must all have been exercised.
        for section in (
            "engine.batch_formation",
            "engine.link_load",
            "engine.controller_tick",
        ):
            assert section in snap["sections"], (label, section)
        assert snap["event_handlers"], label
        # Handler time is a subset of the bracketing run wall-clock.
        handler_s = sum(
            row["total_s"] for row in snap["event_handlers"].values()
        )
        assert handler_s <= snap["wall_s"] * 1.05, (
            label,
            handler_s,
            snap["wall_s"],
        )
