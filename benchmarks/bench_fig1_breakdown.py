"""Fig. 1 — Prefill cost breakdown of LLaMA-3-70B (TP=4, batch 8,
1024 input / 64 output tokens, ring all-reduce over 100 GbE).

Paper's observation: with cross-server tensor parallelism the all-reduce
communication accounts for **over 65 %** of prefill latency on L40 and
**over 75 %** on A100 (the faster the compute, the larger the comm
share). We regenerate the bar chart's series: per-GPU-type computation
vs communication time and the communication fraction.
"""

import pytest

from repro.comm import (
    CommContext,
    SchemeKind,
    allreduce_bytes,
    estimate_group_step,
    sync_steps_per_pass,
)
from repro.llm import LLAMA3_70B, A100, L40, V100, BatchSpec, fit_compute_model
from repro.network import build_testbed
from repro.network.builders import ServerSpec
from repro.util import units
from repro.util.tables import format_table

from common import save_result

#: Fig. 1 measurement setup.
BATCH = BatchSpec.uniform(8, 1024, 64)
TP = 4

#: Fraction of 100 GbE line rate NCCL's ring actually achieves in the
#: Fig. 1 measurement stack (FlashCommunication [33] measures NCCL over
#: commodity 100 GbE, where all-reduce busbw is ~5-6 GB/s — roughly half
#: of line rate — due to TCP/protocol overheads and NIC sharing). The
#: "ideal RDMA" rows use full line rate for comparison.
NCCL_TCP_EFFICIENCY = 0.5


def cross_server_testbed(gpu_model: str, eth_fraction: float):
    """Four 1-GPU 'servers' so TP4 synchronises over Ethernet, matching
    Fig. 1's NCCL-ring-over-100GbE measurement."""
    spec = ServerSpec(
        name=gpu_model,
        n_gpus=1,
        gpu_memory_bytes=units.gib(48),
        nvlink_bandwidth=units.gbyte_per_s(300),
        gpu_model=gpu_model,
    )
    return build_testbed(
        server_specs=[spec] * 4,
        eth_bandwidth=eth_fraction * units.gbit_per_s(100.0),
    )


#: Alternative collectives priced next to Fig. 1's measured NCCL ring —
#: all resolved through the CollectiveScheme registry, no special cases.
ALT_SCHEMES = ("ring-2stage", "tree")


def breakdown_for(hardware, eth_fraction: float) -> dict:
    built = cross_server_testbed(hardware.name, eth_fraction)
    ctx = CommContext.from_built(built, heterogeneous=False)
    gpus = built.topology.gpu_ids()
    cm = fit_compute_model(LLAMA3_70B, hardware)
    t_compute = cm.prefill_time(BATCH, TP)
    data = allreduce_bytes(LLAMA3_70B, BATCH.k_in)
    steps = sync_steps_per_pass(LLAMA3_70B, 1)
    step = estimate_group_step(ctx, gpus, data, SchemeKind.RING)
    t_comm = steps * step.step_time
    total = t_compute + t_comm
    alt = {
        name: steps
        * estimate_group_step(ctx, gpus, data, name).step_time
        for name in ALT_SCHEMES
    }
    return {
        "hardware": hardware.name,
        "link": "NCCL/TCP" if eth_fraction < 1.0 else "ideal RDMA",
        "compute_s": t_compute,
        "comm_s": t_comm,
        "comm_frac": t_comm / total,
        "alt_comm_s": alt,
    }


def run_fig1() -> list[dict]:
    out = []
    for hw in (L40, A100, V100):
        out.append(breakdown_for(hw, NCCL_TCP_EFFICIENCY))
        out.append(breakdown_for(hw, 1.0))
    return out


@pytest.mark.benchmark(group="fig1")
def test_fig1_prefill_breakdown(benchmark):
    results = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    rows = [
        [
            r["hardware"],
            r["link"],
            f"{r['compute_s']:.3f}",
            f"{r['comm_s']:.3f}",
            f"{r['comm_frac']:.1%}",
        ]
        for r in results
    ]
    table = format_table(
        ["GPU", "link model", "compute s", "all-reduce s", "comm share"],
        rows,
        title=(
            "Fig. 1 — LLaMA-3-70B prefill breakdown "
            "(TP=4 over 100GbE ring, batch 8 x 1024 tokens)\n"
            "paper (measured NCCL on 100GbE): comm share >65% on L40, "
            ">75% on A100"
        ),
    )
    print("\n" + table)
    alt_rows = [
        [
            r["hardware"],
            r["link"],
            f"{r['comm_s']:.3f}",
            *(f"{r['alt_comm_s'][n]:.3f}" for n in ALT_SCHEMES),
        ]
        for r in results
    ]
    alt_table = format_table(
        ["GPU", "link model", "ring s", *(f"{n} s" for n in ALT_SCHEMES)],
        alt_rows,
        title=(
            "Fig. 1 extension — the same all-reduce priced under the "
            "registry's extra collectives (Eq. 7 argmin per scheme)"
        ),
    )
    print("\n" + alt_table)
    save_result("fig1_breakdown", table + "\n\n" + alt_table)

    # Eq. 7 argmin: every scheme keeps plain ring as a fallback arm, so
    # no alternative may come out worse than the measured ring.
    for r in results:
        for name in ALT_SCHEMES:
            assert r["alt_comm_s"][name] <= r["comm_s"] + 1e-12

    by_hw = {
        (r["hardware"], r["link"]): r["comm_frac"] for r in results
    }
    # The paper's measured stack (NCCL/TCP-class goodput).
    assert by_hw[("L40", "NCCL/TCP")] > 0.60
    assert by_hw[("A100", "NCCL/TCP")] > 0.70
    # Faster compute -> larger comm share, in both link models.
    for link in ("NCCL/TCP", "ideal RDMA"):
        assert by_hw[("A100", link)] > by_hw[("L40", link)]
        assert by_hw[("V100", link)] < by_hw[("A100", link)]
    # Even with ideal RDMA, communication stays a major cost (>40%).
    assert by_hw[("A100", "ideal RDMA")] > 0.40
