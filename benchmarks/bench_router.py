"""Fleet routing policies on a multi-turn session trace.

The serving-layer analogue of the paper's hybrid communication
scheduling: a conversation's KV cache is resident on the replica that
served its previous turn, so routing the follow-up elsewhere drags the
resident KV across the shared fabric first (NetKV-style network-aware
instance selection, PAPERS.md). This bench replays one session trace
through the same 3-replica OPT-175B fleet under every registered
routing policy and reports TTFT/TPOT tails, affinity hit rate, and KV
bytes moved/saved — the headline being the KV-affinity router's strict
reduction of both transfer bytes and tail TTFT over the round-robin
baseline.

Methodology (docs/ROUTING.md): identical trace and topology per
policy; a fresh fleet per run (planning is deterministic, so replicas
are byte-identical across runs); KV fetches price through the live
link-load tracker and delay the turn's admission, so misses hurt TTFT
both directly (fetch wait) and indirectly (fabric contention).

Runs are built through :mod:`repro.scenario` — one declarative spec
per routing policy, differing only in the ``router`` field — and the
rendered table is asserted byte-identical to the checked-in baseline
(``benchmarks/results/router_compare.txt``).

With ``--obs-dir``/``REPRO_OBS_DIR`` set, each run dumps its flight
JSONL — including per-request ``routing_decision`` events — which CI's
router-smoke step uploads as an artifact.
"""

import pytest

from repro.llm import OPT_175B
from repro.scenario import ScenarioSpec, TopologySpec, WorkloadSpec, run_scenario
from repro.serving import registered_routers
from repro.util.tables import format_table

from common import (
    BENCH_SEED,
    assert_matches_baseline,
    dump_observation,
    maybe_scenario_observer,
    save_json,
    save_result,
)

SESSION_RATE = 0.4     # new sessions per second
DURATION = 60.0
N_REPLICAS = 3

ROUTER_ORDER = ["round-robin", "jsq", "least-loaded", "network-aware",
                "kv-affinity"]


def router_spec(router: str) -> ScenarioSpec:
    """The declarative run for one routing policy — the only axis."""
    return ScenarioSpec(
        name=f"router-{router}",
        model="OPT-175B",
        workload=WorkloadSpec(
            generator="sessions",
            rate=SESSION_RATE,
            duration=DURATION,
            seed=BENCH_SEED,
        ),
        topology=TopologySpec(kind="xtracks", tracks=2, n_units=2),
        system="HeroServe",
        slo="sim-chatbot",
        parallel=(16, 1, 16, 1),
        arrival_rate="trace-mean",
        n_replicas=N_REPLICAS,
        router=router,
        observer=maybe_scenario_observer(),
    )


def run_router_sweep():
    out = {}
    trace_requests = 0
    for name in ROUTER_ORDER:
        res = run_scenario(router_spec(name))
        if res.observer is not None:
            dump_observation(f"router-{name}", res.observer, res.metrics)
        fm = res.metrics
        s = fm.summary()
        trace_requests = len(res.trace)
        out[name] = {
            "finished": s["finished"],
            "offered": float(len(res.trace)),
            "attainment": s["attainment"],
            "mean_ttft_s": s["mean_ttft_s"],
            "p50_ttft_s": s["p50_ttft_s"],
            "p99_ttft_s": s["p99_ttft_s"],
            "p99_tpot_s": s["p99_tpot_s"],
            "affinity_hit_rate": s["router_affinity_hit_rate"],
            "kv_bytes_moved": s["router_kv_bytes_moved"],
            "kv_bytes_saved": s["router_kv_bytes_saved"],
            "kv_fetch_wait_s": s["router_kv_fetch_wait_s"],
            "qos_attainment": fm.qos_attainment(),
        }
    return {"trace_requests": trace_requests, "routers": out}


@pytest.mark.benchmark(group="router")
def test_router_policies(benchmark):
    res = benchmark.pedantic(run_router_sweep, rounds=1, iterations=1)
    routers = res["routers"]
    assert set(ROUTER_ORDER) <= set(routers)
    # Coverage guard: every registered policy is benchmarked.
    assert set(ROUTER_ORDER) == {
        cls.name for cls in registered_routers()
    }

    rows = []
    for name in ROUTER_ORDER:
        r = routers[name]
        rows.append(
            [
                name,
                f"{r['affinity_hit_rate']:.2f}",
                f"{r['kv_bytes_moved'] / 1e9:.1f}",
                f"{r['kv_bytes_saved'] / 1e9:.1f}",
                f"{r['kv_fetch_wait_s']:.1f}",
                f"{r['p99_ttft_s'] * 1e3:.0f}",
                f"{r['p99_tpot_s'] * 1e3:.1f}",
                f"{r['attainment']:.2f}",
            ]
        )
    table = format_table(
        [
            "router",
            "hit rate",
            "KV moved GB",
            "KV saved GB",
            "fetch wait s",
            "p99 TTFT ms",
            "p99 TPOT ms",
            "attainment",
        ],
        rows,
        title=(
            f"Routing policies — {N_REPLICAS} OPT-175B replicas on "
            f"2tracks, {res['trace_requests']} session requests"
        ),
    )
    print("\n" + table)
    assert_matches_baseline("router_compare", table)
    save_result("router_compare", table)
    save_json(
        "BENCH_router",
        {
            "topology": "2tracks/2units",
            "model": OPT_175B.name,
            "n_replicas": N_REPLICAS,
            "session_rate": SESSION_RATE,
            "duration_s": DURATION,
            "seed": BENCH_SEED,
            "trace_requests": res["trace_requests"],
            "routers": routers,
        },
    )

    # Work is conserved under every policy.
    for name, r in routers.items():
        assert r["finished"] == r["offered"], (name, r)
    rr, ka = routers["round-robin"], routers["kv-affinity"]
    # The headline: KV affinity strictly beats round-robin on bytes
    # dragged across the fabric AND on tail TTFT.
    assert ka["kv_bytes_moved"] < rr["kv_bytes_moved"]
    assert ka["p99_ttft_s"] < rr["p99_ttft_s"]
    assert ka["affinity_hit_rate"] > rr["affinity_hit_rate"]
    # Network-aware pricing also keeps most resident KV in place.
    assert (
        routers["network-aware"]["kv_bytes_moved"] < rr["kv_bytes_moved"]
    )
