"""Online replanning on a load-shift trace with a phase-1 fabric storm.

The scenario inverts the usual quiet/storm split so that *both* static
endpoint plans are wrong for exactly one phase:

* **phase 1** (t < 60 s, 0.15 req/s): a multi-tenant background-traffic
  storm saturates the shared Ethernet fabric.  The cross-server TP8
  plan (``pTP8xPP1``) collapses — its prefill allreduce rides the
  congested links — while the intra-server TP4xPP2 plan keeps its
  collectives on NVLink and barely notices.
* **phase 2** (t >= 60 s, 0.6 req/s): the storm ends and the request
  rate quadruples.  Now the conservative TP4xPP2 plan saturates on
  prefill compute and builds an unbounded backlog, while TP8 on the
  quiet fabric is comfortably fast.

The online replanner starts on the storm-immune plan, detects the
sustained post-shift prefill backlog, and executes a live quiesce ->
KV-migration -> warm -> cutover transition onto the TP8 plan once the
fabric is quiet.  It must beat **both** static endpoint plans on p99
TTFT, with the transition bill (seconds, KV bytes moved, requests
delayed, rollbacks) itemised in ``BENCH_replan.json``.

Each arm is one declarative :mod:`repro.scenario` spec — loadshift
workload, phase-1-bounded ``background`` storm, optional ``replan`` /
``faults`` blocks — and the rendered table is asserted byte-identical
to the checked-in baseline (the scenario runner must reproduce the old
hand-wired constructor sequence exactly).

Two more arms pin the safety story:

* a decode-endpoint server fault injected inside the KV-migration
  window rolls the transition back cleanly (a later trigger retries
  after recovery) and drops zero requests;
* an armed replanner whose thresholds can never fire leaves the run
  byte-identical to one with the subsystem absent (golden parity).
"""

import pytest

from repro.scenario import ScenarioSpec, TopologySpec, WorkloadSpec, run_scenario
from repro.util.tables import format_table

from common import (
    assert_matches_baseline,
    bench_seed,
    save_json,
    save_result,
)

#: Cross-server TP8 — fastest prefill on a quiet fabric, fabric-exposed.
PLAN_FAST = (8, 1, 8, 1)
#: Intra-server TP4 stages — collectives stay on NVLink, storm-immune.
PLAN_SAFE = (4, 2, 4, 2)

SHIFT_AT = 60.0
DURATION = 150.0
RATE_LOW = 0.15   # phase 1, under the storm
RATE_HIGH = 0.6   # phase 2, quiet fabric
TRACE_SEED = bench_seed(0)
STORM_SEED = TRACE_SEED + 11

#: Long-context chat (longbench-like): prefill-heavy, so plan choice
#: is dominated by prefill compute vs allreduce exposure.
LONGCHAT = dict(
    input_median=6000.0,
    input_sigma=0.6,
    input_min=1024,
    input_max=16384,
    output_median=150.0,
    output_sigma=0.5,
    output_min=16,
    output_max=512,
)

#: Near-continuous multi-tenant bursts on 16 shared links — the §II
#: INA-collapse regime.  ``until`` bounds the storm to phase 1.
STORM = dict(
    intensity=0.9,
    mean_gap=0.2,
    mean_duration=2.0,
    links_per_burst=16,
    seed=STORM_SEED,
    until=SHIFT_AT,
)

#: Detector tuning: trigger on the load shift (prefill backlog), never
#: on the storm itself — fabric/cost signals are muted so the replanner
#: does not attempt a migration over the congested fabric.
REPLAN = dict(
    target_parallel=PLAN_FAST,
    queue_high=6,
    sustain_checks=4,
    pending_high=10**6,
    link_high=float("inf"),
    cost_drift_high=float("inf"),
    cooldown_s=10.0,
    window_s=30.0,
    min_window_requests=2,
)

#: A decode-endpoint server outage aimed at the KV-migration window
#: (the fault-free migration spans ~81.1-84.4 s).
MID_MIGRATION_FAULT = {
    "seed": 0,
    "events": [
        {
            "time": 82.0,
            "kind": "server_down",
            "target": "server#0",
            "duration": 3.0,
        },
    ],
}


def arm_spec(arm, replan=None, faults=None) -> ScenarioSpec:
    """The declarative run for one arm of the comparison."""
    return ScenarioSpec(
        name=f"replan-{arm}",
        model="OPT-66B",
        workload=WorkloadSpec(
            generator="loadshift",
            rate=RATE_LOW,
            duration=DURATION,
            seed=TRACE_SEED,
            params={
                "rate_b": RATE_HIGH,
                "shift_at": SHIFT_AT,
                "sharegpt": LONGCHAT,
            },
        ),
        topology=TopologySpec(kind="testbed"),
        system="HeroServe",
        slo="testbed-chatbot",
        parallel=PLAN_FAST if arm == "static-fast" else PLAN_SAFE,
        arrival_rate=RATE_HIGH,
        background=STORM,
        replan=replan,
        faults=faults,
        observer={"flight": True},
    )


def run_arm(arm, replan=None, faults=None):
    """One serving run; returns (trace, metrics, replan timeline)."""
    res = run_scenario(arm_spec(arm, replan=replan, faults=faults))
    return res.trace, res.metrics, res.observer.recorder.replan_timeline()


def arm_stats(trace, metrics):
    s = metrics.summary()
    return {
        "n_requests": len(trace),
        "n_finished": metrics.n_finished,
        "dropped": metrics.dropped,
        "p99_ttft_s": s["p99_ttft_s"],
        "mean_ttft_s": metrics.mean_ttft(),
        "attainment": metrics.attainment(),
        "replan_triggers": s.get("replan_triggers", 0.0),
        "replan_transitions": s.get("replan_transitions", 0.0),
        "replan_rollbacks": s.get("replan_rollbacks", 0.0),
        "replan_transition_seconds": s.get(
            "replan_transition_seconds", 0.0
        ),
        "replan_kv_bytes_moved": s.get("replan_kv_bytes_moved", 0.0),
        "replan_requests_delayed": s.get("replan_requests_delayed", 0.0),
    }


def request_key(metrics):
    """Per-request byte-identity key (ids, TTFTs, finish times)."""
    return [
        (r.request_id, r.ttft, r.finish_time) for r in metrics.finished
    ]


def run_loadshift():
    out = {}
    for arm in ("static-fast", "static-safe"):
        trace, metrics, _ = run_arm(arm)
        out[arm] = arm_stats(trace, metrics)

    trace, metrics, timeline = run_arm("online", replan=dict(REPLAN))
    out["online"] = arm_stats(trace, metrics)
    out["online"]["timeline"] = timeline

    trace, metrics, timeline = run_arm(
        "online",
        replan=dict(REPLAN),
        faults=MID_MIGRATION_FAULT,
    )
    out["online-mid-fault"] = arm_stats(trace, metrics)
    out["online-mid-fault"]["timeline"] = timeline

    # Golden parity: an armed replanner whose thresholds can never fire
    # must leave the run byte-identical to one without the subsystem.
    never = dict(
        target_parallel=PLAN_FAST,
        queue_high=float("inf"),
        pending_high=float("inf"),
        link_high=float("inf"),
        cost_drift_high=float("inf"),
    )
    _, plain, _ = run_arm("static-safe")
    _, armed, _ = run_arm("static-safe", replan=never)
    out["parity"] = {
        "identical": request_key(plain) == request_key(armed),
        "armed_replan_keys_zero": all(
            v == 0.0
            for k, v in armed.summary().items()
            if k.startswith("replan_")
        ),
    }
    return out


@pytest.mark.benchmark(group="replan")
def test_replan_loadshift(benchmark):
    res = benchmark.pedantic(run_loadshift, rounds=1, iterations=1)
    arms = ("static-fast", "static-safe", "online", "online-mid-fault")
    rows = [
        [
            arm,
            f"{res[arm]['n_finished']}/{res[arm]['n_requests']}",
            f"{res[arm]['p99_ttft_s']:.1f}",
            f"{res[arm]['mean_ttft_s']:.1f}",
            f"{res[arm]['replan_transitions']:.0f}",
            f"{res[arm]['replan_rollbacks']:.0f}",
            f"{res[arm]['replan_kv_bytes_moved'] / 1e9:.1f}",
            f"{res[arm]['replan_requests_delayed']:.0f}",
            f"{res[arm]['replan_transition_seconds']:.2f}",
        ]
        for arm in arms
    ]
    table = format_table(
        [
            "arm",
            "finished",
            "p99 TTFT s",
            "mean TTFT s",
            "trans",
            "rollbk",
            "KV GB",
            "delayed",
            "trans s",
        ],
        rows,
        title=(
            "Online replanning — phase-1 fabric storm, 0.15->0.6 req/s "
            "load shift at t=60 s (OPT-66B, testbed)"
        ),
    )
    print("\n" + table)
    assert_matches_baseline("replan_loadshift", table)
    save_result("replan_loadshift", table)
    save_json(
        "BENCH_replan",
        {
            "scenario": {
                "topology": "testbed",
                "model": "OPT_66B",
                "plan_fast": "pTP8xPP1/dTP8xPP1",
                "plan_safe": "pTP4xPP2/dTP4xPP2",
                "rates_req_s": [RATE_LOW, RATE_HIGH],
                "shift_at_s": SHIFT_AT,
                "duration_s": DURATION,
                "storm": "phase 1 only, intensity 0.9 on 16 links",
                "trace_seed": TRACE_SEED,
                "storm_seed": STORM_SEED,
            },
            "arms": {k: res[k] for k in arms},
            "parity": res["parity"],
        },
    )

    # Every arm finishes every request; nothing is ever dropped.
    for arm in arms:
        assert res[arm]["n_finished"] == res[arm]["n_requests"], arm
        assert res[arm]["dropped"] == 0, arm

    # Acceptance: online replanning beats BOTH static endpoint plans.
    online = res["online"]
    assert online["p99_ttft_s"] < res["static-fast"]["p99_ttft_s"]
    assert online["p99_ttft_s"] < res["static-safe"]["p99_ttft_s"]
    assert online["replan_transitions"] >= 1
    assert online["replan_rollbacks"] == 0
    assert online["replan_kv_bytes_moved"] > 0
    assert online["replan_requests_delayed"] > 0

    # A fault inside the migration rolls back, then retries cleanly.
    faulted = res["online-mid-fault"]
    assert faulted["replan_rollbacks"] >= 1
    assert faulted["replan_transitions"] >= 1
    events = [e["event"] for e in faulted["timeline"]]
    assert "transition_rollback" in events
    assert "transition_complete" in events

    # Replanning off (never-firing thresholds) is byte-identical.
    assert res["parity"]["identical"]
    assert res["parity"]["armed_replan_keys_zero"]
