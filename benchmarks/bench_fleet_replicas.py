"""Multi-replica fleets sharing one fabric (extension experiment).

The paper's large-scale evaluation serves many model instances on one
cluster; their synchronisation and KV traffic share the Ethernet fabric.
This bench packs 1-3 OPT-175B replicas onto the 2tracks miniature and
replays the same aggregate load: per-replica goodput should *degrade*
as replicas contend, and HeroServe — whose hybrid scheduling keeps most
synchronisation bytes off the shared Ethernet — should degrade least
(the multi-tenant congestion resilience of §II-C at system level).
"""

import pytest

from repro.baselines import DISTSERVE, HEROSERVE, build_fleet
from repro.core import SLA_SIM_CHATBOT
from repro.llm import OPT_175B
from repro.network import build_xtracks_cluster
from repro.util.tables import format_table

from common import CLUSTER_PARALLEL, chatbot_trace, make_cluster_bank, save_result

RATE_PER_REPLICA = 1.2
DURATION = 60.0


def run_fleet_sweep():
    built = build_xtracks_cluster(2, n_units=3)  # 18 servers x 8 GPUs
    bank = make_cluster_bank(OPT_175B)
    out = {}
    for spec in (DISTSERVE, HEROSERVE):
        rows = []
        for n in (1, 2, 3):
            rate = RATE_PER_REPLICA * n
            trace = chatbot_trace(rate, DURATION, seed=13)
            fleet = build_fleet(
                spec,
                built,
                OPT_175B,
                bank,
                SLA_SIM_CHATBOT,
                trace.representative_batch(8),
                arrival_rate=rate,
                n_replicas=n,
                forced_parallel=CLUSTER_PARALLEL,
            )
            fm = fleet.run(trace)
            rows.append(
                {
                    "n": n,
                    "attainment": fm.attainment(),
                    "ttft": fm.mean_ttft(),
                    "tpot": fm.mean_tpot(),
                    "finished": fm.n_finished,
                    "offered": len(trace),
                }
            )
        out[spec.name] = rows
    return out


@pytest.mark.benchmark(group="fleet")
def test_fleet_replica_contention(benchmark):
    res = benchmark.pedantic(run_fleet_sweep, rounds=1, iterations=1)
    rows = []
    for name, series in res.items():
        for r in series:
            rows.append(
                [
                    name,
                    r["n"],
                    f"{r['attainment']:.2f}",
                    f"{r['ttft'] * 1e3:.0f}",
                    f"{r['tpot'] * 1e3:.1f}",
                    f"{r['finished']}/{r['offered']}",
                ]
            )
    table = format_table(
        ["system", "replicas", "attainment", "TTFT ms", "TPOT ms", "done"],
        rows,
        title=(
            "Fleet contention — OPT-175B replicas on a shared 2tracks "
            f"fabric, {RATE_PER_REPLICA} req/s per replica"
        ),
    )
    print("\n" + table)
    save_result("fleet_replicas", table)

    for name, series in res.items():
        # Work is conserved regardless of contention.
        for r in series:
            assert r["finished"] == r["offered"], (name, r)
    # HeroServe's TPOT inflation from 1 -> 3 replicas is no worse than
    # DistServe's (its sync traffic mostly rides NVLink).
    def inflation(series):
        return series[-1]["tpot"] / series[0]["tpot"]

    assert inflation(res["HeroServe"]) <= inflation(res["DistServe"]) * 1.05
    # And HeroServe dominates at every fleet size.
    for a, b in zip(res["HeroServe"], res["DistServe"]):
        assert a["tpot"] < b["tpot"]
