"""Multi-replica fleets sharing one fabric (extension experiment).

The paper's large-scale evaluation serves many model instances on one
cluster; their synchronisation and KV traffic share the Ethernet fabric.
This bench packs 1-3 OPT-175B replicas onto the 2tracks miniature and
replays the same aggregate load: per-replica goodput should *degrade*
as replicas contend, and HeroServe — whose hybrid scheduling keeps most
synchronisation bytes off the shared Ethernet — should degrade least
(the multi-tenant congestion resilience of §II-C at system level).

Runs are built through :mod:`repro.scenario` — one spec per (system,
replica-count) cell with the offered rate coupled to the fleet size —
and the table is asserted byte-identical to the checked-in baseline.
"""

import pytest

from repro.scenario import ScenarioSpec, TopologySpec, WorkloadSpec, run_scenario
from repro.util.tables import format_table

from common import assert_matches_baseline, bench_seed, save_result

RATE_PER_REPLICA = 1.2
DURATION = 60.0
SEED = bench_seed(13)


def fleet_spec(system: str, n_replicas: int) -> ScenarioSpec:
    """One (system, fleet-size) cell; rate scales with the fleet."""
    return ScenarioSpec(
        name=f"fleet-{system}-x{n_replicas}",
        model="OPT-175B",
        workload=WorkloadSpec(
            generator="sharegpt",
            rate=RATE_PER_REPLICA * n_replicas,
            duration=DURATION,
            seed=SEED,
        ),
        topology=TopologySpec(kind="xtracks", tracks=2, n_units=3),
        system=system,
        slo="sim-chatbot",
        parallel=(16, 1, 16, 1),
        n_replicas=n_replicas,
    )


def run_fleet_sweep():
    out = {}
    for system in ("DistServe", "HeroServe"):
        rows = []
        for n in (1, 2, 3):
            res = run_scenario(fleet_spec(system, n))
            fm = res.metrics
            rows.append(
                {
                    "n": n,
                    "attainment": fm.attainment(),
                    "ttft": fm.mean_ttft(),
                    "tpot": fm.mean_tpot(),
                    "finished": fm.n_finished,
                    "offered": len(res.trace),
                }
            )
        out[system] = rows
    return out


@pytest.mark.benchmark(group="fleet")
def test_fleet_replica_contention(benchmark):
    res = benchmark.pedantic(run_fleet_sweep, rounds=1, iterations=1)
    rows = []
    for name, series in res.items():
        for r in series:
            rows.append(
                [
                    name,
                    r["n"],
                    f"{r['attainment']:.2f}",
                    f"{r['ttft'] * 1e3:.0f}",
                    f"{r['tpot'] * 1e3:.1f}",
                    f"{r['finished']}/{r['offered']}",
                ]
            )
    table = format_table(
        ["system", "replicas", "attainment", "TTFT ms", "TPOT ms", "done"],
        rows,
        title=(
            "Fleet contention — OPT-175B replicas on a shared 2tracks "
            f"fabric, {RATE_PER_REPLICA} req/s per replica"
        ),
    )
    print("\n" + table)
    assert_matches_baseline("fleet_replicas", table)
    save_result("fleet_replicas", table)

    for name, series in res.items():
        # Work is conserved regardless of contention.
        for r in series:
            assert r["finished"] == r["offered"], (name, r)
    # HeroServe's TPOT inflation from 1 -> 3 replicas is no worse than
    # DistServe's (its sync traffic mostly rides NVLink).
    def inflation(series):
        return series[-1]["tpot"] / series[0]["tpot"]

    assert inflation(res["HeroServe"]) <= inflation(res["DistServe"]) * 1.05
    # And HeroServe dominates at every fleet size.
    for a, b in zip(res["HeroServe"], res["DistServe"]):
        assert a["tpot"] < b["tpot"]
