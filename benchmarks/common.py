"""Shared helpers for the figure-reproduction benchmarks.

Each ``bench_fig*.py`` regenerates one table/figure of the paper's
evaluation: it builds the systems, sweeps the figure's parameter, prints
the same rows/series the paper reports, writes them under
``benchmarks/results/`` and asserts the *shape* (orderings, rough
factors) — not the absolute numbers, which depended on the authors'
testbed.

Telemetry dumps: pass ``--obs-dir DIR`` (or set ``REPRO_OBS_DIR``) and
every bench mirrors its result table there; benches that run the
serving simulator additionally attach an observer + flight recorder to
each run and dump the Chrome trace, the metrics snapshot, the summary,
the critical-path attribution JSON and the flight-recorder JSONL per
(system, rate) run.
"""

from __future__ import annotations

import json
import os
import sys
import warnings
from dataclasses import dataclass

from repro.baselines import (
    ALL_SYSTEMS,
    ServingSystem,
    SystemSpec,
    build_system,
    simulate_trace,
)
from repro.core.objective import SlaSpec
from repro.core.plan import ParallelConfig
from repro.llm import A100, V100, CostModelBank, ModelConfig
from repro.network.builders import BuiltTopology
from repro.obs import AttributionCollector, FlightRecorder, Observer
from repro.serving import EngineConfig
from repro.serving.metrics import SLA_ATTAINMENT_TARGET, ServingMetrics
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads import (
    Trace,
    generate_longbench_trace,
    generate_sharegpt_trace,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

def bench_seed(default: int) -> int:
    """The seed a bench should thread into its RNGs.

    Returns ``default`` unless ``REPRO_BENCH_SEED`` is set, in which case
    every bench-local seed collapses onto the override — one knob probes
    seed sensitivity across the whole suite. The defaults match the
    checked-in baselines under ``benchmarks/results/``.
    """
    env = os.environ.get("REPRO_BENCH_SEED")
    return default if env is None else int(env)


#: Seed every bench threads into its planner/trace RNGs unless it pins a
#: bench-local default through :func:`bench_seed`.
BENCH_SEED = bench_seed(7)


def seed_overridden() -> bool:
    """True when ``REPRO_BENCH_SEED`` redirects the benches off-baseline."""
    return os.environ.get("REPRO_BENCH_SEED") is not None


def check_stable_hashing() -> None:
    """Warn when str-hash randomization is live during a timing bench.

    Cache keys are tuples of ints/floats/enums, so *results* never depend
    on ``PYTHONHASHSEED`` — but dict iteration order of str-keyed report
    tables does, and a randomized hash seed makes timing runs not exactly
    reproducible run-to-run. CI pins ``PYTHONHASHSEED=0``; do the same
    locally when comparing against the checked-in baselines.
    """
    if sys.flags.hash_randomization and os.environ.get(
        "PYTHONHASHSEED", "random"
    ) in ("", "random"):
        warnings.warn(
            "PYTHONHASHSEED is unset: timings are still valid but not "
            "bit-reproducible; set PYTHONHASHSEED=0 to match CI",
            stacklevel=2,
        )

#: Telemetry dump directory; set by ``--obs-dir`` (benchmarks/conftest)
#: or the ``REPRO_OBS_DIR`` environment variable. ``None`` disables all
#: per-run observability in the benches.
OBS_DIR: str | None = os.environ.get("REPRO_OBS_DIR") or None


def set_obs_dir(path: str | None) -> None:
    """Point the benches' telemetry dumps at ``path`` (None disables)."""
    global OBS_DIR
    OBS_DIR = path or None


def obs_path(filename: str) -> str:
    """Path of one dump file inside the (created) obs dir."""
    assert OBS_DIR is not None
    os.makedirs(OBS_DIR, exist_ok=True)
    return os.path.join(OBS_DIR, filename)


def maybe_observed_config(
    **kwargs,
) -> tuple[EngineConfig | None, Observer | None]:
    """Observer-equipped engine config when ``--obs-dir`` is active.

    Returns ``(None, None)`` otherwise, so call sites can pass the
    config straight to ``simulate_trace`` with zero overhead when dumps
    are off.
    """
    if OBS_DIR is None:
        return None, None
    observer = Observer(
        recorder=FlightRecorder(), attribution=AttributionCollector()
    )
    return EngineConfig(observer=observer, **kwargs), observer


def maybe_scenario_observer() -> dict | None:
    """Spec-level ``observer`` block when ``--obs-dir`` is active.

    The scenario-spec twin of :func:`maybe_observed_config`: benches
    that build runs through :mod:`repro.scenario` put this in their
    spec and the runner attaches the same flight recorder + attribution
    collector pair; ``None`` keeps the run observer-free.
    """
    if OBS_DIR is None:
        return None
    return {"flight": True, "attribution": True}


def dump_observation(name: str, observer, metrics=None) -> None:
    """Write one observed run's telemetry set under the obs dir."""
    if OBS_DIR is None or observer is None:
        return
    observer.export(
        trace_path=obs_path(f"{name}-trace.json"),
        metrics_path=obs_path(f"{name}-metrics.json"),
    )
    if observer.recorder is not None:
        observer.recorder.write_jsonl(obs_path(f"{name}-flight.jsonl"))
    attribution = getattr(observer, "attribution", None)
    if attribution is not None and attribution.finished:
        # Full per-request timelines (AttributionCollector.to_payload),
        # so `python -m repro explain --from-dir` and the what-if
        # profiler can replay the dump without re-simulating; the
        # `slowest` digest stays for quick eyeballing.
        payload = attribution.to_payload()
        payload["slowest"] = [
            {
                "request_id": a.request_id,
                "total_s": a.total,
                "dominant": a.dominant[0],
                "detail": a.dominant_detail(),
                "components": dict(a.components),
            }
            for a in attribution.slowest(5)
        ]
        with open(obs_path(f"{name}-attribution.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    if metrics is not None:
        with open(obs_path(f"{name}-summary.json"), "w") as fh:
            json.dump(metrics.summary(), fh, indent=2, sort_keys=True)

#: Cross-server parallelism pinned for the testbed comparisons — the
#: paper's evaluated regime (tensor parallelism spanning GPU servers).
TESTBED_PARALLEL = ParallelConfig(8, 1, 8, 1)
CLUSTER_PARALLEL = ParallelConfig(16, 1, 16, 1)

SYSTEM_ORDER = ["DistServe", "DS-ATP", "DS-SwitchML", "HeroServe"]


def save_result(name: str, text: str) -> str:
    """Write a bench's table to benchmarks/results/<name>.txt.

    With ``--obs-dir`` active the table is mirrored there too, so one
    directory collects everything a bench session produced.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    if OBS_DIR is not None:
        with open(obs_path(f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")
    return path


def assert_matches_baseline(name: str, text: str) -> None:
    """Assert ``text`` is byte-identical to results/<name>.txt.

    The scenario-spec refactor of the serving benches is pinned by this:
    each refactored bench renders its table from runs built *through*
    :mod:`repro.scenario` and must reproduce the checked-in baseline
    exactly. Skipped when ``REPRO_BENCH_SEED`` moves the suite off the
    baseline seeds, or when the baseline has not been generated yet.
    """
    if seed_overridden():
        return
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    if not os.path.exists(path):
        return
    with open(path) as fh:
        expected = fh.read()
    assert text + "\n" == expected, (
        f"{name}: scenario-built table diverged from checked-in baseline "
        f"{path} — the scenario runner no longer reproduces the "
        f"hand-wired construction byte-for-byte"
    )


def save_json(name: str, payload) -> str:
    """Write a machine-readable bench baseline to results/<name>.json.

    The ``BENCH_*.json`` files record the perf trajectory (per-phase ms,
    cache hit rates, speedups) that ``docs/PERFORMANCE.md`` documents and
    the CI perf-smoke job gates on.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if OBS_DIR is not None:
        with open(obs_path(f"{name}.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return path


def observed_engine_config(**kwargs) -> tuple[EngineConfig, Observer]:
    """EngineConfig with a live observer attached, for benches that want
    a trace/metrics dump alongside the table (``**kwargs`` forwarded to
    :class:`EngineConfig`)."""
    observer = Observer()
    return EngineConfig(observer=observer, **kwargs), observer


def phase_breakdown_rows(
    phase_times: dict[str, float]
) -> list[list[str]]:
    """Format planner ``PlannerReport.phase_times`` for a table."""
    total = sum(phase_times.values()) or 1.0
    return [
        [name, f"{secs * 1e3:.1f}", f"{secs / total:.0%}"]
        for name, secs in sorted(
            phase_times.items(), key=lambda kv: -kv[1]
        )
    ]


def make_testbed_bank(model: ModelConfig) -> CostModelBank:
    return CostModelBank(model, {"A100": A100, "V100": V100})


def make_cluster_bank(model: ModelConfig) -> CostModelBank:
    return CostModelBank(model, {"A100": A100})


def chatbot_trace(rate: float, duration: float, seed: int = 0) -> Trace:
    return generate_sharegpt_trace(rate, duration, make_rng(seed))


def summarization_trace(
    rate: float, duration: float, seed: int = 0
) -> Trace:
    return generate_longbench_trace(rate, duration, make_rng(seed))


def build_all_systems(
    built: BuiltTopology,
    model: ModelConfig,
    bank: CostModelBank,
    sla: SlaSpec,
    forecast_trace: Trace,
    arrival_rate: float,
    forced: ParallelConfig | None,
    forecast_q: int = 8,
) -> dict[str, ServingSystem]:
    """One planned deployment per system spec."""
    forecast = forecast_trace.representative_batch(forecast_q)
    return {
        spec.name: build_system(
            spec,
            built,
            model,
            bank,
            sla,
            forecast,
            arrival_rate=arrival_rate,
            forced_parallel=forced,
        )
        for spec in ALL_SYSTEMS
    }


@dataclass
class SweepPoint:
    """Metrics of one system at one offered rate."""

    system: str
    rate: float
    attainment: float
    mean_ttft: float
    mean_tpot: float
    mem_util: float


def sweep_systems(
    systems: dict[str, ServingSystem],
    rates: list[float],
    make_trace,
    engine_config: EngineConfig | None = None,
    obs_prefix: str | None = None,
) -> list[SweepPoint]:
    """Replay a fresh trace per rate through every system.

    When ``--obs-dir`` is active and no explicit ``engine_config`` is
    given, each run gets its own observer + flight recorder and the
    telemetry set is dumped as ``<obs_prefix>-<system>-r<rate>-*``.
    """
    points: list[SweepPoint] = []
    for rate in rates:
        trace = make_trace(rate)
        for name in SYSTEM_ORDER:
            cfg, obs = engine_config, None
            if cfg is None:
                cfg, obs = maybe_observed_config()
            m: ServingMetrics = simulate_trace(
                systems[name], trace, engine_config=cfg
            )
            if obs is not None:
                dump_observation(
                    f"{obs_prefix or 'sweep'}-{name.lower()}-r{rate:g}",
                    obs,
                    m,
                )
            points.append(
                SweepPoint(
                    system=name,
                    rate=rate,
                    attainment=m.attainment(),
                    mean_ttft=m.mean_ttft(),
                    mean_tpot=m.mean_tpot(),
                    mem_util=m.mean_memory_utilization(),
                )
            )
    return points


def max_passing_rate(
    points: list[SweepPoint],
    system: str,
    target: float = SLA_ATTAINMENT_TARGET,
) -> float:
    """Highest swept rate at which ``system`` met the attainment target."""
    passing = [
        p.rate
        for p in points
        if p.system == system and p.attainment >= target
    ]
    return max(passing) if passing else 0.0


def per_gpu(rate: float, n_gpus: int) -> float:
    """Per-GPU rate, the x-axis unit of the paper's scalability plots."""
    return rate / n_gpus


def sweep_table(
    points: list[SweepPoint], n_gpus: int, title: str
) -> str:
    """Render a sweep as the paper-style rows."""
    rows = []
    for p in points:
        rows.append(
            [
                p.system,
                f"{p.rate:.3f}",
                f"{per_gpu(p.rate, n_gpus) * 1e3:.2f}",
                f"{p.attainment:.2f}",
                f"{p.mean_ttft:.3f}",
                f"{p.mean_tpot * 1e3:.1f}",
            ]
        )
    return format_table(
        [
            "system",
            "rate r/s",
            "per-GPU mr/s",
            "attainment",
            "TTFT s",
            "TPOT ms",
        ],
        rows,
        title=title,
    )


def scalability_summary(
    points: list[SweepPoint], title: str
) -> tuple[str, dict[str, float]]:
    """Max passing rate per system plus HeroServe's improvement factors."""
    maxima = {
        name: max_passing_rate(points, name) for name in SYSTEM_ORDER
    }
    hero = maxima["HeroServe"]
    rows = []
    for name in SYSTEM_ORDER:
        factor = hero / maxima[name] if maxima[name] > 0 else float("nan")
        rows.append(
            [name, f"{maxima[name]:.3f}", f"{factor:.2f}x"]
        )
    return (
        format_table(
            ["system", "max rate @ 90% SLA", "HeroServe gain"],
            rows,
            title=title,
        ),
        maxima,
    )
