"""Ablations on the offline planner's design choices.

Two of the knobs DESIGN.md calls out:

* **random-swap perturbation** (Algorithm 2 step 3) — on vs off: the
  perturbation must never worsen the estimated network latency and the
  paper reports convergence within ~5 rounds;
* **max_candi** (Algorithm 1 step 1) — the paper: "setting max_candi =
  twenty usually yields near-optimal solutions"; we sweep the cap and
  check H(20) is within a few percent of the exhaustive optimum while
  solving faster.
"""

import pytest

from repro.comm import CommContext, SchemeKind
from repro.core import SLA_TESTBED_CHATBOT, OfflinePlanner, PlannerConfig
from repro.core.netestimate import estimate_network_latency
from repro.llm import OPT_66B, BatchSpec
from repro.network import build_testbed
from repro.util.rng import make_rng
from repro.util.tables import format_table

from common import save_result, make_testbed_bank


def run_perturbation_ablation():
    built = build_testbed()
    ctx = CommContext.from_built(built, heterogeneous=True)
    gpus = built.topology.gpu_ids()
    out = []
    # TP6 groups cannot fit a 4-GPU server, so the greedy balanced
    # k-means assignment has genuine room for the swap polish to help
    # (groups of <= 4 land on single servers and are already optimal).
    for seed in range(6):
        base = estimate_network_latency(
            ctx, gpus, 6, 2, OPT_66B, tokens=2048,
            scheme=SchemeKind.HYBRID, rng=make_rng(seed), perturb=False,
        )
        tuned = estimate_network_latency(
            ctx, gpus, 6, 2, OPT_66B, tokens=2048,
            scheme=SchemeKind.HYBRID, rng=make_rng(seed), perturb=True,
        )
        out.append((seed, base.t_network, tuned.t_network))
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_perturbation(benchmark):
    rows_raw = benchmark.pedantic(
        run_perturbation_ablation, rounds=1, iterations=1
    )
    rows = [
        [
            seed,
            f"{t0 * 1e3:.2f}",
            f"{t1 * 1e3:.2f}",
            f"{(1 - t1 / t0):.1%}" if t0 > 0 else "-",
        ]
        for seed, t0, t1 in rows_raw
    ]
    table = format_table(
        ["seed", "T_n no-perturb ms", "T_n perturb ms", "improvement"],
        rows,
        title=(
            "Ablation — Algorithm 2 random-swap perturbation "
            "(TP6 x PP2 over the whole testbed)"
        ),
    )
    print("\n" + table)
    save_result("ablation_perturbation", table)
    for _, t0, t1 in rows_raw:
        assert t1 <= t0 * (1 + 1e-9)  # never worse
    # It must actually help for at least some initialisations.
    assert any(t1 < t0 * 0.999 for _, t0, t1 in rows_raw)


def run_maxcandi_sweep():
    built = build_testbed()
    bank = make_testbed_bank(OPT_66B)
    ctx = CommContext.from_built(built, heterogeneous=True)
    batch = BatchSpec.uniform(8, 256, 220)
    out = []
    for cap in (2, 5, 10, 20, 60):
        planner = OfflinePlanner(
            ctx, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID,
            config=PlannerConfig(max_candi=cap),
        )
        rep = planner.plan(batch, arrival_rate=0.5)
        out.append(
            (
                cap,
                rep.wall_time,
                rep.plan.scalability if rep.plan else 0.0,
            )
        )
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_max_candi(benchmark):
    res = benchmark.pedantic(run_maxcandi_sweep, rounds=1, iterations=1)
    best_h = max(h for _, _, h in res)
    rows = [
        [cap, f"{t:.2f}", f"{h:.4f}", f"{h / best_h:.1%}"]
        for cap, t, h in res
    ]
    table = format_table(
        ["max_candi", "solve s", "best H", "vs optimum"],
        rows,
        title=(
            "Ablation — candidate cap (paper: max_candi = 20 is "
            "usually near-optimal)"
        ),
    )
    print("\n" + table)
    save_result("ablation_max_candi", table)
    h20 = next(h for cap, _, h in res if cap == 20)
    assert h20 >= 0.97 * best_h  # 20 candidates ~ near-optimal
