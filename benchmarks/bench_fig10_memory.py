"""Fig. 10 — Memory efficiency of storing KV cache.

Paper: serving the summarisation workload (OPT-175B, 0.07 req/s per
deployment) on the 2tracks and 8tracks clusters, HeroServe consistently
keeps the lowest KV-cache memory utilisation: its faster transfers and
token generation "result in more frequent KV cache refreshes, reducing
memory usage", keeping fewer concurrent requests resident.

We regenerate the per-system mean/peak utilisation of the decode
cluster's KV pool over the run.
"""

import pytest

from repro.baselines import simulate_trace
from repro.core import SLA_SIM_SUMMARIZATION
from repro.llm import OPT_175B
from repro.network import build_xtracks_cluster

from common import (
    CLUSTER_PARALLEL,
    SYSTEM_ORDER,
    bench_seed,
    build_all_systems,
    dump_observation,
    make_cluster_bank,
    maybe_observed_config,
    save_result,
    summarization_trace,
)
from repro.util.tables import format_table

RATE = 0.07  # the figure's request rate
DURATION = 600.0


def run_tracks(tracks: int) -> dict[str, dict[str, float]]:
    built = build_xtracks_cluster(tracks, n_units=1)
    bank = make_cluster_bank(OPT_175B)
    trace = summarization_trace(RATE, DURATION, seed=bench_seed(10))
    systems = build_all_systems(
        built,
        OPT_175B,
        bank,
        SLA_SIM_SUMMARIZATION,
        trace,
        arrival_rate=RATE,
        forced=CLUSTER_PARALLEL,
        forecast_q=4,
    )
    out: dict[str, dict[str, float]] = {}
    for name in SYSTEM_ORDER:
        cfg, obs = maybe_observed_config()
        m = simulate_trace(systems[name], trace, engine_config=cfg)
        dump_observation(
            f"fig10_{tracks}tracks-{name.lower()}", obs, m
        )
        out[name] = {
            "mean_util": m.mean_memory_utilization(),
            "peak_util": m.peak_memory_utilization(),
            "mean_tpot": m.mean_tpot(),
            "finished": float(m.n_finished),
        }
    return out


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("tracks", [2, 8])
def test_fig10_memory_efficiency(benchmark, tracks):
    res = benchmark.pedantic(
        run_tracks, args=(tracks,), rounds=1, iterations=1
    )
    rows = [
        [
            n,
            f"{res[n]['mean_util']:.1%}",
            f"{res[n]['peak_util']:.1%}",
            f"{res[n]['mean_tpot'] * 1e3:.1f}",
            int(res[n]["finished"]),
        ]
        for n in SYSTEM_ORDER
    ]
    table = format_table(
        ["system", "mean KV util", "peak KV util", "TPOT ms", "finished"],
        rows,
        title=(
            f"Fig. 10 — KV-cache memory utilisation, {tracks}tracks, "
            f"summarisation OPT-175B @ {RATE} req/s\n"
            "paper: HeroServe consistently lowest"
        ),
    )
    print("\n" + table)
    save_result(f"fig10_{tracks}tracks", table)

    hero = res["HeroServe"]["mean_util"]
    for name in ("DistServe", "DS-ATP", "DS-SwitchML"):
        assert hero <= res[name]["mean_util"] * 1.02, name
    assert hero < res["DistServe"]["mean_util"]
