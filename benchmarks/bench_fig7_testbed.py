"""Fig. 7 — Testbed scalability and latency, OPT-66B.

Four panels in the paper:

* (a)/(b) chatbot (ShareGPT, SLA 2.5 s TTFT / 0.15 s TPOT): HeroServe's
  max per-GPU rate at 90 % SLA attainment is 1.53x / 1.42x / 1.33x that
  of DistServe / DS-ATP / DS-SwitchML, and TPOT drops 18.6-49.2 %.
* (c)/(d) summarisation (LongBench, SLA 15 s / 0.15 s): 1.68x / 1.58x /
  1.35x, TTFT down 15.2-45.2 %, TPOT down 11.2-27.3 %.

All systems run the paper's cross-server deployment (TP8 prefill on one
server pair, TP8 decode on the other) and replay identical traces; the
sweep reports SLA attainment per offered rate, the max passing rate and
HeroServe's improvement factors.
"""

import pytest

from repro.core import SLA_TESTBED_CHATBOT, SLA_TESTBED_SUMMARIZATION
from repro.llm import OPT_66B
from repro.network import build_testbed

from common import (
    TESTBED_PARALLEL,
    bench_seed,
    build_all_systems,
    chatbot_trace,
    save_result,
    scalability_summary,
    summarization_trace,
    sweep_systems,
    sweep_table,
    make_testbed_bank,
)

CHATBOT_RATES = [1.5, 2.0, 2.5, 2.75, 3.0, 3.25, 3.5, 3.75]
SUMMARIZATION_RATES = [0.04, 0.06, 0.07, 0.08, 0.09, 0.10, 0.11]
DURATION = 80.0


def run_workload(workload: str):
    built = build_testbed()
    bank = make_testbed_bank(OPT_66B)
    if workload == "chatbot":
        sla, rates, make_trace = (
            SLA_TESTBED_CHATBOT,
            CHATBOT_RATES,
            lambda r: chatbot_trace(r, DURATION, seed=bench_seed(3)),
        )
    else:
        sla, rates, make_trace = (
            SLA_TESTBED_SUMMARIZATION,
            SUMMARIZATION_RATES,
            lambda r: summarization_trace(r, 4 * DURATION, seed=bench_seed(3)),
        )
    systems = build_all_systems(
        built,
        OPT_66B,
        bank,
        sla,
        make_trace(rates[len(rates) // 2]),
        arrival_rate=rates[len(rates) // 2],
        forced=TESTBED_PARALLEL,
    )
    points = sweep_systems(
        systems, rates, make_trace, obs_prefix=f"fig7_{workload}"
    )
    n_gpus = TESTBED_PARALLEL.total_gpus
    return points, n_gpus


def tpot_reduction(points, rate, other):
    hero = next(
        p for p in points if p.system == "HeroServe" and p.rate == rate
    )
    base = next(
        p for p in points if p.system == other and p.rate == rate
    )
    return 1.0 - hero.mean_tpot / base.mean_tpot


@pytest.mark.benchmark(group="fig7")
def test_fig7a_b_chatbot(benchmark):
    points, n_gpus = benchmark.pedantic(
        run_workload, args=("chatbot",), rounds=1, iterations=1
    )
    table = sweep_table(
        points, n_gpus, "Fig. 7(a)/(b) — chatbot, OPT-66B testbed"
    )
    summary, maxima = scalability_summary(
        points,
        "scalability (paper: 1.53x / 1.42x / 1.33x over "
        "DistServe / DS-ATP / DS-SwitchML)",
    )
    mid = CHATBOT_RATES[2]
    reductions = {
        n: tpot_reduction(points, mid, n)
        for n in ("DistServe", "DS-ATP", "DS-SwitchML")
    }
    text = (
        table
        + "\n\n"
        + summary
        + "\n\nTPOT reduction at "
        + f"{mid} req/s (paper: 18.6-49.2%): "
        + ", ".join(f"{k}: {v:.1%}" for k, v in reductions.items())
    )
    print("\n" + text)
    save_result("fig7ab_chatbot", text)

    # Shape: HeroServe sustains the highest rate, DistServe the lowest.
    assert maxima["HeroServe"] >= maxima["DS-SwitchML"]
    assert maxima["HeroServe"] >= maxima["DS-ATP"]
    assert maxima["HeroServe"] > maxima["DistServe"]
    assert maxima["HeroServe"] / maxima["DistServe"] > 1.15
    # TPOT reductions in (or near) the paper's band.
    assert reductions["DistServe"] > 0.10
    assert all(v > 0.0 for v in reductions.values())


@pytest.mark.benchmark(group="fig7")
def test_fig7c_d_summarization(benchmark):
    points, n_gpus = benchmark.pedantic(
        run_workload, args=("summarization",), rounds=1, iterations=1
    )
    table = sweep_table(
        points, n_gpus, "Fig. 7(c)/(d) — summarisation, OPT-66B testbed"
    )
    summary, maxima = scalability_summary(
        points,
        "scalability (paper: 1.68x / 1.58x / 1.35x over "
        "DistServe / DS-ATP / DS-SwitchML)",
    )
    mid = SUMMARIZATION_RATES[2]
    hero = next(
        p
        for p in points
        if p.system == "HeroServe" and p.rate == mid
    )
    dist = next(
        p
        for p in points
        if p.system == "DistServe" and p.rate == mid
    )
    ttft_red = 1.0 - hero.mean_ttft / dist.mean_ttft
    text = (
        table
        + "\n\n"
        + summary
        + f"\n\nTTFT reduction vs DistServe at {mid} req/s "
        f"(paper: 15.2-45.2%): {ttft_red:.1%}"
    )
    print("\n" + text)
    save_result("fig7cd_summarization", text)

    assert maxima["HeroServe"] >= maxima["DistServe"]
    assert ttft_red > 0.10
