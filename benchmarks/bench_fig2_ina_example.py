"""Fig. 2 — Homogeneous vs heterogeneous INA on the micro-topology.

Paper's example: aggregating 1 MB from GN1 in the 2-server topology.
Homogeneous INA aggregates at the core switch S1 — two Ethernet hops,
~160 us. Heterogeneous INA forwards over NVLink to the co-located GN2
and aggregates at the access switch S2 — ~90 us, "nearly 43 % lower".
We regenerate both paths and the full three-GPU all-reduce comparison.
"""

import pytest

from repro.comm import (
    CommContext,
    hybrid_allreduce_time,
    ina_allreduce_time,
    ring_allreduce_time,
)
from repro.network import build_fig2_example
from repro.util import units
from repro.util.tables import format_table

from common import save_result

DATA = 1_000_000  # 1 MB, the figure's message size


def run_fig2() -> dict:
    built = build_fig2_example()
    homo = CommContext.from_built(built, heterogeneous=False)
    het = CommContext.from_built(built, heterogeneous=True)
    gn1, gn2 = built.server_gpus[0]
    gn3 = built.server_gpus[1][0]
    core = built.core_switches[0]
    acc = built.access_switches[0]

    # The figure's quoted quantities: GN1's collection-path latency.
    t_homo_path = homo.path_time(gn1, core, DATA)
    t_het_path = het.path_time(gn1, gn2, DATA) + het.path_time(
        gn2, acc, DATA
    )

    # Full 3-GPU all-reduce under each strategy, with the figure's
    # store-and-forward single-message arithmetic for INA.
    group = [gn1, gn2, gn3]
    t_ina_core = ina_allreduce_time(
        homo, group, core, DATA, pipelined=False
    )
    t_hybrid = hybrid_allreduce_time(het, group, DATA)
    t_ring = ring_allreduce_time(homo, group, DATA)
    return {
        "homo_path": t_homo_path,
        "het_path": t_het_path,
        "reduction": 1 - t_het_path / t_homo_path,
        "ina_core": t_ina_core,
        "hybrid": t_hybrid,
        "ring": t_ring,
    }


@pytest.mark.benchmark(group="fig2")
def test_fig2_ina_example(benchmark):
    r = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    table = format_table(
        ["quantity", "latency", "paper"],
        [
            [
                "homogeneous collection path (GN1 -> S1)",
                units.fmt_seconds(r["homo_path"]),
                "~160 us",
            ],
            [
                "heterogeneous path (GN1 -NVLink-> GN2 -> S2)",
                units.fmt_seconds(r["het_path"]),
                "~90 us",
            ],
            ["reduction", f"{r['reduction']:.1%}", "~43%"],
            [
                "3-GPU all-reduce, INA at core",
                units.fmt_seconds(r["ina_core"]),
                "-",
            ],
            [
                "3-GPU all-reduce, hybrid",
                units.fmt_seconds(r["hybrid"]),
                "-",
            ],
            [
                "3-GPU all-reduce, ring",
                units.fmt_seconds(r["ring"]),
                "-",
            ],
        ],
        title="Fig. 2 — homogeneous vs heterogeneous aggregation (1 MB)",
    )
    print("\n" + table)
    save_result("fig2_ina_example", table)

    assert r["homo_path"] == pytest.approx(160e-6, rel=0.10)
    assert r["het_path"] == pytest.approx(90e-6, rel=0.15)
    assert r["reduction"] == pytest.approx(0.43, abs=0.10)
    # The figure's claim is about the collection path; for the full
    # 3-GPU all-reduce (GN3 alone on its server must cross the core
    # either way) hybrid matches homogeneous INA within ~10%.
    assert r["hybrid"] < r["ina_core"] * 1.1
    assert r["hybrid"] < r["ring"]
