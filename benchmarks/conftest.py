"""Benchmark session options.

``--obs-dir DIR`` points the benches' telemetry dumps (Chrome traces,
metrics snapshots, flight-recorder JSONL, result tables) at one
directory; ``REPRO_OBS_DIR`` is the environment fallback for CI.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import common  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--obs-dir",
        default=None,
        help="dump per-run observability artifacts into this directory",
    )


def pytest_configure(config):
    obs = config.getoption("--obs-dir", default=None) or os.environ.get(
        "REPRO_OBS_DIR"
    )
    if obs:
        common.set_obs_dir(obs)
