"""Fig. 9 — In-network aggregation throughput vs message size (4-64 MB).

Paper: on the 2tracks cluster under bursty cross traffic, HeroServe
sustains the highest aggregation goodput at every message size; the
improvements over DistServe / DS-ATP / DS-SwitchML are 71.7 % / 26 % /
20.1 %. We regenerate the series: a cross-server TP16 group aggregates
messages of 4-64 MB while bursty background traffic occupies a fraction
of the Ethernet fabric; goodput = message size / all-reduce makespan.
"""

import numpy as np
import pytest

from repro.comm import CommContext, SchemeKind, estimate_group_step
from repro.network import LinkLoadTracker, build_xtracks_cluster
from repro.network.topology import LinkKind
from repro.util.tables import format_table

from common import SYSTEM_ORDER, save_result

SIZES_MB = [4, 8, 16, 32, 64]
#: fraction of each Ethernet link consumed by bursty tenants (the
#: "bursty traffic conditions" of §II-C; [22] reports ~78% degradation)
BACKGROUND_UTIL = 0.45

SCHEME_OF = {
    "DistServe": (SchemeKind.RING, False),
    "DS-ATP": (SchemeKind.INA_ASYNC, False),
    "DS-SwitchML": (SchemeKind.INA_SYNC, False),
    "HeroServe": (SchemeKind.HYBRID, True),
}


def run_fig9(tracks: int = 2) -> dict:
    built = build_xtracks_cluster(tracks, n_units=1)
    group = built.topology.gpu_ids()[:16]  # TP16 across two servers
    out: dict[str, dict[int, float]] = {}
    # One shared congestion pattern: every system faces the same bursty
    # cross traffic on the same half of the Ethernet fabric.
    rng = np.random.default_rng(9)
    eth = np.where(
        built.topology.kind_array() == int(LinkKind.ETHERNET)
    )[0]
    hot = rng.choice(eth, size=max(1, len(eth) // 2), replace=False)
    for name in SYSTEM_ORDER:
        scheme, hetero = SCHEME_OF[name]
        ls = LinkLoadTracker(built.topology)
        base = CommContext.from_built(built, heterogeneous=hetero)
        ctx = CommContext(
            built=built,
            route_table=base.route_table,
            linkstate=ls,
            heterogeneous=hetero,
        )
        ls.register(hot, BACKGROUND_UTIL * 12.5e9)
        for _ in range(10):
            ls.poll()
        contention = float(ls.ewma_utilization()[eth].mean())

        series: dict[int, float] = {}
        for mb in SIZES_MB:
            data = mb * 1_000_000
            est = estimate_group_step(
                ctx, group, data, scheme, contention=contention
            )
            series[mb] = data / est.step_time  # bytes/s goodput
        out[name] = series
    return out


@pytest.mark.benchmark(group="fig9")
def test_fig9_ina_throughput(benchmark):
    series = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    rows = []
    for mb in SIZES_MB:
        rows.append(
            [f"{mb} MB"]
            + [f"{series[n][mb] / 1e9:.2f}" for n in SYSTEM_ORDER]
        )
    gains = {
        n: np.mean(
            [series["HeroServe"][mb] / series[n][mb] for mb in SIZES_MB]
        )
        - 1.0
        for n in SYSTEM_ORDER
        if n != "HeroServe"
    }
    table = format_table(
        ["message"] + [f"{n} GB/s" for n in SYSTEM_ORDER],
        rows,
        title=(
            "Fig. 9 — aggregation goodput vs message size, 2tracks, "
            f"bursty background ({BACKGROUND_UTIL:.0%} on half the links)\n"
            "paper gains: +71.7% vs DistServe, +26% vs DS-ATP, "
            "+20.1% vs DS-SwitchML\n"
            + "measured gains: "
            + ", ".join(f"{k}: +{v:.1%}" for k, v in gains.items())
        ),
    )
    print("\n" + table)
    save_result("fig9_ina_throughput", table)

    for mb in SIZES_MB:
        hero = series["HeroServe"][mb]
        for name in ("DistServe", "DS-ATP", "DS-SwitchML"):
            assert hero > series[name][mb], (name, mb)
    # Shape: gains ordered DistServe >= DS-ATP >= DS-SwitchML >= 0
    # (paper: 71.7% > 26% > 20.1%). Under our conservative store-and-
    # forward Eq. 10 model the homogeneous INA baselines degrade to the
    # ring fallback on congested multi-hop 2tracks paths, so ties are
    # allowed; HeroServe's margin overshoots the paper's because the
    # textbook ring bandwidth penalty exceeds the authors' measurement.
    assert (
        gains["DistServe"]
        >= gains["DS-ATP"]
        >= gains["DS-SwitchML"]
        >= 0.0
    )
    assert gains["DistServe"] > 0.4
