#!/usr/bin/env python
"""Fail when scheme dispatch leaks outside ``repro/comm/``.

The CollectiveScheme registry (``repro.comm.scheme``) is the single
dispatch point for collective-communication behaviour. This check scans
``src/repro`` (excluding ``src/repro/comm/``) and reports:

1. ``SchemeKind`` *comparisons* (``scheme == SchemeKind.HYBRID``,
   ``scheme in (SchemeKind.RING, ...)``) — the if/elif ladders the
   registry replaced. Plain attribute references (e.g. the
   ``SystemSpec`` constants naming their scheme) are data, not dispatch,
   and stay allowed.
2. Direct calls to per-scheme latency primitives
   (``*_allreduce_time``, ``hybrid_forced_time``,
   ``plan_hybrid_allreduce``) — callers must go through
   ``estimate_group_step`` / ``price_group_step`` / scheme bindings.

Exit status 0 when clean, 1 with a finding list otherwise. Wired into
the CI lint job next to ruff.
"""

from __future__ import annotations

import ast
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src", "repro")
EXCLUDED = os.path.join(SRC, "comm") + os.sep

BANNED_CALLS = {
    "ring_allreduce_time",
    "ina_allreduce_time",
    "hybrid_allreduce_time",
    "twostage_allreduce_time",
    "tree_allreduce_time",
    "hybrid_forced_time",
    "plan_hybrid_allreduce",
}


def _is_schemekind_member(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "SchemeKind"
    )


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[str] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        rel = os.path.relpath(self.path, REPO)
        self.findings.append(f"{rel}:{node.lineno}: {message}")

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        # `x in (SchemeKind.A, SchemeKind.B)` hides members in a
        # container literal; unpack one level.
        for op in list(operands):
            if isinstance(op, (ast.Tuple, ast.List, ast.Set)):
                operands.extend(op.elts)
        if any(_is_schemekind_member(op) for op in operands):
            self._flag(
                node,
                "SchemeKind comparison (dispatch ladder) — resolve via "
                "repro.comm.scheme.get_scheme() instead",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in BANNED_CALLS:
            self._flag(
                node,
                f"direct call to {name}() — use estimate_group_step / "
                "price_group_step or a SchemeBinding",
            )
        self.generic_visit(node)


def lint_file(path: str) -> list[str]:
    with open(path, encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    visitor = _Visitor(path)
    visitor.visit(tree)
    return visitor.findings


def main() -> int:
    findings: list[str] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(SRC)):
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            if path.startswith(EXCLUDED):
                continue
            findings.extend(lint_file(path))
    if findings:
        print("scheme-dispatch lint: FAIL")
        for f in findings:
            print(" ", f)
        return 1
    print("scheme-dispatch lint: OK (no SchemeKind ladders or direct "
          "latency-primitive calls outside repro/comm/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
