"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``info``       — package, model zoo and topology summary
``quickstart`` — plan + serve HeroServe on the paper's testbed
``compare``    — 4-system comparison at a given rate (Fig. 7 style)
``plan``       — run the offline planner and print the chosen plan
``schemes``    — list registered collectives with estimated step times
``report``     — run an observed simulation and render the HTML report
``explain``    — per-request critical-path waterfalls for the K slowest
``demo``       — chaos demo: fault-injected run -> flight JSONL + report
``replan``     — load-shift demo: online replanning executes a live plan
transition (quiesce -> KV migration -> warm -> cutover);
``--mid-fault link|server`` drops a fault into the migration window
``whatif``     — counterfactual bottleneck ladder: predicted gain per
resource upgrade (``--validate`` re-simulates each intervention and
exits nonzero when the analytic estimate diverges beyond tolerance)

``report`` and ``explain`` also accept ``--from-dir DIR`` to render
from a previous run's ``--obs-dir`` dumps (flight JSONL, attribution
JSON) instead of re-simulating; missing or older-format dumps degrade
to a clear message, not a traceback.

Fault flags (``quickstart`` / ``demo``): ``--fault-plan FILE`` injects
a JSON fault plan on the simulation clock; ``--mtbf S`` / ``--mttr S``
generate Poisson switch outages instead. ``--schemes LIST``
(``quickstart`` / ``demo``) adds extra registered collectives (e.g.
``ring-2stage,tree``) to every group's online policy table.
``--online-replan`` (``quickstart``) arms load-triggered online
replanning.

Observability flags (``quickstart`` / ``compare`` / ``plan``):
``--trace-out FILE``   — write a Chrome-tracing JSON (``.jsonl`` for the
line-oriented dump) of prefill/decode/KV-transfer/all-reduce spans;
``--metrics-out FILE`` — write the metrics snapshot (JSON, or text
exposition for ``.txt``/``.prom``); ``--flight-out FILE`` — write the
flight-recorder sample ring as JSONL; ``--slo-ttft S`` /
``--slo-tpot S`` — attach a burn-rate SLO monitor with the given
latency bounds; ``-v/-vv`` — INFO/DEBUG logging.

This is a convenience wrapper over the public API; the examples/ and
benchmarks/ directories show the full surface.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.comm import SchemeKind
from repro.obs import (
    NULL_OBSERVER,
    FlightRecorder,
    Observer,
    SLOMonitor,
    SLOTarget,
    setup_logging,
)


def _slo_monitor(args) -> "SLOMonitor | None":
    """Build an SLO monitor when any ``--slo-*`` bound was given."""
    targets = []
    ttft = getattr(args, "slo_ttft", None)
    tpot = getattr(args, "slo_tpot", None)
    if ttft is not None:
        targets.append(SLOTarget("ttft", ttft))
    if tpot is not None:
        targets.append(SLOTarget("tpot", tpot))
    return SLOMonitor(targets) if targets else None


def _make_observer(args) -> "Observer | None":
    """An :class:`Observer` when any telemetry output was requested."""
    slo = _slo_monitor(args)
    wants_flight = getattr(args, "flight_out", None)
    if (
        getattr(args, "trace_out", None)
        or getattr(args, "metrics_out", None)
        or wants_flight
        or slo is not None
    ):
        return Observer(
            slo=slo,
            recorder=FlightRecorder() if wants_flight else None,
        )
    return None


def _parse_schemes(args) -> tuple[str, ...]:
    """Canonical names from a ``--schemes a,b`` flag (() when absent)."""
    raw = getattr(args, "schemes", None)
    if not raw:
        return ()
    from repro.comm import get_scheme

    return tuple(
        get_scheme(part.strip()).name
        for part in raw.split(",")
        if part.strip()
    )


def _load_fault_plan(args) -> "object | None":
    """A :class:`~repro.faults.FaultPlan` when fault flags were given.

    ``--fault-plan FILE`` loads a JSON plan; ``--mtbf S`` (with optional
    ``--mttr S``) generates a Poisson switch-outage plan over the run's
    duration, seeded from ``--seed`` for reproducibility.
    """
    path = getattr(args, "fault_plan", None)
    mtbf = getattr(args, "mtbf", None)
    if path is None and mtbf is None:
        return None
    from repro.faults import FaultPlan, poisson_plan
    from repro.util.rng import make_rng

    if path is not None:
        return FaultPlan.load(path)
    seed = getattr(args, "seed", 0)
    return poisson_plan(
        horizon_s=getattr(args, "duration", 60.0),
        mtbf_s=mtbf,
        mttr_s=getattr(args, "mttr", None) or mtbf / 10.0,
        rng=make_rng(seed),
        switches=1,
        seed=seed,
    )


def _export(observer, args, suffix: str = "") -> None:
    """Write requested outputs, optionally suffixing the file stem."""
    if observer is None:
        return

    def _name(path: str | None) -> str | None:
        if path is None or not suffix:
            return path
        stem, dot, ext = path.rpartition(".")
        if not dot:
            return f"{path}-{suffix}"
        return f"{stem}-{suffix}.{ext}"

    observer.export(
        trace_path=_name(args.trace_out),
        metrics_path=_name(args.metrics_out),
    )
    flight = _name(getattr(args, "flight_out", None))
    if flight and observer.recorder is not None:
        observer.recorder.write_jsonl(flight)
    for path in (
        _name(args.trace_out), _name(args.metrics_out), flight
    ):
        if path:
            print(f"wrote {path}")
    if observer.slo is not None:
        for alert in observer.slo.sink.alerts:
            print(f"  alert @ {alert.time:.1f}s: {alert.message}")


def cmd_info(_args) -> int:
    import repro
    from repro.llm import HARDWARE_ZOO, MODEL_ZOO
    from repro.network import build_testbed, build_xtracks_cluster

    print(f"repro {repro.__version__} — HeroServe reproduction (CLUSTER'25)")
    print("\nmodels:")
    for name, m in sorted(MODEL_ZOO.items()):
        print(
            f"  {name:14s} L={m.n_layers:<3d} h={m.hidden_size:<6d} "
            f"A={m.n_heads:<3d} params={m.param_count / 1e9:.1f}B"
        )
    print("\nhardware profiles:", ", ".join(sorted(HARDWARE_ZOO)))
    print("\ntopologies:")
    print(" ", build_testbed().topology.summary())
    for t in (2, 8):
        print(" ", build_xtracks_cluster(t, n_units=1).topology.summary())

    from repro.workloads import registered_workloads

    print("\nworkload generators (scenario specs: workload.generator):")
    for gen in registered_workloads():
        print(f"  {gen.name:14s} {gen.description}")

    from repro.scenario.spec import SLO_BY_NAME, _TOP_LEVEL_KEYS

    print("\nSLO presets:", ", ".join(sorted(SLO_BY_NAME)))
    print(
        "\nscenario axes (matrix-sweepable spec fields, dotted paths):"
    )
    print(
        "  " + ", ".join(sorted(k for k in _TOP_LEVEL_KEYS if k != "matrix"))
    )
    print(
        "  e.g. matrix: {\"router\": [\"jsq\", \"kv-affinity\"], "
        "\"workload.rate\": [0.6, 1.0]}"
    )
    print("  (schema reference: docs/SCENARIOS.md; `repro scenario list`)")
    return 0


def cmd_scenario(args) -> int:
    from repro.scenario import (
        SpecValidationError,
        load_spec,
        run_matrix,
        run_scenario,
    )

    if args.scenario_cmd == "list":
        return _scenario_list()

    if args.scenario_cmd == "validate":
        failed = 0
        for path in args.specs:
            try:
                spec = load_spec(path)
            except SpecValidationError as exc:
                failed += 1
                print(f"FAIL {path}")
                for err in exc.errors:
                    print(f"  - {err}")
            except (OSError, RuntimeError) as exc:
                failed += 1
                print(f"FAIL {path}: {exc}")
            else:
                cells = ""
                if spec.matrix:
                    from repro.scenario import expand_matrix

                    cells = f" ({len(expand_matrix(spec))} matrix cells)"
                print(f"ok   {path}: {spec.name}{cells}")
        return 1 if failed else 0

    try:
        spec = load_spec(args.spec)
    except SpecValidationError as exc:
        print(exc)
        return 1

    if args.scenario_cmd == "run":
        if spec.matrix:
            print(
                f"{spec.name}: spec has a matrix table; "
                "use `repro scenario matrix`"
            )
            return 1
        result = run_scenario(spec)
        print(f"scenario {spec.name}: {len(result.trace)} requests")
        for k, v in sorted(result.summary.items()):
            if isinstance(v, float):
                print(f"  {k:28s} {v:.4g}")
            else:
                print(f"  {k:28s} {v}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(result.summary, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0

    # matrix
    if not spec.matrix:
        print(f"{spec.name}: spec has no matrix table; use `scenario run`")
        return 1
    from repro.obs.report import (
        build_sweep_data,
        render_sweep_html,
        render_sweep_text,
    )

    result = run_matrix(
        spec,
        processes=args.processes,
        progress=lambda label, s: print(
            f"  cell {label}: finished={s.get('finished', 0):.0f} "
            f"attainment={s.get('attainment', 0):.2f}"
        ),
    )
    data = build_sweep_data(
        result.summaries,
        title=f"scenario sweep — {spec.name}",
        axes=result.axes,
        meta={"model": spec.model, "cells": len(result.cells)},
    )
    print()
    print(render_sweep_text(data), end="")
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(render_sweep_html(data))
        print(f"wrote {args.report}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def _scenario_list() -> int:
    from repro.baselines import SYSTEM_BY_NAME
    from repro.scenario.spec import GPU_PROFILES, SLO_BY_NAME
    from repro.serving import registered_routers
    from repro.workloads import registered_workloads

    print("scenario spec schema (docs/SCENARIOS.md):")
    fields = [
        ("name", "scenario label (required)"),
        ("model", "model-zoo name (required)"),
        ("workload", "{generator, rate, duration, seed, params} (required)"),
        ("topology", "{kind: testbed|xtracks, tracks, n_units}"),
        ("system", "serving system (default HeroServe)"),
        ("gpus", "cost-model GPU profiles (default per topology)"),
        ("parallel", "[tp_pre, pp_pre, tp_dec, pp_dec] or omit to sweep"),
        ("slo", "preset name or {ttft, tpot} seconds"),
        ("arrival_rate", "planner forecast r/s | 'trace-mean' | omit"),
        ("forecast_q", "representative-batch size (default 8)"),
        ("router", "fleet routing policy (needs n_replicas)"),
        ("n_replicas", "replica count; any value selects the fleet path"),
        ("background", "cross-traffic bursts {intensity, ..., seed, until}"),
        ("faults", "{seed, events: [{time, kind, target, ...}]}"),
        ("replan", "online replanning thresholds (ReplanConfig fields)"),
        ("observer", "{flight: bool, attribution: bool}"),
        ("matrix", "axis sweeps: dotted path -> list of values"),
    ]
    for name, doc in fields:
        print(f"  {name:14s} {doc}")
    print("\nworkload generators:")
    for gen in registered_workloads():
        params = ", ".join(gen.params) if gen.params else "-"
        print(f"  {gen.name:14s} {gen.description}")
        print(f"  {'':14s}   params: {params}")
    print("\nsystems:", ", ".join(sorted(SYSTEM_BY_NAME)))
    print("routers:", ", ".join(sorted(c.name for c in registered_routers())))
    print("SLO presets:", ", ".join(sorted(SLO_BY_NAME)))
    print("GPU profiles:", ", ".join(sorted(GPU_PROFILES)))
    print("\nexample specs: examples/scenarios/*.json")
    return 0


def cmd_quickstart(args) -> int:
    from repro import ReplanConfig, quick_testbed
    from repro.serving import EngineConfig

    observer = _make_observer(args)
    extra = _parse_schemes(args)
    engine_config = (
        EngineConfig(
            observer=observer or NULL_OBSERVER, extra_schemes=extra
        )
        if observer is not None or extra
        else None
    )
    system, metrics = quick_testbed(
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        engine_config=engine_config,
        fault_plan=_load_fault_plan(args),
        replan=ReplanConfig() if args.online_replan else None,
    )
    print(system.plan.summary())
    print()
    for k, v in metrics.summary().items():
        print(f"  {k:20s} {v:.4g}")
    _export(observer, args)
    return 0


def cmd_compare(args) -> int:
    from repro import (
        ALL_SYSTEMS,
        SLA_TESTBED_CHATBOT,
        OPT_66B,
        CostModelBank,
        EngineConfig,
        build_system,
        build_testbed,
        generate_sharegpt_trace,
        simulate_trace,
    )
    from repro.core.plan import ParallelConfig
    from repro.llm import A100, V100
    from repro.util import print_table
    from repro.util.rng import make_rng

    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    trace = generate_sharegpt_trace(
        args.rate, args.duration, make_rng(args.seed)
    )
    forecast = trace.representative_batch(8)
    rows = []
    for spec in ALL_SYSTEMS:
        system = build_system(
            spec, built, OPT_66B, bank, SLA_TESTBED_CHATBOT, forecast,
            arrival_rate=args.rate,
            forced_parallel=ParallelConfig(8, 1, 8, 1),
        )
        observer = _make_observer(args)
        engine_config = (
            EngineConfig(observer=observer)
            if observer is not None
            else None
        )
        m = simulate_trace(system, trace, engine_config=engine_config)
        _export(observer, args, suffix=spec.name.lower())
        rows.append(
            [
                spec.name,
                f"{m.attainment():.1%}",
                f"{m.mean_ttft() * 1e3:.0f}",
                f"{m.mean_tpot() * 1e3:.1f}",
            ]
        )
    print_table(
        ["system", "SLA att.", "TTFT ms", "TPOT ms"],
        rows,
        title=f"OPT-66B chatbot on the testbed @ {args.rate} req/s",
    )
    return 0


def cmd_plan(args) -> int:
    from repro import (
        SLA_TESTBED_CHATBOT,
        BatchSpec,
        CommContext,
        CostModelBank,
        OfflinePlanner,
        SchemeKind,
        build_testbed,
    )
    from repro.llm import A100, V100, get_model

    model = get_model(args.model)
    built = build_testbed()
    bank = CostModelBank(model, {"A100": A100, "V100": V100})
    from repro.comm import get_scheme

    scheme = SchemeKind(args.scheme)
    ctx = CommContext.from_built(
        built, heterogeneous=get_scheme(scheme).heterogeneous
    )
    observer = _make_observer(args)
    planner = OfflinePlanner(
        ctx, model, bank, SLA_TESTBED_CHATBOT, scheme,
        observer=observer or NULL_OBSERVER,
    )
    report = planner.plan(
        BatchSpec.uniform(8, args.input_len, args.output_len),
        arrival_rate=args.rate,
    )
    print(
        f"candidates evaluated: {report.candidates_evaluated}, "
        f"feasible: {report.candidates_feasible}, "
        f"solve time: {report.wall_time:.2f}s"
    )
    if report.phase_times:
        print(observer.profiler.report("planner phase breakdown"))
    _export(observer, args)
    if report.plan is None:
        print("no SLA-feasible plan; rejections:")
        for r in report.rejected[:5]:
            print("  -", r)
        return 1
    print(report.plan.summary())
    return 0


def cmd_schemes(args) -> int:
    """List every registered collective and price one group step each."""
    from repro.comm import CommContext, allreduce_bytes, registered_schemes
    from repro.llm import get_model
    from repro.network import build_testbed, build_xtracks_cluster
    from repro.util import print_table

    built = (
        build_testbed()
        if args.topology == "testbed"
        else build_xtracks_cluster(2, n_units=1)
    )
    model = get_model(args.model)
    gpus = list(built.topology.gpu_ids())[: args.group_size]
    data = float(allreduce_bytes(model, args.tokens))
    rows = []
    for scheme in registered_schemes():
        # Each scheme prices on its own network view, exactly as the
        # planner would build its context.
        ctx = CommContext.from_built(
            built, heterogeneous=scheme.heterogeneous
        )
        est = scheme.estimate_time(ctx, gpus, data)
        rows.append(
            [
                scheme.name,
                "hetero" if scheme.heterogeneous else "homog",
                est.mode,
                "-" if est.ina_switch is None else str(est.ina_switch),
                f"{est.step_time * 1e6:.1f}",
                str(len(est.links)),
                scheme.failover_target(),
            ]
        )
    print_table(
        ["scheme", "view", "mode", "switch", "step us", "links", "failover"],
        rows,
        title=(
            f"{model.name} all-reduce ({args.tokens} tokens, "
            f"{data / 1e6:.2f} MB) over {len(gpus)} GPUs on "
            f"{args.topology}"
        ),
    )
    return 0


def cmd_routers(args) -> int:
    """List registered routing policies and the QoE classes."""
    from repro.serving import QOS_CLASSES, registered_routers
    from repro.util import print_table

    print_table(
        ["router", "policy"],
        [[cls.name, cls.description] for cls in registered_routers()],
        title="registered fleet routing policies (--router NAME)",
    )
    print()
    print_table(
        ["class", "load weight", "SLO scale", "meaning"],
        [
            [c.name, f"{c.load_weight:g}", f"{c.slo_scale:g}", c.description]
            for c in QOS_CLASSES.values()
        ],
        title="QoE/priority classes (TraceRequest.qos)",
    )
    return 0


def cmd_fleet(args) -> int:
    """Replay a multi-turn session trace through a routed replica fleet."""
    from repro.baselines import HEROSERVE, build_fleet
    from repro.core import SLA_SIM_CHATBOT
    from repro.core.plan import ParallelConfig
    from repro.llm import A100, CostModelBank, get_model
    from repro.network import build_xtracks_cluster
    from repro.util import print_table
    from repro.util.rng import make_rng
    from repro.workloads import generate_session_trace

    built = build_xtracks_cluster(2, n_units=2)  # 12 servers x 8 GPUs
    model = get_model("OPT-175B")
    bank = CostModelBank(model, {"A100": A100})
    trace = generate_session_trace(
        args.session_rate, args.duration, make_rng(args.seed)
    )
    print(
        f"trace: {len(trace)} requests in "
        f"{len(set(r.session_id for r in trace))} sessions over "
        f"{trace.duration:.0f}s"
    )
    fleet = build_fleet(
        HEROSERVE,
        built,
        model,
        bank,
        SLA_SIM_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=max(trace.mean_rate, args.session_rate),
        n_replicas=args.replicas,
        forced_parallel=ParallelConfig(16, 1, 16, 1),
        router=args.router,
    )
    fm = fleet.run(trace)
    s = fm.summary()
    rows = [
        ["router", fleet.router.name],
        ["finished", f"{s['finished']:.0f}"],
        ["routed per replica", "/".join(str(n) for n in fm.routed)],
        ["attainment", f"{s['attainment']:.2f}"],
        ["mean TTFT", f"{s['mean_ttft_s'] * 1e3:.0f} ms"],
        ["p99 TTFT", f"{s['p99_ttft_s'] * 1e3:.0f} ms"],
        ["p99 TPOT", f"{s['p99_tpot_s'] * 1e3:.1f} ms"],
        [
            "affinity hit rate",
            (
                f"{s['router_affinity_hit_rate']:.2f}"
                if "router_affinity_hit_rate" in s
                else "n/a"
            ),
        ],
        ["KV bytes moved", f"{s['router_kv_bytes_moved'] / 1e9:.2f} GB"],
        ["KV bytes saved", f"{s['router_kv_bytes_saved'] / 1e9:.2f} GB"],
        ["KV fetch wait", f"{s['router_kv_fetch_wait_s']:.2f} s"],
    ]
    for name, att in fm.qos_attainment().items():
        rows.append([f"attainment [{name}]", f"{att:.2f}"])
    print_table(
        ["metric", "value"],
        rows,
        title=(
            f"{fleet.router.name} router, {args.replicas} OPT-175B "
            "replicas on 2tracks"
        ),
    )
    return 0


def _find_run_file(
    directory: str, run: str | None, suffix: str
) -> "str | None":
    """The ``<run>{suffix}`` dump inside ``directory`` (None if absent)."""
    if run is not None:
        path = os.path.join(directory, f"{run}{suffix}")
        return path if os.path.isfile(path) else None
    candidates = sorted(
        f for f in os.listdir(directory) if f.endswith(suffix)
    )
    if not candidates:
        return None
    return os.path.join(directory, candidates[0])


def _load_attribution_dump(path: str):
    """AttributionCollector from a dump, or None + printed reason."""
    import json

    from repro.obs import AttributionCollector

    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read attribution dump {path}: {exc}")
        return None
    try:
        return AttributionCollector.from_payload(payload)
    except (KeyError, TypeError):
        print(
            f"attribution dump {path} has no per-request timelines "
            "(written by an older version?) — re-run the bench with "
            "--obs-dir to refresh it"
        )
        return None


def _report_from_dir(args) -> int:
    """Render the report from a previous run's ``--obs-dir`` dumps."""
    import json
    from types import SimpleNamespace

    from repro.obs import FlightRecorder, render_text, write_report

    directory = args.from_dir
    if not os.path.isdir(directory):
        print(f"--from-dir: {directory!r} is not a directory")
        return 0
    run = getattr(args, "run", None)
    flight_path = _find_run_file(directory, run, "-flight.jsonl")
    attr_path = _find_run_file(directory, run, "-attribution.json")
    summary_path = _find_run_file(directory, run, "-summary.json")
    whatif_path = _find_run_file(directory, run, "-whatif.json")
    if flight_path is None and attr_path is None:
        print(
            f"no *-flight.jsonl or *-attribution.json dumps in "
            f"{directory!r} — run a bench with --obs-dir (or "
            "`python -m repro whatif --json`) first"
        )
        return 0
    recorder = None
    if flight_path is not None:
        try:
            recorder = FlightRecorder.from_jsonl(flight_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read flight dump {flight_path}: {exc}")
    attribution = (
        _load_attribution_dump(attr_path)
        if attr_path is not None
        else None
    )
    serving_metrics = None
    if summary_path is not None:
        try:
            with open(summary_path) as fh:
                summary = json.load(fh)
            serving_metrics = SimpleNamespace(
                summary=lambda: summary
            )
        except (OSError, ValueError) as exc:
            print(f"cannot read summary dump {summary_path}: {exc}")
    whatif = None
    if whatif_path is not None:
        try:
            with open(whatif_path) as fh:
                whatif = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"cannot read what-if dump {whatif_path}: {exc}")
    observer = SimpleNamespace(
        recorder=recorder,
        attribution=attribution,
        slo=None,
        metrics=None,
    )
    data = write_report(
        args.out,
        observer=observer,
        serving_metrics=serving_metrics,
        title=f"replay of {os.path.basename(directory)}",
        meta={"source": directory},
        whatif=whatif,
    )
    print(render_text(data), end="")
    print(f"wrote {args.out}")
    return 0


def cmd_report(args) -> int:
    from repro import SLA_TESTBED_CHATBOT, quick_testbed
    from repro.obs import default_slo_targets, render_text, write_report
    from repro.serving import EngineConfig

    if getattr(args, "from_dir", None):
        return _report_from_dir(args)

    sla = SLA_TESTBED_CHATBOT
    targets = []
    if args.slo_ttft is not None:
        targets.append(SLOTarget("ttft", args.slo_ttft))
    if args.slo_tpot is not None:
        targets.append(SLOTarget("tpot", args.slo_tpot))
    if not targets:
        targets = default_slo_targets(sla)
    from repro.obs import AttributionCollector

    observer = Observer(
        slo=SLOMonitor(targets),
        recorder=FlightRecorder(),
        attribution=AttributionCollector(),
    )
    system, metrics = quick_testbed(
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        engine_config=EngineConfig(observer=observer),
    )
    data = write_report(
        args.out,
        observer=observer,
        serving_metrics=metrics,
        title="HeroServe testbed run",
        meta={
            "system": "HeroServe",
            "rate": f"{args.rate:g} req/s",
            "duration": f"{args.duration:g}s",
            "seed": args.seed,
        },
    )
    print(render_text(data), end="")
    print(f"wrote {args.out}")
    return 0


def cmd_explain(args) -> int:
    """Attribute the slowest requests' latency along the critical path."""
    from repro import quick_testbed
    from repro.obs import AttributionCollector, render_waterfalls
    from repro.serving import EngineConfig

    if getattr(args, "from_dir", None):
        directory = args.from_dir
        if not os.path.isdir(directory):
            print(f"--from-dir: {directory!r} is not a directory")
            return 0
        attr_path = _find_run_file(
            directory, getattr(args, "run", None), "-attribution.json"
        )
        if attr_path is None:
            print(
                f"no *-attribution.json dump in {directory!r} — run a "
                "bench with --obs-dir first"
            )
            return 0
        attribution = _load_attribution_dump(attr_path)
        if attribution is None or not attribution.finished:
            return 0
        print(f"replaying {attr_path}")
        print(
            render_waterfalls(attribution, slowest=args.slowest),
            end="",
        )
        return 0

    attribution = AttributionCollector()
    observer = Observer(
        slo=_slo_monitor(args),
        recorder=(
            FlightRecorder()
            if getattr(args, "flight_out", None)
            else None
        ),
        attribution=attribution,
    )
    system, metrics = quick_testbed(
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        engine_config=EngineConfig(
            observer=observer, extra_schemes=_parse_schemes(args)
        ),
        fault_plan=_load_fault_plan(args),
    )
    if not attribution.finished:
        print("no requests finished — nothing to explain")
        return 1
    print(
        render_waterfalls(attribution, slowest=args.slowest), end=""
    )
    _export(observer, args)
    return 0


def cmd_demo(args) -> int:
    """Chaos demo: observed HeroServe run under fault injection."""
    from repro import SLA_TESTBED_CHATBOT, quick_testbed
    from repro.faults import FaultEvent, FaultPlan
    from repro.obs import (
        AttributionCollector,
        default_slo_targets,
        render_text,
        write_report,
    )
    from repro.serving import EngineConfig

    if args.flight_out is None:
        # set here rather than via set_defaults(): argparse shares the
        # parent parser's actions, so a subparser-level default would
        # leak into every other subcommand using the obs flags.
        args.flight_out = "demo-flight.jsonl"
    plan = _load_fault_plan(args)
    if plan is None:
        # Default chaos: crash the first INA switch for 30 % of the run.
        down = 0.2 * args.duration
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=down,
                    kind="switch_down",
                    target="switch#0",
                    duration=0.3 * args.duration,
                ),
            ),
            seed=args.seed,
        )
    slo = _slo_monitor(args)
    observer = Observer(
        slo=slo or SLOMonitor(default_slo_targets(SLA_TESTBED_CHATBOT)),
        recorder=FlightRecorder(),
        attribution=AttributionCollector(),
    )
    system, metrics = quick_testbed(
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        engine_config=EngineConfig(
            observer=observer, extra_schemes=_parse_schemes(args)
        ),
        fault_plan=plan,
    )
    print(system.plan.summary())
    print()
    for k, v in metrics.summary().items():
        print(f"  {k:20s} {v:.4g}")
    failovers = observer.recorder.events("failover")
    print(f"\nrecorded failovers: {len(failovers)}")
    for ev in failovers:
        print(
            f"  @ {ev['time']:.2f}s {ev.get('direction', '?')} "
            f"group {ev.get('group', '?')}"
        )
    _export(observer, args)
    data = write_report(
        args.out,
        observer=observer,
        serving_metrics=metrics,
        title="HeroServe chaos demo",
        meta={
            "system": "HeroServe",
            "rate": f"{args.rate:g} req/s",
            "duration": f"{args.duration:g}s",
            "seed": args.seed,
            "faults": len(plan),
        },
    )
    print(render_text(data), end="")
    print(f"wrote {args.out}")
    return 0


def cmd_replan(args) -> int:
    """Load-shift demo: online replanning rides out a workload swing.

    Serves a chatbot->summarisation load-shift trace on the testbed
    from a deliberately modest starting plan (TP4xPP2 per phase); the
    drift detector notices the post-shift prefill backlog and executes
    a live transition to TP8xPP1. ``--mid-fault`` drops a link or a
    decode-endpoint server into the middle of the KV migration: the
    link fault slows the migration but the transition completes; the
    server fault rolls the transition back cleanly (a later trigger
    retries after recovery). No request is ever dropped.
    """
    import json

    from repro import (
        SLA_TESTBED_CHATBOT,
        OPT_66B,
        CostModelBank,
        ReplanConfig,
        build_system,
        build_testbed,
        simulate_trace,
    )
    from repro.baselines import HEROSERVE
    from repro.core.plan import ParallelConfig
    from repro.faults import FaultEvent, FaultPlan
    from repro.llm import A100, V100
    from repro.obs import (
        AttributionCollector,
        default_slo_targets,
        render_text,
        write_report,
    )
    from repro.serving import EngineConfig
    from repro.util.rng import make_rng
    from repro.workloads import generate_loadshift_trace

    if args.flight_out is None:
        # set here rather than via set_defaults(): argparse shares the
        # parent parser's actions, so a subparser-level default would
        # leak into every other subcommand using the obs flags.
        args.flight_out = "replan-flight.jsonl"
    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    trace = generate_loadshift_trace(
        args.rate_a,
        args.rate_b,
        args.shift_at,
        args.duration,
        make_rng(args.seed),
    )
    system = build_system(
        HEROSERVE,
        built,
        OPT_66B,
        bank,
        SLA_TESTBED_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=args.rate_a,
        forced_parallel=ParallelConfig(4, 2, 4, 2),
    )
    fault_plan = None
    if args.mid_fault == "link":
        # Degrade an Ethernet link across the whole transition window;
        # migration flows contend with it but the cutover completes.
        fault_plan = FaultPlan(
            events=(
                FaultEvent(
                    time=40.0,
                    kind="link_degrade",
                    target="link#0",
                    duration=8.0,
                    factor=0.25,
                ),
            ),
            seed=args.seed,
        )
    elif args.mid_fault == "server":
        # Kill a decode-endpoint server inside the migration itself;
        # the transition rolls back and retries after recovery.
        fault_plan = FaultPlan(
            events=(
                FaultEvent(
                    time=42.8,
                    kind="server_down",
                    target="server#0",
                    duration=3.0,
                ),
            ),
            seed=args.seed,
        )
    slo = _slo_monitor(args)
    observer = Observer(
        slo=slo or SLOMonitor(default_slo_targets(SLA_TESTBED_CHATBOT)),
        recorder=FlightRecorder(),
        attribution=AttributionCollector(),
    )
    replan = ReplanConfig(
        queue_high=3,
        pending_high=12,
        sustain_checks=4,
        cooldown_s=5.0,
        window_s=20.0,
        min_window_requests=4,
        target_parallel=ParallelConfig(8, 1, 8, 1),
    )
    metrics = simulate_trace(
        system,
        trace,
        engine_config=EngineConfig(observer=observer),
        fault_plan=fault_plan,
        replan=replan,
    )
    print(system.plan.summary())
    print()
    summary = metrics.summary()
    for k, v in summary.items():
        print(f"  {k:24s} {v:.4g}")
    timeline = observer.recorder.replan_timeline()
    print(f"\nreplan timeline ({len(timeline)} events):")
    for ev in timeline:
        extra = " ".join(
            f"{k}={v}"
            for k, v in ev.items()
            if k not in ("time", "event")
        )
        print(f"  @ {ev['time']:7.2f}s {ev['event']:20s} {extra}")
    if args.summary_out:
        with open(args.summary_out, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.summary_out}")
    _export(observer, args)
    data = write_report(
        args.out,
        observer=observer,
        serving_metrics=metrics,
        title="HeroServe online-replanning demo",
        meta={
            "system": "HeroServe",
            "trace": trace.name,
            "rates": f"{args.rate_a:g}->{args.rate_b:g} req/s",
            "duration": f"{args.duration:g}s",
            "seed": args.seed,
            "mid_fault": args.mid_fault,
        },
    )
    print(render_text(data), end="")
    print(f"wrote {args.out}")
    return 0


#: Pinned operating points the what-if tolerances were measured at: a
#: loaded-but-unsaturated regime per topology. Saturated regimes amplify
#: second-order congestion coupling the first-order analytic model does
#: not capture (see docs/OBSERVABILITY.md).
WHATIF_SETTINGS = {
    "testbed": {"rate": 1.0, "duration": 40.0},
    "2tracks": {"rate": 0.6, "duration": 60.0},
}


def _build_whatif_deployment(args):
    """(system, trace) for the what-if CLI's pinned topologies."""
    from repro import build_system, generate_sharegpt_trace
    from repro.baselines import HEROSERVE
    from repro.core import SLA_SIM_CHATBOT, SLA_TESTBED_CHATBOT
    from repro.core.plan import ParallelConfig
    from repro.llm import A100, V100, CostModelBank, OPT_66B, OPT_175B
    from repro.network import build_testbed, build_xtracks_cluster
    from repro.util.rng import make_rng

    defaults = WHATIF_SETTINGS[args.topology]
    rate = args.rate if args.rate is not None else defaults["rate"]
    duration = (
        args.duration
        if args.duration is not None
        else defaults["duration"]
    )
    if args.topology == "testbed":
        built = build_testbed()
        model = OPT_66B
        bank = CostModelBank(model, {"A100": A100, "V100": V100})
        sla = SLA_TESTBED_CHATBOT
        parallel = ParallelConfig(8, 1, 8, 1)
    else:
        built = build_xtracks_cluster(2, n_units=1)
        model = OPT_175B
        bank = CostModelBank(model, {"A100": A100})
        sla = SLA_SIM_CHATBOT
        parallel = ParallelConfig(16, 1, 16, 1)
    trace = generate_sharegpt_trace(
        rate, duration, make_rng(args.seed)
    )
    system = build_system(
        HEROSERVE,
        built,
        model,
        bank,
        sla,
        trace.representative_batch(8),
        arrival_rate=rate,
        forced_parallel=parallel,
    )
    return system, trace, rate, duration


def cmd_whatif(args) -> int:
    """Rank counterfactual resource upgrades by predicted tail gain."""
    import json

    from repro.obs import WhatIfProfiler, render_ladder

    system, trace, rate, duration = _build_whatif_deployment(args)
    profiler = WhatIfProfiler(system, trace)
    result = profiler.ladder(validate=args.validate)
    print(render_ladder(result, top=args.top))
    payload = result.to_payload(
        meta={
            "topology": args.topology,
            "system": system.spec.name,
            "rate": rate,
            "duration": duration,
            "seed": args.seed,
        }
    )
    out_paths = []
    if args.json:
        out_paths.append(args.json)
    obs_dir = os.environ.get("REPRO_OBS_DIR")
    if obs_dir:
        os.makedirs(obs_dir, exist_ok=True)
        out_paths.append(
            os.path.join(obs_dir, f"{args.topology}-whatif.json")
        )
    for path in out_paths:
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path}")
    if args.report:
        from repro.obs import write_report

        write_report(
            args.report,
            serving_metrics=profiler.baseline_metrics,
            title=f"what-if profile: {args.topology}",
            meta=payload["meta"],
            whatif=payload,
        )
        print(f"wrote {args.report}")
    if args.validate and not result.all_within_tolerance:
        print(
            "FAIL: analytic estimates diverge from re-simulation "
            "beyond the pinned tolerance"
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    common = argparse.ArgumentParser(add_help=False)
    # SUPPRESS instead of 0: the subparser re-parses this flag, and a
    # concrete default would clobber a "-v" given before the subcommand.
    common.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=argparse.SUPPRESS,
        help="-v for INFO, -vv for DEBUG (default WARNING)",
    )
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write spans as Chrome-tracing JSON (.jsonl for line dump)",
    )
    obs_flags.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write metrics snapshot (JSON; .txt/.prom for exposition)",
    )
    obs_flags.add_argument(
        "--flight-out",
        default=None,
        metavar="FILE",
        help="write the flight-recorder sample ring as JSONL",
    )
    obs_flags.add_argument(
        "--slo-ttft",
        type=float,
        default=None,
        metavar="S",
        help="TTFT SLO bound in seconds (attaches burn-rate alerting)",
    )
    obs_flags.add_argument(
        "--slo-tpot",
        type=float,
        default=None,
        metavar="S",
        help="TPOT SLO bound in seconds (attaches burn-rate alerting)",
    )

    fault_flags = argparse.ArgumentParser(add_help=False)
    fault_flags.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="JSON fault plan to inject (see examples/faultplan.json)",
    )
    fault_flags.add_argument(
        "--mtbf",
        type=float,
        default=None,
        metavar="S",
        help="generate Poisson switch outages with this mean "
        "time between failures (seconds, simulation clock)",
    )
    fault_flags.add_argument(
        "--mttr",
        type=float,
        default=None,
        metavar="S",
        help="mean time to repair for --mtbf outages "
        "(default mtbf/10)",
    )

    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, parents=[common],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "info", help="package and topology summary", parents=[common]
    )

    p = sub.add_parser(
        "quickstart",
        help="HeroServe on the testbed",
        parents=[common, obs_flags, fault_flags],
    )
    p.add_argument("--rate", type=float, default=1.0)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--schemes",
        default=None,
        metavar="LIST",
        help="comma-separated extra collectives for the online policy "
        "tables (e.g. ring-2stage,tree)",
    )
    p.add_argument(
        "--online-replan",
        action="store_true",
        help="arm load-triggered online replanning (live plan "
        "transitions with KV migration; adds replan_* summary keys)",
    )

    p = sub.add_parser(
        "compare",
        help="4-system comparison",
        parents=[common, obs_flags],
    )
    p.add_argument("--rate", type=float, default=1.2)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser(
        "plan",
        help="run the offline planner",
        parents=[common, obs_flags],
    )
    p.add_argument("--model", default="OPT-66B")
    p.add_argument(
        "--scheme",
        default="hybrid",
        choices=[s.value for s in SchemeKind],
    )
    p.add_argument("--rate", type=float, default=0.5)
    p.add_argument("--input-len", type=int, default=256)
    p.add_argument("--output-len", type=int, default=220)

    p = sub.add_parser(
        "schemes",
        help="list registered collectives with estimated step times",
        parents=[common],
    )
    p.add_argument(
        "--topology",
        default="testbed",
        choices=["testbed", "2tracks"],
    )
    p.add_argument("--model", default="OPT-66B")
    p.add_argument(
        "--group-size",
        type=int,
        default=8,
        help="GPUs in the priced tensor-parallel group (default 8)",
    )
    p.add_argument(
        "--tokens",
        type=int,
        default=256,
        help="tokens in flight per step (drives the payload; default 256)",
    )

    sub.add_parser(
        "routers",
        help="list fleet routing policies and QoE classes",
        parents=[common],
    )

    p = sub.add_parser(
        "fleet",
        help="multi-session trace through a routed replica fleet",
        parents=[common],
    )
    p.add_argument(
        "--router",
        default=None,
        metavar="NAME",
        help="routing policy (see `repro routers`; default jsq)",
    )
    p.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="OPT-175B replicas packed onto the 2tracks miniature",
    )
    p.add_argument(
        "--session-rate",
        type=float,
        default=0.3,
        help="new sessions per second (default 0.3)",
    )
    p.add_argument("--duration", type=float, default=40.0)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser(
        "report",
        help="observed simulation -> self-contained HTML report",
        parents=[common, obs_flags],
    )
    p.add_argument(
        "--out",
        default="report.html",
        metavar="FILE",
        help="HTML report destination (default report.html)",
    )
    p.add_argument("--rate", type=float, default=1.0)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--from-dir",
        default=None,
        metavar="DIR",
        help="render from a previous run's --obs-dir dumps "
        "(flight/attribution/summary/whatif) instead of simulating",
    )
    p.add_argument(
        "--run",
        default=None,
        metavar="NAME",
        help="dump file prefix inside --from-dir (default: first found)",
    )

    p = sub.add_parser(
        "explain",
        help="critical-path waterfalls for the K slowest requests",
        parents=[common, obs_flags, fault_flags],
    )
    p.add_argument("--rate", type=float, default=1.0)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--slowest",
        type=int,
        default=5,
        metavar="K",
        help="how many of the slowest requests to explain (default 5)",
    )
    p.add_argument(
        "--from-dir",
        default=None,
        metavar="DIR",
        help="replay a previous run's *-attribution.json dump "
        "instead of simulating",
    )
    p.add_argument(
        "--run",
        default=None,
        metavar="NAME",
        help="dump file prefix inside --from-dir (default: first found)",
    )
    p.add_argument(
        "--schemes",
        default=None,
        metavar="LIST",
        help="comma-separated extra collectives for the online policy "
        "tables (e.g. ring-2stage,tree)",
    )

    p = sub.add_parser(
        "demo",
        help="chaos demo: fault-injected run -> flight JSONL + report",
        parents=[common, obs_flags, fault_flags],
    )
    p.add_argument(
        "--out",
        default="demo-report.html",
        metavar="FILE",
        help="HTML report destination (default demo-report.html)",
    )
    p.add_argument("--rate", type=float, default=1.0)
    p.add_argument("--duration", type=float, default=12.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--schemes",
        default=None,
        metavar="LIST",
        help="comma-separated extra collectives for the online policy "
        "tables (e.g. ring-2stage,tree)",
    )

    p = sub.add_parser(
        "replan",
        help="load-shift demo: live plan transition with KV migration",
        parents=[common, obs_flags],
    )
    p.add_argument(
        "--out",
        default="replan-report.html",
        metavar="FILE",
        help="HTML report destination (default replan-report.html)",
    )
    p.add_argument(
        "--summary-out",
        default=None,
        metavar="FILE",
        help="write the metrics summary (incl. replan_* keys) as JSON",
    )
    p.add_argument(
        "--rate-a",
        type=float,
        default=1.2,
        help="phase-1 (chatbot) arrival rate in req/s (default 1.2)",
    )
    p.add_argument(
        "--rate-b",
        type=float,
        default=0.5,
        help="phase-2 (summarisation) arrival rate (default 0.5)",
    )
    p.add_argument(
        "--shift-at",
        type=float,
        default=30.0,
        help="workload-shift time in seconds (default 30)",
    )
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--mid-fault",
        default="none",
        choices=["none", "link", "server"],
        help="inject a fault into the migration window: 'link' "
        "degrades an Ethernet link (transition still completes), "
        "'server' kills a decode endpoint (transition rolls back)",
    )

    p = sub.add_parser(
        "scenario",
        help="declarative scenario specs: run, matrix sweeps, validation",
        parents=[common],
    )
    scen_sub = p.add_subparsers(dest="scenario_cmd", required=True)
    sp = scen_sub.add_parser(
        "run", help="execute one (non-matrix) spec", parents=[common]
    )
    sp.add_argument("spec", metavar="SPEC", help="spec file (JSON/YAML)")
    sp.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the run summary as JSON",
    )
    sp = scen_sub.add_parser(
        "matrix",
        help="expand the spec's matrix and fan cells across processes",
        parents=[common],
    )
    sp.add_argument("spec", metavar="SPEC", help="spec file (JSON/YAML)")
    sp.add_argument(
        "--processes",
        type=int,
        default=2,
        metavar="N",
        help="worker processes (default 2; 1 runs cells inline)",
    )
    sp.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the sweep report as self-contained HTML",
    )
    sp.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the sweep data (cells + axes) as JSON",
    )
    sp = scen_sub.add_parser(
        "validate",
        help="validate spec files, reporting field-level errors",
        parents=[common],
    )
    sp.add_argument(
        "specs", metavar="SPEC", nargs="+", help="spec files (JSON/YAML)"
    )
    scen_sub.add_parser(
        "list",
        help="spec schema, workload generators, sweepable axes",
        parents=[common],
    )

    p = sub.add_parser(
        "whatif",
        help="counterfactual bottleneck ladder over resource upgrades",
        parents=[common],
    )
    p.add_argument(
        "--topology",
        default="testbed",
        choices=sorted(WHATIF_SETTINGS),
    )
    p.add_argument(
        "--rate",
        type=float,
        default=None,
        help="arrival rate (default: the topology's pinned "
        "validation point)",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="trace duration in seconds (default: pinned per topology)",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="K",
        help="print only the top-K interventions (default: all)",
    )
    p.add_argument(
        "--validate",
        action="store_true",
        help="re-simulate every intervention and exit nonzero when the "
        "analytic estimate diverges beyond the pinned tolerance",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the machine-readable ladder (also written to "
        "$REPRO_OBS_DIR/<topology>-whatif.json when set)",
    )
    p.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="also render an HTML report with the what-if section",
    )

    args = parser.parse_args(argv)
    # Fail on an unwritable output directory now, not after the run.
    for attr in (
        "trace_out",
        "metrics_out",
        "flight_out",
        "out",
        "json",
        "report",
        "summary_out",
    ):
        path = getattr(args, attr, None)
        if path:
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                parser.error(
                    f"--{attr.replace('_', '-')}: "
                    f"directory {parent!r} does not exist"
                )
    verbosity = getattr(args, "verbose", 0)
    if verbosity:
        setup_logging(verbosity)
    handlers = {
        "info": cmd_info,
        "quickstart": cmd_quickstart,
        "compare": cmd_compare,
        "plan": cmd_plan,
        "schemes": cmd_schemes,
        "routers": cmd_routers,
        "fleet": cmd_fleet,
        "report": cmd_report,
        "explain": cmd_explain,
        "demo": cmd_demo,
        "replan": cmd_replan,
        "scenario": cmd_scenario,
        "whatif": cmd_whatif,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
