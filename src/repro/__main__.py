"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``info``       — package, model zoo and topology summary
``quickstart`` — plan + serve HeroServe on the paper's testbed
``compare``    — 4-system comparison at a given rate (Fig. 7 style)
``plan``       — run the offline planner and print the chosen plan

This is a convenience wrapper over the public API; the examples/ and
benchmarks/ directories show the full surface.
"""

from __future__ import annotations

import argparse
import sys

from repro.comm import SchemeKind


def cmd_info(_args) -> int:
    import repro
    from repro.llm import HARDWARE_ZOO, MODEL_ZOO
    from repro.network import build_testbed, build_xtracks_cluster

    print(f"repro {repro.__version__} — HeroServe reproduction (CLUSTER'25)")
    print("\nmodels:")
    for name, m in sorted(MODEL_ZOO.items()):
        print(
            f"  {name:14s} L={m.n_layers:<3d} h={m.hidden_size:<6d} "
            f"A={m.n_heads:<3d} params={m.param_count / 1e9:.1f}B"
        )
    print("\nhardware profiles:", ", ".join(sorted(HARDWARE_ZOO)))
    print("\ntopologies:")
    print(" ", build_testbed().topology.summary())
    for t in (2, 8):
        print(" ", build_xtracks_cluster(t, n_units=1).topology.summary())
    return 0


def cmd_quickstart(args) -> int:
    from repro import quick_testbed

    system, metrics = quick_testbed(
        rate=args.rate, duration=args.duration, seed=args.seed
    )
    print(system.plan.summary())
    print()
    for k, v in metrics.summary().items():
        print(f"  {k:20s} {v:.4g}")
    return 0


def cmd_compare(args) -> int:
    from repro import (
        ALL_SYSTEMS,
        SLA_TESTBED_CHATBOT,
        OPT_66B,
        CostModelBank,
        build_system,
        build_testbed,
        generate_sharegpt_trace,
        simulate_trace,
    )
    from repro.core.plan import ParallelConfig
    from repro.llm import A100, V100
    from repro.util import print_table
    from repro.util.rng import make_rng

    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    trace = generate_sharegpt_trace(
        args.rate, args.duration, make_rng(args.seed)
    )
    forecast = trace.representative_batch(8)
    rows = []
    for spec in ALL_SYSTEMS:
        system = build_system(
            spec, built, OPT_66B, bank, SLA_TESTBED_CHATBOT, forecast,
            arrival_rate=args.rate,
            forced_parallel=ParallelConfig(8, 1, 8, 1),
        )
        m = simulate_trace(system, trace)
        rows.append(
            [
                spec.name,
                f"{m.attainment():.1%}",
                f"{m.mean_ttft() * 1e3:.0f}",
                f"{m.mean_tpot() * 1e3:.1f}",
            ]
        )
    print_table(
        ["system", "SLA att.", "TTFT ms", "TPOT ms"],
        rows,
        title=f"OPT-66B chatbot on the testbed @ {args.rate} req/s",
    )
    return 0


def cmd_plan(args) -> int:
    from repro import (
        SLA_TESTBED_CHATBOT,
        BatchSpec,
        CommContext,
        CostModelBank,
        OfflinePlanner,
        SchemeKind,
        build_testbed,
    )
    from repro.llm import A100, V100, get_model

    model = get_model(args.model)
    built = build_testbed()
    bank = CostModelBank(model, {"A100": A100, "V100": V100})
    scheme = SchemeKind(args.scheme)
    ctx = CommContext.from_built(
        built, heterogeneous=scheme == SchemeKind.HYBRID
    )
    planner = OfflinePlanner(
        ctx, model, bank, SLA_TESTBED_CHATBOT, scheme
    )
    report = planner.plan(
        BatchSpec.uniform(8, args.input_len, args.output_len),
        arrival_rate=args.rate,
    )
    print(
        f"candidates evaluated: {report.candidates_evaluated}, "
        f"feasible: {report.candidates_feasible}, "
        f"solve time: {report.wall_time:.2f}s"
    )
    if report.plan is None:
        print("no SLA-feasible plan; rejections:")
        for r in report.rejected[:5]:
            print("  -", r)
        return 1
    print(report.plan.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and topology summary")

    p = sub.add_parser("quickstart", help="HeroServe on the testbed")
    p.add_argument("--rate", type=float, default=1.0)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("compare", help="4-system comparison")
    p.add_argument("--rate", type=float, default=1.2)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("plan", help="run the offline planner")
    p.add_argument("--model", default="OPT-66B")
    p.add_argument(
        "--scheme",
        default="hybrid",
        choices=[s.value for s in SchemeKind],
    )
    p.add_argument("--rate", type=float, default=0.5)
    p.add_argument("--input-len", type=int, default=256)
    p.add_argument("--output-len", type=int, default=220)

    args = parser.parse_args(argv)
    handlers = {
        "info": cmd_info,
        "quickstart": cmd_quickstart,
        "compare": cmd_compare,
        "plan": cmd_plan,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
