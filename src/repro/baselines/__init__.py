"""System assemblies: HeroServe vs DistServe / DS-ATP / DS-SwitchML."""

from repro.baselines.systems import (
    ALL_SYSTEMS,
    DISTSERVE,
    DS_2STAGE,
    DS_ATP,
    DS_SWITCHML,
    EXTRA_SYSTEMS,
    HEROSERVE,
    SYSTEM_BY_NAME,
    ServingSystem,
    SystemSpec,
    build_fleet,
    build_system,
    make_rate_runner,
    simulate_trace,
)

__all__ = [
    "ALL_SYSTEMS",
    "DISTSERVE",
    "DS_2STAGE",
    "DS_ATP",
    "DS_SWITCHML",
    "EXTRA_SYSTEMS",
    "HEROSERVE",
    "SYSTEM_BY_NAME",
    "ServingSystem",
    "SystemSpec",
    "build_fleet",
    "build_system",
    "make_rate_runner",
    "simulate_trace",
]
