"""System assemblies: HeroServe and the paper's three baselines.

Section V evaluates four systems, all on the prefill/decode disaggregated
architecture with continuous batching:

* **DistServe** — ring all-reduce over Ethernet (NCCL), no INA;
* **DS-ATP** — DistServe + ATP asynchronous INA on the switches;
* **DS-SwitchML** — DistServe + SwitchML synchronous INA;
* **HeroServe** — hybrid heterogeneous scheduling: offline planner over
  the heterogeneous view + load-aware online scheduler.

A :class:`SystemSpec` fixes the scheme, the network *view* (only
HeroServe may route through NVLink), and whether the online controller
runs. :func:`build_system` plans the deployment once on an idle network;
:func:`simulate_trace` executes a trace with a fresh link-state tracker
(and optional background bursts); :func:`make_rate_runner` adapts a
system to the capacity-search interface.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.comm.context import CommContext
from repro.comm.scheme import SchemeKind
from repro.core.controller import CentralController
from repro.core.objective import SlaSpec
from repro.core.plan import Plan
from repro.core.planner import OfflinePlanner, PlannerConfig
from repro.llm.batch import BatchSpec
from repro.llm.costmodel import CostModelBank
from repro.llm.models import ModelConfig
from repro.network.builders import BuiltTopology
from repro.network.linkstate import LinkLoadTracker
from repro.serving.background import BackgroundTraffic, BackgroundTrafficConfig
from repro.serving.capacity import RunAtRate
from repro.serving.engine import EngineConfig, ServingSimulator
from repro.serving.metrics import ServingMetrics
from repro.workloads.traces import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.replan import ReplanConfig
    from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class SystemSpec:
    """Identity and capabilities of one serving system."""

    name: str
    scheme: SchemeKind
    heterogeneous: bool
    online: bool


DISTSERVE = SystemSpec("DistServe", SchemeKind.RING, False, False)
DS_ATP = SystemSpec("DS-ATP", SchemeKind.INA_ASYNC, False, False)
DS_SWITCHML = SystemSpec("DS-SwitchML", SchemeKind.INA_SYNC, False, False)
HEROSERVE = SystemSpec("HeroServe", SchemeKind.HYBRID, True, True)

#: DistServe upgraded to the hierarchical NVLink-staged ring: same static
#: offline-planned serving loop, but collectives run ring-2stage on the
#: heterogeneous view. Exercises a registry-added scheme end-to-end.
DS_2STAGE = SystemSpec("DS-2Stage", SchemeKind.RING_2STAGE, True, False)

ALL_SYSTEMS: tuple[SystemSpec, ...] = (
    DISTSERVE,
    DS_ATP,
    DS_SWITCHML,
    HEROSERVE,
)

#: Registry-demonstration systems beyond the paper's §V set; resolvable
#: by name but excluded from the default comparison sweeps.
EXTRA_SYSTEMS: tuple[SystemSpec, ...] = (DS_2STAGE,)

SYSTEM_BY_NAME = {s.name: s for s in ALL_SYSTEMS + EXTRA_SYSTEMS}


@dataclass
class ServingSystem:
    """A planned deployment ready to simulate traces."""

    spec: SystemSpec
    built: BuiltTopology
    model: ModelConfig
    bank: CostModelBank
    sla: SlaSpec
    plan: Plan
    #: idle-network context the plan was made with (route table is reused)
    plan_ctx: CommContext

    @property
    def n_gpus(self) -> int:
        return self.plan.parallel.total_gpus

    def fresh_context(self) -> CommContext:
        """Run context: same routes, fresh link-load tracker."""
        return CommContext(
            built=self.built,
            route_table=self.plan_ctx.route_table,
            linkstate=LinkLoadTracker(self.built.topology),
            agg_latency=self.plan_ctx.agg_latency,
            heterogeneous=self.spec.heterogeneous,
        )


def build_system(
    spec: SystemSpec,
    built: BuiltTopology,
    model: ModelConfig,
    bank: CostModelBank,
    sla: SlaSpec,
    forecast_batch: BatchSpec,
    arrival_rate: float,
    planner_config: PlannerConfig | None = None,
    prefill_pool: list[int] | None = None,
    decode_pool: list[int] | None = None,
    forced_parallel=None,
) -> ServingSystem:
    """Run the offline planner for ``spec`` and wrap the deployment.

    ``forced_parallel`` pins the parallelism (testbed experiments deploy
    the same cross-server configuration for every system so differences
    isolate communication scheduling, matching the paper's §V setup).
    """
    ctx = CommContext.from_built(
        built, heterogeneous=spec.heterogeneous
    )
    planner = OfflinePlanner(
        ctx,
        model,
        bank,
        sla,
        spec.scheme,
        prefill_pool=prefill_pool,
        decode_pool=decode_pool,
        config=planner_config,
    )
    report = planner.plan(
        forecast_batch, arrival_rate, forced_parallel=forced_parallel
    )
    if report.plan is None:
        raise RuntimeError(
            f"{spec.name}: no SLA-feasible plan "
            f"(rejected: {report.rejected[:3]})"
        )
    return ServingSystem(
        spec=spec,
        built=built,
        model=model,
        bank=bank,
        sla=sla,
        plan=report.plan,
        plan_ctx=ctx,
    )


def simulate_trace(
    system: ServingSystem,
    trace: Trace,
    engine_config: EngineConfig | None = None,
    background: BackgroundTrafficConfig | None = None,
    background_seed: int | None = None,
    background_until: float | None = None,
    fault_plan: "FaultPlan | None" = None,
    replan: "ReplanConfig | None" = None,
) -> ServingMetrics:
    """Run one trace through a system with fresh network state.

    ``background`` arms cross-traffic bursts on ``[0, background_until)``
    (default: trace end plus drain) — a bounded horizon models a storm
    that dies down, e.g. one confined to the pre-shift phase of a
    load-shift trace.

    ``fault_plan`` arms a :class:`~repro.faults.plan.FaultPlan` on the
    simulation clock: injected faults flip ground truth, HeroServe's
    controller detects them via its health registry and fails groups
    over INA->ring, and the summary gains MTTR / requests-lost /
    degraded-seconds keys. Passing an *empty* plan leaves the run
    byte-identical to ``fault_plan=None``.

    ``replan`` arms an :class:`~repro.core.replan.OnlineReplanner`:
    sustained drift in the engine's load signals triggers a live plan
    transition (quiesce -> KV migration -> warm -> cutover) and the
    summary gains ``replan_*`` transition-accounting keys. ``None``
    keeps the run byte-identical to builds without the subsystem.
    """
    ctx = system.fresh_context()
    cfg = engine_config or EngineConfig()
    injector = None
    health = None
    if fault_plan is not None:
        from repro.faults import FaultInjector, HealthRegistry

        health = HealthRegistry()
        injector = FaultInjector(
            fault_plan, health, ctx, observer=cfg.observer
        )
    controller = (
        CentralController(
            ctx=ctx,
            scheme=system.spec.scheme,
            refresh_period=cfg.controller_period,
            observer=cfg.observer,
            health=health,
            extra_schemes=tuple(cfg.extra_schemes),
        )
        if system.spec.online
        else None
    )
    replanner = None
    if replan is not None:
        from repro.core.replan import OnlineReplanner

        replanner = OnlineReplanner(
            config=replan, observer=cfg.observer
        )
    sim = ServingSimulator(
        ctx=ctx,
        plan=system.plan,
        model=system.model,
        bank=system.bank,
        sla=system.sla,
        trace=trace,
        controller=controller,
        config=cfg,
        faults=injector,
        replanner=replanner,
    )
    if injector is not None:
        injector.arm(sim.queue)
    if background is not None:
        bg = BackgroundTraffic(
            system.built.topology,
            ctx.linkstate,
            sim.queue,
            config=background,
            seed=background_seed,
        )
        bg.start(
            trace.duration + cfg.drain_time
            if background_until is None
            else background_until
        )
    return sim.run()


def build_fleet(
    spec: SystemSpec,
    built: BuiltTopology,
    model: ModelConfig,
    bank: CostModelBank,
    sla: SlaSpec,
    forecast_batch: BatchSpec,
    arrival_rate: float,
    n_replicas: int,
    planner_config: PlannerConfig | None = None,
    forced_parallel=None,
    engine_config: EngineConfig | None = None,
    router=None,
):
    """Plan ``n_replicas`` deployments on disjoint server pods and wire
    them into a :class:`~repro.serving.fleet.ReplicaFleet`.

    All replicas share one link-load tracker and one event queue, so
    their traffic contends on the fabric — the multi-instance regime of
    the paper's large-scale evaluation. For HeroServe a single central
    controller serves every replica's groups (one control plane per
    cluster, as in §IV). ``router`` selects the fleet's routing policy
    (a :mod:`repro.serving.router` registry name or instance; None
    keeps the default join-shortest-queue dispatch).
    """
    from repro.core.planner import split_pools
    from repro.serving.engine import ServingSimulator
    from repro.serving.fleet import ReplicaFleet
    from repro.sim.eventqueue import EventQueue

    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    servers = sorted(built.server_gpus)
    if len(servers) < 2 * n_replicas:
        raise ValueError(
            f"{n_replicas} replicas need >= {2 * n_replicas} servers, "
            f"topology has {len(servers)}"
        )
    # Equal contiguous pods of servers; within a pod, the memory-ranked
    # split assigns prefill/decode halves (paper §III-B).
    per_pod = len(servers) // n_replicas
    plan_ctx = CommContext.from_built(
        built, heterogeneous=spec.heterogeneous
    )
    queue = EventQueue()
    run_ctx = CommContext(
        built=built,
        route_table=plan_ctx.route_table,
        linkstate=LinkLoadTracker(built.topology),
        agg_latency=plan_ctx.agg_latency,
        heterogeneous=spec.heterogeneous,
    )
    controller = (
        CentralController(
            ctx=run_ctx,
            scheme=spec.scheme,
            observer=(engine_config or EngineConfig()).observer,
            extra_schemes=tuple(
                (engine_config or EngineConfig()).extra_schemes
            ),
        )
        if spec.online
        else None
    )
    full_pre, full_dec = split_pools(built)
    pre_set, dec_set = set(full_pre), set(full_dec)
    replicas = []
    for r in range(n_replicas):
        pod = servers[r * per_pod : (r + 1) * per_pod]
        pod_gpus = [g for s in pod for g in built.server_gpus[s]]
        pre_pool = [g for g in pod_gpus if g in pre_set]
        dec_pool = [g for g in pod_gpus if g in dec_set]
        if not pre_pool or not dec_pool:
            # Homogeneous pod: split its servers in half by position.
            half = len(pod) // 2
            dec_pool = [
                g for s in pod[:half] for g in built.server_gpus[s]
            ]
            pre_pool = [
                g for s in pod[half:] for g in built.server_gpus[s]
            ]
        planner = OfflinePlanner(
            plan_ctx,
            model,
            bank,
            sla,
            spec.scheme,
            prefill_pool=pre_pool,
            decode_pool=dec_pool,
            config=planner_config,
        )
        report = planner.plan(
            forecast_batch,
            arrival_rate / n_replicas,
            forced_parallel=forced_parallel,
        )
        if report.plan is None:
            raise RuntimeError(
                f"{spec.name} replica {r}: no feasible plan "
                f"(rejected: {report.rejected[:2]})"
            )
        replicas.append(
            ServingSimulator(
                ctx=run_ctx,
                plan=report.plan,
                model=model,
                bank=bank,
                sla=sla,
                trace=None,
                controller=controller,
                config=engine_config,
                queue=queue,
            )
        )
    return ReplicaFleet(replicas=replicas, queue=queue, router=router)


def make_rate_runner(
    system: ServingSystem,
    trace_at_rate: Callable[[float], Trace],
    engine_config: EngineConfig | None = None,
    background: BackgroundTrafficConfig | None = None,
) -> RunAtRate:
    """Adapt a system to the capacity-search ``RunAtRate`` interface."""

    def run(rate: float) -> tuple[ServingMetrics, int]:
        trace = trace_at_rate(rate)
        metrics = simulate_trace(
            system,
            trace,
            engine_config=engine_config,
            background=background,
        )
        return metrics, len(trace)

    return run
