"""repro — a full reproduction of HeroServe (CLUSTER 2025).

HeroServe: "Scalable and Fast Inference Serving via Hybrid Communication
Scheduling on Heterogeneous Networks". The package provides:

* :mod:`repro.network` — heterogeneous topology, routing, fair-share flows;
* :mod:`repro.switch` — programmable-switch dataplane + SwitchML/ATP INA;
* :mod:`repro.comm` — ring / INA / hybrid collective latency models;
* :mod:`repro.llm` — OPT model zoo, memory model, fitted cost model;
* :mod:`repro.core` — the paper's offline planner and online scheduler;
* :mod:`repro.serving` — discrete-event serving simulator and metrics;
* :mod:`repro.workloads` — ShareGPT/LongBench-like trace generators;
* :mod:`repro.baselines` — HeroServe vs DistServe / DS-ATP / DS-SwitchML;
* :mod:`repro.obs` — tracing, metrics registry, profiling, logging;
* :mod:`repro.faults` — fault injection, health detection, failover.

Quickstart::

    from repro import quick_testbed
    system, metrics = quick_testbed()
    print(metrics.summary())
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.baselines import (
    ALL_SYSTEMS,
    DISTSERVE,
    DS_2STAGE,
    DS_ATP,
    DS_SWITCHML,
    EXTRA_SYSTEMS,
    HEROSERVE,
    build_system,
    simulate_trace,
)
from repro.comm import (
    CommContext,
    SchemeKind,
    get_scheme,
    registered_schemes,
)
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    HealthRegistry,
    poisson_plan,
)
from repro.core import (
    SLA_TESTBED_CHATBOT,
    CentralController,
    OfflinePlanner,
    OnlineReplanner,
    Plan,
    ReplanConfig,
    SlaSpec,
)
from repro.llm import (
    OPT_13B,
    OPT_66B,
    OPT_175B,
    BatchSpec,
    CostModelBank,
    ModelConfig,
)
from repro.network import build_testbed, build_xtracks_cluster
from repro.obs import (
    MetricsRegistry,
    NullObserver,
    Observer,
    PhaseProfiler,
    TraceRecorder,
    setup_logging,
)
from repro.serving import EngineConfig, ServingMetrics, find_max_rate
from repro.workloads import (
    generate_loadshift_trace,
    generate_longbench_trace,
    generate_sharegpt_trace,
)


def quick_testbed(
    rate: float = 0.5,
    duration: float = 60.0,
    seed: int = 0,
    engine_config: EngineConfig | None = None,
    fault_plan: "FaultPlan | None" = None,
    replan: "ReplanConfig | None" = None,
):
    """Plan and simulate HeroServe on the paper's testbed in one call.

    Returns ``(system, metrics)``. Meant for the README quickstart; the
    examples directory shows the full API. Pass
    ``EngineConfig(observer=Observer())`` to collect traces/metrics, a
    :class:`~repro.faults.FaultPlan` to inject faults mid-run, and a
    :class:`~repro.core.ReplanConfig` to arm load-triggered online
    replanning.
    """
    from repro.llm import A100, V100
    from repro.util.rng import make_rng

    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    trace = generate_sharegpt_trace(rate, duration, make_rng(seed))
    system = build_system(
        HEROSERVE,
        built,
        OPT_66B,
        bank,
        SLA_TESTBED_CHATBOT,
        trace.representative_batch(8),
        arrival_rate=rate,
    )
    metrics = simulate_trace(
        system,
        trace,
        engine_config=engine_config,
        fault_plan=fault_plan,
        replan=replan,
    )
    return system, metrics


__all__ = [
    "__version__",
    "ALL_SYSTEMS",
    "DISTSERVE",
    "DS_2STAGE",
    "DS_ATP",
    "DS_SWITCHML",
    "EXTRA_SYSTEMS",
    "HEROSERVE",
    "build_system",
    "simulate_trace",
    "CommContext",
    "SchemeKind",
    "get_scheme",
    "registered_schemes",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HealthRegistry",
    "poisson_plan",
    "SLA_TESTBED_CHATBOT",
    "CentralController",
    "OfflinePlanner",
    "OnlineReplanner",
    "Plan",
    "ReplanConfig",
    "SlaSpec",
    "OPT_13B",
    "OPT_66B",
    "OPT_175B",
    "BatchSpec",
    "CostModelBank",
    "ModelConfig",
    "build_testbed",
    "build_xtracks_cluster",
    "MetricsRegistry",
    "NullObserver",
    "Observer",
    "PhaseProfiler",
    "TraceRecorder",
    "setup_logging",
    "EngineConfig",
    "ServingMetrics",
    "find_max_rate",
    "generate_loadshift_trace",
    "generate_longbench_trace",
    "generate_sharegpt_trace",
    "quick_testbed",
]
