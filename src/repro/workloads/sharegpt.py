"""Synthetic ShareGPT-like chatbot workload.

The real ShareGPT dataset (user-shared ChatGPT conversations) is not
redistributable here; the generator below matches the marginal length
statistics reported for it in the DistServe evaluation (the same usage as
this paper): prompts are short-to-moderate and heavy-tailed (mean in the
low hundreds of tokens), responses are conversational (mean ~200-350
tokens), both well modelled by clipped log-normals. Since only the
marginal length distributions and arrival process enter every evaluated
metric, this preserves the experiment's behaviour.

SLA targets from Section V: testbed chatbot 2.5 s TTFT / 0.15 s TPOT;
large-scale simulation 4 s TTFT / 0.2 s TPOT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.arrivals import bursty_arrivals, poisson_arrivals
from repro.workloads.traces import Trace, TraceRequest


@dataclass(frozen=True)
class ShareGPTConfig:
    """Length-distribution knobs of the synthetic chatbot workload."""

    input_median: float = 160.0
    input_sigma: float = 1.0       # log-normal shape
    input_min: int = 4
    input_max: int = 2048
    output_median: float = 220.0
    output_sigma: float = 0.8
    output_min: int = 8
    output_max: int = 1024


def sample_lengths(
    n: int, cfg: ShareGPTConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``n`` (input, output) token-length pairs."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    ins = rng.lognormal(np.log(cfg.input_median), cfg.input_sigma, size=n)
    outs = rng.lognormal(np.log(cfg.output_median), cfg.output_sigma, size=n)
    ins = np.clip(np.rint(ins), cfg.input_min, cfg.input_max).astype(np.int64)
    outs = np.clip(np.rint(outs), cfg.output_min, cfg.output_max).astype(
        np.int64
    )
    return ins, outs


def generate_sharegpt_trace(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    cfg: ShareGPTConfig | None = None,
    bursty: bool = False,
    burst_factor: float = 4.0,
) -> Trace:
    """Chatbot trace at ``rate`` req/s for ``duration`` seconds.

    ``bursty=True`` switches to the MMPP arrival process with burst
    periods at ``burst_factor`` x the base rate — the traffic condition
    under which the paper reports homogeneous-INA congestion collapse.
    """
    cfg = cfg or ShareGPTConfig()
    if bursty:
        times = bursty_arrivals(rate, rate * burst_factor, duration, rng)
    else:
        times = poisson_arrivals(rate, duration, rng)
    ins, outs = sample_lengths(len(times), cfg, rng)
    reqs = [
        TraceRequest(i, float(t), int(l), int(o))
        for i, (t, l, o) in enumerate(zip(times, ins, outs))
    ]
    return Trace(name="sharegpt-chatbot", requests=reqs)
