"""Load-shift trace: a mid-run regime change between two workloads.

The online-replanning experiments need a trace whose *optimal plan
changes mid-run*: a deployment planned for the first regime should be
measurably wrong for the second. The canonical instance is a
chatbot-to-summarisation shift — short ShareGPT-like prompts for the
first phase, then long LongBench-like prompts (and usually a different
arrival rate) for the remainder — mirroring the diurnal workload-mix
swings production serving fleets replan around.

The composite trace simply concatenates two phase traces with shifted
arrival times and renumbered request ids; each phase uses the package's
existing generators, so length statistics stay faithful to the
per-dataset models.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.longbench import LongBenchConfig, generate_longbench_trace
from repro.workloads.sharegpt import ShareGPTConfig, generate_sharegpt_trace
from repro.workloads.traces import Trace, TraceRequest


def generate_loadshift_trace(
    rate_a: float,
    rate_b: float,
    shift_at: float,
    duration: float,
    rng: np.random.Generator,
    sharegpt_cfg: ShareGPTConfig | None = None,
    longbench_cfg: LongBenchConfig | None = None,
) -> Trace:
    """ShareGPT at ``rate_a`` until ``shift_at``, then LongBench at
    ``rate_b`` until ``duration``.

    Arrival times of the second phase are shifted by ``shift_at`` and
    request ids renumbered so the composite is one well-formed trace.
    """
    if not 0.0 < shift_at < duration:
        raise ValueError(
            f"need 0 < shift_at < duration, got {shift_at}/{duration}"
        )
    phase_a = generate_sharegpt_trace(
        rate_a, shift_at, rng, cfg=sharegpt_cfg
    )
    phase_b = generate_longbench_trace(
        rate_b, duration - shift_at, rng, cfg=longbench_cfg
    )
    reqs = list(phase_a.requests)
    base = len(reqs)
    reqs.extend(
        TraceRequest(
            base + r.request_id,
            shift_at + r.arrival_time,
            r.input_len,
            r.output_len,
        )
        for r in phase_b.requests
    )
    return Trace(name=f"loadshift@{shift_at:g}s", requests=reqs)
