"""Arrival-time processes: Poisson and bursty (MMPP) generators.

The paper assumes Poisson arrivals (justifying the Pollaczek-Khinchine
queueing model) and additionally stresses the network with *bursty*
traffic, the condition under which homogeneous INA throughput collapses.
:func:`poisson_arrivals` covers the former; :func:`bursty_arrivals` is a
two-state Markov-modulated Poisson process (quiet/burst) matching the
bursty-traffic conditions of [11]/[22] cited in Section I.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_positive


def poisson_arrivals(
    rate: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` req/s on [0, T)."""
    require_positive("rate", rate)
    require_positive("duration", duration)
    # Draw slightly more exponential gaps than expected, then trim.
    n_guess = int(rate * duration * 1.5) + 16
    while True:
        gaps = rng.exponential(1.0 / rate, size=n_guess)
        times = np.cumsum(gaps)
        if times[-1] >= duration:
            return times[times < duration]
        n_guess *= 2


def bursty_arrivals(
    base_rate: float,
    burst_rate: float,
    duration: float,
    rng: np.random.Generator,
    mean_quiet: float = 10.0,
    mean_burst: float = 2.0,
) -> np.ndarray:
    """Two-state MMPP: exp-distributed quiet/burst dwell times.

    During quiet periods arrivals are Poisson(``base_rate``); during
    bursts, Poisson(``burst_rate``). Defaults give ~17% of time in burst.
    """
    require_positive("base_rate", base_rate)
    require_positive("burst_rate", burst_rate)
    require_positive("duration", duration)
    require_positive("mean_quiet", mean_quiet)
    require_positive("mean_burst", mean_burst)
    times: list[np.ndarray] = []
    t = 0.0
    in_burst = False
    while t < duration:
        dwell = rng.exponential(mean_burst if in_burst else mean_quiet)
        end = min(t + dwell, duration)
        rate = burst_rate if in_burst else base_rate
        seg = poisson_arrivals(rate, max(end - t, 1e-9), rng) + t
        times.append(seg[seg < end])
        t = end
        in_burst = not in_burst
    if not times:
        return np.zeros(0)
    return np.sort(np.concatenate(times))


def effective_rate(arrivals: np.ndarray, duration: float) -> float:
    """Empirical mean rate of an arrival-time array."""
    require_positive("duration", duration)
    return len(arrivals) / duration
