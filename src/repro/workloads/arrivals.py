"""Arrival-time processes: Poisson and bursty (MMPP) generators.

The paper assumes Poisson arrivals (justifying the Pollaczek-Khinchine
queueing model) and additionally stresses the network with *bursty*
traffic, the condition under which homogeneous INA throughput collapses.
:func:`poisson_arrivals` covers the former; :func:`bursty_arrivals` is a
two-state Markov-modulated Poisson process (quiet/burst) matching the
bursty-traffic conditions of [11]/[22] cited in Section I.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_positive


def poisson_arrivals(
    rate: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` req/s on [0, T)."""
    require_positive("rate", rate)
    require_positive("duration", duration)
    # Draw slightly more exponential gaps than expected, then trim.
    n_guess = int(rate * duration * 1.5) + 16
    while True:
        gaps = rng.exponential(1.0 / rate, size=n_guess)
        times = np.cumsum(gaps)
        if times[-1] >= duration:
            return times[times < duration]
        n_guess *= 2


def bursty_arrivals(
    base_rate: float,
    burst_rate: float,
    duration: float,
    rng: np.random.Generator,
    mean_quiet: float = 10.0,
    mean_burst: float = 2.0,
) -> np.ndarray:
    """Two-state MMPP: exp-distributed quiet/burst dwell times.

    During quiet periods arrivals are Poisson(``base_rate``); during
    bursts, Poisson(``burst_rate``). Defaults give ~17% of time in burst.
    """
    require_positive("base_rate", base_rate)
    require_positive("burst_rate", burst_rate)
    require_positive("duration", duration)
    require_positive("mean_quiet", mean_quiet)
    require_positive("mean_burst", mean_burst)
    times: list[np.ndarray] = []
    t = 0.0
    in_burst = False
    while t < duration:
        dwell = rng.exponential(mean_burst if in_burst else mean_quiet)
        end = min(t + dwell, duration)
        rate = burst_rate if in_burst else base_rate
        seg = poisson_arrivals(rate, max(end - t, 1e-9), rng) + t
        times.append(seg[seg < end])
        t = end
        in_burst = not in_burst
    if not times:
        return np.zeros(0)
    return np.sort(np.concatenate(times))


def inhomogeneous_arrivals(
    rate_fn,
    peak_rate: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of an inhomogeneous Poisson process by thinning.

    ``rate_fn(t)`` gives the instantaneous rate at time ``t`` (vectorised
    over numpy arrays); ``peak_rate`` must upper-bound it on
    ``[0, duration)``. Thinning (Lewis & Shedler) keeps the draw count
    deterministic per seed and the output sorted by construction.
    """
    require_positive("peak_rate", peak_rate)
    require_positive("duration", duration)
    candidates = poisson_arrivals(peak_rate, duration, rng)
    if candidates.size == 0:
        return candidates
    keep = rng.uniform(size=candidates.size) * peak_rate
    rates = np.asarray(rate_fn(candidates), dtype=float)
    if np.any(rates > peak_rate * (1.0 + 1e-9)):
        raise ValueError(
            "rate_fn exceeds peak_rate; thinning would under-sample"
        )
    return candidates[keep < rates]


def diurnal_rate(
    times: np.ndarray,
    base_rate: float,
    peak_rate: float,
    period: float = 86400.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Sinusoidal day-night rate profile at ``times`` (vectorised).

    Troughs at ``base_rate``, crests at ``peak_rate``; ``phase`` shifts
    where in the cycle t=0 falls (0 starts at the trough).
    """
    swing = 0.5 * (peak_rate - base_rate)
    mid = base_rate + swing
    return mid - swing * np.cos(
        2.0 * np.pi * (np.asarray(times, dtype=float) + phase) / period
    )


def diurnal_arrivals(
    base_rate: float,
    peak_rate: float,
    duration: float,
    rng: np.random.Generator,
    period: float = 86400.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Diurnal traffic: sinusoidal rate between base (trough) and peak.

    The coordinated-autoscaling literature evaluates against exactly this
    shape — demand that swings smoothly over a cycle — because static
    provisioning is wrong for half of it. ``period`` defaults to a day
    but benches compress it to the trace duration.
    """
    require_positive("base_rate", base_rate)
    require_positive("duration", duration)
    require_positive("period", period)
    if peak_rate < base_rate:
        raise ValueError(
            f"peak_rate ({peak_rate}) must be >= base_rate ({base_rate})"
        )
    return inhomogeneous_arrivals(
        lambda t: diurnal_rate(t, base_rate, peak_rate, period, phase),
        peak_rate,
        duration,
        rng,
    )


def flash_crowd_rate(
    times: np.ndarray,
    base_rate: float,
    peak_rate: float,
    at: float,
    ramp_s: float = 5.0,
    decay_s: float = 30.0,
) -> np.ndarray:
    """Flash-crowd rate profile: base, linear ramp to peak, exp decay."""
    t = np.asarray(times, dtype=float)
    rates = np.full(t.shape, float(base_rate))
    ramping = (t >= at) & (t < at + ramp_s)
    rates[ramping] = base_rate + (peak_rate - base_rate) * (
        (t[ramping] - at) / ramp_s
    )
    decaying = t >= at + ramp_s
    rates[decaying] = base_rate + (peak_rate - base_rate) * np.exp(
        -(t[decaying] - at - ramp_s) / decay_s
    )
    return rates


def flash_crowd_arrivals(
    base_rate: float,
    peak_rate: float,
    at: float,
    duration: float,
    rng: np.random.Generator,
    ramp_s: float = 5.0,
    decay_s: float = 30.0,
) -> np.ndarray:
    """Flash-crowd traffic: steady base load, then a sudden spike.

    At ``at`` the rate ramps linearly to ``peak_rate`` over ``ramp_s``
    seconds, then relaxes back toward ``base_rate`` exponentially with
    time constant ``decay_s`` — the viral-link / retry-storm shape that
    stresses admission and autoscaling far harder than any stationary
    process.
    """
    require_positive("base_rate", base_rate)
    require_positive("duration", duration)
    require_positive("ramp_s", ramp_s)
    require_positive("decay_s", decay_s)
    if peak_rate < base_rate:
        raise ValueError(
            f"peak_rate ({peak_rate}) must be >= base_rate ({base_rate})"
        )
    if not 0.0 <= at < duration:
        raise ValueError(f"need 0 <= at < duration, got {at}/{duration}")
    return inhomogeneous_arrivals(
        lambda t: flash_crowd_rate(
            t, base_rate, peak_rate, at, ramp_s, decay_s
        ),
        peak_rate,
        duration,
        rng,
    )


def effective_rate(arrivals: np.ndarray, duration: float) -> float:
    """Empirical mean rate of an arrival-time array."""
    require_positive("duration", duration)
    return len(arrivals) / duration
