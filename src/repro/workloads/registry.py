"""Workload-generator registry: one name per trace shape.

The scenario harness (:mod:`repro.scenario`) refers to workloads by
name in declarative specs; this registry is the single lookup point,
mirroring the collective-scheme and router registries. Each entry wraps
one generator behind the uniform builder signature

    ``build(rate, duration, rng, **params) -> Trace``

where ``rate`` is requests (or sessions, for session workloads) per
second and ``params`` are the generator-specific knobs a spec's
``workload.params`` table carries. ``python -m repro info`` lists the
registered generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.workloads.longbench import LongBenchConfig, generate_longbench_trace
from repro.workloads.loadshift import generate_loadshift_trace
from repro.workloads.sessions import SessionConfig, generate_session_trace
from repro.workloads.shapes import (
    generate_diurnal_trace,
    generate_flash_crowd_trace,
)
from repro.workloads.sharegpt import ShareGPTConfig, generate_sharegpt_trace
from repro.workloads.tenants import TenantSpec, generate_multi_tenant_trace
from repro.workloads.traces import Trace

__all__ = [
    "WorkloadGenerator",
    "get_workload",
    "register_workload",
    "registered_workloads",
]


@dataclass(frozen=True)
class WorkloadGenerator:
    """One named trace generator with its declarative parameter list."""

    name: str
    description: str
    build: Callable[..., Trace]
    #: parameter names accepted in a spec's ``workload.params`` table
    params: tuple[str, ...] = field(default=())


_REGISTRY: dict[str, WorkloadGenerator] = {}


def register_workload(gen: WorkloadGenerator) -> WorkloadGenerator:
    """Register a generator; duplicate names are an error."""
    if gen.name in _REGISTRY:
        raise ValueError(f"workload {gen.name!r} already registered")
    _REGISTRY[gen.name] = gen
    return gen


def get_workload(name: str) -> WorkloadGenerator:
    """Look up a generator by name; KeyError lists the alternatives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def registered_workloads() -> list[WorkloadGenerator]:
    """All registered generators, sorted by name."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


# ---------------------------------------------------------------------------
# built-in generators
# ---------------------------------------------------------------------------


def _sharegpt(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    bursty: bool = False,
    burst_factor: float = 4.0,
    **lengths,
) -> Trace:
    cfg = ShareGPTConfig(**lengths) if lengths else None
    return generate_sharegpt_trace(
        rate, duration, rng, cfg=cfg, bursty=bursty,
        burst_factor=burst_factor,
    )


def _longbench(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    bursty: bool = False,
    burst_factor: float = 4.0,
    **lengths,
) -> Trace:
    cfg = LongBenchConfig(**lengths) if lengths else None
    return generate_longbench_trace(
        rate, duration, rng, cfg=cfg, bursty=bursty,
        burst_factor=burst_factor,
    )


def _sessions(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    lengths: dict | None = None,
    **session_knobs,
) -> Trace:
    cfg = None
    if session_knobs or lengths:
        if lengths is not None:
            session_knobs["lengths"] = ShareGPTConfig(**lengths)
        cfg = SessionConfig(**session_knobs)
    return generate_session_trace(rate, duration, rng, config=cfg)


def _loadshift(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    rate_b: float | None = None,
    shift_at: float | None = None,
    sharegpt: dict | None = None,
    longbench: dict | None = None,
) -> Trace:
    return generate_loadshift_trace(
        rate,
        rate if rate_b is None else rate_b,
        duration / 2.0 if shift_at is None else shift_at,
        duration,
        rng,
        sharegpt_cfg=ShareGPTConfig(**sharegpt) if sharegpt else None,
        longbench_cfg=LongBenchConfig(**longbench) if longbench else None,
    )


def _diurnal(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    peak_rate: float | None = None,
    period: float | None = None,
    phase: float = 0.0,
    qos: str = "standard",
    **lengths,
) -> Trace:
    return generate_diurnal_trace(
        rate,
        2.0 * rate if peak_rate is None else peak_rate,
        duration,
        rng,
        period=period,
        phase=phase,
        cfg=ShareGPTConfig(**lengths) if lengths else None,
        qos=qos,
    )


def _flash_crowd(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    peak_rate: float | None = None,
    at: float | None = None,
    ramp_s: float = 5.0,
    decay_s: float = 30.0,
    qos: str = "standard",
    **lengths,
) -> Trace:
    return generate_flash_crowd_trace(
        rate,
        4.0 * rate if peak_rate is None else peak_rate,
        duration / 3.0 if at is None else at,
        duration,
        rng,
        ramp_s=ramp_s,
        decay_s=decay_s,
        cfg=ShareGPTConfig(**lengths) if lengths else None,
        qos=qos,
    )


def _multi_tenant(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    tenants: list[dict] | None = None,
) -> Trace:
    specs = [
        t if isinstance(t, TenantSpec) else TenantSpec(**t)
        for t in (tenants or ())
    ]
    return generate_multi_tenant_trace(specs, rate, duration, rng)


register_workload(WorkloadGenerator(
    "sharegpt",
    "single-shot chatbot trace, ShareGPT-like length marginals",
    _sharegpt,
    ("bursty", "burst_factor", "input_median", "input_sigma",
     "input_min", "input_max", "output_median", "output_sigma",
     "output_min", "output_max"),
))
register_workload(WorkloadGenerator(
    "longbench",
    "single-shot summarisation trace, LongBench-like long prompts",
    _longbench,
    ("bursty", "burst_factor", "input_median", "input_sigma",
     "input_min", "input_max", "output_median", "output_sigma",
     "output_min", "output_max"),
))
register_workload(WorkloadGenerator(
    "sessions",
    "multi-turn conversations with think time; rate = sessions/s",
    _sessions,
    ("mean_turns", "mean_think_s", "qos_mix", "lengths"),
))
register_workload(WorkloadGenerator(
    "loadshift",
    "chatbot until shift_at, then summarisation at rate_b",
    _loadshift,
    ("rate_b", "shift_at", "sharegpt", "longbench"),
))
register_workload(WorkloadGenerator(
    "diurnal",
    "sinusoidal day-night rate between rate (trough) and peak_rate",
    _diurnal,
    ("peak_rate", "period", "phase", "qos"),
))
register_workload(WorkloadGenerator(
    "flash-crowd",
    "steady base rate, sudden spike at `at` with exponential decay",
    _flash_crowd,
    ("peak_rate", "at", "ramp_s", "decay_s", "qos"),
))
register_workload(WorkloadGenerator(
    "multi-tenant",
    "per-tenant QoE class + SLO scale + traffic share, merged",
    _multi_tenant,
    ("tenants",),
))
