"""Multi-turn session traces: the workload that exercises KV affinity.

Chat traffic is conversational: a user sends a prompt, reads the reply,
thinks, and sends a follow-up that extends the same context. Serving
systems exploit this by keeping the conversation's KV cache resident on
the instance that served the previous turn (prefix caching); a router
that sends the follow-up elsewhere forces the resident KV across the
fabric first (NetKV, PAPERS.md). This generator produces exactly that
structure: sessions arrive as a Poisson process, each session emits a
geometric-ish number of turns separated by think time, every turn
carries the session's id and QoE class, and per-turn lengths follow the
ShareGPT-like distribution of :mod:`repro.workloads.sharegpt`.

The single-shot generators leave ``session_id`` as ``None``, so only
traces built here (or hand-built ones) engage the router's affinity
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import require_positive
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.sharegpt import ShareGPTConfig, sample_lengths
from repro.workloads.traces import Trace, TraceRequest


@dataclass
class SessionConfig:
    """Shape of the multi-turn conversation process."""

    #: mean turns per session (first turn always happens; extra turns
    #: are Poisson-distributed around ``mean_turns - 1``)
    mean_turns: float = 4.0
    #: mean user think time between a reply and the follow-up (seconds,
    #: exponential)
    mean_think_s: float = 6.0
    #: QoE class mix ``((class_name, weight), ...)``; weights are
    #: normalised. Classes are assigned per *session* — a conversation
    #: keeps one priority for its whole lifetime.
    qos_mix: tuple[tuple[str, float], ...] = (
        ("interactive", 0.25),
        ("standard", 0.60),
        ("batch", 0.15),
    )
    #: per-turn token-length distribution
    lengths: ShareGPTConfig = field(default_factory=ShareGPTConfig)

    def __post_init__(self) -> None:
        require_positive("mean_turns", self.mean_turns)
        require_positive("mean_think_s", self.mean_think_s)
        if not self.qos_mix:
            raise ValueError("qos_mix must name at least one class")
        if any(w < 0 for _, w in self.qos_mix):
            raise ValueError("qos_mix weights must be >= 0")
        if sum(w for _, w in self.qos_mix) <= 0:
            raise ValueError("qos_mix weights must sum to > 0")


def generate_session_trace(
    session_rate: float,
    duration: float,
    rng: np.random.Generator,
    config: SessionConfig | None = None,
) -> Trace:
    """Multi-turn trace: Poisson session starts, think-time turn gaps.

    ``session_rate`` is new *sessions* per second on ``[0, duration)``;
    follow-up turns may arrive after ``duration`` (a conversation begun
    near the end still finishes). Request ids are assigned in arrival
    order after merging all sessions' turns.
    """
    cfg = config or SessionConfig()
    starts = poisson_arrivals(session_rate, duration, rng)
    names = [n for n, _ in cfg.qos_mix]
    weights = np.array([w for _, w in cfg.qos_mix], dtype=float)
    weights /= weights.sum()
    rows: list[tuple[float, int, int, int, str]] = []
    for sid, t0 in enumerate(starts):
        n_turns = 1 + int(rng.poisson(max(cfg.mean_turns - 1.0, 0.0)))
        qos = names[int(rng.choice(len(names), p=weights))]
        ins, outs = sample_lengths(n_turns, cfg.lengths, rng)
        t = float(t0)
        for k in range(n_turns):
            rows.append((t, sid, int(ins[k]), int(outs[k]), qos))
            t += float(rng.exponential(cfg.mean_think_s))
    rows.sort(key=lambda r: r[0])
    return Trace(
        name=f"sessions-{session_rate:g}rps-{duration:g}s",
        requests=[
            TraceRequest(
                request_id=i,
                arrival_time=t,
                input_len=k_in,
                output_len=k_out,
                session_id=sid,
                qos=qos,
            )
            for i, (t, sid, k_in, k_out, qos) in enumerate(rows)
        ],
    )
