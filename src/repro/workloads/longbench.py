"""Synthetic LongBench-like summarisation workload.

LongBench (Bai et al.) is a long-context benchmark whose tasks average
thousands of prompt tokens with short generated answers/summaries. The
generator matches that shape: prompts log-normal around ~6k tokens
(clipped to [1k, 16k]) and outputs around ~150 tokens. As with ShareGPT,
only marginal length distributions matter for the evaluated metrics, so
the synthetic stand-in preserves the experiment.

SLA targets from Section V: testbed summarisation 15 s TTFT / 0.15 s
TPOT; large-scale simulation 25 s TTFT / 0.2 s TPOT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.arrivals import bursty_arrivals, poisson_arrivals
from repro.workloads.traces import Trace, TraceRequest


@dataclass(frozen=True)
class LongBenchConfig:
    """Length-distribution knobs of the synthetic summarisation workload."""

    input_median: float = 6000.0
    input_sigma: float = 0.6
    input_min: int = 1024
    input_max: int = 16384
    output_median: float = 150.0
    output_sigma: float = 0.5
    output_min: int = 16
    output_max: int = 512


def sample_lengths(
    n: int, cfg: LongBenchConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``n`` (input, output) token-length pairs."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    ins = rng.lognormal(np.log(cfg.input_median), cfg.input_sigma, size=n)
    outs = rng.lognormal(np.log(cfg.output_median), cfg.output_sigma, size=n)
    ins = np.clip(np.rint(ins), cfg.input_min, cfg.input_max).astype(np.int64)
    outs = np.clip(np.rint(outs), cfg.output_min, cfg.output_max).astype(
        np.int64
    )
    return ins, outs


def generate_longbench_trace(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    cfg: LongBenchConfig | None = None,
    bursty: bool = False,
    burst_factor: float = 4.0,
) -> Trace:
    """Summarisation trace at ``rate`` req/s for ``duration`` seconds."""
    cfg = cfg or LongBenchConfig()
    if bursty:
        times = bursty_arrivals(rate, rate * burst_factor, duration, rng)
    else:
        times = poisson_arrivals(rate, duration, rng)
    ins, outs = sample_lengths(len(times), cfg, rng)
    reqs = [
        TraceRequest(i, float(t), int(l), int(o))
        for i, (t, l, o) in enumerate(zip(times, ins, outs))
    ]
    return Trace(name="longbench-summarization", requests=reqs)
