"""Multi-tenant workload mixes: per-tenant QoE class, SLO, traffic share.

Multi-tenant prefill/decode contention only shows up under heterogeneous
workload *mixes* — an interactive chat tenant sharing the fleet with a
batch summarisation tenant stresses batching, routing and SLO machinery
in ways no single-tenant trace can. A :class:`TenantSpec` names one
tenant's share of the offered rate, its QoE/priority class (which also
carries the tenant's SLO scale — see
:data:`repro.serving.router.QOS_CLASSES`), and the generator producing
its requests; :func:`generate_multi_tenant_trace` composes the tenants
into one merged, renumbered trace.

Session ids are namespaced per tenant so two tenants' conversations can
never alias in the router's KV-residency table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import require_positive
from repro.workloads.traces import Trace, TraceRequest

#: Session-id stride separating tenants' conversation namespaces.
SESSION_STRIDE = 1_000_000


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a shared serving fleet."""

    #: tenant label (reporting only; requests carry the QoE class)
    name: str
    #: fraction of the mix's total offered rate (normalised across
    #: tenants, so shares need not sum to exactly 1)
    share: float
    #: QoE/priority class — also the tenant's SLO scale
    #: (:data:`repro.serving.router.QOS_CLASSES`)
    qos: str = "standard"
    #: workload-registry generator producing this tenant's requests
    generator: str = "sharegpt"
    #: extra keyword parameters for the generator
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        require_positive(f"tenant {self.name!r} share", self.share)


def generate_multi_tenant_trace(
    tenants: list[TenantSpec],
    rate: float,
    duration: float,
    rng: np.random.Generator,
    resolve=None,
) -> Trace:
    """Compose per-tenant sub-traces into one merged trace.

    Each tenant runs its generator at ``rate * share`` (shares
    normalised) on its own child RNG stream — so adding a tenant never
    perturbs the others' draws — then the merged requests are re-tagged
    with the tenant's QoE class, session ids are namespaced, and ids are
    renumbered in arrival order. ``resolve`` maps a generator name to a
    registered builder (defaults to the workload registry).
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    require_positive("rate", rate)
    require_positive("duration", duration)
    if resolve is None:
        from repro.workloads.registry import get_workload

        def resolve(name):  # noqa: F811 - default resolver
            return get_workload(name).build

    total_share = sum(t.share for t in tenants)
    # Independent child streams keep tenants decoupled (util.rng.spawn).
    from repro.util.rng import spawn

    streams = spawn(rng, len(tenants))
    rows: list[tuple[float, int, int, int | None, str]] = []
    for k, (tenant, sub_rng) in enumerate(zip(tenants, streams)):
        build = resolve(tenant.generator)
        if build is None:
            raise KeyError(f"unknown generator {tenant.generator!r}")
        sub = build(
            rate * tenant.share / total_share,
            duration,
            sub_rng,
            **tenant.params,
        )
        base = k * SESSION_STRIDE
        for r in sub.requests:
            sid = None if r.session_id is None else base + r.session_id
            rows.append(
                (r.arrival_time, r.input_len, r.output_len, sid,
                 tenant.qos)
            )
    rows.sort(key=lambda row: row[0])
    return Trace(
        name=f"multitenant-{len(tenants)}x-{rate:g}rps",
        requests=[
            TraceRequest(
                request_id=i,
                arrival_time=t,
                input_len=k_in,
                output_len=k_out,
                session_id=sid,
                qos=qos,
            )
            for i, (t, k_in, k_out, sid, qos) in enumerate(rows)
        ],
    )
