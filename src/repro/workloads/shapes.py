"""Non-stationary arrival shapes as full traces: diurnal, flash crowd.

Production serving fleets are evaluated against *shaped* demand, not
stationary Poisson: coordinated-autoscaling results live or die on
realistic diurnal traces, and admission/SLO machinery only shows its
worth under flash crowds (viral links, retry storms). These generators
pair the inhomogeneous arrival processes of
:mod:`repro.workloads.arrivals` with the ShareGPT-like length marginals
of :mod:`repro.workloads.sharegpt`, so the per-request statistics stay
faithful while the *rate* becomes a function of time.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.arrivals import diurnal_arrivals, flash_crowd_arrivals
from repro.workloads.sharegpt import ShareGPTConfig, sample_lengths
from repro.workloads.traces import Trace, TraceRequest


def _trace_from_times(
    name: str,
    times: np.ndarray,
    rng: np.random.Generator,
    cfg: ShareGPTConfig | None,
    qos: str = "standard",
) -> Trace:
    cfg = cfg or ShareGPTConfig()
    ins, outs = sample_lengths(len(times), cfg, rng)
    return Trace(
        name=name,
        requests=[
            TraceRequest(
                request_id=i,
                arrival_time=float(t),
                input_len=int(l),
                output_len=int(o),
                qos=qos,
            )
            for i, (t, l, o) in enumerate(zip(times, ins, outs))
        ],
    )


def generate_diurnal_trace(
    base_rate: float,
    peak_rate: float,
    duration: float,
    rng: np.random.Generator,
    period: float | None = None,
    phase: float = 0.0,
    cfg: ShareGPTConfig | None = None,
    qos: str = "standard",
) -> Trace:
    """Chatbot trace whose rate swings sinusoidally trough -> crest.

    ``period`` defaults to ``duration`` — one full day compressed into
    the trace, so a bench sees both the quiet trough and the busy crest.
    """
    period = duration if period is None else period
    times = diurnal_arrivals(
        base_rate, peak_rate, duration, rng, period=period, phase=phase
    )
    return _trace_from_times(
        f"diurnal-{base_rate:g}to{peak_rate:g}rps-{duration:g}s",
        times,
        rng,
        cfg,
        qos,
    )


def generate_flash_crowd_trace(
    base_rate: float,
    peak_rate: float,
    at: float,
    duration: float,
    rng: np.random.Generator,
    ramp_s: float = 5.0,
    decay_s: float = 30.0,
    cfg: ShareGPTConfig | None = None,
    qos: str = "standard",
) -> Trace:
    """Chatbot trace with a sudden spike at ``at`` that decays away."""
    times = flash_crowd_arrivals(
        base_rate,
        peak_rate,
        at,
        duration,
        rng,
        ramp_s=ramp_s,
        decay_s=decay_s,
    )
    return _trace_from_times(
        f"flashcrowd@{at:g}s-{base_rate:g}to{peak_rate:g}rps",
        times,
        rng,
        cfg,
        qos,
    )
