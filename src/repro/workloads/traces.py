"""Request traces: containers and statistics.

A trace is a time-ordered list of requests (arrival time, prompt length,
output length). The paper replays ShareGPT and LongBench with Poisson
arrival times ("since all the datasets do not include timestamps, we
generate request arrival times using a Poisson distribution"); our traces
come from the synthetic generators in :mod:`repro.workloads.sharegpt` /
:mod:`repro.workloads.longbench`, which match those datasets' published
length statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.llm.batch import BatchSpec


@dataclass(frozen=True)
class TraceRequest:
    """One inference request of a workload trace.

    ``session_id`` marks a turn of a multi-turn conversation: turns of
    one session share an id, and the fleet router can exploit the fact
    that the session's KV cache is resident on whichever replica served
    the previous turn (see :mod:`repro.serving.router`). ``qos`` names
    the request's QoE/priority class (``interactive`` / ``standard`` /
    ``batch`` — :data:`repro.serving.router.QOS_CLASSES`). Both default
    to the session-less, standard-priority request every pre-existing
    generator produces, so single-shot traces are unchanged.
    """

    request_id: int
    arrival_time: float
    input_len: int
    output_len: int
    #: multi-turn conversation id (None = single-shot request)
    session_id: int | None = None
    #: QoE/priority class name (resolved by the fleet router)
    qos: str = "standard"

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        if self.input_len <= 0:
            raise ValueError("input_len must be > 0")
        if self.output_len <= 0:
            raise ValueError("output_len must be > 0")
        if not self.qos:
            raise ValueError("qos must be a non-empty class name")


@dataclass
class Trace:
    """A named, time-sorted request trace."""

    name: str
    requests: list[TraceRequest] = field(default_factory=list)

    def __post_init__(self) -> None:
        times = [r.arrival_time for r in self.requests]
        if any(b < a for a, b in zip(times, times[1:])):
            self.requests = sorted(
                self.requests, key=lambda r: r.arrival_time
            )

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def duration(self) -> float:
        """Last arrival time (0 for an empty trace)."""
        return self.requests[-1].arrival_time if self.requests else 0.0

    @property
    def mean_rate(self) -> float:
        """Empirical arrival rate (requests/s)."""
        if len(self.requests) < 2 or self.duration == 0:
            return 0.0
        return len(self.requests) / self.duration

    def input_lengths(self) -> np.ndarray:
        return np.array([r.input_len for r in self.requests], dtype=np.int64)

    def output_lengths(self) -> np.ndarray:
        return np.array([r.output_len for r in self.requests], dtype=np.int64)

    def representative_batch(self, q: int) -> BatchSpec:
        """A planner-input batch of size ``q`` from the trace's means.

        The planner needs a forecast ``BatchSpec`` (Table I's Q, K_in,
        K_out); the natural forecast is ``q`` requests at the trace's mean
        lengths, which preserves K_in and K_out exactly and approximates
        K_in2 from the empirical second moment.
        """
        if not self.requests:
            raise ValueError("empty trace")
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        ins = self.input_lengths()
        outs = self.output_lengths()
        # Preserve the second moment: use the RMS input length so that
        # q * l^2 == q * E[l^2], keeping the attention cost honest.
        rms_in = int(round(float(np.sqrt(np.mean(ins.astype(float) ** 2)))))
        mean_out = int(round(float(outs.mean())))
        return BatchSpec.uniform(q, max(1, rms_in), max(1, mean_out))

    def stats(self) -> dict[str, float]:
        """Summary statistics for reporting."""
        ins = self.input_lengths().astype(float)
        outs = self.output_lengths().astype(float)
        return {
            "n": float(len(self.requests)),
            "duration_s": self.duration,
            "rate_rps": self.mean_rate,
            "input_mean": float(ins.mean()) if ins.size else 0.0,
            "input_p50": float(np.median(ins)) if ins.size else 0.0,
            "input_p95": float(np.percentile(ins, 95)) if ins.size else 0.0,
            "output_mean": float(outs.mean()) if outs.size else 0.0,
            "output_p50": float(np.median(outs)) if outs.size else 0.0,
            "output_p95": float(np.percentile(outs, 95)) if outs.size else 0.0,
        }

    def rescale_rate(self, new_rate: float) -> "Trace":
        """Copy of the trace with arrival times scaled to a new mean rate."""
        if new_rate <= 0:
            raise ValueError(f"new_rate must be > 0, got {new_rate}")
        old = self.mean_rate
        if old == 0:
            raise ValueError("cannot rescale a trace with zero rate")
        k = old / new_rate
        return Trace(
            name=f"{self.name}@{new_rate:g}rps",
            requests=[
                TraceRequest(
                    r.request_id,
                    r.arrival_time * k,
                    r.input_len,
                    r.output_len,
                    r.session_id,
                    r.qos,
                )
                for r in self.requests
            ],
        )
