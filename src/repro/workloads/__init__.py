"""Workload generators: ShareGPT/LongBench-like traces, arrival processes."""

from repro.workloads.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    diurnal_rate,
    effective_rate,
    flash_crowd_arrivals,
    flash_crowd_rate,
    inhomogeneous_arrivals,
    poisson_arrivals,
)
from repro.workloads.loadshift import generate_loadshift_trace
from repro.workloads.registry import (
    WorkloadGenerator,
    get_workload,
    register_workload,
    registered_workloads,
)
from repro.workloads.sessions import (
    SessionConfig,
    generate_session_trace,
)
from repro.workloads.shapes import (
    generate_diurnal_trace,
    generate_flash_crowd_trace,
)
from repro.workloads.longbench import (
    LongBenchConfig,
    generate_longbench_trace,
)
from repro.workloads.sharegpt import (
    ShareGPTConfig,
    generate_sharegpt_trace,
)
from repro.workloads.tenants import TenantSpec, generate_multi_tenant_trace
from repro.workloads.traces import Trace, TraceRequest

__all__ = [
    "bursty_arrivals",
    "diurnal_arrivals",
    "diurnal_rate",
    "effective_rate",
    "flash_crowd_arrivals",
    "flash_crowd_rate",
    "inhomogeneous_arrivals",
    "poisson_arrivals",
    "LongBenchConfig",
    "SessionConfig",
    "TenantSpec",
    "WorkloadGenerator",
    "generate_loadshift_trace",
    "generate_session_trace",
    "generate_longbench_trace",
    "generate_diurnal_trace",
    "generate_flash_crowd_trace",
    "generate_multi_tenant_trace",
    "get_workload",
    "register_workload",
    "registered_workloads",
    "ShareGPTConfig",
    "generate_sharegpt_trace",
    "Trace",
    "TraceRequest",
]
