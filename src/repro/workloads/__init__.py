"""Workload generators: ShareGPT/LongBench-like traces, arrival processes."""

from repro.workloads.arrivals import (
    bursty_arrivals,
    effective_rate,
    poisson_arrivals,
)
from repro.workloads.loadshift import generate_loadshift_trace
from repro.workloads.sessions import (
    SessionConfig,
    generate_session_trace,
)
from repro.workloads.longbench import (
    LongBenchConfig,
    generate_longbench_trace,
)
from repro.workloads.sharegpt import (
    ShareGPTConfig,
    generate_sharegpt_trace,
)
from repro.workloads.traces import Trace, TraceRequest

__all__ = [
    "bursty_arrivals",
    "effective_rate",
    "poisson_arrivals",
    "LongBenchConfig",
    "SessionConfig",
    "generate_loadshift_trace",
    "generate_session_trace",
    "generate_longbench_trace",
    "ShareGPTConfig",
    "generate_sharegpt_trace",
    "Trace",
    "TraceRequest",
]
