"""Failure detection: ground truth vs. the control plane's belief.

The injector flips *ground truth* (``mark_down`` / ``mark_up``): a
crashed switch stops answering heartbeats and its dataplane counters go
stale the instant it dies.  The control plane only learns about it when
:meth:`HealthRegistry.poll` — called from ``CentralController.tick`` —
observes enough consecutive heartbeat misses, i.e. after
``heartbeat_period * miss_threshold`` seconds of silence.  Recovery is
likewise delayed: after the resource answers heartbeats again it is kept
masked for ``holddown_s`` seconds so a flapping switch cannot bounce
groups between INA and ring on every tick.

The registry therefore exposes two views:

* :meth:`is_faulted` — ground truth, used by the *data plane* (a dead
  server cannot run a decode iteration regardless of what the
  controller believes yet);
* :meth:`available` — the detected view, used by the *control plane*
  (scheduler policy masks, KV re-pairing, replanning).

Every detected outage is recorded as a :class:`FaultEpisode`, from which
MTTR and degraded-seconds are reduced for ``ServingMetrics.summary()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "FaultEpisode",
    "HealthConfig",
    "HealthRegistry",
    "HealthTransition",
    "HoldDown",
    "SustainedThreshold",
]


@dataclass
class SustainedThreshold:
    """Fire only after ``sustain`` consecutive at-or-over updates.

    The hysteresis primitive shared by detection-style consumers (the
    health registry's miss counting is the hardware analogue; the
    online-replanning drift detector uses this directly): a signal that
    merely spikes over ``high`` never fires, only one that *stays* there
    for ``sustain`` consecutive observations does. Any under-threshold
    observation re-arms the counter from zero.
    """

    high: float
    sustain: int
    _over: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.sustain < 1:
            raise ValueError(f"sustain must be >= 1, got {self.sustain}")

    def update(self, value: float) -> bool:
        """Feed one observation; True once the threshold is sustained."""
        if value >= self.high:
            self._over += 1
        else:
            self._over = 0
        return self._over >= self.sustain

    def reset(self) -> None:
        self._over = 0


@dataclass
class HoldDown:
    """A re-armable hold-down window (cooldown).

    Shared semantics for the registry's recovery masking and the
    replanner's trigger cooldown: after :meth:`start`, :meth:`elapsed`
    stays False until ``period`` seconds have passed; a never-started
    hold-down (NaN anchor) counts as elapsed.
    """

    period: float
    _since: float = field(default=math.nan, repr=False)

    def start(self, now: float) -> None:
        self._since = now

    def elapsed(self, now: float) -> bool:
        return math.isnan(self._since) or now >= self._since + self.period


#: Resource classes tracked by the registry.
RESOURCE_KINDS = ("switch", "server", "link")


@dataclass(frozen=True)
class HealthConfig:
    """Detection/restoration timing knobs."""

    #: seconds between heartbeats (also the counter-scrape period).
    heartbeat_period: float = 0.05
    #: consecutive misses before a resource is declared down.
    miss_threshold: int = 3
    #: seconds a recovered resource stays masked before reuse.
    holddown_s: float = 1.0

    @property
    def detect_delay(self) -> float:
        return self.heartbeat_period * self.miss_threshold


@dataclass(frozen=True)
class HealthTransition:
    """One detected health edge, emitted by :meth:`HealthRegistry.poll`."""

    time: float
    kind: str
    resource: int
    state: str  # "down" | "up"
    detail: str = ""


@dataclass
class FaultEpisode:
    """One detected outage of one resource."""

    kind: str
    resource: int
    fault_at: float
    detected_at: float
    recovered_at: float = math.nan  # ground-truth repair time
    restored_at: float = math.nan  # detected-up time (after hold-down)
    detail: str = ""

    @property
    def closed(self) -> bool:
        return not math.isnan(self.restored_at)

    def repair_time(self) -> float:
        """Detection-to-restoration span (the MTTR contribution)."""
        if not self.closed:
            return math.nan
        return self.restored_at - self.detected_at


@dataclass
class _Record:
    faulted: bool = False  # ground truth
    down: bool = False  # detected state
    fault_at: float = math.nan
    recover_at: float = math.nan
    detail: str = ""
    episode: FaultEpisode | None = None


class HealthRegistry:
    """Per-resource health state with delayed detection and hold-down."""

    def __init__(self, config: HealthConfig | None = None) -> None:
        self.config = config or HealthConfig()
        self._records: dict[tuple[str, int], _Record] = {}
        self.episodes: list[FaultEpisode] = []
        #: failovers executed by the controller (INA->ring decisions).
        self.failovers: int = 0

    def _rec(self, kind: str, rid: int) -> _Record:
        if kind not in RESOURCE_KINDS:
            raise ValueError(
                f"unknown resource kind {kind!r}; expected {RESOURCE_KINDS}"
            )
        return self._records.setdefault((kind, rid), _Record())

    # -- ground truth (injector side) ---------------------------------------

    def mark_down(
        self, kind: str, rid: int, now: float, detail: str = ""
    ) -> None:
        rec = self._rec(kind, rid)
        if rec.faulted:
            return
        rec.faulted = True
        rec.detail = detail
        rec.recover_at = math.nan
        if not rec.down:
            # fresh outage: heartbeats stop now, detection happens later.
            rec.fault_at = now
        # else: re-fault during hold-down — the open episode continues.

    def mark_up(self, kind: str, rid: int, now: float) -> None:
        rec = self._rec(kind, rid)
        if not rec.faulted:
            return
        rec.faulted = False
        rec.recover_at = now
        if rec.episode is not None:
            rec.episode.recovered_at = now

    # -- detected view (controller side) ------------------------------------

    def poll(self, now: float) -> list[HealthTransition]:
        """Advance detection; return the health edges crossed by ``now``."""
        cfg = self.config
        edges: list[HealthTransition] = []
        for (kind, rid), rec in sorted(self._records.items()):
            if rec.faulted and not rec.down:
                if now >= rec.fault_at + cfg.detect_delay:
                    rec.down = True
                    rec.episode = FaultEpisode(
                        kind=kind,
                        resource=rid,
                        fault_at=rec.fault_at,
                        detected_at=now,
                        detail=rec.detail,
                    )
                    self.episodes.append(rec.episode)
                    edges.append(
                        HealthTransition(now, kind, rid, "down", rec.detail)
                    )
            elif rec.down and not rec.faulted:
                if HoldDown(cfg.holddown_s, rec.recover_at).elapsed(now):
                    rec.down = False
                    if rec.episode is not None:
                        rec.episode.restored_at = now
                        rec.episode = None
                    edges.append(
                        HealthTransition(now, kind, rid, "up", rec.detail)
                    )
        return edges

    # -- queries ------------------------------------------------------------

    def available(self, kind: str, rid: int) -> bool:
        """Control-plane view: False while detected-down or in hold-down."""
        rec = self._records.get((kind, rid))
        return rec is None or not rec.down

    def is_faulted(self, kind: str, rid: int) -> bool:
        """Ground truth: True from the fault instant to the repair instant."""
        rec = self._records.get((kind, rid))
        return rec is not None and rec.faulted

    def detected_down(self, kind: str) -> set[int]:
        return {
            rid
            for (k, rid), rec in self._records.items()
            if k == kind and rec.down
        }

    def any_down(self) -> bool:
        return any(rec.down for rec in self._records.values())

    def ever_faulted(self) -> bool:
        return bool(self._records)

    # -- reductions ---------------------------------------------------------

    def mttr(self) -> float:
        """Mean detected-outage duration over closed episodes."""
        spans = [e.repair_time() for e in self.episodes if e.closed]
        if not spans:
            return math.nan
        return sum(spans) / len(spans)

    def degraded_seconds(self, now: float) -> float:
        """Total resource-seconds spent detected-down (open episodes count
        up to ``now``)."""
        total = 0.0
        for e in self.episodes:
            end = e.restored_at if e.closed else now
            total += max(0.0, end - e.detected_at)
        return total
