"""Typed, deterministic fault plans for the serving simulation.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` entries,
each pinned to a simulation-clock timestamp.  Plans are plain data: they
can be authored by hand, loaded from JSON (``examples/faultplan.json``),
or generated from an MTBF/MTTR model via :func:`poisson_plan` using the
shared seeded RNG helpers, so a given seed always yields the same chaos.

Event kinds
-----------

``switch_down`` / ``switch_up``
    Crash / restore an INA-capable switch.  A crash clears the switch's
    aggregator SRAM (in-flight slot state is lost) and stops its
    heartbeats; schedulers fail the affected groups over to ring.
``slot_storm``
    Aggregator-slot exhaustion storm: a rogue tenant (or a misconfigured
    job) seizes ``slots`` aggregator slots for ``duration`` seconds.
    The switch stays up but INA throughput collapses, so detection
    treats it as a degraded switch until the storm passes.
``link_degrade`` / ``link_restore``
    Scale an Ethernet link's usable capacity by ``factor`` (0 < f <= 1)
    and/or apply a packet-loss fraction ``loss`` (goodput scales by
    ``1 - loss``).  Applied through :class:`~repro.network.linkstate.
    LinkLoadTracker` so both schedulers and transfer pricing see it.
``server_down`` / ``server_up``
    Fail-stop a server: its GPUs disappear and any KV cache they held is
    lost.  In-flight requests on the server are requeued for prefill
    redo; KV transfers re-pair around its decode GPUs.

Targets may be raw node/link ids (ints) or portable index references:
``"switch#0"`` means "the first INA-capable switch of the topology",
``"server#1"`` the second server, ``"link#3"`` the fourth Ethernet
link.  References are resolved against the built topology when the
injector arms, which keeps example plans independent of concrete ids.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

import numpy as np

from repro.util.rng import DEFAULT_SEED

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "poisson_plan",
]

#: Recognised event kinds, grouped by the resource class they hit.
FAULT_KINDS: dict[str, str] = {
    "switch_down": "switch",
    "switch_up": "switch",
    "slot_storm": "switch",
    "link_degrade": "link",
    "link_restore": "link",
    "server_down": "server",
    "server_up": "server",
}

#: Kinds that may carry an automatic recovery after ``duration`` seconds.
_AUTO_RECOVER: dict[str, str] = {
    "switch_down": "switch_up",
    "slot_storm": "",  # storm release is internal (seized slots freed)
    "link_degrade": "link_restore",
    "server_down": "server_up",
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (or recovery) on the simulation clock."""

    time: float
    kind: str
    target: int | str
    #: optional automatic recovery delay (seconds); 0 disables it.
    duration: float = 0.0
    #: capacity multiplier for ``link_degrade`` (0 < factor <= 1).
    factor: float = 1.0
    #: packet-loss fraction for ``link_degrade`` (0 <= loss < 1).
    loss: float = 0.0
    #: aggregator slots seized by a ``slot_storm``.
    slots: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}"
            )
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.duration < 0:
            raise ValueError("duration must be >= 0")
        if self.kind == "link_degrade":
            if not (0.0 < self.factor <= 1.0):
                raise ValueError(
                    f"link_degrade factor must be in (0, 1], got {self.factor}"
                )
            if not (0.0 <= self.loss < 1.0):
                raise ValueError(
                    f"link_degrade loss must be in [0, 1), got {self.loss}"
                )
        if self.kind == "slot_storm":
            if self.slots <= 0:
                raise ValueError("slot_storm needs slots > 0")
            if self.duration <= 0:
                raise ValueError("slot_storm needs duration > 0")

    @property
    def resource_kind(self) -> str:
        return FAULT_KINDS[self.kind]

    @property
    def effective_capacity_factor(self) -> float:
        """Usable-goodput multiplier for a degraded link."""
        return self.factor * (1.0 - self.loss)

    def recovery_event(self) -> "FaultEvent | None":
        """The automatic recovery implied by ``duration``, if any."""
        if self.duration <= 0:
            return None
        up_kind = _AUTO_RECOVER.get(self.kind, "")
        if not up_kind:
            return None
        return FaultEvent(
            time=self.time + self.duration, kind=up_kind, target=self.target
        )

    def to_dict(self) -> dict:
        d: dict = {"time": self.time, "kind": self.kind, "target": self.target}
        if self.duration:
            d["duration"] = self.duration
        if self.kind == "link_degrade":
            d["factor"] = self.factor
            if self.loss:
                d["loss"] = self.loss
        if self.kind == "slot_storm":
            d["slots"] = self.slots
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultEvent":
        known = {
            "time", "kind", "target", "duration", "factor", "loss", "slots"
        }
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown fault event fields: {sorted(extra)}")
        return cls(**d)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered schedule of fault events."""

    events: tuple[FaultEvent, ...] = ()
    #: seed for injector-side randomness (retry jitter); the plan itself
    #: is fully deterministic.
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, e.kind, str(e.target)))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        known = {"seed", "events"}
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown fault plan fields: {sorted(extra)}")
        events = tuple(
            FaultEvent.from_dict(e) for e in d.get("events", ())
        )
        return cls(events=events, seed=int(d.get("seed", DEFAULT_SEED)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")


def poisson_plan(
    horizon_s: float,
    mtbf_s: float,
    mttr_s: float,
    rng: np.random.Generator,
    *,
    switches: int = 1,
    servers: int = 0,
    links: int = 0,
    seed: int = DEFAULT_SEED,
) -> FaultPlan:
    """Generate a crash/repair plan from an exponential MTBF/MTTR model.

    Each eligible resource (the first ``switches`` INA switches, first
    ``servers`` servers, first ``links`` Ethernet links — via portable
    ``"#i"`` references) alternates healthy and failed states with
    ``Exp(mtbf_s)`` uptimes and ``Exp(mttr_s)`` outages, truncated to the
    horizon.  Outages that would outlive the horizon are still given a
    recovery event so every run ends healthy.
    """
    if mtbf_s <= 0 or mttr_s <= 0:
        raise ValueError("mtbf_s and mttr_s must be > 0")
    events: list[FaultEvent] = []

    def _walk(prefix: str, down_kind: str, idx: int) -> None:
        t = float(rng.exponential(mtbf_s))
        while t < horizon_s:
            outage = max(1e-3, float(rng.exponential(mttr_s)))
            events.append(
                FaultEvent(
                    time=t,
                    kind=down_kind,
                    target=f"{prefix}#{idx}",
                    duration=outage,
                    # link brownouts cut capacity rather than fail-stop
                    factor=0.25 if down_kind == "link_degrade" else 1.0,
                )
            )
            t += outage + float(rng.exponential(mtbf_s))

    for i in range(switches):
        _walk("switch", "switch_down", i)
    for i in range(servers):
        _walk("server", "server_down", i)
    for i in range(links):
        _walk("link", "link_degrade", i)
    return FaultPlan(events=tuple(events), seed=seed)
