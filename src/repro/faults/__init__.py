"""Fault injection, failure detection, and failover support.

The robustness layer of the reproduction: deterministic fault plans
(:mod:`repro.faults.plan`), a ground-truth/detected health registry with
heartbeat-style detection delay and hold-down (:mod:`repro.faults.
health`), and the injector that arms plans onto the simulation event
queue (:mod:`repro.faults.injector`).

Plan schema
-----------

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` rows;
each row carries:

``time``
    Simulation-clock seconds at which the event fires.
``kind``
    One of :data:`FAULT_KINDS`: ``switch_down``/``switch_up``,
    ``slot_storm``, ``link_degrade``/``link_restore``,
    ``server_down``/``server_up``.
``target``
    A raw node/link id (int) **or** a portable index reference string.
    The grammar is ``"<class>#<i>"`` resolved against the built
    topology when the injector arms: ``"switch#0"`` is the first
    INA-capable switch, ``"server#1"`` the second server, ``"link#3"``
    the fourth Ethernet link. References keep example plans independent
    of concrete node numbering.
``duration``
    Optional automatic-recovery delay in seconds (0 disables); e.g. a
    ``switch_down`` with ``duration=30`` schedules its ``switch_up``.
``factor`` / ``loss``
    ``link_degrade`` parameters: capacity multiplier in (0, 1] and
    packet-loss fraction in [0, 1) (goodput scales by ``1 - loss``).
``slots``
    Aggregator slots seized by a ``slot_storm``.

Usage
-----

Author a plan inline and arm it on a simulation::

    from repro.faults import (
        FaultEvent, FaultPlan, FaultInjector, HealthRegistry,
    )

    plan = FaultPlan(events=(
        # crash the first INA switch at t=10s, auto-restore 30s later
        FaultEvent(time=10.0, kind="switch_down", target="switch#0",
                   duration=30.0),
        # brown out the fourth Ethernet link to 40% capacity
        FaultEvent(time=20.0, kind="link_degrade", target="link#3",
                   factor=0.4),
        # fail-stop the second server for the rest of the run
        FaultEvent(time=45.0, kind="server_down", target="server#1"),
    ))
    health = HealthRegistry()
    injector = FaultInjector(plan, health, ctx)

or load the JSON form (``examples/faultplan.json``) / generate chaos
from an exponential MTBF/MTTR model::

    from repro.util.rng import make_rng

    plan = FaultPlan.from_json(open("examples/faultplan.json").read())
    plan = poisson_plan(horizon_s=300.0, mtbf_s=120.0, mttr_s=30.0,
                        rng=make_rng(7), switches=1, servers=1)

Detection is *not* instantaneous: :class:`HealthRegistry` separates
ground truth from the detected view, modelling heartbeat loss
(``HealthConfig.detect_delay``) and flap hold-down, so schedulers see
failures the way the paper's central controller would.
"""

from repro.faults.health import (
    FaultEpisode,
    HealthConfig,
    HealthRegistry,
    HealthTransition,
)
from repro.faults.injector import FaultInjector, RetryPolicy
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    poisson_plan,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEpisode",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HealthConfig",
    "HealthRegistry",
    "HealthTransition",
    "RetryPolicy",
    "poisson_plan",
]
