"""Fault injection, failure detection, and failover support.

The robustness layer of the reproduction: deterministic fault plans
(:mod:`repro.faults.plan`), a ground-truth/detected health registry with
heartbeat-style detection delay and hold-down (:mod:`repro.faults.
health`), and the injector that arms plans onto the simulation event
queue (:mod:`repro.faults.injector`).
"""

from repro.faults.health import (
    FaultEpisode,
    HealthConfig,
    HealthRegistry,
    HealthTransition,
)
from repro.faults.injector import FaultInjector, RetryPolicy
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    poisson_plan,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEpisode",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HealthConfig",
    "HealthRegistry",
    "HealthTransition",
    "RetryPolicy",
    "poisson_plan",
]
