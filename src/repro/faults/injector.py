"""Deterministic fault injection driven by the simulation event queue.

The :class:`FaultInjector` arms a :class:`~repro.faults.plan.FaultPlan`
onto the engine's :class:`~repro.sim.eventqueue.EventQueue`, so faults
fire on the simulation clock interleaved with ordinary serving events.
Injection flips *ground truth* in the :class:`~repro.faults.health.
HealthRegistry` and applies the physical effect (capacity cut, SRAM
wipe, slot seizure, engine request requeue); the control plane reacts
later, once ``CentralController.tick`` detects the change.

All injector-side randomness (retry jitter) comes from the plan's seed
via :func:`repro.util.rng.make_rng`, keeping chaos runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.health import HealthRegistry
from repro.faults.plan import FaultEvent, FaultPlan
from repro.network.topology import LinkKind
from repro.obs.observer import NULL_OBSERVER
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.comm.context import CommContext
    from repro.serving.metrics import ServingMetrics
    from repro.sim.eventqueue import EventQueue
    from repro.switch.dataplane import SwitchDataplane

__all__ = ["FaultInjector", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for KV-transfer retries.

    ``max_attempts`` and ``total_backoff_cap_s`` form the retry
    *budget*: a transfer whose pairing stays dead past either bound is
    failed outright (``kv_exhausted``) instead of retrying forever.
    """

    base_s: float = 0.05
    cap_s: float = 2.0
    jitter: float = 0.25
    max_attempts: int = 8
    #: ceiling on the cumulative backoff a single transfer may spend
    total_backoff_cap_s: float = 30.0

    def delay(self, attempt: int, u: float) -> float:
        """Backoff for ``attempt`` (0-based) given a uniform draw ``u``."""
        raw = min(self.cap_s, self.base_s * (2.0**attempt))
        return raw * (1.0 + self.jitter * u)


@dataclass
class _InjectorCounters:
    faults_injected: int = 0
    kv_retries: int = 0
    #: requests abandoned after exhausting the KV-transfer retry budget
    kv_exhausted: int = 0
    requests_lost: int = 0
    prefill_redos: int = 0
    slot_exhausted: int = 0
    skipped_events: int = 0
    replans: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)


class FaultInjector:
    """Applies a fault plan to a running serving simulation."""

    def __init__(
        self,
        plan: FaultPlan,
        health: HealthRegistry,
        ctx: "CommContext",
        observer=NULL_OBSERVER,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.plan = plan
        self.health = health
        self.ctx = ctx
        self.obs = observer
        self.retry = retry or RetryPolicy()
        self.rng = make_rng(plan.seed)
        self.counters = _InjectorCounters()
        self._queue: "EventQueue | None" = None
        self._engines: list = []
        self._dataplanes: dict[int, "SwitchDataplane"] = {}
        built = ctx.built
        self._gpu_server: dict[int, int] = {
            g: s for s, gl in built.server_gpus.items() for g in gl
        }
        self._eth_links: list[int] = sorted(
            lid
            for lid, link in enumerate(built.topology.links)
            if link.kind == LinkKind.ETHERNET
        )

    # -- attachment ---------------------------------------------------------

    def attach_engine(self, engine) -> None:
        """Register a simulator for server-failure callbacks."""
        if engine not in self._engines:
            self._engines.append(engine)

    def attach_dataplane(self, switch: int, dp: "SwitchDataplane") -> None:
        """Bind a functional dataplane model to a switch node id, so
        switch crashes wipe its SRAM and slot storms seize real slots."""
        self._dataplanes[switch] = dp

    # -- target resolution --------------------------------------------------

    def resolve_target(self, ev: FaultEvent) -> int:
        """Map a raw id or a ``"<class>#i"`` reference to a node/link id."""
        target = ev.target
        if isinstance(target, int):
            return target
        ref = target.strip()
        if "#" not in ref:
            raise ValueError(f"bad fault target {target!r}")
        prefix, _, idx_s = ref.partition("#")
        prefix = prefix or ev.resource_kind
        try:
            idx = int(idx_s)
        except ValueError as exc:
            raise ValueError(f"bad fault target index {target!r}") from exc
        built = self.ctx.built
        if prefix == "switch":
            pool = built.ina_capable_switches()
        elif prefix == "server":
            pool = sorted(built.server_gpus)
        elif prefix == "link":
            pool = self._eth_links
        else:
            raise ValueError(f"bad fault target class {target!r}")
        if not (0 <= idx < len(pool)):
            raise ValueError(
                f"fault target {target!r} out of range "
                f"(topology has {len(pool)} {prefix}s)"
            )
        return pool[idx]

    # -- arming -------------------------------------------------------------

    def arm(self, queue: "EventQueue") -> None:
        """Schedule every plan event (and implied recovery) on ``queue``."""
        self._queue = queue
        for ev in self.plan.events:
            rid = self.resolve_target(ev)
            delay = max(0.0, ev.time - queue.now)
            queue.schedule(
                delay, self._fire, ev, rid, tag=f"fault:{ev.kind}:{rid}"
            )
            rec = ev.recovery_event()
            if rec is not None:
                queue.schedule(
                    max(0.0, rec.time - queue.now),
                    self._fire,
                    rec,
                    rid,
                    tag=f"fault:{rec.kind}:{rid}",
                )
            elif ev.kind == "slot_storm":
                queue.schedule(
                    max(0.0, ev.time + ev.duration - queue.now),
                    self._end_storm,
                    rid,
                )

    # -- event application --------------------------------------------------

    @property
    def now(self) -> float:
        return self._queue.now if self._queue is not None else 0.0

    def _fire(self, ev: FaultEvent, rid: int) -> None:
        now = self.now
        self.counters.faults_injected += 1
        self.counters.by_kind[ev.kind] = (
            self.counters.by_kind.get(ev.kind, 0) + 1
        )
        self.obs.fault_injected(now, ev.kind, rid)
        if ev.kind == "switch_down":
            self.health.mark_down("switch", rid, now)
            dp = self._dataplanes.get(rid)
            if dp is not None:
                dp.fail()
            self._notify_switch(rid)
        elif ev.kind == "switch_up":
            self.health.mark_up("switch", rid, now)
            dp = self._dataplanes.get(rid)
            if dp is not None:
                dp.recover()
            self._notify_switch(rid)
        elif ev.kind == "slot_storm":
            self.health.mark_down("switch", rid, now, detail="slot_storm")
            dp = self._dataplanes.get(rid)
            if dp is not None:
                self.counters.slot_exhausted += dp.seize_slots(ev.slots)
            self._notify_switch(rid)
        elif ev.kind == "link_degrade":
            if self.ctx.linkstate is None:
                self.counters.skipped_events += 1
                return
            self.ctx.linkstate.set_link_factor(
                rid, ev.effective_capacity_factor
            )
            self.health.mark_down("link", rid, now, detail="degraded")
        elif ev.kind == "link_restore":
            if self.ctx.linkstate is None:
                self.counters.skipped_events += 1
                return
            self.ctx.linkstate.set_link_factor(rid, 1.0)
            self.health.mark_up("link", rid, now)
        elif ev.kind == "server_down":
            self.health.mark_down("server", rid, now)
            gpus = set(self.ctx.built.server_gpus.get(rid, ()))
            for engine in self._engines:
                engine.on_server_down(now, rid, gpus)
        elif ev.kind == "server_up":
            self.health.mark_up("server", rid, now)
            gpus = set(self.ctx.built.server_gpus.get(rid, ()))
            for engine in self._engines:
                engine.on_server_up(now, rid, gpus)

    def _end_storm(self, rid: int) -> None:
        self.health.mark_up("switch", rid, self.now)
        dp = self._dataplanes.get(rid)
        if dp is not None:
            dp.release_seized()
        self._notify_switch(rid)

    def _notify_switch(self, rid: int) -> None:
        """Let engines drop cached comm pricing that involved ``rid``."""
        for engine in self._engines:
            engine.on_switch_event(rid)

    # -- queries used by the engine (ground truth) --------------------------

    def switch_faulted(self, switch: int) -> bool:
        return self.health.is_faulted("switch", switch)

    def gpus_blocked(self, gpus) -> bool:
        """True if any GPU's server is ground-truth failed."""
        return any(
            self.health.is_faulted("server", self._gpu_server.get(g, -1))
            for g in gpus
        )

    def detected_down_gpus(self, gpus) -> set[int]:
        """GPUs whose server the control plane currently believes dead."""
        down = self.health.detected_down("server")
        return {g for g in gpus if self._gpu_server.get(g, -1) in down}

    def backoff(self, attempt: int) -> float:
        """Seeded exponential-backoff-with-jitter delay for a retry."""
        u = float(self.rng.random())
        return self.retry.delay(attempt, u)

    # -- reduction ----------------------------------------------------------

    def finalize(self, now: float, metrics: "ServingMetrics") -> None:
        """Attach fault statistics to the run's metrics.

        A deliberately empty plan leaves ``metrics.fault_stats`` as
        ``None`` so fault-free runs stay byte-identical to a build
        without the faults subsystem at all.
        """
        if not self.plan:
            return
        from repro.serving.metrics import FaultStats

        slot_exhausted = self.counters.slot_exhausted
        for dp in self._dataplanes.values():
            slot_exhausted += int(dp.counters().get("drops_no_slot", 0))
        metrics.fault_stats = FaultStats(
            faults_injected=self.counters.faults_injected,
            failovers=self.health.failovers,
            requests_lost=self.counters.requests_lost,
            kv_retries=self.counters.kv_retries,
            kv_exhausted=self.counters.kv_exhausted,
            prefill_redos=self.counters.prefill_redos,
            slot_exhausted=slot_exhausted,
            replans=self.counters.replans,
            episodes=len(self.health.episodes),
            mttr_s=self.health.mttr(),
            degraded_seconds=self.health.degraded_seconds(now),
        )
