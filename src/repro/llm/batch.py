"""Batch descriptors: the request-side Table I quantities.

``BatchSpec`` carries the per-request input/output lengths and exposes the
derived sums the planner's formulas consume: ``K_in`` (total input tokens),
``K_out`` (total output tokens) and ``K_in2`` (squared sum of input
lengths, the attention-cost driver in Eq. 12). The online side keeps these
fresh with the moving-average updater of Section III-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class BatchSpec:
    """One batch of requests (Table I: Q, l_i, O_i and derived sums)."""

    input_lengths: tuple[int, ...]
    output_lengths: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.input_lengths) != len(self.output_lengths):
            raise ValueError("input/output length lists must match")
        if len(self.input_lengths) == 0:
            raise ValueError("batch must contain at least one request")
        if any(l <= 0 for l in self.input_lengths):
            raise ValueError("input lengths must be positive")
        if any(o < 0 for o in self.output_lengths):
            raise ValueError("output lengths must be non-negative")

    @classmethod
    def uniform(cls, q: int, input_len: int, output_len: int) -> "BatchSpec":
        """Batch of ``q`` identical requests (the Fig. 1 setup)."""
        return cls((input_len,) * q, (output_len,) * q)

    @classmethod
    def from_arrays(
        cls, inputs: np.ndarray, outputs: np.ndarray
    ) -> "BatchSpec":
        return cls(
            tuple(int(x) for x in inputs), tuple(int(x) for x in outputs)
        )

    @property
    def q(self) -> int:
        """Batch size Q."""
        return len(self.input_lengths)

    @property
    def k_in(self) -> int:
        """Total input tokens, K_in = sum(l_i)."""
        return int(sum(self.input_lengths))

    @property
    def k_out(self) -> int:
        """Total output tokens, K_out = sum(O_i)."""
        return int(sum(self.output_lengths))

    @property
    def k_in2(self) -> int:
        """Squared sum of input lengths, K_in2 = sum(l_i^2)."""
        return int(sum(l * l for l in self.input_lengths))

    @property
    def max_total_len(self) -> int:
        """Longest (input + output) sequence in the batch."""
        return max(
            l + o for l, o in zip(self.input_lengths, self.output_lengths)
        )


@dataclass
class MovingAverageEstimator:
    """EWMA tracker for K_in / K_out / Q used by the online side.

    Section III-B: "we utilize state information collected by the online
    scheduler module and apply a moving average method to dynamically
    update K_in and K_out."
    """

    alpha: float = 0.2
    k_in: float = 0.0
    k_out: float = 0.0
    q: float = 0.0
    _initialised: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")

    def observe(self, batch: BatchSpec) -> None:
        """Fold one observed batch into the running averages."""
        if not self._initialised:
            self.k_in = float(batch.k_in)
            self.k_out = float(batch.k_out)
            self.q = float(batch.q)
            self._initialised = True
            return
        a = self.alpha
        self.k_in = (1 - a) * self.k_in + a * batch.k_in
        self.k_out = (1 - a) * self.k_out + a * batch.k_out
        self.q = (1 - a) * self.q + a * batch.q

    def estimate(self) -> BatchSpec:
        """Representative batch for planning from the current averages."""
        if not self._initialised:
            raise RuntimeError("no batches observed yet")
        q = max(1, round(self.q))
        in_len = max(1, round(self.k_in / q))
        out_len = max(0, round(self.k_out / q))
        return BatchSpec.uniform(q, in_len, out_len)
