"""GPU memory model: weights and KV cache.

The planner's memory feasibility checks (Algorithm 1 lines 5-8 / 12-15)
need, per GPU, the model-shard footprint ``R / (P_tens * P_pipe * R_frac)``
and the KV-cache budget that remains. This module computes both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.models import ModelConfig
from repro.util.validation import require_in_range, require_positive


def weight_shard_bytes(
    model: ModelConfig, p_tens: int, p_pipe: int
) -> float:
    """Per-GPU weight footprint under TP x PP partitioning."""
    require_positive("p_tens", p_tens)
    require_positive("p_pipe", p_pipe)
    return model.param_bytes / (p_tens * p_pipe)


def min_memory_per_gpu(
    model: ModelConfig, p_tens: int, p_pipe: int, r_frac: float
) -> float:
    """Algorithm 1's ``m_req = R / (P_tens * P_pipe * R_frac)``.

    ``r_frac`` is the fraction of a GPU's memory the weights may occupy;
    the rest is reserved for KV cache and activations.
    """
    require_in_range("r_frac", r_frac, 0.0, 1.0, inclusive=False)
    return weight_shard_bytes(model, p_tens, p_pipe) / r_frac


def kv_bytes_per_token(model: ModelConfig) -> float:
    """KV-cache bytes for one token across all layers (whole model)."""
    # K and V, each (n_layers, hidden) at dtype precision.
    return 2.0 * model.n_layers * model.hidden_size * model.dtype_bytes


def kv_bytes_per_token_per_gpu(
    model: ModelConfig, p_tens: int, p_pipe: int
) -> float:
    """KV bytes a single GPU stores per token of one sequence."""
    return kv_bytes_per_token(model) / (p_tens * p_pipe)


@dataclass
class MemoryBudget:
    """KV-cache capacity accounting for one GPU group deployment."""

    model: ModelConfig
    p_tens: int
    p_pipe: int
    gpu_memory_bytes: float  # smallest GPU in the group
    r_frac: float = 0.65
    #: fraction of memory reserved for activations/workspace
    activation_reserve: float = 0.1

    def __post_init__(self) -> None:
        require_positive("gpu_memory_bytes", self.gpu_memory_bytes)
        require_in_range("r_frac", self.r_frac, 0.0, 1.0, inclusive=False)
        require_in_range(
            "activation_reserve", self.activation_reserve, 0.0, 1.0
        )

    @property
    def weight_bytes_per_gpu(self) -> float:
        return weight_shard_bytes(self.model, self.p_tens, self.p_pipe)

    @property
    def kv_capacity_bytes_per_gpu(self) -> float:
        """Memory left for KV cache after weights and activation reserve."""
        free = (
            self.gpu_memory_bytes * (1.0 - self.activation_reserve)
            - self.weight_bytes_per_gpu
        )
        return max(0.0, free)

    @property
    def feasible(self) -> bool:
        """Whether the shard even fits within the r_frac weight budget."""
        return (
            self.weight_bytes_per_gpu
            <= self.gpu_memory_bytes * self.r_frac
        )

    def max_cached_tokens(self) -> int:
        """Tokens of KV cache the deployment can hold (whole group)."""
        per_tok = kv_bytes_per_token_per_gpu(
            self.model, self.p_tens, self.p_pipe
        )
        if per_tok <= 0:
            return 0
        return int(self.kv_capacity_bytes_per_gpu / per_tok)

    def utilization(self, cached_tokens: int) -> float:
        """KV memory utilisation in [0, inf) for a token population."""
        cap = self.max_cached_tokens()
        return cached_tokens / cap if cap > 0 else float("inf")
