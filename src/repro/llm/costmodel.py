"""Computation-latency cost model (paper Eqs. 12-13) with fitted C1..C6.

Eq. 12 (prefill):
    ``T_c^pre = C1/P_tens * (4 h^2 + 2 h m) K_in
              + C2/(b P_tens) * 3 h K_in2 + C3``

Eq. 13 (decode, per iteration):
    ``T_c^dec = C4/(P_tens P_pipe) * (4 h^2 + 2 h m) [* Q]
              + C5/(P_tens P_pipe) * 3 h K_ctx + C6``

The paper fits C1..C6 by "profiling and interpolation"; we do the same
against :class:`~repro.llm.profiler.SyntheticExecutor` measurements taken
at several tensor-parallel degrees, solved by non-negative least squares.

One deliberate clarification relative to the paper's notation: Eq. 13 as
printed omits the batch size Q from the GEMM term; any batched decode
implementation scales linearly in Q, and the paper's own profiling method
would absorb that scaling. We therefore carry Q explicitly (a batch of 1
recovers the printed formula). This is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

from repro.llm.batch import BatchSpec
from repro.llm.models import ModelConfig
from repro.llm.profiler import (
    HardwareProfile,
    profile_decode,
    profile_prefill,
)


@dataclass(frozen=True)
class CostCoefficients:
    """Fitted linear coefficients of Eqs. 12-13 (seconds per unit)."""

    c1: float  # prefill GEMM seconds per FLOP-feature
    c2: float  # prefill attention seconds per feature
    c3: float  # prefill fixed overhead (Python runtime, noise)
    c4: float  # decode GEMM seconds per feature
    c5: float  # decode KV-attention seconds per feature
    c6: float  # decode fixed overhead incl. pipeline fill

    def as_array(self) -> np.ndarray:
        return np.array(
            [self.c1, self.c2, self.c3, self.c4, self.c5, self.c6]
        )


def fit_coefficients(
    model: ModelConfig,
    hardware: HardwareProfile,
    p_tens_grid: tuple[int, ...] = (1, 2, 4, 8),
    p_pipe_grid: tuple[int, ...] = (1, 2, 4),
    seed: int | None = 0,
) -> CostCoefficients:
    """Profile the synthetic executor and solve for C1..C6.

    Prefill and decode are fitted independently (they are separate phases
    on separate clusters). Features are pre-divided by the parallel degree
    of their sample so the solved coefficients are the parallelism-free
    C's of the paper.
    """
    # --- prefill: solve [C1, C2, C3] ------------------------------------
    rows, ys = [], []
    for p in p_tens_grid:
        for s in profile_prefill(model, hardware, p, seed=seed):
            f = s.features.copy()
            f[0] /= p
            f[1] /= p
            rows.append(f)
            ys.append(s.latency)
    a = np.asarray(rows)
    y = np.asarray(ys)
    pre, _ = nnls(a, y)

    # --- decode: solve [C4, C5, C6] --------------------------------------
    rows, ys = [], []
    for pt in p_tens_grid:
        for pp in p_pipe_grid:
            for s in profile_decode(model, hardware, pt, pp, seed=seed):
                f = s.features.copy()
                f[0] /= pt * pp
                f[1] /= pt * pp
                rows.append(f)
                ys.append(s.latency)
    a = np.asarray(rows)
    y = np.asarray(ys)
    dec, _ = nnls(a, y)

    return CostCoefficients(
        c1=float(pre[0]),
        c2=float(pre[1]),
        c3=float(pre[2]),
        c4=float(dec[0]),
        c5=float(dec[1]),
        c6=float(dec[2]),
    )


@dataclass(frozen=True)
class ComputeCostModel:
    """Eqs. 12-13 evaluated with fitted coefficients for one (model, GPU)."""

    model: ModelConfig
    hardware_name: str
    coeffs: CostCoefficients

    def prefill_time(self, batch: BatchSpec, p_tens: int) -> float:
        """Eq. 12: full prefill pass latency (computation only)."""
        if p_tens < 1:
            raise ValueError(f"p_tens must be >= 1, got {p_tens}")
        m = self.model
        h, ffn, b = m.hidden_size, m.ffn_size, m.attn_block_size
        c = self.coeffs
        return (
            c.c1 / p_tens * (4.0 * h * h + 2.0 * h * ffn) * batch.k_in
            + c.c2 / (b * p_tens) * 3.0 * h * batch.k_in2
            + c.c3
        )

    def decode_time(
        self,
        q: int,
        context_tokens: int,
        p_tens: int,
        p_pipe: int,
    ) -> float:
        """Eq. 13: one decode iteration latency (computation only)."""
        if p_tens < 1 or p_pipe < 1:
            raise ValueError("parallel degrees must be >= 1")
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        m = self.model
        h, ffn = m.hidden_size, m.ffn_size
        c = self.coeffs
        par = p_tens * p_pipe
        return (
            c.c4 / par * (4.0 * h * h + 2.0 * h * ffn) * q
            + c.c5 / par * 3.0 * h * context_tokens
            + c.c6
        )


# Fit results are deterministic for a (model, hardware, seed) triple and
# moderately expensive (hundreds of synthetic profiles), so memoise them.
_FIT_CACHE: dict[tuple[str, str, int | None], ComputeCostModel] = {}


def fit_compute_model(
    model: ModelConfig,
    hardware: HardwareProfile,
    seed: int | None = 0,
) -> ComputeCostModel:
    """Memoised :func:`fit_coefficients` -> :class:`ComputeCostModel`."""
    key = (model.name, hardware.name, seed)
    cached = _FIT_CACHE.get(key)
    if cached is None:
        coeffs = fit_coefficients(model, hardware, seed=seed)
        cached = ComputeCostModel(model, hardware.name, coeffs)
        _FIT_CACHE[key] = cached
    return cached


class CostModelBank:
    """Per-hardware cost models for heterogeneous GPU groups.

    The testbed mixes A100 and V100 servers; a tensor-parallel group's
    iteration time is gated by its slowest member, so group latencies are
    the max over members' hardware models.
    """

    def __init__(
        self,
        model: ModelConfig,
        hardware_by_name: dict[str, HardwareProfile],
        seed: int | None = 0,
    ) -> None:
        if not hardware_by_name:
            raise ValueError("need at least one hardware profile")
        self.model = model
        self._models = {
            name: fit_compute_model(model, hw, seed=seed)
            for name, hw in hardware_by_name.items()
        }

    def for_hardware(self, name: str) -> ComputeCostModel:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(
                f"no cost model for hardware {name!r}; "
                f"have {sorted(self._models)}"
            ) from None

    def group_prefill_time(
        self, gpu_hardware: list[str], batch: BatchSpec, p_tens: int
    ) -> float:
        """Slowest-member prefill latency for a TP group."""
        return max(
            self.for_hardware(hw).prefill_time(batch, p_tens)
            for hw in gpu_hardware
        )

    def group_decode_time(
        self,
        gpu_hardware: list[str],
        q: int,
        context_tokens: int,
        p_tens: int,
        p_pipe: int,
    ) -> float:
        """Slowest-member decode-iteration latency for a TP group."""
        return max(
            self.for_hardware(hw).decode_time(
                q, context_tokens, p_tens, p_pipe
            )
            for hw in gpu_hardware
        )
