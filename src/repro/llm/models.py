"""Transformer model configurations (the Table I model parameters).

Provides the OPT family the paper evaluates (OPT-66B on the testbed,
OPT-175B in simulation), the LLaMA-3-70B shape used by Fig. 1's breakdown,
and a tiny config for fast tests. Parameter counts follow the standard
decoder-layer accounting: attention ``4h^2`` + FFN ``2hm`` weights per
layer, plus embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive


@dataclass(frozen=True)
class ModelConfig:
    """Decoder-only transformer shape (Table I symbols in comments)."""

    name: str
    n_layers: int          # L
    hidden_size: int       # h
    n_heads: int           # A
    ffn_size: int          # m
    vocab_size: int = 50272
    max_seq_len: int = 2048
    #: bytes per parameter / activation element (FP16 throughout, as in §V)
    dtype_bytes: int = 2
    #: attention-kernel block size b (Table I); paged-attention block rows
    attn_block_size: int = 16

    def __post_init__(self) -> None:
        require_positive("n_layers", self.n_layers)
        require_positive("hidden_size", self.hidden_size)
        require_positive("n_heads", self.n_heads)
        require_positive("ffn_size", self.ffn_size)
        if self.hidden_size % self.n_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"n_heads {self.n_heads}"
            )

    # -- derived sizes -------------------------------------------------

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.n_heads

    @property
    def params_per_layer(self) -> int:
        """Attention (QKV + output proj) + FFN weights of one layer."""
        return 4 * self.hidden_size**2 + 2 * self.hidden_size * self.ffn_size

    @property
    def param_count(self) -> int:
        """Total parameters R (Table I), embeddings included."""
        emb = self.vocab_size * self.hidden_size
        pos = self.max_seq_len * self.hidden_size
        return self.n_layers * self.params_per_layer + emb + pos

    @property
    def param_bytes(self) -> int:
        """Model weight footprint in bytes at ``dtype_bytes`` precision."""
        return self.param_count * self.dtype_bytes

    def flops_per_token_prefill(self) -> float:
        """Dense matmul FLOPs to process one prompt token (all layers)."""
        return 2.0 * self.n_layers * self.params_per_layer

    def flops_per_token_decode(self) -> float:
        """Dense matmul FLOPs to generate one token (all layers)."""
        return 2.0 * self.n_layers * self.params_per_layer


def _opt(name: str, L: int, h: int, A: int) -> ModelConfig:
    return ModelConfig(
        name=name, n_layers=L, hidden_size=h, n_heads=A, ffn_size=4 * h
    )


#: OPT family (Zhang et al., 2022), shapes from the paper's Table 1.
OPT_1_3B = _opt("OPT-1.3B", 24, 2048, 32)
OPT_13B = _opt("OPT-13B", 40, 5120, 40)
OPT_30B = _opt("OPT-30B", 48, 7168, 56)
OPT_66B = _opt("OPT-66B", 64, 9216, 72)
OPT_175B = _opt("OPT-175B", 96, 12288, 96)

#: LLaMA-3-70B shape, used only for the Fig. 1 cost-breakdown bench.
LLAMA3_70B = ModelConfig(
    name="LLaMA-3-70B",
    n_layers=80,
    hidden_size=8192,
    n_heads=64,
    ffn_size=28672,
    vocab_size=128256,
    max_seq_len=8192,
)

#: Small config so unit tests and property tests run in milliseconds.
TINY = ModelConfig(
    name="TINY",
    n_layers=4,
    hidden_size=256,
    n_heads=8,
    ffn_size=1024,
    vocab_size=1000,
    max_seq_len=512,
)

MODEL_ZOO: dict[str, ModelConfig] = {
    m.name: m
    for m in (OPT_1_3B, OPT_13B, OPT_30B, OPT_66B, OPT_175B, LLAMA3_70B, TINY)
}


def get_model(name: str) -> ModelConfig:
    """Look up a model config by name; raises ``KeyError`` with options."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None
