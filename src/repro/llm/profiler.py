"""Synthetic hardware profiles and the profiling harness.

The paper obtains the cost-model coefficients C1..C6 "using a profiling
and interpolation approach" on real GPUs. We have no GPUs, so the
*measured* latencies come from a synthetic-but-physical executor model:

* dense matmuls run at a fraction of the card's peak FP16 FLOPs,
* attention over the KV cache is memory-bandwidth-bound (reads the cache
  from HBM),
* decode steps additionally pay the per-iteration weight-read floor
  (GEMV at batch sizes below the roofline knee is bandwidth-bound),
* a fixed per-iteration overhead models Python runtime / kernel-launch
  noise (the paper's C3/C6),
* measurements carry small multiplicative jitter so the fit is a genuine
  regression, not an identity.

The substitution preserves the relevant behaviour because the paper's
Eqs. 12-13 are *linear* in the same feature set; any executor with the
right asymptotics yields coefficients of the right relative magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.batch import BatchSpec
from repro.llm.models import ModelConfig
from repro.util.rng import make_rng


@dataclass(frozen=True)
class HardwareProfile:
    """Peak specs of one GPU model (public datasheet numbers)."""

    name: str
    peak_fp16_flops: float       # FLOP/s
    hbm_bandwidth: float         # bytes/s
    #: achievable fraction of peak for big dense matmuls
    matmul_efficiency: float = 0.55
    #: achievable fraction of peak HBM bandwidth
    memory_efficiency: float = 0.75
    #: fixed per-iteration overhead (kernel launches, Python, sync)
    iteration_overhead: float = 3e-3


A100 = HardwareProfile("A100", 312e12, 2.0e12)
V100 = HardwareProfile("V100", 125e12, 0.9e12)
L40 = HardwareProfile("L40", 181e12, 0.86e12)
#: toy profile making TINY-model tests fast and numerically comfortable
TEST_GPU = HardwareProfile("TEST", 1e12, 1e11, iteration_overhead=1e-4)

HARDWARE_ZOO: dict[str, HardwareProfile] = {
    p.name: p for p in (A100, V100, L40, TEST_GPU)
}


def get_hardware(name: str) -> HardwareProfile:
    """Look up a hardware profile by name."""
    try:
        return HARDWARE_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown hardware {name!r}; available: {sorted(HARDWARE_ZOO)}"
        ) from None


class SyntheticExecutor:
    """Ground-truth latency oracle standing in for real GPU kernels."""

    def __init__(
        self,
        model: ModelConfig,
        hardware: HardwareProfile,
        jitter: float = 0.02,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= jitter < 0.5:
            raise ValueError(f"jitter must be in [0, 0.5), got {jitter}")
        self.model = model
        self.hardware = hardware
        self.jitter = jitter
        self._rng = make_rng(seed)

    # -- physical latency components ------------------------------------

    def _matmul_time(self, flops: float, p_tens: int) -> float:
        hw = self.hardware
        return flops / (p_tens * hw.peak_fp16_flops * hw.matmul_efficiency)

    def _hbm_time(self, bytes_read: float, p_tens: int) -> float:
        hw = self.hardware
        return bytes_read / (
            p_tens * hw.hbm_bandwidth * hw.memory_efficiency
        )

    def _noise(self) -> float:
        if self.jitter == 0.0:
            return 1.0
        return float(1.0 + self._rng.normal(0.0, self.jitter))

    # -- measured phases -------------------------------------------------

    def prefill_time(self, batch: BatchSpec, p_tens: int) -> float:
        """Wall time of one full prefill pass (all layers, no comm)."""
        m = self.model
        k_in, k_in2 = batch.k_in, batch.k_in2
        # Dense projections + FFN, 2 FLOPs per MAC:
        lin_flops = 2.0 * m.n_layers * (
            4.0 * m.hidden_size**2 + 2.0 * m.hidden_size * m.ffn_size
        ) * k_in
        # Attention scores/values: ~ 2 * 2 * h * sum(l_i^2) per layer.
        attn_flops = 4.0 * m.n_layers * m.hidden_size * k_in2
        t = self._matmul_time(lin_flops + attn_flops, p_tens)
        t += self.hardware.iteration_overhead
        return t * self._noise()

    def decode_time(
        self, batch: BatchSpec, context_tokens: int, p_tens: int,
        p_pipe: int = 1,
    ) -> float:
        """Wall time of one decode iteration producing one token/request.

        ``context_tokens`` is the total KV length attended over (the K_in
        of Eq. 13's second term). Pipeline parallelism divides the weight
        volume per stage; the fill overhead is a fixed bubble cost.
        """
        m = self.model
        parallel = p_tens * p_pipe
        lin_flops = 2.0 * batch.q * m.n_layers * (
            4.0 * m.hidden_size**2 + 2.0 * m.hidden_size * m.ffn_size
        )
        compute = lin_flops / (
            parallel
            * self.hardware.peak_fp16_flops
            * self.hardware.matmul_efficiency
        )
        # GEMV at small Q is bandwidth-bound: every iteration streams the
        # local weight shard from HBM once.
        weight_read = self._hbm_time(m.param_bytes / p_pipe, p_tens)
        # Attention reads the KV cache of all context tokens.
        kv_bytes = (
            2.0 * m.n_layers * m.hidden_size * m.dtype_bytes
            * context_tokens / p_pipe
        )
        kv_read = self._hbm_time(kv_bytes, p_tens)
        t = max(compute, weight_read) + kv_read
        t += self.hardware.iteration_overhead
        # Pipeline fill bubble: one extra stage latency per iteration edge.
        if p_pipe > 1:
            t += (p_pipe - 1) * self.hardware.iteration_overhead * 0.5
        return t * self._noise()


@dataclass
class ProfileSample:
    """One profiling measurement: features + observed latency."""

    features: np.ndarray
    latency: float


def profile_prefill(
    model: ModelConfig,
    hardware: HardwareProfile,
    p_tens: int,
    input_lens: list[int] | None = None,
    batch_sizes: list[int] | None = None,
    seed: int | None = None,
) -> list[ProfileSample]:
    """Collect prefill samples with the Eq. 12 feature vector.

    Features per sample: ``[(4h^2 + 2hm) K_in, 3 h K_in2 / b, 1]`` so the
    least-squares solution is directly ``[C1/P_tens, C2/P_tens, C3]``.
    """
    ex = SyntheticExecutor(model, hardware, seed=seed)
    input_lens = input_lens or [64, 128, 256, 512, 1024]
    batch_sizes = batch_sizes or [1, 2, 4, 8]
    h, m, b = model.hidden_size, model.ffn_size, model.attn_block_size
    samples = []
    for q in batch_sizes:
        for l in input_lens:
            batch = BatchSpec.uniform(q, l, 1)
            feats = np.array(
                [
                    (4.0 * h * h + 2.0 * h * m) * batch.k_in,
                    3.0 * h * batch.k_in2 / b,
                    1.0,
                ]
            )
            samples.append(
                ProfileSample(feats, ex.prefill_time(batch, p_tens))
            )
    return samples


def profile_decode(
    model: ModelConfig,
    hardware: HardwareProfile,
    p_tens: int,
    p_pipe: int,
    context_lens: list[int] | None = None,
    batch_sizes: list[int] | None = None,
    seed: int | None = None,
) -> list[ProfileSample]:
    """Collect decode samples with the Eq. 13 feature vector.

    Features per sample: ``[(4h^2 + 2hm), 3 h K_ctx, 1]`` so the solution
    is ``[C4/(Pt*Pp), C5/(Pt*Pp), C6]``.
    """
    ex = SyntheticExecutor(model, hardware, seed=seed)
    context_lens = context_lens or [128, 512, 1024, 2048, 4096]
    batch_sizes = batch_sizes or [1, 4, 16, 32]
    h, m = model.hidden_size, model.ffn_size
    samples = []
    for q in batch_sizes:
        for ctx in context_lens:
            batch = BatchSpec.uniform(q, max(1, ctx // max(q, 1)), 1)
            total_ctx = ctx
            feats = np.array(
                [
                    (4.0 * h * h + 2.0 * h * m) * q,
                    3.0 * h * total_ctx,
                    1.0,
                ]
            )
            samples.append(
                ProfileSample(
                    feats,
                    ex.decode_time(batch, total_ctx, p_tens, p_pipe),
                )
            )
    return samples
