"""Programmable-switch substrate: dataplane, control plane, INA protocols."""

from repro.switch.control import CounterPoller, SlotAllocator, SlotLease
from repro.switch.dataplane import (
    DEFAULT_SCALE_BITS,
    DEFAULT_SLOT_ELEMENTS,
    AggregatorSlot,
    ResultPacket,
    SlotPoolExhausted,
    SwitchDataplane,
    UpdatePacket,
    dequantize,
    quantize,
)
from repro.switch.protocols import (
    ATP_FALLBACK_PENALTY,
    DEFAULT_RTT,
    AggregationStats,
    atp_allreduce,
    atp_time,
    ina_effective_throughput,
    switchml_allreduce,
    switchml_time,
)

__all__ = [
    "CounterPoller",
    "SlotAllocator",
    "SlotLease",
    "DEFAULT_SCALE_BITS",
    "DEFAULT_SLOT_ELEMENTS",
    "AggregatorSlot",
    "ResultPacket",
    "SlotPoolExhausted",
    "SwitchDataplane",
    "UpdatePacket",
    "dequantize",
    "quantize",
    "ATP_FALLBACK_PENALTY",
    "DEFAULT_RTT",
    "AggregationStats",
    "atp_allreduce",
    "atp_time",
    "ina_effective_throughput",
    "switchml_allreduce",
    "switchml_time",
]
