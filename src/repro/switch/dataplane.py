"""Programmable-switch dataplane: aggregator slots and exact-match table.

Reproduces the P4 dataplane of Section IV in Python:

* the aggregation memory is a pool of **fixed-size aggregator slots**
  (vectors of fixed-point integers plus a contribution counter and a
  seen-worker bitmap),
* an ``aggregation_table`` — an exact-match table keyed by (job, chunk
  index) — maps incoming INA update packets to slots,
* values are carried as fixed-point integers (floats scaled by ``2**s``),
  so in-switch addition is exact and the result is bit-identical across
  worker arrival orders — the property SwitchML relies on.

The dataplane is *functional*: it really aggregates NumPy vectors, so
tests can assert numerical exactness; timing lives in the protocol models
(:mod:`repro.switch.protocols`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Default aggregator entry: 256 x 4-byte integers = 1024 B of payload,
#: the Table I ``M_ina`` default (SwitchML uses 64-260 element slots).
DEFAULT_SLOT_ELEMENTS = 256

#: Default fixed-point scaling exponent (values are multiplied by 2**24
#: and rounded; gradients/activations in [-128, 128) fit int64 exactly).
DEFAULT_SCALE_BITS = 24


class SlotPoolExhausted(RuntimeError):
    """Raised when an update packet arrives and no slot can be mapped."""


@dataclass
class AggregatorSlot:
    """One fixed-size aggregation register block in switch SRAM."""

    slot_id: int
    n_elements: int
    value: np.ndarray = field(init=False)
    seen: set[int] = field(default_factory=set)
    fanout: int = 0
    #: exact-match key currently installed, or None when free
    key: tuple | None = None

    def __post_init__(self) -> None:
        self.value = np.zeros(self.n_elements, dtype=np.int64)

    @property
    def count(self) -> int:
        """Contributions received so far (the paper's counter field)."""
        return len(self.seen)

    def reset(self, key: tuple, fanout: int) -> None:
        """Re-arm the slot for a new chunk."""
        self.value[:] = 0
        self.seen.clear()
        self.fanout = fanout
        self.key = key

    def release(self) -> None:
        """Return the slot to the free pool."""
        self.key = None
        self.seen.clear()
        self.fanout = 0


def quantize(x: np.ndarray, scale_bits: int = DEFAULT_SCALE_BITS) -> np.ndarray:
    """Float -> fixed-point int64 (round-to-nearest)."""
    scaled = np.rint(np.asarray(x, dtype=np.float64) * (1 << scale_bits))
    lo, hi = np.iinfo(np.int64).min, np.iinfo(np.int64).max
    if np.any(scaled > hi) or np.any(scaled < lo):
        raise OverflowError("value out of fixed-point range; lower scale_bits")
    return scaled.astype(np.int64)


def dequantize(
    q: np.ndarray, scale_bits: int = DEFAULT_SCALE_BITS
) -> np.ndarray:
    """Fixed-point int64 -> float64."""
    return np.asarray(q, dtype=np.float64) / (1 << scale_bits)


@dataclass
class UpdatePacket:
    """An INA update from one worker for one chunk of one job."""

    job_id: int
    chunk_id: int
    worker_id: int
    payload: np.ndarray  # int64 fixed-point, length <= slot elements


@dataclass
class ResultPacket:
    """Broadcast result for a completed chunk."""

    job_id: int
    chunk_id: int
    payload: np.ndarray  # int64 fixed-point aggregate


class SwitchDataplane:
    """Slot pool + exact-match aggregation table of one switch ASIC.

    ``n_slots`` bounds the number of chunks that can be in flight
    simultaneously; this is the resource whose exhaustion throttles
    synchronous INA throughput for large messages (Fig. 9's regime).
    """

    def __init__(
        self,
        n_slots: int = 512,
        slot_elements: int = DEFAULT_SLOT_ELEMENTS,
        scale_bits: int = DEFAULT_SCALE_BITS,
    ) -> None:
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        if slot_elements < 1:
            raise ValueError(f"slot_elements >= 1, got {slot_elements}")
        self.n_slots = n_slots
        self.slot_elements = slot_elements
        self.scale_bits = scale_bits
        self._slots = [
            AggregatorSlot(i, slot_elements) for i in range(n_slots)
        ]
        self._free: list[int] = list(range(n_slots))
        self._table: dict[tuple, int] = {}
        self._seized: list[int] = []
        #: fail-stop state (fault injection); a failed switch blackholes
        #: packets and its SRAM content is gone.
        self.failed = False
        # hardware counters the control plane polls
        self.packets_in = 0
        self.packets_out = 0
        self.drops_no_slot = 0
        self.drops_down = 0
        self.completions = 0

    # -- fault injection ---------------------------------------------------

    def fail(self) -> None:
        """Crash the switch: every aggregator slot's content is lost.

        In-flight chunks must be re-aggregated from scratch by the end
        hosts after recovery — exactly the SwitchML failure story the
        shadow-copy design exists to bound.
        """
        self.failed = True
        for slot in self._slots:
            slot.release()
        self._table.clear()
        self._seized.clear()
        self._free = list(range(self.n_slots))

    def recover(self) -> None:
        """Bring the switch back with a cold (empty) aggregation table."""
        self.failed = False

    def seize_slots(self, n: int) -> int:
        """Seize up to ``n`` free slots (an exhaustion storm); returns the
        number actually taken. Released by :meth:`release_seized`."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        taken = 0
        while self._free and taken < n:
            self._seized.append(self._free.pop())
            taken += 1
        return taken

    def release_seized(self) -> None:
        """Return storm-seized slots to the free pool."""
        self._free.extend(self._seized)
        self._seized.clear()

    # -- datapath ----------------------------------------------------------

    @property
    def free_slots(self) -> int:
        """Slots currently available for new chunks."""
        return len(self._free)

    @property
    def slot_payload_bytes(self) -> int:
        """Bytes of payload one slot (= one update packet) carries."""
        return self.slot_elements * 4  # 32-bit wire integers

    def process_update(
        self, pkt: UpdatePacket, fanout: int
    ) -> ResultPacket | None:
        """Handle one update packet.

        Returns the aggregated :class:`ResultPacket` when this packet is
        the ``fanout``-th distinct contribution for its chunk, otherwise
        ``None``. Duplicate contributions from the same worker (retransmits)
        are idempotently ignored, as in the SwitchML shadow-copy design.

        Raises :class:`SlotPoolExhausted` when a new chunk arrives and the
        pool is empty (the control plane then counts a drop; protocol
        models translate drops into retransmission delay).
        """
        if len(pkt.payload) > self.slot_elements:
            raise ValueError(
                f"payload of {len(pkt.payload)} exceeds slot size "
                f"{self.slot_elements}"
            )
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if self.failed:
            # A crashed switch blackholes traffic; senders time out and
            # the protocol layer falls back / retries.
            self.drops_down += 1
            return None
        self.packets_in += 1
        key = (pkt.job_id, pkt.chunk_id)
        slot_id = self._table.get(key)
        if slot_id is None:
            if not self._free:
                self.drops_no_slot += 1
                raise SlotPoolExhausted(
                    f"no free aggregator slot for chunk {key}"
                )
            slot_id = self._free.pop()
            slot = self._slots[slot_id]
            slot.reset(key, fanout)
            self._table[key] = slot_id
        slot = self._slots[slot_id]
        if slot.fanout != fanout:
            raise ValueError(
                f"fanout mismatch on chunk {key}: "
                f"{slot.fanout} installed, {fanout} in packet"
            )
        if pkt.worker_id in slot.seen:
            return None  # idempotent retransmit
        slot.seen.add(pkt.worker_id)
        n = len(pkt.payload)
        slot.value[:n] += pkt.payload
        if slot.count == fanout:
            result = ResultPacket(
                pkt.job_id, pkt.chunk_id, slot.value[:n].copy()
            )
            del self._table[key]
            slot.release()
            self._free.append(slot_id)
            self.completions += 1
            self.packets_out += fanout  # broadcast to all contributors
            return result
        return None

    def pending_chunks(self) -> int:
        """Chunks currently occupying slots."""
        return len(self._table)

    def occupancy(self) -> float:
        """Fraction of aggregator slots currently in use [0, 1]."""
        return len(self._table) / self.n_slots

    def counters(self) -> dict[str, int]:
        """Snapshot of the hardware counters (control-plane poll)."""
        return {
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "drops_no_slot": self.drops_no_slot,
            "drops_down": self.drops_down,
            "completions": self.completions,
            "pending": self.pending_chunks(),
            "free_slots": self.free_slots,
            "seized_slots": len(self._seized),
        }

    def reset_counters(self) -> None:
        """Zero the poll counters (between measurement windows)."""
        self.packets_in = 0
        self.packets_out = 0
        self.drops_no_slot = 0
        self.drops_down = 0
        self.completions = 0
