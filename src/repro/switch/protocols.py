"""INA protocols on top of the switch dataplane: SwitchML and ATP.

Two baseline in-network-aggregation protocols the paper integrates into
DistServe (DS-SwitchML, DS-ATP):

* **SwitchML** (Sapio et al., NSDI'21): *synchronous* streaming — the
  message is chunked to slot size; a fixed window of chunks is in flight;
  every chunk must be contributed by **all** workers before the switch
  broadcasts the aggregate and the slot is recycled. Lock-step across
  workers; throughput is bounded by the slowest worker's link and by the
  slot window.
* **ATP** (Lao et al., NSDI'21): *asynchronous* best-effort — workers
  stream without a global window; when no switch slot is free the chunk
  **falls back to an end-host parameter server**, costing extra hops.
  More elastic under multi-tenancy, but fallback traffic adds load on the
  already-congested Ethernet, which is exactly the degradation the paper
  measures under bursty traffic.

Both are implemented twice, deliberately:

* a **functional** path that pushes real packets through
  :class:`~repro.switch.dataplane.SwitchDataplane` and returns the exact
  aggregated vector (tests assert bit-exactness and fallback accounting);
* an **analytic timing model** used by the communication-latency
  estimators and benchmarks, where per-chunk simulation would be too slow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.logging_config import get_logger
from repro.switch.dataplane import (
    ResultPacket,
    SlotPoolExhausted,
    SwitchDataplane,
    UpdatePacket,
    dequantize,
    quantize,
)

log = get_logger(__name__)

#: Per-packet wire/processing overhead on the worker-switch RTT. The paper
#: treats in-switch aggregation as ~1 us; NIC+PCIe adds a few microseconds.
DEFAULT_RTT = 8e-6

#: ATP fallback efficiency: chunks aggregated at an end-host server pay a
#: second network traversal plus host processing.
ATP_FALLBACK_PENALTY = 2.5


# ---------------------------------------------------------------------------
# Functional aggregation
# ---------------------------------------------------------------------------

@dataclass
class AggregationStats:
    """Accounting from a functional all-reduce run."""

    n_chunks: int
    switch_chunks: int
    fallback_chunks: int
    packets_sent: int
    #: chunks that hit an exhausted slot pool and had to wait for a slot
    stalled_chunks: int = 0


#: Stall rounds a SwitchML chunk waits for a slot before the end hosts
#: give up on the switch and aggregate the chunk themselves.
MAX_STALL_ROUNDS = 3


def _chunk_bounds(n: int, chunk_elems: int) -> list[tuple[int, int]]:
    return [(i, min(i + chunk_elems, n)) for i in range(0, n, chunk_elems)]


def _host_sum(quants: list[np.ndarray], lo: int, hi: int) -> np.ndarray:
    """End-host aggregation of one chunk (bit-identical to the switch)."""
    acc = np.zeros(hi - lo, dtype=np.int64)
    for q in quants:
        acc += q[lo:hi]
    return acc


def switchml_allreduce(
    dataplane: SwitchDataplane,
    worker_arrays: list[np.ndarray],
    job_id: int = 0,
    window: int | None = None,
) -> tuple[np.ndarray, AggregationStats]:
    """Synchronous SwitchML all-reduce of ``worker_arrays``.

    Streams chunks through the dataplane with a window no larger than the
    slot pool; returns the exact element-wise sum (via fixed-point) and
    packet statistics. All workers proceed in lock-step, mirroring the
    protocol's synchronous window.
    """
    if not worker_arrays:
        raise ValueError("need at least one worker array")
    n = len(worker_arrays[0])
    for w in worker_arrays:
        if len(w) != n:
            raise ValueError("worker arrays must have equal length")
    fanout = len(worker_arrays)
    window = window or dataplane.n_slots
    window = min(window, dataplane.n_slots)
    quants = [quantize(w, dataplane.scale_bits) for w in worker_arrays]
    bounds = _chunk_bounds(n, dataplane.slot_elements)
    out_q = np.zeros(n, dtype=np.int64)
    packets = 0
    stalled = 0
    fallback = 0
    if dataplane.failed:
        # Crashed switch: the whole message is aggregated at the end
        # hosts (numerically identical, but every chunk is a fallback).
        for lo, hi in bounds:
            out_q[lo:hi] = _host_sum(quants, lo, hi)
        stats = AggregationStats(
            n_chunks=len(bounds),
            switch_chunks=0,
            fallback_chunks=len(bounds),
            packets_sent=0,
        )
        return dequantize(out_q, dataplane.scale_bits), stats
    # Process in windows of `window` chunks; within a window, workers send
    # round-robin (chunk-major) like the real protocol's packet trains.
    for wstart in range(0, len(bounds), window):
        pending = list(range(wstart, min(wstart + window, len(bounds))))
        stall_rounds = 0
        while pending:
            progressed = False
            deferred: list[int] = []
            for ci in pending:
                lo, hi = bounds[ci]
                try:
                    for wid, q in enumerate(quants):
                        pkt = UpdatePacket(job_id, ci, wid, q[lo:hi])
                        res = dataplane.process_update(pkt, fanout)
                        packets += 1
                        if res is not None:
                            out_q[lo:hi] = res.payload
                except SlotPoolExhausted:
                    # Exhaustion can only hit a chunk's *first* packet
                    # (later packets map to the installed slot), so the
                    # whole chunk is safe to stall and retry once other
                    # chunks complete and recycle their slots.
                    stalled += 1
                    deferred.append(ci)
                    continue
                progressed = True
            pending = deferred
            if pending and not progressed:
                stall_rounds += 1
                if stall_rounds >= MAX_STALL_ROUNDS:
                    # Pool is held elsewhere (storm / other tenants):
                    # give up on the switch for these chunks rather than
                    # aborting the run.
                    log.warning(
                        "SwitchML job %s: %d chunks stalled beyond %d "
                        "rounds; aggregating at end hosts",
                        job_id,
                        len(pending),
                        MAX_STALL_ROUNDS,
                    )
                    for ci in pending:
                        lo, hi = bounds[ci]
                        out_q[lo:hi] = _host_sum(quants, lo, hi)
                        packets += fanout
                        fallback += 1
                    pending = []
            else:
                stall_rounds = 0
    stats = AggregationStats(
        n_chunks=len(bounds),
        switch_chunks=len(bounds) - fallback,
        fallback_chunks=fallback,
        packets_sent=packets,
        stalled_chunks=stalled,
    )
    return dequantize(out_q, dataplane.scale_bits), stats


def atp_allreduce(
    dataplane: SwitchDataplane,
    worker_arrays: list[np.ndarray],
    job_id: int = 0,
) -> tuple[np.ndarray, AggregationStats]:
    """Asynchronous ATP all-reduce with end-host fallback.

    Workers stream every chunk immediately (no window). When the slot pool
    is exhausted the chunk is aggregated at an end-host parameter server
    instead — numerically identical, but counted as a fallback chunk so
    timing models can charge the extra hops.
    """
    if not worker_arrays:
        raise ValueError("need at least one worker array")
    n = len(worker_arrays[0])
    for w in worker_arrays:
        if len(w) != n:
            raise ValueError("worker arrays must have equal length")
    fanout = len(worker_arrays)
    quants = [quantize(w, dataplane.scale_bits) for w in worker_arrays]
    bounds = _chunk_bounds(n, dataplane.slot_elements)
    out_q = np.zeros(n, dtype=np.int64)
    packets = 0
    fallback = 0
    if dataplane.failed:
        for lo, hi in bounds:
            out_q[lo:hi] = _host_sum(quants, lo, hi)
        stats = AggregationStats(
            n_chunks=len(bounds),
            switch_chunks=0,
            fallback_chunks=len(bounds),
            packets_sent=0,
        )
        return dequantize(out_q, dataplane.scale_bits), stats
    for ci, (lo, hi) in enumerate(bounds):
        try:
            result: ResultPacket | None = None
            for wid, q in enumerate(quants):
                pkt = UpdatePacket(job_id, ci, wid, q[lo:hi])
                result = dataplane.process_update(pkt, fanout)
                packets += 1
            assert result is not None, "last worker must complete the chunk"
            out_q[lo:hi] = result.payload
        except SlotPoolExhausted:
            # End-host fallback: the parameter server sums this chunk.
            # Previously silent — the fallback rate is the §V degradation
            # signal, so surface it at DEBUG for the monitoring layer.
            log.debug(
                "ATP job %s chunk %d: slot pool exhausted, "
                "end-host fallback",
                job_id,
                ci,
            )
            fallback += 1
            acc = np.zeros(hi - lo, dtype=np.int64)
            for q in quants:
                acc += q[lo:hi]
                packets += 1
            out_q[lo:hi] = acc
    stats = AggregationStats(
        n_chunks=len(bounds),
        switch_chunks=len(bounds) - fallback,
        fallback_chunks=fallback,
        packets_sent=packets,
    )
    return dequantize(out_q, dataplane.scale_bits), stats


# ---------------------------------------------------------------------------
# Analytic timing models
# ---------------------------------------------------------------------------

def switchml_time(
    message_bytes: float,
    worker_bandwidths: np.ndarray,
    n_slots: int,
    slot_payload_bytes: int,
    rtt: float = DEFAULT_RTT,
    agg_latency: float = 1e-6,
) -> float:
    """Completion time of a synchronous SwitchML all-reduce.

    The steady-state per-worker goodput is bounded by (a) the slowest
    worker's available link bandwidth and (b) the window: at most
    ``n_slots`` chunks in flight, each taking one RTT to turn around, so
    window goodput = ``n_slots * slot_payload_bytes / rtt``. Completion
    adds one pipeline fill (RTT) and the in-switch aggregation constant.
    """
    if message_bytes <= 0:
        return 0.0
    bw = np.asarray(worker_bandwidths, dtype=np.float64)
    if bw.size == 0 or np.any(bw <= 0):
        raise ValueError("worker bandwidths must be positive and non-empty")
    link_goodput = float(bw.min())
    window_goodput = n_slots * slot_payload_bytes / rtt
    goodput = min(link_goodput, window_goodput)
    return message_bytes / goodput + rtt + agg_latency


def atp_time(
    message_bytes: float,
    worker_bandwidths: np.ndarray,
    n_slots: int,
    slot_payload_bytes: int,
    rtt: float = DEFAULT_RTT,
    agg_latency: float = 1e-6,
    contention: float = 0.0,
) -> float:
    """Completion time of an asynchronous ATP all-reduce.

    ATP is not window-limited (asynchronous streaming) but under slot
    *contention* a fraction of chunks falls back to end-host aggregation,
    each paying :data:`ATP_FALLBACK_PENALTY` x the in-switch cost.
    ``contention`` in [0, 1] is the fraction of the slot pool unavailable
    (other tenants / bursty overlap); the fallback fraction grows once the
    in-flight demand exceeds the available pool.
    """
    if message_bytes <= 0:
        return 0.0
    if not 0.0 <= contention <= 1.0:
        raise ValueError(f"contention in [0,1], got {contention}")
    bw = np.asarray(worker_bandwidths, dtype=np.float64)
    if bw.size == 0 or np.any(bw <= 0):
        raise ValueError("worker bandwidths must be positive and non-empty")
    link_goodput = float(bw.min())
    available_slots = max(1.0, (1.0 - contention) * n_slots)
    # Chunks the protocol wants in flight to saturate the link:
    demand = link_goodput * rtt / slot_payload_bytes
    in_switch_frac = min(1.0, available_slots / max(demand, 1e-9))
    mean_cost = in_switch_frac + (1.0 - in_switch_frac) * ATP_FALLBACK_PENALTY
    goodput = link_goodput / mean_cost
    return message_bytes / goodput + rtt + agg_latency


def ina_effective_throughput(
    message_bytes: float,
    completion_time: float,
) -> float:
    """Aggregation goodput (bytes/s) from a message size and its time."""
    if completion_time <= 0:
        raise ValueError("completion_time must be > 0")
    return message_bytes / completion_time
