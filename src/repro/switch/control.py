"""Switch control plane: aggregator-slot allocation and counter polling.

The paper's central scheduler "uniformly allocates and recycles aggregator
slots" across jobs and "periodically polls hardware counters from the data
plane to obtain link utilization metrics" (Section IV). This module is that
control plane: a :class:`SlotAllocator` partitions each switch's pool among
registered aggregation jobs, and :class:`CounterPoller` turns dataplane
counters into utilisation samples for the online scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.switch.dataplane import SwitchDataplane


@dataclass(frozen=True)
class SlotLease:
    """A job's reservation of ``n_slots`` on one switch."""

    job_id: int
    switch_id: int
    n_slots: int


class SlotAllocator:
    """Uniform allocation/recycling of aggregator slots across jobs.

    Each registered switch exposes a fixed pool. Jobs request slots; the
    allocator grants ``min(requested, fair share of the free pool)`` so a
    single tenant cannot starve others — the multi-tenancy issue ATP's
    design highlights.
    """

    def __init__(self) -> None:
        self._pools: dict[int, int] = {}        # switch -> total slots
        self._granted: dict[int, int] = {}      # switch -> granted slots
        self._leases: dict[tuple[int, int], SlotLease] = {}
        self._jobs_per_switch: dict[int, set[int]] = {}

    def register_switch(self, switch_id: int, n_slots: int) -> None:
        """Expose a switch's slot pool to the allocator."""
        if n_slots < 0:
            raise ValueError(f"n_slots must be >= 0, got {n_slots}")
        if switch_id in self._pools:
            raise ValueError(f"switch {switch_id} already registered")
        self._pools[switch_id] = n_slots
        self._granted[switch_id] = 0
        self._jobs_per_switch[switch_id] = set()

    def free_slots(self, switch_id: int) -> int:
        """Slots not currently leased on ``switch_id``."""
        return self._pools[switch_id] - self._granted[switch_id]

    def request(
        self, job_id: int, switch_id: int, n_slots: int
    ) -> SlotLease:
        """Lease up to ``n_slots`` on a switch for a job.

        The grant is capped at an even share of the pool among tenants on
        that switch (counting the requester), then at the free pool.
        """
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        if (job_id, switch_id) in self._leases:
            raise ValueError(
                f"job {job_id} already holds a lease on switch {switch_id}"
            )
        pool = self._pools[switch_id]
        tenants = len(self._jobs_per_switch[switch_id]) + 1
        fair = max(1, pool // tenants)
        grant = min(n_slots, fair, self.free_slots(switch_id))
        if grant <= 0:
            raise RuntimeError(
                f"switch {switch_id} has no free aggregator slots"
            )
        lease = SlotLease(job_id, switch_id, grant)
        self._leases[(job_id, switch_id)] = lease
        self._granted[switch_id] += grant
        self._jobs_per_switch[switch_id].add(job_id)
        return lease

    def release(self, job_id: int, switch_id: int) -> None:
        """Recycle a job's lease back into the pool."""
        lease = self._leases.pop((job_id, switch_id))
        self._granted[switch_id] -= lease.n_slots
        self._jobs_per_switch[switch_id].discard(job_id)

    def leases_of(self, job_id: int) -> list[SlotLease]:
        """All leases currently held by a job."""
        return [
            lease
            for (jid, _), lease in self._leases.items()
            if jid == job_id
        ]


@dataclass
class CounterPoller:
    """Periodic dataplane-counter polling with rate derivation.

    Converts two successive counter snapshots into packet rates; the
    online scheduler maps rates on a switch's ports into link-utilisation
    updates (Section IV: "statistics ... used to update the cost
    parameters in the online scheduling process").
    """

    dataplane: SwitchDataplane
    _last: dict[str, int] = field(default_factory=dict)
    _last_time: float = 0.0

    def poll(self, now: float) -> dict[str, float]:
        """Sample counters at time ``now``; returns per-second rates."""
        snap = self.dataplane.counters()
        rates: dict[str, float] = {}
        dt = now - self._last_time
        if self._last and dt > 0:
            for k in ("packets_in", "packets_out", "completions",
                      "drops_no_slot"):
                rates[k + "_per_s"] = (snap[k] - self._last[k]) / dt
        self._last = snap
        self._last_time = now
        rates["pending"] = float(snap["pending"])
        rates["free_slots"] = float(snap["free_slots"])
        return rates
