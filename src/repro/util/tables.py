"""Plain-text result tables for benchmark output.

The benchmark harness prints the same rows/series the paper's figures show.
This module renders aligned ASCII tables without any third-party dependency
so bench output is stable and diffable.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    floatfmt: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""

    def cell(v: Any) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    floatfmt: str = ".4g",
) -> None:
    """Print :func:`format_table` output followed by a blank line."""
    print(format_table(headers, rows, title=title, floatfmt=floatfmt))
    print()


def speedup_rows(
    baseline_names: Sequence[str],
    baseline_values: Sequence[float],
    ours_name: str,
    ours_value: float,
    higher_is_better: bool = True,
) -> list[list[Any]]:
    """Build '<ours> vs <baseline>' improvement rows for a metric.

    For throughput-like metrics (``higher_is_better``) the factor is
    ``ours / baseline``; for latency-like metrics the row reports the
    relative reduction ``1 - ours / baseline``.
    """
    rows: list[list[Any]] = []
    for name, val in zip(baseline_names, baseline_values):
        if val <= 0:
            rows.append([f"{ours_name} vs {name}", float("nan")])
        elif higher_is_better:
            rows.append([f"{ours_name} vs {name}", ours_value / val])
        else:
            rows.append([f"{ours_name} vs {name}", 1.0 - ours_value / val])
    return rows
