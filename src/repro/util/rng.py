"""Seeded random-number helpers.

All stochastic components of the package (arrival processes, trace
generators, the planner's random-swap perturbation) accept an explicit
``numpy.random.Generator``. This module centralises construction so the
whole system is reproducible from a single integer seed, and provides
``spawn`` for creating statistically independent child streams.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

DEFAULT_SEED = 0x5EED


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` maps to the package default seed rather than OS entropy, so
    that benches are deterministic unless the caller opts out explicitly
    with ``make_rng(os_entropy_seed())``.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses the bit-generator's ``spawn`` when available (NumPy >= 1.25) and
    falls back to seeding children from the parent stream otherwise.
    """
    bitgen = rng.bit_generator
    if hasattr(bitgen, "spawn"):
        return [np.random.Generator(bg) for bg in bitgen.spawn(n)]
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


def choice_without_replacement(
    rng: np.random.Generator, items: Iterable, k: int
) -> list:
    """Sample ``k`` distinct items from ``items`` preserving list types."""
    seq = list(items)
    if k > len(seq):
        raise ValueError(f"cannot sample {k} items from {len(seq)}")
    idx = rng.choice(len(seq), size=k, replace=False)
    return [seq[i] for i in idx]
