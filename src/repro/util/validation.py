"""Lightweight argument-validation helpers.

These raise early with actionable messages instead of letting a bad
parameter propagate into NaNs deep inside the planner or the simulator.
"""

from __future__ import annotations

from typing import Any


def require_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_nonnegative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(
    name: str, value: float, lo: float, hi: float, inclusive: bool = True
) -> float:
    """Raise ``ValueError`` unless ``lo <= value <= hi`` (or strict)."""
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        bounds = f"[{lo}, {hi}]" if inclusive else f"({lo}, {hi})"
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def require_type(name: str, value: Any, typ: type) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``typ``."""
    if not isinstance(value, typ):
        raise TypeError(
            f"{name} must be {typ.__name__}, got {type(value).__name__}"
        )
    return value


def require_divides(name_a: str, a: int, name_b: str, b: int) -> None:
    """Raise ``ValueError`` unless ``a`` divides ``b`` exactly."""
    if b % a != 0:
        raise ValueError(f"{name_a}={a} must divide {name_b}={b}")
