"""Unit constants and conversion helpers.

Internal conventions for the whole ``repro`` package:

* time is in **seconds**,
* data sizes are in **bytes**,
* bandwidths are in **bytes per second**,
* memory capacities are in **bytes**.

The paper quotes bandwidths in mixed units (600 GB/s NVLink, 100 Gbps
Ethernet); every external figure is converted through this module exactly
once, at construction time, so the rest of the code never multiplies by 8 or
1e9 inline.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data size units (bytes)
# ---------------------------------------------------------------------------
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

# ---------------------------------------------------------------------------
# Time units (seconds)
# ---------------------------------------------------------------------------
US = 1e-6
MS = 1e-3
MINUTE = 60.0

# ---------------------------------------------------------------------------
# Bandwidth units (bytes / second)
# ---------------------------------------------------------------------------
GBPS_BITS = 1e9 / 8.0  # 1 gigabit per second, expressed in bytes/s
GBPS_BYTES = 1e9       # 1 gigabyte per second, expressed in bytes/s


def gbit_per_s(x: float) -> float:
    """Convert a bandwidth given in gigabits per second to bytes/s."""
    return x * GBPS_BITS


def gbyte_per_s(x: float) -> float:
    """Convert a bandwidth given in gigabytes per second to bytes/s."""
    return x * GBPS_BYTES


def gib(x: float) -> float:
    """Convert gibibytes to bytes (GPU memory sizes are binary-prefixed)."""
    return x * GIB


def to_us(seconds: float) -> float:
    """Express a duration in microseconds (for reporting only)."""
    return seconds / US


def to_ms(seconds: float) -> float:
    """Express a duration in milliseconds (for reporting only)."""
    return seconds / MS


def fmt_bytes(n: float) -> str:
    """Human-readable byte count, decimal prefixes (``1.5 MB``)."""
    for unit, div in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_bandwidth(bps: float) -> str:
    """Human-readable bandwidth in the unit the paper uses (Gbps)."""
    return f"{bps * 8.0 / 1e9:.1f} Gbps"


def fmt_seconds(t: float) -> str:
    """Human-readable duration with an auto-selected unit."""
    if abs(t) >= 1.0:
        return f"{t:.3f} s"
    if abs(t) >= MS:
        return f"{t / MS:.2f} ms"
    return f"{t / US:.1f} us"
