"""Shared utilities: units, seeded RNG, ASCII tables, validation."""

from repro.util import units
from repro.util.rng import make_rng, spawn
from repro.util.tables import format_table, print_table, speedup_rows
from repro.util.validation import (
    require_divides,
    require_in_range,
    require_nonnegative,
    require_positive,
    require_type,
)

__all__ = [
    "units",
    "make_rng",
    "spawn",
    "format_table",
    "print_table",
    "speedup_rows",
    "require_divides",
    "require_in_range",
    "require_nonnegative",
    "require_positive",
    "require_type",
]
