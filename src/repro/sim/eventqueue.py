"""Discrete-event simulation core.

A deliberately small DES kernel: a priority queue of timestamped events with
stable FIFO ordering for simultaneous events, plus cancellation. The serving
simulator (:mod:`repro.serving.engine`) schedules *iteration-level* events
(one per prefill batch / decode iteration / KV transfer completion), never
per-packet events, which keeps large sweeps tractable in pure Python as the
HPC guides recommend (mesoscopic rather than microscopic simulation).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback. ``cancel()`` makes it a no-op when popped."""

    __slots__ = ("time", "fn", "args", "cancelled", "tag")

    def __init__(
        self,
        time: float,
        fn: Callable[..., None],
        args: tuple = (),
        tag: str = "",
    ) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.tag = tag

    def cancel(self) -> None:
        """Mark the event so the queue skips it when its time comes."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, tag={self.tag!r}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking.

    Events at equal timestamps fire in scheduling order, which makes runs
    bit-reproducible given a fixed seed.
    """

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        self._n_fired = 0

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.event.cancelled)

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (monitoring/profiling)."""
        return self._n_fired

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        tag: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay}")
        ev = Event(self.now + delay, fn, args, tag=tag)
        heapq.heappush(self._heap, _Entry(ev.time, next(self._counter), ev))
        return ev

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        tag: str = "",
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        ev = Event(time, fn, args, tag=tag)
        heapq.heappush(self._heap, _Entry(ev.time, next(self._counter), ev))
        return ev

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if queue is empty."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self, profiler=None) -> bool:
        """Fire the next live event. Returns ``False`` if none remain.

        ``profiler`` (a :class:`~repro.obs.selfprof.SelfProfiler`) gets
        the handler's host wall-clock time per event tag — the pop-level
        hot-path instrumentation of the simulator self-profile.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            ev = entry.event
            if ev.cancelled:
                continue
            self.now = ev.time
            self._n_fired += 1
            if profiler is None:
                ev.fn(*ev.args)
            else:
                t0 = time.perf_counter()
                ev.fn(*ev.args)
                profiler.event(
                    ev.tag or "untagged", time.perf_counter() - t0
                )
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        profiler=None,
    ) -> None:
        """Drain the queue, optionally bounded by time and/or event count.

        When ``until`` is given, events strictly after it are left in the
        queue and ``now`` is advanced to ``until``. ``profiler`` is
        forwarded to :meth:`step`.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                return
            t = self.peek_time()
            if t is None:
                if until is not None:
                    self.now = max(self.now, until)
                return
            if until is not None and t > until:
                self.now = until
                return
            self.step(profiler)
            fired += 1
