"""Discrete-event simulation kernel used by the serving simulator."""

from repro.sim.eventqueue import Event, EventQueue

__all__ = ["Event", "EventQueue"]
