"""Hybrid heterogeneous all-reduce: HeroServe's communication scheme.

The key idea of Section II-C / Fig. 2: instead of every GPU pushing its
payload over Ethernet to a (possibly distant) aggregation switch, GPUs
first reduce **inside each server over NVLink** to a per-server *leader*;
only leaders cross Ethernet (via INA at the best access switch, or a
leader ring — whichever is cheaper); leaders then broadcast the result
back over NVLink. This

* cuts Ethernet traffic by the number of co-located GPUs per server
  (offloading synchronisation bytes onto 600 GB/s NVLink), and
* shortens the Ethernet path (aggregation at the *access* switch that
  leaders attach to, not a core switch).

``hybrid_allreduce_time`` returns the three-stage makespan and the chosen
Ethernet-stage mode; ``hybrid_link_footprint`` exposes the links used so
the online scheduler can cost the policy.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.comm.context import CommContext
from repro.comm.ina import (
    ina_allreduce_time,
    ina_link_footprint,
    select_ina_switch,
)
from repro.comm.ring import (
    ring_allreduce_time,
    ring_link_footprint,
    ring_order,
)


def group_by_server(
    ctx: CommContext, gpus: Sequence[int]
) -> dict[int, list[int]]:
    """Partition group members by hosting server (insertion-ordered)."""
    topo = ctx.built.topology
    out: dict[int, list[int]] = {}
    for g in gpus:
        out.setdefault(topo.nodes[g].server, []).append(g)
    return out


def elect_leader(ctx: CommContext, members: Sequence[int], switch: int) -> int:
    """Leader = the member with the fastest path to the Ethernet stage."""
    sel = ctx.route_table.selection_bytes
    return min(members, key=lambda g: ctx.path_time(g, switch, sel))


def local_reduce_time(
    ctx: CommContext, members: Sequence[int], leader: int, data_bytes: float
) -> float:
    """Stage 1/3: NVLink gather to (or broadcast from) the leader.

    Co-located GPUs push concurrently over independent NVLink lanes
    (NVSwitch), so the stage lasts as long as the slowest single push.
    """
    others = [g for g in members if g != leader]
    if not others:
        return 0.0
    return max(ctx.path_time(g, leader, data_bytes) for g in others)


@dataclass(frozen=True)
class HybridDecision:
    """Outcome of planning one hybrid all-reduce."""

    leaders: tuple[int, ...]
    ethernet_mode: str           # "ina" | "ring" | "none"
    ina_switch: int | None
    stage1_time: float           # NVLink reduce to leaders
    stage2_time: float           # Ethernet all-reduce among leaders
    stage3_time: float           # NVLink broadcast from leaders

    @property
    def total_time(self) -> float:
        return self.stage1_time + self.stage2_time + self.stage3_time


def plan_hybrid_allreduce(
    ctx: CommContext,
    gpus: Sequence[int],
    data_bytes: float,
    ina_candidates: Sequence[int] | None = None,
) -> HybridDecision:
    """Plan the three-stage hybrid all-reduce and pick the Ethernet mode.

    The Ethernet stage among leaders carries the **full** payload (it is a
    sum of per-server partials, not a shard), aggregated by INA at the
    best switch or by a leader ring — the cheaper of the two, mirroring
    Algorithm 2's per-group ``getlatency`` mode selection.
    """
    if not gpus:
        raise ValueError("empty GPU group")
    by_server = group_by_server(ctx, gpus)
    if len(by_server) == 1:
        members = next(iter(by_server.values()))
        leader = members[0]
        # Single server: a pure-NVLink ring; no Ethernet stage at all.
        t_local = ring_allreduce_time(ctx, members, data_bytes)
        return HybridDecision(
            leaders=(leader,),
            ethernet_mode="none",
            ina_switch=None,
            stage1_time=t_local,
            stage2_time=0.0,
            stage3_time=0.0,
        )

    # Choose the INA switch against provisional leaders (first member per
    # server), then elect real leaders against that switch.
    provisional = [members[0] for members in by_server.values()]
    switch = select_ina_switch(ctx, provisional, ina_candidates)
    leaders = tuple(
        elect_leader(ctx, members, switch) for members in by_server.values()
    )

    stage1 = max(
        local_reduce_time(ctx, members, leader, data_bytes)
        for members, leader in zip(by_server.values(), leaders)
    )
    t_ina = ina_allreduce_time(ctx, leaders, switch, data_bytes)
    t_ring = ring_allreduce_time(ctx, leaders, data_bytes)
    if t_ina <= t_ring:
        mode, stage2 = "ina", t_ina
    else:
        mode, stage2 = "ring", t_ring
    stage3 = max(
        local_reduce_time(ctx, members, leader, data_bytes)
        for members, leader in zip(by_server.values(), leaders)
    )
    return HybridDecision(
        leaders=leaders,
        ethernet_mode=mode,
        ina_switch=switch if mode == "ina" else None,
        stage1_time=stage1,
        stage2_time=stage2,
        stage3_time=stage3,
    )


def hybrid_allreduce_time(
    ctx: CommContext,
    gpus: Sequence[int],
    data_bytes: float,
    ina_candidates: Sequence[int] | None = None,
) -> float:
    """Total makespan of the hybrid all-reduce (plan + sum of stages)."""
    return plan_hybrid_allreduce(
        ctx, gpus, data_bytes, ina_candidates
    ).total_time


def hybrid_forced_time(
    ctx: CommContext,
    gpus: Sequence[int],
    data_bytes: float,
    ethernet_mode: str,
    switch: int | None = None,
) -> float:
    """Hybrid all-reduce with the Ethernet stage *fixed* (no re-selection).

    Used by static executions that committed to a plan-time policy:
    ``ethernet_mode`` is ``"ina"`` (aggregate leaders at ``switch``),
    ``"ring"`` (leader ring) or ``"none"`` (single server, pure NVLink).
    """
    from repro.comm.ina import ina_allreduce_time, select_ina_switch
    from repro.comm.ring import ring_allreduce_time

    gpus = list(gpus)
    if len(gpus) <= 1 or data_bytes <= 0:
        return 0.0
    by_server = group_by_server(ctx, gpus)
    if ethernet_mode == "none" or len(by_server) == 1:
        return ring_allreduce_time(ctx, gpus, data_bytes)
    if switch is None:
        provisional = [m[0] for m in by_server.values()]
        switch = select_ina_switch(ctx, provisional)
    leaders = [
        elect_leader(ctx, members, switch)
        for members in by_server.values()
    ]
    stage_local = max(
        local_reduce_time(ctx, members, leader, data_bytes)
        for members, leader in zip(by_server.values(), leaders)
    )
    if ethernet_mode == "ina":
        stage2 = ina_allreduce_time(ctx, leaders, switch, data_bytes)
    elif ethernet_mode == "ring":
        stage2 = ring_allreduce_time(ctx, leaders, data_bytes)
    else:
        raise ValueError(f"unknown ethernet_mode {ethernet_mode!r}")
    return 2.0 * stage_local + stage2


def hybrid_link_footprint(
    ctx: CommContext,
    gpus: Sequence[int],
    decision: HybridDecision,
) -> list[int]:
    """Directed links the planned hybrid collective traverses."""
    links: list[int] = []
    by_server = group_by_server(ctx, gpus)
    for members, leader in zip(by_server.values(), decision.leaders):
        for g in members:
            if g != leader:
                links.extend(ctx.path_links(g, leader))
                links.extend(ctx.path_links(leader, g))
    if decision.ethernet_mode == "ina" and decision.ina_switch is not None:
        links.extend(
            ina_link_footprint(ctx, list(decision.leaders), decision.ina_switch)
        )
    elif decision.ethernet_mode == "ring":
        links.extend(
            ring_link_footprint(
                ctx,
                list(decision.leaders),
                order=ring_order(ctx, decision.leaders),
            )
        )
    return links
