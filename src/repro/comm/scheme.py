"""The CollectiveScheme protocol and registry: one dispatch point for
every communication-scheduling scheme.

Eq. 7 selects, per tensor-parallel group, INA (``alpha``) or ring
(``beta``); a *scheme* bundles everything a serving system needs to know
about that choice — how to estimate a group step (Algorithm 2's
``getlatency``), how to price a committed policy at live link state, which
policy-table rows the online scheduler should enumerate, how many INA
switch candidates those rows consume, and what a group degrades to when
its aggregation switch dies.

Every layer dispatches through :func:`get_scheme` instead of
``SchemeKind`` ladders: ``latency.estimate_group_step`` /
``price_group_step``, the planner's candidate enumeration and estimation
cache keys, the online scheduler's policy cost tables, the engine's
static pricing, the controller's failover direction, and the CLI. Adding
a collective is one file registering one subclass (see
``docs/COLLECTIVES.md``); ``repro/comm/twostage.py`` and
``repro/comm/tree.py`` are the reference examples.

The four classic schemes — the paper's three baselines plus HeroServe —
are ported here verbatim from the pre-registry branch ladders, so their
estimates and plans are byte-identical (pinned by
``tests/data/golden_scheme_parity.json``):

* ``RING``       — ring all-reduce only (DistServe),
* ``INA_SYNC``   — SwitchML: synchronous INA, slot-window throughput cap,
* ``INA_ASYNC``  — ATP: asynchronous INA, end-host fallback under slot
  contention,
* ``HYBRID``     — HeroServe: NVLink first-stage reduction, then the
  cheaper of INA/ring among per-server leaders.

Every scheme still applies Eq. 7's argmin against the plain ring, because
all baselines fall back to NCCL when INA would be slower.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.comm.context import CommContext
from repro.comm.hybrid import (
    elect_leader,
    group_by_server,
    hybrid_forced_time,
    hybrid_link_footprint,
    local_reduce_time,
    plan_hybrid_allreduce,
)
from repro.comm.ina import (
    ina_allreduce_time,
    ina_link_footprint,
    select_ina_switch,
)
from repro.comm.ring import (
    ring_allreduce_time,
    ring_link_footprint,
    ring_order,
)
from repro.switch.protocols import ATP_FALLBACK_PENALTY, DEFAULT_RTT

#: Per-job aggregator-slot share. The Tofino pool (512 slots in our
#: dataplane model) is divided among tenant jobs by the control plane's
#: SlotAllocator; a serving deployment shares each switch with the other
#: phase's groups and background tenants, so a job's working share is a
#: quarter-pool. ATP's asynchronous streaming needs ~bw*RTT/payload slots
#: in flight to saturate a 100G link (~98 at 1 KiB payloads); contention
#: eating into the share is what triggers its end-host fallback.
DEFAULT_N_SLOTS = 128
DEFAULT_SLOT_PAYLOAD = 1024  # bytes

#: ATP goodput efficiency relative to SwitchML: ATP's best-effort packet
#: format carries per-packet job/sequence metadata and reserves header
#: room for the fallback path, so its payload fraction per MTU is lower
#: (Lao et al. report ~10% framing overhead vs SwitchML's packed slots).
ATP_WIRE_EFFICIENCY = 0.9


class SchemeKind(enum.Enum):
    """Communication scheduling scheme of a serving system."""

    RING = "ring"
    INA_SYNC = "ina_sync"
    INA_ASYNC = "ina_async"
    HYBRID = "hybrid"
    RING_2STAGE = "ring-2stage"
    TREE = "tree"


@dataclass(frozen=True)
class GroupCommEstimate:
    """Chosen mode and per-step latency for one TP group (Eq. 7 output)."""

    scheme: SchemeKind
    #: Eq. 7 selector: "ina" (alpha=1) or "ring" (beta=1); hybrid reports
    #: its Ethernet-stage mode, other schemes their own mode string.
    mode: str
    ina_switch: int | None
    step_time: float
    #: directed links the chosen policy occupies (for load registration)
    links: tuple[int, ...]


def _window_cap_time(
    data_bytes: float, n_slots: int, slot_payload: int
) -> float:
    """Minimum time the SwitchML window allows for ``data_bytes``."""
    goodput = n_slots * slot_payload / DEFAULT_RTT
    return data_bytes / goodput


def _atp_cost_factor(
    bottleneck_bw: float,
    n_slots: int,
    slot_payload: int,
    contention: float,
) -> float:
    """Mean per-chunk cost multiplier from ATP's end-host fallback."""
    demand = bottleneck_bw * DEFAULT_RTT / slot_payload
    available = max(1.0, (1.0 - contention) * n_slots)
    in_switch = min(1.0, available / max(demand, 1e-9))
    return in_switch + (1.0 - in_switch) * ATP_FALLBACK_PENALTY


def rank_switches(
    ctx: CommContext, gpus: Sequence[int], k: int
) -> list[int]:
    """The ``k`` INA-capable switches nearest to the group."""
    sel = ctx.route_table.selection_bytes
    cands = ctx.built.ina_capable_switches()

    def score(sw: int) -> float:
        return max(
            ctx.path_time(g, sw, sel) + ctx.path_time(sw, g, sel)
            for g in gpus
        )

    # Tie-break equal scores on the switch id so candidate order (and
    # therefore policy enumeration) is deterministic across runs.
    return sorted(cands, key=lambda sw: (score(sw), sw))[: max(1, k)]


@dataclass(frozen=True)
class PolicySpec:
    """One row of a group's policy cost table, scheme-agnostically.

    The online scheduler turns these into
    :class:`~repro.core.policy.Policy` objects (adding the policy id and
    bottleneck capacity); the spec itself carries only what the scheme
    knows: the canonical name, mode string, optional aggregation switch
    and the directed links the route occupies.
    """

    name: str
    mode: str
    switch: int | None
    links: tuple[int, ...]


class SchemeBinding:
    """Per-group view of a scheme: policy enumeration and live pricing.

    A binding owns whatever per-group state a scheme needs across
    repeated ``decide`` calls (e.g. the hybrid scheme's per-switch leader
    caches), so the online scheduler itself stays scheme-agnostic.
    """

    def __init__(
        self,
        scheme: "CollectiveScheme",
        ctx: CommContext,
        gpus: Sequence[int],
    ) -> None:
        self.scheme = scheme
        self.ctx = ctx
        self.gpus = list(gpus)

    # -- policy enumeration -------------------------------------------------

    def _ring_spec(self) -> PolicySpec:
        return PolicySpec(
            self.scheme.policy_key("ring"),
            "ring",
            None,
            tuple(ring_link_footprint(self.ctx, self.gpus)),
        )

    def policy_specs(self, n_switch_candidates: int) -> list[PolicySpec]:
        """The group's candidate policy-table rows, fallback last."""
        if len(self.gpus) == 1:
            # Degenerate single-GPU group: nothing to synchronise. Every
            # scheme exposes the same zero-cost "ring" policy (via
            # policy_key, so the naming stays uniform) instead of
            # enumerating switches it will never use.
            return [self._ring_spec()]
        k = self.scheme.switch_demand(n_switch_candidates)
        switches = (
            rank_switches(self.ctx, self.gpus, k) if k > 0 else []
        )
        return self._specs(switches)

    def _specs(self, switches: list[int]) -> list[PolicySpec]:
        return [self._ring_spec()]

    # -- live pricing -------------------------------------------------------

    def policy_time(
        self, mode: str, switch: int | None, data_bytes: float
    ) -> float:
        """Live latency of executing one policy row for ``data_bytes``."""
        if mode == "ring":
            return ring_allreduce_time(self.ctx, self.gpus, data_bytes)
        return self._time(mode, switch, data_bytes)

    def _time(
        self, mode: str, switch: int | None, data_bytes: float
    ) -> float:
        raise ValueError(
            f"scheme {self.scheme.name!r}: unknown policy mode {mode!r}"
        )


class CollectiveScheme(ABC):
    """One collective-communication scheme, pluggable at every layer.

    Subclasses set ``kind`` (their :class:`SchemeKind` tag),
    ``heterogeneous`` (the network view their routes assume) and
    optionally ``binding_class``, then implement ``_estimate`` (Eq. 7
    group-step selection) and ``_forced`` (pricing a committed policy).
    Register one instance with :func:`register_scheme` and every layer —
    planner, estimation cache, policy tables, engine, failover, CLI,
    baselines — picks it up with zero special-casing.
    """

    kind: SchemeKind
    #: network view: True when the scheme stages traffic over NVLink, so
    #: its contexts should route through intra-server links.
    heterogeneous: bool = False
    binding_class: type[SchemeBinding] = SchemeBinding

    @property
    def name(self) -> str:
        """Canonical registry key (the :class:`SchemeKind` value)."""
        return self.kind.value

    # -- protocol ----------------------------------------------------------

    def policy_key(
        self, mode: str = "ring", switch: int | None = None
    ) -> str:
        """Canonical policy-table name of a ``(mode, switch)`` route."""
        return mode if switch is None else f"{mode}@{switch}"

    def switch_demand(self, n_candidates: int) -> int:
        """INA switch candidates the policy table consumes (0 = none)."""
        return 0

    def failover_target(self) -> str:
        """Mode a group degrades to when its aggregation switch dies."""
        return "ring"

    def bind(
        self, ctx: CommContext, gpus: Sequence[int]
    ) -> SchemeBinding:
        """A per-group binding for policy enumeration and live pricing."""
        return self.binding_class(self, ctx, gpus)

    # -- Eq. 7 estimation --------------------------------------------------

    def estimate_time(
        self,
        ctx: CommContext,
        gpus: Sequence[int],
        data_bytes: float,
        n_slots: int = DEFAULT_N_SLOTS,
        slot_payload: int = DEFAULT_SLOT_PAYLOAD,
        contention: float = 0.0,
    ) -> GroupCommEstimate:
        """One synchronisation step's latency under this scheme.

        This is Algorithm 2's ``getlatency``: compute the scheme's
        flavoured latency and the plain ring latency, return the cheaper
        with its selector. Single-GPU groups short-circuit to a zero-cost
        ring estimate for every scheme.
        """
        gpus = list(gpus)
        if not gpus:
            raise ValueError("empty GPU group")
        t_ring = ring_allreduce_time(ctx, gpus, data_bytes)
        ring_links = tuple(ring_link_footprint(ctx, gpus))
        if len(gpus) == 1:
            return GroupCommEstimate(
                self.kind, "ring", None, t_ring, ring_links
            )
        return self._estimate(
            ctx,
            gpus,
            data_bytes,
            t_ring,
            ring_links,
            n_slots,
            slot_payload,
            contention,
        )

    @abstractmethod
    def _estimate(
        self,
        ctx: CommContext,
        gpus: list[int],
        data_bytes: float,
        t_ring: float,
        ring_links: tuple[int, ...],
        n_slots: int,
        slot_payload: int,
        contention: float,
    ) -> GroupCommEstimate:
        """Eq. 7 body for a non-degenerate group (``len(gpus) > 1``)."""

    # -- committed-policy pricing ------------------------------------------

    def forced_time(
        self,
        ctx: CommContext,
        gpus: Sequence[int],
        mode: str,
        switch: int | None,
        data_bytes: float,
        n_slots: int = DEFAULT_N_SLOTS,
        slot_payload: int = DEFAULT_SLOT_PAYLOAD,
        contention: float = 0.0,
    ) -> float:
        """Latency of executing a *fixed* policy at current link state.

        Static systems commit to the plan's mode/switch and do not
        re-select per iteration; only the physics (live bandwidths along
        the committed route) varies.
        """
        gpus = list(gpus)
        if len(gpus) <= 1 or data_bytes <= 0:
            return 0.0
        return self._forced(
            ctx,
            gpus,
            mode,
            switch,
            data_bytes,
            n_slots,
            slot_payload,
            contention,
        )

    @abstractmethod
    def _forced(
        self,
        ctx: CommContext,
        gpus: list[int],
        mode: str,
        switch: int | None,
        data_bytes: float,
        n_slots: int,
        slot_payload: int,
        contention: float,
    ) -> float:
        """Fixed-policy pricing for a non-degenerate group."""

    # -- link accounting ---------------------------------------------------

    def link_footprint(
        self,
        ctx: CommContext,
        gpus: Sequence[int],
        mode: str = "ring",
        switch: int | None = None,
    ) -> tuple[int, ...]:
        """Directed links a fixed policy occupies (load registration)."""
        return tuple(ring_link_footprint(ctx, list(gpus)))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, CollectiveScheme] = {}


def register_scheme(scheme: CollectiveScheme) -> CollectiveScheme:
    """Register a scheme under its canonical name; returns it."""
    key = scheme.name
    if key in _REGISTRY:
        raise ValueError(f"scheme {key!r} is already registered")
    _REGISTRY[key] = scheme
    return scheme


def get_scheme(key: "SchemeKind | str | CollectiveScheme") -> CollectiveScheme:
    """Resolve a scheme by kind, canonical name, or identity."""
    if isinstance(key, CollectiveScheme):
        return key
    name = key.value if isinstance(key, SchemeKind) else str(key)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown collective scheme {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def registered_schemes() -> tuple[CollectiveScheme, ...]:
    """Every registered scheme, in registration order."""
    return tuple(_REGISTRY.values())


# ---------------------------------------------------------------------------
# the four classic schemes (ported verbatim from the branch ladders)
# ---------------------------------------------------------------------------


class RingScheme(CollectiveScheme):
    """Plain Ethernet ring all-reduce (DistServe / NCCL)."""

    kind = SchemeKind.RING

    def _estimate(
        self, ctx, gpus, data_bytes, t_ring, ring_links,
        n_slots, slot_payload, contention,
    ):
        return GroupCommEstimate(
            self.kind, "ring", None, t_ring, ring_links
        )

    def _forced(
        self, ctx, gpus, mode, switch, data_bytes,
        n_slots, slot_payload, contention,
    ):
        if mode in ("ring", "none"):
            return ring_allreduce_time(ctx, gpus, data_bytes)
        raise ValueError(f"ring scheme cannot price mode {mode!r}")


class _InaBinding(SchemeBinding):
    def _specs(self, switches):
        specs = [
            PolicySpec(
                self.scheme.policy_key("ina", sw),
                "ina",
                sw,
                self.scheme.link_footprint(self.ctx, self.gpus, "ina", sw),
            )
            for sw in switches
        ]
        specs.append(self._ring_spec())
        return specs

    def _time(self, mode, switch, data_bytes):
        if mode == "ina":
            # Live pricing uses the plain Eq. 8 time: the window cap and
            # ATP fallback are *offline* throughput models; the online
            # table reads congestion from the live link bandwidths.
            assert switch is not None
            return ina_allreduce_time(
                self.ctx, self.gpus, switch, data_bytes
            )
        return super()._time(mode, switch, data_bytes)


class _InaSchemeBase(CollectiveScheme):
    """Shared Eq. 7 body of the homogeneous-network INA flavours."""

    binding_class = _InaBinding

    def switch_demand(self, n_candidates: int) -> int:
        return n_candidates

    def _adjust(
        self, ctx, gpus, switch, data_bytes, t_ina,
        n_slots, slot_payload, contention,
    ) -> float:
        """Protocol-specific correction of the raw Eq. 8 time."""
        return t_ina

    def _estimate(
        self, ctx, gpus, data_bytes, t_ring, ring_links,
        n_slots, slot_payload, contention,
    ):
        # Homogeneous-network INA: all members push over Ethernet.
        switch = select_ina_switch(ctx, gpus)
        t_ina = ina_allreduce_time(ctx, gpus, switch, data_bytes)
        t_ina = self._adjust(
            ctx, gpus, switch, data_bytes, t_ina,
            n_slots, slot_payload, contention,
        )
        if t_ina <= t_ring:
            links = tuple(ina_link_footprint(ctx, gpus, switch))
            return GroupCommEstimate(self.kind, "ina", switch, t_ina, links)
        return GroupCommEstimate(self.kind, "ring", None, t_ring, ring_links)

    def _forced(
        self, ctx, gpus, mode, switch, data_bytes,
        n_slots, slot_payload, contention,
    ):
        if mode in ("ring", "none"):
            return ring_allreduce_time(ctx, gpus, data_bytes)
        if switch is None:
            raise ValueError("ina mode requires a switch")
        t_ina = ina_allreduce_time(ctx, gpus, switch, data_bytes)
        return self._adjust(
            ctx, gpus, switch, data_bytes, t_ina,
            n_slots, slot_payload, contention,
        )

    def link_footprint(self, ctx, gpus, mode="ring", switch=None):
        if mode == "ina" and switch is not None:
            return tuple(ina_link_footprint(ctx, list(gpus), switch))
        return tuple(ring_link_footprint(ctx, list(gpus)))


class InaSyncScheme(_InaSchemeBase):
    """SwitchML: synchronous INA with the slot-window throughput cap."""

    kind = SchemeKind.INA_SYNC

    def _adjust(
        self, ctx, gpus, switch, data_bytes, t_ina,
        n_slots, slot_payload, contention,
    ):
        return max(
            t_ina, _window_cap_time(data_bytes, n_slots, slot_payload)
        )


class InaAsyncScheme(_InaSchemeBase):
    """ATP: asynchronous INA with end-host fallback under contention."""

    kind = SchemeKind.INA_ASYNC

    def _adjust(
        self, ctx, gpus, switch, data_bytes, t_ina,
        n_slots, slot_payload, contention,
    ):
        bw = min(ctx.path_bottleneck(g, switch) for g in gpus)
        t_ina *= _atp_cost_factor(bw, n_slots, slot_payload, contention)
        t_ina /= ATP_WIRE_EFFICIENCY
        return t_ina


class _HybridBinding(SchemeBinding):
    """Hybrid per-group state: per-switch leader election caches."""

    def __init__(self, scheme, ctx, gpus):
        super().__init__(scheme, ctx, gpus)
        self._leaders_by_switch: dict[int, list[int]] = {}

    def leaders(self, switch: int) -> list[int]:
        cached = self._leaders_by_switch.get(switch)
        if cached is None:
            by_server = group_by_server(self.ctx, self.gpus)
            cached = [
                elect_leader(self.ctx, members, switch)
                for members in by_server.values()
            ]
            self._leaders_by_switch[switch] = cached
        return cached

    def _specs(self, switches):
        ctx, gpus = self.ctx, self.gpus
        specs: list[PolicySpec] = []
        multi_server = len(group_by_server(ctx, gpus)) > 1
        if multi_server:
            for sw in switches:
                leaders = self.leaders(sw)
                links = list(ina_link_footprint(ctx, leaders, sw))
                for members, leader in zip(
                    group_by_server(ctx, gpus).values(), leaders
                ):
                    for g in members:
                        if g != leader:
                            links.extend(ctx.path_links(g, leader))
                            links.extend(ctx.path_links(leader, g))
                specs.append(
                    PolicySpec(
                        self.scheme.policy_key("hybrid-ina", sw),
                        "hybrid-ina",
                        sw,
                        tuple(links),
                    )
                )
            leaders = self.leaders(switches[0])
            specs.append(
                PolicySpec(
                    self.scheme.policy_key("hybrid-ring"),
                    "hybrid-ring",
                    None,
                    tuple(ring_link_footprint(ctx, leaders)),
                )
            )
        else:
            # One server: the NVLink ring is unbeatable and uses no
            # fabric links; still expose the Ethernet ring fallback.
            specs.append(
                PolicySpec(
                    self.scheme.policy_key("nvlink"), "nvlink", None, ()
                )
            )
        specs.append(self._ring_spec())
        return specs

    def _time(self, mode, switch, data_bytes):
        ctx, gpus = self.ctx, self.gpus
        if mode == "nvlink":
            return ring_allreduce_time(
                ctx, gpus, data_bytes, order=ring_order(ctx, gpus)
            )
        # hybrid flavours: NVLink stage + Ethernet stage among leaders.
        by_server = group_by_server(ctx, gpus)
        if mode == "hybrid-ina":
            assert switch is not None
            leaders = self.leaders(switch)
        elif mode == "hybrid-ring":
            leaders = self.leaders(rank_switches(ctx, gpus, 1)[0])
        else:
            return super()._time(mode, switch, data_bytes)
        stage1 = max(
            local_reduce_time(ctx, members, leader, data_bytes)
            for members, leader in zip(by_server.values(), leaders)
        )
        if mode == "hybrid-ina":
            stage2 = ina_allreduce_time(ctx, leaders, switch, data_bytes)
        else:
            stage2 = ring_allreduce_time(ctx, leaders, data_bytes)
        return 2.0 * stage1 + stage2


class HybridScheme(CollectiveScheme):
    """HeroServe's NVLink-first hybrid all-reduce."""

    kind = SchemeKind.HYBRID
    heterogeneous = True
    binding_class = _HybridBinding

    def switch_demand(self, n_candidates: int) -> int:
        return n_candidates

    def _estimate(
        self, ctx, gpus, data_bytes, t_ring, ring_links,
        n_slots, slot_payload, contention,
    ):
        decision = plan_hybrid_allreduce(ctx, gpus, data_bytes)
        t_hybrid = decision.total_time
        if t_hybrid <= t_ring:
            links = tuple(hybrid_link_footprint(ctx, gpus, decision))
            return GroupCommEstimate(
                self.kind,
                decision.ethernet_mode,
                decision.ina_switch,
                t_hybrid,
                links,
            )
        return GroupCommEstimate(self.kind, "ring", None, t_ring, ring_links)

    def _forced(
        self, ctx, gpus, mode, switch, data_bytes,
        n_slots, slot_payload, contention,
    ):
        return hybrid_forced_time(
            ctx, gpus, data_bytes, ethernet_mode=mode, switch=switch
        )

    def link_footprint(self, ctx, gpus, mode="ring", switch=None):
        gpus = list(gpus)
        by_server = group_by_server(ctx, gpus)
        if mode in ("ring", "none") and switch is None or len(by_server) == 1:
            return tuple(ring_link_footprint(ctx, gpus))
        if switch is None:
            provisional = [m[0] for m in by_server.values()]
            switch = select_ina_switch(ctx, provisional)
        leaders = [
            elect_leader(ctx, members, switch)
            for members in by_server.values()
        ]
        links: list[int] = []
        for members, leader in zip(by_server.values(), leaders):
            for g in members:
                if g != leader:
                    links.extend(ctx.path_links(g, leader))
                    links.extend(ctx.path_links(leader, g))
        if mode == "ina":
            links.extend(ina_link_footprint(ctx, leaders, switch))
        else:
            links.extend(
                ring_link_footprint(
                    ctx, leaders, order=ring_order(ctx, leaders)
                )
            )
        return tuple(links)


RING_SCHEME = register_scheme(RingScheme())
INA_SYNC_SCHEME = register_scheme(InaSyncScheme())
INA_ASYNC_SCHEME = register_scheme(InaAsyncScheme())
HYBRID_SCHEME = register_scheme(HybridScheme())

__all__ = [
    "ATP_WIRE_EFFICIENCY",
    "DEFAULT_N_SLOTS",
    "DEFAULT_SLOT_PAYLOAD",
    "CollectiveScheme",
    "GroupCommEstimate",
    "PolicySpec",
    "SchemeBinding",
    "SchemeKind",
    "get_scheme",
    "rank_switches",
    "register_scheme",
    "registered_schemes",
    "RING_SCHEME",
    "INA_SYNC_SCHEME",
    "INA_ASYNC_SCHEME",
    "HYBRID_SCHEME",
]
