"""Assembled synchronisation latency (paper Eqs. 5, 7) per scheme.

Eq. 7 selects, per tensor-parallel group, INA (``alpha``) or ring
(``beta``); Eq. 5 sums the per-step latencies ``T_m(s)`` plus the pipeline
boundary cost ``T_pp``. Each transformer layer contributes two
synchronisation steps (attention output and FFN, §III-C2), each carrying
``K_in * h`` activation elements in prefill and ``q * h`` in decode.

Four schemes are exposed — the paper's three baselines plus HeroServe:

* ``RING``       — ring all-reduce only (DistServe),
* ``INA_SYNC``   — SwitchML: synchronous INA, slot-window throughput cap,
* ``INA_ASYNC``  — ATP: asynchronous INA, end-host fallback under slot
  contention,
* ``HYBRID``     — HeroServe: NVLink first-stage reduction, then the
  cheaper of INA/ring among per-server leaders.

Every scheme still applies Eq. 7's argmin against the plain ring, because
all baselines fall back to NCCL when INA would be slower.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.comm.context import CommContext
from repro.comm.hybrid import (
    hybrid_forced_time,
    hybrid_link_footprint,
    plan_hybrid_allreduce,
)
from repro.comm.ina import (
    ina_allreduce_time,
    ina_link_footprint,
    select_ina_switch,
)
from repro.comm.pipeline import pipeline_sync_time
from repro.comm.ring import ring_allreduce_time, ring_link_footprint
from repro.llm.models import ModelConfig
from repro.switch.protocols import ATP_FALLBACK_PENALTY, DEFAULT_RTT

#: Per-job aggregator-slot share. The Tofino pool (512 slots in our
#: dataplane model) is divided among tenant jobs by the control plane's
#: SlotAllocator; a serving deployment shares each switch with the other
#: phase's groups and background tenants, so a job's working share is a
#: quarter-pool. ATP's asynchronous streaming needs ~bw*RTT/payload slots
#: in flight to saturate a 100G link (~98 at 1 KiB payloads); contention
#: eating into the share is what triggers its end-host fallback.
DEFAULT_N_SLOTS = 128
DEFAULT_SLOT_PAYLOAD = 1024  # bytes

#: ATP goodput efficiency relative to SwitchML: ATP's best-effort packet
#: format carries per-packet job/sequence metadata and reserves header
#: room for the fallback path, so its payload fraction per MTU is lower
#: (Lao et al. report ~10% framing overhead vs SwitchML's packed slots).
ATP_WIRE_EFFICIENCY = 0.9


class SchemeKind(enum.Enum):
    """Communication scheduling scheme of a serving system."""

    RING = "ring"
    INA_SYNC = "ina_sync"
    INA_ASYNC = "ina_async"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class GroupCommEstimate:
    """Chosen mode and per-step latency for one TP group (Eq. 7 output)."""

    scheme: SchemeKind
    #: Eq. 7 selector: "ina" (alpha=1) or "ring" (beta=1); hybrid reports
    #: its Ethernet-stage mode.
    mode: str
    ina_switch: int | None
    step_time: float
    #: directed links the chosen policy occupies (for load registration)
    links: tuple[int, ...]


def _window_cap_time(
    data_bytes: float, n_slots: int, slot_payload: int
) -> float:
    """Minimum time the SwitchML window allows for ``data_bytes``."""
    goodput = n_slots * slot_payload / DEFAULT_RTT
    return data_bytes / goodput


def _atp_cost_factor(
    bottleneck_bw: float,
    n_slots: int,
    slot_payload: int,
    contention: float,
) -> float:
    """Mean per-chunk cost multiplier from ATP's end-host fallback."""
    demand = bottleneck_bw * DEFAULT_RTT / slot_payload
    available = max(1.0, (1.0 - contention) * n_slots)
    in_switch = min(1.0, available / max(demand, 1e-9))
    return in_switch + (1.0 - in_switch) * ATP_FALLBACK_PENALTY


def estimate_group_step(
    ctx: CommContext,
    gpus: Sequence[int],
    data_bytes: float,
    scheme: SchemeKind,
    n_slots: int = DEFAULT_N_SLOTS,
    slot_payload: int = DEFAULT_SLOT_PAYLOAD,
    contention: float = 0.0,
) -> GroupCommEstimate:
    """One synchronisation step's latency for a TP group under a scheme.

    This is Algorithm 2's ``getlatency``: compute the scheme's INA-flavoured
    latency and the ring latency, return the cheaper with its selector.
    """
    gpus = list(gpus)
    if not gpus:
        raise ValueError("empty GPU group")
    t_ring = ring_allreduce_time(ctx, gpus, data_bytes)
    ring_links = tuple(ring_link_footprint(ctx, gpus))

    if scheme == SchemeKind.RING or len(gpus) == 1:
        return GroupCommEstimate(
            scheme, "ring", None, t_ring, ring_links
        )

    if scheme == SchemeKind.HYBRID:
        decision = plan_hybrid_allreduce(ctx, gpus, data_bytes)
        t_hybrid = decision.total_time
        if t_hybrid <= t_ring:
            links = tuple(hybrid_link_footprint(ctx, gpus, decision))
            return GroupCommEstimate(
                scheme,
                decision.ethernet_mode,
                decision.ina_switch,
                t_hybrid,
                links,
            )
        return GroupCommEstimate(scheme, "ring", None, t_ring, ring_links)

    # Homogeneous-network INA: all members push over Ethernet.
    switch = select_ina_switch(ctx, gpus)
    t_ina = ina_allreduce_time(ctx, gpus, switch, data_bytes)
    if scheme == SchemeKind.INA_SYNC:
        t_ina = max(t_ina, _window_cap_time(data_bytes, n_slots, slot_payload))
    elif scheme == SchemeKind.INA_ASYNC:
        bw = min(ctx.path_bottleneck(g, switch) for g in gpus)
        t_ina *= _atp_cost_factor(bw, n_slots, slot_payload, contention)
        t_ina /= ATP_WIRE_EFFICIENCY
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unhandled scheme {scheme}")

    if t_ina <= t_ring:
        links = tuple(ina_link_footprint(ctx, gpus, switch))
        return GroupCommEstimate(scheme, "ina", switch, t_ina, links)
    return GroupCommEstimate(scheme, "ring", None, t_ring, ring_links)


def price_group_step(
    ctx: CommContext,
    gpus: Sequence[int],
    scheme: SchemeKind,
    mode: str,
    ina_switch: int | None,
    data_bytes: float,
    n_slots: int = DEFAULT_N_SLOTS,
    slot_payload: int = DEFAULT_SLOT_PAYLOAD,
    contention: float = 0.0,
) -> float:
    """Latency of executing a *fixed* policy at current link state.

    Static systems (the baselines, or HeroServe with the online
    scheduler ablated) commit to the offline plan's mode/switch and do
    not re-select per iteration; only the physics (live bandwidths along
    the committed route) varies. ``mode``/``ina_switch`` come from the
    plan's :class:`GroupCommEstimate`.
    """
    gpus = list(gpus)
    if len(gpus) <= 1 or data_bytes <= 0:
        return 0.0
    if scheme == SchemeKind.HYBRID:
        return hybrid_forced_time(
            ctx, gpus, data_bytes, ethernet_mode=mode, switch=ina_switch
        )
    if mode in ("ring", "none"):
        return ring_allreduce_time(ctx, gpus, data_bytes)
    # mode == "ina" on a homogeneous scheme
    if ina_switch is None:
        raise ValueError("ina mode requires a switch")
    t_ina = ina_allreduce_time(ctx, gpus, ina_switch, data_bytes)
    if scheme == SchemeKind.INA_SYNC:
        return max(t_ina, _window_cap_time(data_bytes, n_slots, slot_payload))
    if scheme == SchemeKind.INA_ASYNC:
        bw = min(ctx.path_bottleneck(g, ina_switch) for g in gpus)
        t_ina *= _atp_cost_factor(bw, n_slots, slot_payload, contention)
        return t_ina / ATP_WIRE_EFFICIENCY
    return t_ina


def sync_steps_per_pass(model: ModelConfig, p_pipe: int) -> int:
    """Synchronisation steps one pipeline stage performs per pass.

    Two all-reduces per layer (attention output + FFN), layers split
    evenly over ``p_pipe`` stages.
    """
    if p_pipe < 1:
        raise ValueError(f"p_pipe must be >= 1, got {p_pipe}")
    layers_per_stage = max(1, round(model.n_layers / p_pipe))
    return 2 * layers_per_stage


def allreduce_bytes(model: ModelConfig, tokens: int) -> int:
    """Payload per synchronisation step for ``tokens`` in flight.

    ``D_col(a) = D_col(f) = K_in * h`` (§III-C2), at model precision.
    Prefill passes ``tokens = K_in``; decode passes ``tokens = Q``.
    """
    return tokens * model.hidden_size * model.dtype_bytes


@dataclass(frozen=True)
class PhaseCommEstimate:
    """Full-pass communication latency of one phase (Eq. 5 output)."""

    total_time: float        # T_n for the pass
    per_stage: tuple[GroupCommEstimate, ...]
    pipeline_time: float     # T_pp


def estimate_phase_comm(
    ctx: CommContext,
    stages: Sequence[Sequence[int]],
    model: ModelConfig,
    tokens: int,
    scheme: SchemeKind,
    activation_bytes: int | None = None,
    n_slots: int = DEFAULT_N_SLOTS,
    slot_payload: int = DEFAULT_SLOT_PAYLOAD,
    contention: float = 0.0,
    cache=None,
) -> PhaseCommEstimate:
    """Eq. 5: ``T_n = T_pp + sum_s T_m(s)`` over a full model pass.

    ``stages`` are the pipeline groups (each a TP group of GPU ids);
    ``tokens`` drives both the all-reduce payload and the pipeline
    activation volume (``K_in`` for a prefill pass, ``Q`` for one decode
    iteration). ``cache`` (a :class:`repro.core.estcache.EstimationCache`
    built over ``ctx``) memoizes the per-group step estimates; the
    perturbation loop has usually priced every stage already, so the
    final assembly is all hits.
    """
    if not stages:
        raise ValueError("need at least one pipeline stage")
    p_pipe = len(stages)
    data = allreduce_bytes(model, tokens)
    steps = sync_steps_per_pass(model, p_pipe)
    if cache is not None:
        per_stage = tuple(
            cache.group_step(
                grp,
                data,
                scheme,
                n_slots=n_slots,
                slot_payload=slot_payload,
                contention=contention,
            )
            for grp in stages
        )
        pp_ctx = cache.ctx
    else:
        per_stage = tuple(
            estimate_group_step(
                ctx,
                grp,
                data,
                scheme,
                n_slots=n_slots,
                slot_payload=slot_payload,
                contention=contention,
            )
            for grp in stages
        )
        pp_ctx = ctx
    sync_total = steps * sum(e.step_time for e in per_stage)
    act_bytes = (
        data if activation_bytes is None else activation_bytes
    )
    t_pp = (
        pipeline_sync_time(pp_ctx, stages, act_bytes) if p_pipe > 1 else 0.0
    )
    return PhaseCommEstimate(
        total_time=sync_total + t_pp,
        per_stage=per_stage,
        pipeline_time=t_pp,
    )
