"""Assembled synchronisation latency (paper Eqs. 5, 7) per scheme.

Eq. 7 selects, per tensor-parallel group, INA (``alpha``) or ring
(``beta``); Eq. 5 sums the per-step latencies ``T_m(s)`` plus the pipeline
boundary cost ``T_pp``. Each transformer layer contributes two
synchronisation steps (attention output and FFN, §III-C2), each carrying
``K_in * h`` activation elements in prefill and ``q * h`` in decode.

The per-scheme physics lives in :mod:`repro.comm.scheme` (the
``CollectiveScheme`` registry); this module keeps the historical
entrypoints — :func:`estimate_group_step` and :func:`price_group_step`
are now thin registry dispatchers, and the Eq. 5 assembly
(:func:`estimate_phase_comm`) is scheme-agnostic. ``SchemeKind``,
``GroupCommEstimate`` and the slot-window constants are re-exported here
for backward compatibility.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.comm.context import CommContext
from repro.comm.pipeline import pipeline_sync_time
from repro.comm.scheme import (  # noqa: F401  (compat re-exports)
    ATP_WIRE_EFFICIENCY,
    DEFAULT_N_SLOTS,
    DEFAULT_SLOT_PAYLOAD,
    CollectiveScheme,
    GroupCommEstimate,
    SchemeKind,
    _atp_cost_factor,
    _window_cap_time,
    get_scheme,
)
from repro.llm.models import ModelConfig


def estimate_group_step(
    ctx: CommContext,
    gpus: Sequence[int],
    data_bytes: float,
    scheme: SchemeKind | str | CollectiveScheme,
    n_slots: int = DEFAULT_N_SLOTS,
    slot_payload: int = DEFAULT_SLOT_PAYLOAD,
    contention: float = 0.0,
) -> GroupCommEstimate:
    """One synchronisation step's latency for a TP group under a scheme.

    This is Algorithm 2's ``getlatency``: compute the scheme's flavoured
    latency and the ring latency, return the cheaper with its selector.
    Dispatches to the registered :class:`CollectiveScheme`.
    """
    return get_scheme(scheme).estimate_time(
        ctx,
        gpus,
        data_bytes,
        n_slots=n_slots,
        slot_payload=slot_payload,
        contention=contention,
    )


def price_group_step(
    ctx: CommContext,
    gpus: Sequence[int],
    scheme: SchemeKind | str | CollectiveScheme,
    mode: str,
    ina_switch: int | None,
    data_bytes: float,
    n_slots: int = DEFAULT_N_SLOTS,
    slot_payload: int = DEFAULT_SLOT_PAYLOAD,
    contention: float = 0.0,
) -> float:
    """Latency of executing a *fixed* policy at current link state.

    Static systems (the baselines, or HeroServe with the online
    scheduler ablated) commit to the offline plan's mode/switch and do
    not re-select per iteration; only the physics (live bandwidths along
    the committed route) varies. ``mode``/``ina_switch`` come from the
    plan's :class:`GroupCommEstimate`. Dispatches to the registered
    :class:`CollectiveScheme`.
    """
    return get_scheme(scheme).forced_time(
        ctx,
        gpus,
        mode,
        ina_switch,
        data_bytes,
        n_slots=n_slots,
        slot_payload=slot_payload,
        contention=contention,
    )


def sync_steps_per_pass(model: ModelConfig, p_pipe: int) -> int:
    """Synchronisation steps one pipeline stage performs per pass.

    Two all-reduces per layer (attention output + FFN), layers split
    evenly over ``p_pipe`` stages.
    """
    if p_pipe < 1:
        raise ValueError(f"p_pipe must be >= 1, got {p_pipe}")
    layers_per_stage = max(1, round(model.n_layers / p_pipe))
    return 2 * layers_per_stage


def allreduce_bytes(model: ModelConfig, tokens: int) -> int:
    """Payload per synchronisation step for ``tokens`` in flight.

    ``D_col(a) = D_col(f) = K_in * h`` (§III-C2), at model precision.
    Prefill passes ``tokens = K_in``; decode passes ``tokens = Q``.
    """
    return tokens * model.hidden_size * model.dtype_bytes


@dataclass(frozen=True)
class PhaseCommEstimate:
    """Full-pass communication latency of one phase (Eq. 5 output)."""

    total_time: float        # T_n for the pass
    per_stage: tuple[GroupCommEstimate, ...]
    pipeline_time: float     # T_pp


def estimate_phase_comm(
    ctx: CommContext,
    stages: Sequence[Sequence[int]],
    model: ModelConfig,
    tokens: int,
    scheme: SchemeKind,
    activation_bytes: int | None = None,
    n_slots: int = DEFAULT_N_SLOTS,
    slot_payload: int = DEFAULT_SLOT_PAYLOAD,
    contention: float = 0.0,
    cache=None,
) -> PhaseCommEstimate:
    """Eq. 5: ``T_n = T_pp + sum_s T_m(s)`` over a full model pass.

    ``stages`` are the pipeline groups (each a TP group of GPU ids);
    ``tokens`` drives both the all-reduce payload and the pipeline
    activation volume (``K_in`` for a prefill pass, ``Q`` for one decode
    iteration). ``cache`` (a :class:`repro.core.estcache.EstimationCache`
    built over ``ctx``) memoizes the per-group step estimates; the
    perturbation loop has usually priced every stage already, so the
    final assembly is all hits.
    """
    if not stages:
        raise ValueError("need at least one pipeline stage")
    p_pipe = len(stages)
    data = allreduce_bytes(model, tokens)
    steps = sync_steps_per_pass(model, p_pipe)
    if cache is not None:
        per_stage = tuple(
            cache.group_step(
                grp,
                data,
                scheme,
                n_slots=n_slots,
                slot_payload=slot_payload,
                contention=contention,
            )
            for grp in stages
        )
        pp_ctx = cache.ctx
    else:
        per_stage = tuple(
            estimate_group_step(
                ctx,
                grp,
                data,
                scheme,
                n_slots=n_slots,
                slot_payload=slot_payload,
                contention=contention,
            )
            for grp in stages
        )
        pp_ctx = ctx
    sync_total = steps * sum(e.step_time for e in per_stage)
    act_bytes = (
        data if activation_bytes is None else activation_bytes
    )
    t_pp = (
        pipeline_sync_time(pp_ctx, stages, act_bytes) if p_pipe > 1 else 0.0
    )
    return PhaseCommEstimate(
        total_time=sync_total + t_pp,
        per_stage=per_stage,
        pipeline_time=t_pp,
    )
