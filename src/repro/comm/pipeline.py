"""Pipeline-parallel synchronisation latency (paper Eq. 6).

``T_pp = sum_i T_pp(i)`` where ``T_pp(i) = min_a max_{k in K_g(i+1)}
T_{k,a}``: stage ``i`` hands its activations to stage ``i+1`` through the
sender ``a`` (in stage ``i``) that minimises the slowest receiver's
latency. Activation volume per boundary: ``K_in * h`` elements for
prefill, ``q * h`` for decode (one token per in-flight request).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.comm.context import CommContext
from repro.llm.models import ModelConfig


def stage_boundary_time(
    ctx: CommContext,
    senders: Sequence[int],
    receivers: Sequence[int],
    data_bytes: float,
) -> float:
    """Eq. 6 for one boundary: best sender's worst receiver latency."""
    if not senders or not receivers:
        raise ValueError("both stages must be non-empty")
    return min(
        max(ctx.path_time(a, k, data_bytes) for k in receivers)
        for a in senders
    )


def prefill_activation_bytes(model: ModelConfig, k_in: int) -> int:
    """Per-boundary activation bytes in prefill: ``K_in * h`` elements."""
    return k_in * model.hidden_size * model.dtype_bytes


def decode_activation_bytes(model: ModelConfig, q: int) -> int:
    """Per-boundary activation bytes in decode: ``q * h`` elements."""
    return q * model.hidden_size * model.dtype_bytes


def pipeline_sync_time(
    ctx: CommContext,
    stages: Sequence[Sequence[int]],
    data_bytes: float,
) -> float:
    """``T_pp``: sum of Eq. 6 over the ``P_pipe - 1`` stage boundaries."""
    total = 0.0
    for senders, receivers in zip(stages, stages[1:]):
        total += stage_boundary_time(ctx, senders, receivers, data_bytes)
    return total
