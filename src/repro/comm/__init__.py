"""Collective-communication latency models: ring, INA, hybrid, pipeline."""

from repro.comm.context import CommContext
from repro.comm.hybrid import (
    HybridDecision,
    elect_leader,
    group_by_server,
    hybrid_allreduce_time,
    hybrid_forced_time,
    hybrid_link_footprint,
    local_reduce_time,
    plan_hybrid_allreduce,
)
from repro.comm.ina import (
    ina_allreduce_time,
    ina_collection_time,
    ina_distribution_time,
    ina_link_footprint,
    ina_throughput_limit,
    select_ina_switch,
)
from repro.comm.latency import (
    DEFAULT_N_SLOTS,
    DEFAULT_SLOT_PAYLOAD,
    GroupCommEstimate,
    PhaseCommEstimate,
    SchemeKind,
    allreduce_bytes,
    estimate_group_step,
    estimate_phase_comm,
    price_group_step,
    sync_steps_per_pass,
)
from repro.comm.pipeline import (
    decode_activation_bytes,
    pipeline_sync_time,
    prefill_activation_bytes,
    stage_boundary_time,
)
from repro.comm.ring import (
    ring_allreduce_time,
    ring_bottleneck_bandwidth,
    ring_link_footprint,
    ring_order,
)
from repro.comm.scheme import (
    CollectiveScheme,
    PolicySpec,
    SchemeBinding,
    get_scheme,
    rank_switches,
    register_scheme,
    registered_schemes,
)

# Importing these modules registers the extra collectives (ring-2stage
# first, then tree) so every layer can resolve them through the registry.
from repro.comm.twostage import (
    twostage_allreduce_time,
    twostage_link_footprint,
)
from repro.comm.tree import tree_allreduce_time, tree_link_footprint

__all__ = [
    "CommContext",
    "HybridDecision",
    "elect_leader",
    "group_by_server",
    "hybrid_allreduce_time",
    "hybrid_forced_time",
    "hybrid_link_footprint",
    "local_reduce_time",
    "plan_hybrid_allreduce",
    "ina_allreduce_time",
    "ina_collection_time",
    "ina_distribution_time",
    "ina_link_footprint",
    "ina_throughput_limit",
    "select_ina_switch",
    "DEFAULT_N_SLOTS",
    "DEFAULT_SLOT_PAYLOAD",
    "GroupCommEstimate",
    "PhaseCommEstimate",
    "SchemeKind",
    "allreduce_bytes",
    "estimate_group_step",
    "estimate_phase_comm",
    "price_group_step",
    "sync_steps_per_pass",
    "decode_activation_bytes",
    "pipeline_sync_time",
    "prefill_activation_bytes",
    "stage_boundary_time",
    "ring_allreduce_time",
    "ring_bottleneck_bandwidth",
    "ring_link_footprint",
    "ring_order",
    "CollectiveScheme",
    "PolicySpec",
    "SchemeBinding",
    "get_scheme",
    "rank_switches",
    "register_scheme",
    "registered_schemes",
    "tree_allreduce_time",
    "tree_link_footprint",
    "twostage_allreduce_time",
    "twostage_link_footprint",
]
