"""``ring-2stage``: hierarchical NVLink-staged ring all-reduce.

DeepSpeed-style two-level collective for multi-server groups on a
heterogeneous network view:

1. **NVLink reduce-scatter** inside each server: the tensor is split into
   ``k`` shards (``k`` = members on the server) and reduced onto the
   server's *first* member (the static leader — no per-switch election,
   unlike HeroServe's hybrid), costing ``(k-1)`` shard pushes bounded by
   the slowest member→leader NVLink path.
2. **Inter-server Ethernet ring** over the per-server leaders at the full
   payload (leaders hold fully reduced server-local sums).
3. **NVLink all-gather** mirroring stage 1.

``T_2stage = 2 · max_s (k_s - 1) · max_{g≠lead} t(g, lead, D/k_s)
           + T_ring(leaders, D)``

A single-server group degenerates to the pure NVLink ring (mode
``"none"``, matching the hybrid scheme's vocabulary). Like every scheme,
Eq. 7 still compares against the plain Ethernet ring and falls back when
staging loses (tiny payloads where the extra NVLink latency dominates).

This file is the whole integration: registering :class:`TwoStageScheme`
below is what makes ``ring-2stage`` a planner candidate, a policy-table
column, an engine-executable mode, a failover source, a CLI choice and
the ``DS-2Stage`` baseline's collective. See ``docs/COLLECTIVES.md``.
"""

from __future__ import annotations

from repro.comm.context import CommContext
from repro.comm.hybrid import group_by_server
from repro.comm.ring import (
    ring_allreduce_time,
    ring_link_footprint,
    ring_order,
)
from repro.comm.scheme import (
    CollectiveScheme,
    GroupCommEstimate,
    PolicySpec,
    SchemeBinding,
    SchemeKind,
    register_scheme,
)


def _leaders(ctx: CommContext, gpus: list[int]) -> list[int]:
    return [members[0] for members in group_by_server(ctx, gpus).values()]


def _stage_local(
    ctx: CommContext, members: list[int], leader: int, data_bytes: float
) -> float:
    """One server's NVLink reduce-scatter (== the mirrored all-gather)."""
    k = len(members)
    if k <= 1:
        return 0.0
    shard = data_bytes / k
    return (k - 1) * max(
        ctx.path_time(g, leader, shard) for g in members if g != leader
    )


def twostage_allreduce_time(
    ctx: CommContext, gpus: list[int], data_bytes: float
) -> float:
    """Hierarchical reduce-scatter → leader ring → all-gather time."""
    gpus = list(gpus)
    if len(gpus) <= 1 or data_bytes <= 0:
        return 0.0
    by_server = group_by_server(ctx, gpus)
    if len(by_server) == 1:
        return ring_allreduce_time(
            ctx, gpus, data_bytes, order=ring_order(ctx, gpus)
        )
    stage_local = max(
        _stage_local(ctx, members, members[0], data_bytes)
        for members in by_server.values()
    )
    stage_ring = ring_allreduce_time(ctx, _leaders(ctx, gpus), data_bytes)
    return 2.0 * stage_local + stage_ring


def twostage_link_footprint(
    ctx: CommContext, gpus: list[int]
) -> tuple[int, ...]:
    """NVLink member↔leader legs plus the leaders' Ethernet ring."""
    gpus = list(gpus)
    by_server = group_by_server(ctx, gpus)
    if len(by_server) == 1:
        return tuple(
            ring_link_footprint(ctx, gpus, order=ring_order(ctx, gpus))
        )
    links: list[int] = []
    for members in by_server.values():
        leader = members[0]
        for g in members:
            if g != leader:
                links.extend(ctx.path_links(g, leader))
                links.extend(ctx.path_links(leader, g))
    links.extend(ring_link_footprint(ctx, _leaders(ctx, gpus)))
    return tuple(links)


class _TwoStageBinding(SchemeBinding):
    def _specs(self, switches):
        ctx, gpus = self.ctx, self.gpus
        if len(group_by_server(ctx, gpus)) > 1:
            specs = [
                PolicySpec(
                    self.scheme.policy_key("2stage"),
                    "2stage",
                    None,
                    twostage_link_footprint(ctx, gpus),
                )
            ]
        else:
            specs = [
                PolicySpec(
                    self.scheme.policy_key("nvlink"), "nvlink", None, ()
                )
            ]
        specs.append(self._ring_spec())
        return specs

    def _time(self, mode, switch, data_bytes):
        if mode in ("2stage", "nvlink"):
            return twostage_allreduce_time(self.ctx, self.gpus, data_bytes)
        return super()._time(mode, switch, data_bytes)


class TwoStageScheme(CollectiveScheme):
    """Hierarchical NVLink/Ethernet two-stage ring (``ring-2stage``)."""

    kind = SchemeKind.RING_2STAGE
    heterogeneous = True
    binding_class = _TwoStageBinding

    def _estimate(
        self, ctx, gpus, data_bytes, t_ring, ring_links,
        n_slots, slot_payload, contention,
    ):
        t_2stage = twostage_allreduce_time(ctx, gpus, data_bytes)
        if t_2stage <= t_ring:
            mode = (
                "none" if len(group_by_server(ctx, gpus)) == 1 else "2stage"
            )
            return GroupCommEstimate(
                self.kind,
                mode,
                None,
                t_2stage,
                twostage_link_footprint(ctx, gpus),
            )
        return GroupCommEstimate(self.kind, "ring", None, t_ring, ring_links)

    def _forced(
        self, ctx, gpus, mode, switch, data_bytes,
        n_slots, slot_payload, contention,
    ):
        if mode in ("2stage", "none", "nvlink"):
            return twostage_allreduce_time(ctx, gpus, data_bytes)
        if mode == "ring":
            return ring_allreduce_time(ctx, gpus, data_bytes)
        raise ValueError(f"ring-2stage cannot price mode {mode!r}")

    def link_footprint(self, ctx, gpus, mode="ring", switch=None):
        gpus = list(gpus)
        if mode == "ring":
            return tuple(ring_link_footprint(ctx, gpus))
        return twostage_link_footprint(ctx, gpus)


TWOSTAGE_SCHEME = register_scheme(TwoStageScheme())

__all__ = [
    "TWOSTAGE_SCHEME",
    "TwoStageScheme",
    "twostage_allreduce_time",
    "twostage_link_footprint",
]
