"""``tree``: recursive halving-doubling all-reduce over Ethernet.

Rabenseifner's algorithm on the homogeneous network view: a
reduce-scatter by recursive *halving* (round ``r`` exchanges
``D / 2^(r+1)`` bytes between partners ``i`` and ``i XOR 2^r``), then an
all-gather by recursive *doubling* that mirrors it. ``log2(p)`` rounds
each way instead of the ring's ``2(p-1)`` steps, so the tree wins on
latency-dominated (small-payload) steps and loses to the ring's perfect
bandwidth utilisation on large ones — exactly the regime split Eq. 7's
argmin arbitrates.

Non-power-of-two groups fold the ``p - 2^⌊log2 p⌋`` extra members in a
pre-reduce (extra ``i + p2`` pushes its full tensor to partner ``i``) and
a post-broadcast mirror, the standard MPI treatment.

``T_tree = pre + 2 · Σ_r max_pairs t(i, i⊕2^r, D/2^(r+1)) + post``

Members pair in server-major ring order so early (largest-chunk) rounds
hit server-adjacent partners. One file, one registration — see
``docs/COLLECTIVES.md``.
"""

from __future__ import annotations

from repro.comm.context import CommContext
from repro.comm.ring import (
    ring_allreduce_time,
    ring_link_footprint,
    ring_order,
)
from repro.comm.scheme import (
    CollectiveScheme,
    GroupCommEstimate,
    PolicySpec,
    SchemeBinding,
    SchemeKind,
    register_scheme,
)


def _split(ctx: CommContext, gpus: list[int]) -> tuple[list[int], int]:
    """Server-major member order and the power-of-two core size."""
    members = ring_order(ctx, gpus)
    p2 = 1
    while p2 * 2 <= len(members):
        p2 *= 2
    return members, p2


def tree_allreduce_time(
    ctx: CommContext, gpus: list[int], data_bytes: float
) -> float:
    """Halving-doubling time with non-power-of-two pre/post folding."""
    gpus = list(gpus)
    if len(gpus) <= 1 or data_bytes <= 0:
        return 0.0
    members, p2 = _split(ctx, gpus)
    extras = len(members) - p2
    pre = post = 0.0
    if extras:
        pre = max(
            ctx.path_time(members[p2 + i], members[i], data_bytes)
            for i in range(extras)
        )
        post = max(
            ctx.path_time(members[i], members[p2 + i], data_bytes)
            for i in range(extras)
        )
    core = members[:p2]
    halving = 0.0
    dist, r = 1, 0
    while dist < p2:
        chunk = data_bytes / float(2 ** (r + 1))
        halving += max(
            max(
                ctx.path_time(core[i], core[i ^ dist], chunk),
                ctx.path_time(core[i ^ dist], core[i], chunk),
            )
            for i in range(p2)
        )
        dist <<= 1
        r += 1
    return pre + 2.0 * halving + post


def tree_link_footprint(
    ctx: CommContext, gpus: list[int]
) -> tuple[int, ...]:
    """Every directed link any halving/doubling exchange traverses."""
    gpus = list(gpus)
    if len(gpus) < 2:
        return ()
    members, p2 = _split(ctx, gpus)
    links: list[int] = []
    for i in range(len(members) - p2):
        links.extend(ctx.path_links(members[p2 + i], members[i]))
        links.extend(ctx.path_links(members[i], members[p2 + i]))
    core = members[:p2]
    dist = 1
    while dist < p2:
        for i in range(p2):
            links.extend(ctx.path_links(core[i], core[i ^ dist]))
        dist <<= 1
    return tuple(links)


class _TreeBinding(SchemeBinding):
    def _specs(self, switches):
        return [
            PolicySpec(
                self.scheme.policy_key("tree"),
                "tree",
                None,
                tree_link_footprint(self.ctx, self.gpus),
            ),
            self._ring_spec(),
        ]

    def _time(self, mode, switch, data_bytes):
        if mode == "tree":
            return tree_allreduce_time(self.ctx, self.gpus, data_bytes)
        return super()._time(mode, switch, data_bytes)


class TreeScheme(CollectiveScheme):
    """Recursive halving-doubling over Ethernet (``tree``)."""

    kind = SchemeKind.TREE
    binding_class = _TreeBinding

    def _estimate(
        self, ctx, gpus, data_bytes, t_ring, ring_links,
        n_slots, slot_payload, contention,
    ):
        t_tree = tree_allreduce_time(ctx, gpus, data_bytes)
        if t_tree <= t_ring:
            return GroupCommEstimate(
                self.kind,
                "tree",
                None,
                t_tree,
                tree_link_footprint(ctx, gpus),
            )
        return GroupCommEstimate(self.kind, "ring", None, t_ring, ring_links)

    def _forced(
        self, ctx, gpus, mode, switch, data_bytes,
        n_slots, slot_payload, contention,
    ):
        if mode == "tree":
            return tree_allreduce_time(ctx, gpus, data_bytes)
        if mode in ("ring", "none"):
            return ring_allreduce_time(ctx, gpus, data_bytes)
        raise ValueError(f"tree scheme cannot price mode {mode!r}")

    def link_footprint(self, ctx, gpus, mode="ring", switch=None):
        gpus = list(gpus)
        if mode == "tree":
            return tree_link_footprint(ctx, gpus)
        return tuple(ring_link_footprint(ctx, gpus))


TREE_SCHEME = register_scheme(TreeScheme())

__all__ = [
    "TREE_SCHEME",
    "TreeScheme",
    "tree_allreduce_time",
    "tree_link_footprint",
]
