"""In-network-aggregation latency model (paper Eqs. 8-10).

``T_ina = T_col + T_agg + T_dis``: every worker pushes its full payload to
the aggregation switch (collection, Eq. 9-10: the max over workers of the
per-hop additive path latency), the switch folds contributions in ~1 us
(T_agg), and broadcasts the aggregate back (distribution, symmetric to
collection).

Includes the aggregation-switch *selection* of Algorithm 2 lines 6-8:
among INA-capable switches, pick the one with the smallest worst-case
member latency.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.comm.context import CommContext
from repro.switch.protocols import DEFAULT_RTT


def ina_collection_time(
    ctx: CommContext,
    gpus: Sequence[int],
    switch: int,
    data_bytes: float,
) -> float:
    """Eq. 9: ``max_k T^col_{k,a}`` — slowest worker-to-switch push."""
    if not gpus:
        raise ValueError("empty GPU group")
    return max(ctx.path_time(g, switch, data_bytes) for g in gpus)


def ina_distribution_time(
    ctx: CommContext,
    gpus: Sequence[int],
    switch: int,
    data_bytes: float,
) -> float:
    """Switch-to-workers broadcast, configured symmetrically to T_col."""
    if not gpus:
        raise ValueError("empty GPU group")
    return max(ctx.path_time(switch, g, data_bytes) for g in gpus)


def ina_allreduce_time(
    ctx: CommContext,
    gpus: Sequence[int],
    switch: int,
    data_bytes: float,
    pipelined: bool = True,
) -> float:
    """Eq. 8: ``T_col + T_agg + T_dis`` for aggregation at ``switch``.

    The default ``pipelined=True`` models chunked streaming (the way
    SwitchML/ATP actually run on full-duplex links): collection and
    distribution overlap, so the makespan is the slower of the two
    phases plus the in-switch aggregation constant. ``pipelined=False``
    gives the store-and-forward single-message sum the paper's Fig. 2
    arithmetic uses.
    """
    if len(gpus) == 1 or data_bytes <= 0:
        return 0.0
    t_col = ina_collection_time(ctx, gpus, switch, data_bytes)
    t_dis = ina_distribution_time(ctx, gpus, switch, data_bytes)
    if pipelined:
        return max(t_col, t_dis) + ctx.agg_latency
    return t_col + ctx.agg_latency + t_dis


def select_ina_switch(
    ctx: CommContext,
    gpus: Sequence[int],
    candidates: Sequence[int] | None = None,
) -> int:
    """Algorithm 2 lines 6-8: the switch with the smallest group delay.

    Scores each INA-capable candidate by the worst member's round-trip
    (collection + distribution) latency at the route-selection size and
    returns the argmin.
    """
    if not gpus:
        raise ValueError("empty GPU group")
    cands = list(
        candidates
        if candidates is not None
        else ctx.built.ina_capable_switches()
    )
    if not cands:
        raise ValueError("no INA-capable switches in topology")
    sel_bytes = ctx.route_table.selection_bytes
    best, best_t = cands[0], float("inf")
    for sw in cands:
        t = max(
            ctx.path_time(g, sw, sel_bytes)
            + ctx.path_time(sw, g, sel_bytes)
            for g in gpus
        )
        if t < best_t:
            best, best_t = sw, t
    return best


def ina_throughput_limit(
    ctx: CommContext,
    gpus: Sequence[int],
    switch: int,
    n_slots: int,
    slot_payload_bytes: int,
) -> float:
    """Slot-pool goodput cap (bytes/s) for sustained aggregation.

    Uses the SwitchML window model with each worker's bottleneck path
    bandwidth; this is the ceiling Fig. 9 measures against message size.
    """
    bws = np.asarray([ctx.path_bottleneck(g, switch) for g in gpus])
    # Steady-state goodput: the asymptotic slope of the SwitchML window
    # model, i.e. min(slowest worker link, window turnaround).
    window_goodput = n_slots * slot_payload_bytes / DEFAULT_RTT
    return float(min(bws.min(), window_goodput))


def ina_link_footprint(
    ctx: CommContext,
    gpus: Sequence[int],
    switch: int,
) -> list[int]:
    """Directed links an INA policy uses (collection + distribution)."""
    links: list[int] = []
    for g in gpus:
        if g == switch:
            continue
        links.extend(ctx.path_links(g, switch))
        links.extend(ctx.path_links(switch, g))
    return links
