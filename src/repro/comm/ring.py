"""Ring all-reduce latency model (paper Eq. 11).

``T_ring(s) = 2 (P_tens - 1) * D_rg / min_e B(e)`` with
``D_rg = D / P_tens`` — the textbook bandwidth-optimal ring: a
reduce-scatter of ``P-1`` steps followed by an all-gather of ``P-1``
steps, each moving ``D / P`` bytes between ring neighbours, gated by the
slowest inter-neighbour path.

Beyond the closed form, :func:`ring_allreduce_time` accounts for the hop
structure of the actual neighbour paths on the tree topology (a GPU->GPU
"neighbour" hop crosses GPU->switch->GPU, i.e. two Ethernet links), which
is why homogeneous-network rings lose to INA in Section II-C.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.comm.context import CommContext


def ring_order(ctx: CommContext, gpus: Sequence[int]) -> list[int]:
    """Order the group to keep ring neighbours topologically close.

    Server-major ordering makes consecutive pairs same-server whenever
    possible, so those steps ride NVLink; a fully random order would put
    every step on Ethernet. NCCL's ring construction does the same.
    """
    topo = ctx.built.topology
    return sorted(gpus, key=lambda g: (topo.nodes[g].server, g))


def ring_allreduce_time(
    ctx: CommContext,
    gpus: Sequence[int],
    data_bytes: float,
    order: Sequence[int] | None = None,
) -> float:
    """Completion time of a ring all-reduce of ``data_bytes`` per GPU.

    Eq. 11 verbatim: ``2 (P-1) * D_rg / min_e B(e)`` with
    ``D_rg = D / P`` — each of the ``2(P-1)`` steps moves a shard along
    every ring edge simultaneously (chunked cut-through, as NCCL does),
    so a step is gated by the *bottleneck* bandwidth over all ring
    edges, plus the slowest edge's fixed per-hop latencies.
    """
    members = list(order) if order is not None else ring_order(ctx, gpus)
    p = len(members)
    if p == 0:
        raise ValueError("empty GPU group")
    if p == 1 or data_bytes <= 0:
        return 0.0
    shard = data_bytes / p
    pairs = list(zip(members, members[1:] + members[:1]))
    bottleneck = min(ctx.path_bottleneck(u, v) for u, v in pairs)
    topo = ctx.built.topology
    hop_lat = max(
        sum(topo.links[lid].hop_latency for lid in ctx.path_links(u, v))
        for u, v in pairs
    )
    step = shard / bottleneck + hop_lat
    return 2.0 * (p - 1) * step


def ring_bottleneck_bandwidth(
    ctx: CommContext,
    gpus: Sequence[int],
    order: Sequence[int] | None = None,
) -> float:
    """``min_e B(e)`` over all ring edges — Eq. 11's denominator."""
    members = list(order) if order is not None else ring_order(ctx, gpus)
    if len(members) < 2:
        return float("inf")
    return min(
        ctx.path_bottleneck(u, v)
        for u, v in zip(members, members[1:] + members[:1])
    )


def ring_link_footprint(
    ctx: CommContext,
    gpus: Sequence[int],
    order: Sequence[int] | None = None,
) -> list[int]:
    """Directed links a ring uses (for load registration / policy cost)."""
    members = list(order) if order is not None else ring_order(ctx, gpus)
    if len(members) < 2:
        return []
    links: list[int] = []
    for u, v in zip(members, members[1:] + members[:1]):
        links.extend(ctx.path_links(u, v))
    return links
