"""Shared context for communication-latency estimation.

Bundles a built topology, its precomputed route table (the offline
``P_(k,a)`` / ``D_(i,j)`` of Algorithm 2) and, optionally, a live
:class:`~repro.network.linkstate.LinkLoadTracker`. When a tracker is
present, per-hop costs use the *remaining* bandwidth ``B(e)`` (the online
scheduler's view); otherwise the raw capacity ``C(e)`` (the offline
planner's view of an idle network).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.builders import BuiltTopology
from repro.network.linkstate import LinkLoadTracker
from repro.network.routing import RouteTable, build_route_table
from repro.network.topology import LinkKind


@dataclass
class CommContext:
    """Topology + routes + optional live link state.

    ``heterogeneous`` selects HeroServe's network view: NVLink may serve
    as a forwarding segment on any route. When ``False`` (the baselines'
    homogeneous view) routing uses Ethernet only, except that a *direct*
    NVLink hop between co-located GPUs is still taken — that is plain
    NCCL behaviour, not heterogeneous scheduling.
    """

    built: BuiltTopology
    route_table: RouteTable
    linkstate: LinkLoadTracker | None = None
    #: in-switch aggregation constant (~1 us on Tofino, Section III-C2)
    agg_latency: float = 1e-6
    heterogeneous: bool = True
    #: lazily-built ``(src, dst) -> link_id`` table of direct intra-server
    #: GPU links (the first matching adjacency entry, matching
    #: :meth:`_direct_nvlink`); topology is immutable after construction
    #: so the table never goes stale.
    _direct_links: dict[tuple[int, int], int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_built(
        cls,
        built: BuiltTopology,
        linkstate: LinkLoadTracker | None = None,
        agg_latency: float = 1e-6,
        heterogeneous: bool = True,
    ) -> "CommContext":
        """Build the route table from capacities and wrap everything up."""
        exclude = (
            None
            if heterogeneous
            else {LinkKind.NVLINK, LinkKind.PCIE}
        )
        return cls(
            built=built,
            route_table=build_route_table(
                built.topology, exclude_kinds=exclude
            ),
            linkstate=linkstate,
            agg_latency=agg_latency,
            heterogeneous=heterogeneous,
        )

    # -- NVLink direct shortcut -------------------------------------------

    def _direct_nvlink(self, src: int, dst: int) -> int | None:
        """Directed intra-server link id (NVLink/PCIe) for a co-located
        GPU pair, else None."""
        topo = self.built.topology
        a, b = topo.nodes[src], topo.nodes[dst]
        if not (a.is_gpu and b.is_gpu and a.server == b.server):
            return None
        for lid in topo.adj[src]:
            link = topo.links[lid]
            if link.dst == dst and link.kind in (
                LinkKind.NVLINK,
                LinkKind.PCIE,
            ):
                return lid
        return None

    # -- bandwidth views -------------------------------------------------

    def link_bandwidth(self, link_id: int) -> float:
        """Remaining bandwidth of a directed link (capacity if no tracker)."""
        if self.linkstate is not None:
            return float(self.linkstate.available()[link_id])
        return self.built.topology.links[link_id].capacity

    def path_links(self, src: int, dst: int) -> list[int]:
        """Directed-link path from the offline route table.

        Co-located GPU pairs take their direct NVLink hop in both network
        views (NCCL always does); everything else follows the view's
        Dijkstra table.
        """
        if src == dst:
            return []
        direct = self._direct_nvlink(src, dst)
        if direct is not None:
            return [direct]
        return self.route_table.link_path(src, dst)

    def path_time(self, src: int, dst: int, data_bytes: float) -> float:
        """Per-hop additive transfer latency (paper Eq. 10 form).

        ``sum_e [hop_latency(e) + data_bytes / B(e)]`` along the offline
        shortest path, with ``B`` live when a tracker is attached.
        """
        if src == dst:
            return 0.0
        topo = self.built.topology
        avail = (
            self.linkstate.available() if self.linkstate is not None else None
        )
        total = 0.0
        for lid in self.path_links(src, dst):
            link = topo.links[lid]
            bw = link.capacity if avail is None else float(avail[lid])
            total += link.hop_latency + data_bytes / bw
        return total

    def transfer_time(self, src: int, dst: int, data_bytes: float) -> float:
        """Alias of :meth:`path_time` (KV-transfer naming in serving code)."""
        return self.path_time(src, dst, data_bytes)

    def path_bottleneck(self, src: int, dst: int) -> float:
        """``min_e B(e)`` along the offline shortest path."""
        links = self.path_links(src, dst)
        if not links:
            return float("inf")
        return min(self.link_bandwidth(lid) for lid in links)

    def group_hardware(self, gpus: list[int] | tuple[int, ...]) -> list[str]:
        """Hardware model names of the group members (for cost models)."""
        return [self.built.gpu_models[g] for g in gpus]

    def _direct_link_table(self) -> dict[tuple[int, int], int]:
        """All direct intra-server GPU->GPU links, built once per context.

        One pass over every GPU's adjacency list; for each ``(src, dst)``
        the *first* NVLink/PCIe entry wins, exactly as
        :meth:`_direct_nvlink` resolves it.
        """
        if self._direct_links is None:
            topo = self.built.topology
            table: dict[tuple[int, int], int] = {}
            for src, node in enumerate(topo.nodes):
                if not node.is_gpu:
                    continue
                for lid in topo.adj[src]:
                    link = topo.links[lid]
                    if link.kind not in (LinkKind.NVLINK, LinkKind.PCIE):
                        continue
                    dst_node = topo.nodes[link.dst]
                    if dst_node.is_gpu and dst_node.server == node.server:
                        table.setdefault((src, link.dst), lid)
            self._direct_links = table
        return self._direct_links

    def gpu_distance_matrix(self, gpu_ids: list[int]) -> np.ndarray:
        """Pairwise GPU latency matrix consistent with :meth:`path_time`.

        Starts from the view's Dijkstra latencies and overrides co-located
        pairs with their direct NVLink hop (present in both views), so the
        grouping heuristic always sees physical server locality. The
        override walks the precomputed direct-link table instead of
        scanning adjacency per pair, so the cost is O(n^2) numpy slicing
        plus O(direct links), not an O(n^2) Python pair loop.
        """
        idx = np.asarray(gpu_ids, dtype=np.int64)
        dist = self.route_table.latency[np.ix_(idx, idx)].copy()
        sel = self.route_table.selection_bytes
        topo = self.built.topology
        pos = {g: i for i, g in enumerate(gpu_ids)}
        for (u, v), lid in self._direct_link_table().items():
            i = pos.get(u)
            j = pos.get(v)
            if i is None or j is None or i == j:
                continue
            link = topo.links[lid]
            t = link.hop_latency + sel / link.capacity
            if t < dist[i, j]:
                dist[i, j] = t
        return dist
