"""Network-latency estimation (paper Algorithm 2).

Given a candidate parallelism ``(P_tens, P_pipe)``, the admissible GPU set
``V_g'`` and the forecast token volume, this module:

1. takes the offline latency matrix ``D_(i,j)`` / path table ``P_(k,a)``
   (already inside the :class:`~repro.comm.context.CommContext`),
2. partitions GPUs into ``P_pipe`` groups of ``P_tens`` by constrained
   k-means on interconnection latency,
3. selects each group's aggregation switch and communication mode
   (INA ``alpha`` vs ring ``beta``) via ``getlatency`` — here
   :func:`repro.comm.latency.estimate_group_step`,
4. polishes the grouping with random swap perturbations, re-running the
   mode selection after each accepted swap,
5. assembles ``T_n`` = per-step sync latency x steps + inter-stage
   pipeline latency (Eq. 5).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.comm.context import CommContext
from repro.comm.latency import (
    PhaseCommEstimate,
    SchemeKind,
    allreduce_bytes,
    estimate_group_step,
    estimate_phase_comm,
)
from repro.core.grouping import group_gpus
from repro.llm.models import ModelConfig
from repro.network.routing import gpu_latency_submatrix
from repro.obs.profile import NULL_PROFILER
from repro.util.rng import make_rng


@dataclass(frozen=True)
class NetworkEstimate:
    """Algorithm 2 outputs: grouping ``K_g``, comm plan ``CM``, ``T_n``."""

    stages: tuple[tuple[int, ...], ...]
    phase: PhaseCommEstimate

    @property
    def t_network(self) -> float:
        return self.phase.total_time


def estimate_network_latency(
    ctx: CommContext,
    admissible_gpus: Sequence[int],
    p_tens: int,
    p_pipe: int,
    model: ModelConfig,
    tokens: int,
    scheme: SchemeKind,
    activation_bytes: int | None = None,
    rng: np.random.Generator | None = None,
    perturb: bool = True,
    max_rounds: int = 5,
    contention: float = 0.0,
    profiler=None,
    cache=None,
) -> NetworkEstimate:
    """Full Algorithm 2 for one phase of one candidate configuration.

    ``tokens`` drives the all-reduce payload (``K_in`` for prefill, ``Q``
    for decode); ``activation_bytes`` the pipeline-boundary volume.
    The grouping objective is the group's *selected-mode* step latency,
    so swaps that flip a group from ring to INA (or move it closer to an
    aggregation switch) are rewarded — the joint computation/communication
    optimisation the paper emphasises.

    ``cache`` (a :class:`repro.core.estcache.EstimationCache` built over
    ``ctx``) memoizes the group-step evaluations, the distance submatrix
    and the underlying path lookups, shared across candidates and
    perturbation rounds; the estimate is byte-identical with or without
    it.
    """
    profiler = profiler or NULL_PROFILER
    gpus = list(admissible_gpus)
    need = p_tens * p_pipe
    if len(gpus) < need:
        raise ValueError(
            f"{len(gpus)} admissible GPUs < required {need} "
            f"(TP{p_tens} x PP{p_pipe})"
        )
    rng = rng or make_rng()
    data = allreduce_bytes(model, tokens)

    if cache is not None:
        def group_cost(group: Sequence[int]) -> float:
            return cache.group_step(
                group, data, scheme, contention=contention
            ).step_time
    else:
        def group_cost(group: Sequence[int]) -> float:
            return estimate_group_step(
                ctx, group, data, scheme, contention=contention
            ).step_time

    with profiler.phase("netestimate.distance_matrix"):
        dist = (
            cache.distance_matrix(gpus)
            if cache is not None
            else ctx.gpu_distance_matrix(gpus)
        )
    stages = group_gpus(
        dist,
        gpus,
        n_groups=p_pipe,
        group_size=p_tens,
        cost_fn=group_cost,
        rng=rng,
        perturb=perturb,
        max_rounds=max_rounds,
        profiler=profiler,
        memoize=cache is not None,
    )
    with profiler.phase("netestimate.mode_selection"):
        phase = estimate_phase_comm(
            ctx,
            stages,
            model,
            tokens,
            scheme,
            activation_bytes=activation_bytes,
            contention=contention,
            cache=cache,
        )
    return NetworkEstimate(
        stages=tuple(tuple(s) for s in stages),
        phase=phase,
    )
