"""Central controller: the HeroServe control centre (paper §III-D, §IV).

The prototype runs a centralised Python scheduler that (a) keeps every
GPU's policy cost table synchronised after each all-reduce, (b) polls
switch hardware counters and DCGM for link utilisation, and (c) pushes
refreshed costs/penalties to agents over gRPC. In the simulator the
controller owns the per-group :class:`LoadAwareScheduler` instances and
the shared :class:`LinkLoadTracker`, and its ``tick`` method is the
periodic poll/refresh loop (the gRPC fan-out is a direct method call —
the consistency semantics are identical because updates are applied
atomically between simulation events).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.comm.context import CommContext
from repro.comm.latency import SchemeKind
from repro.core.scheduler import CommDecision, LoadAwareScheduler
from repro.obs.logging_config import get_logger
from repro.obs.observer import NULL_OBSERVER

log = get_logger(__name__)


@dataclass
class CentralController:
    """Registry of per-group online schedulers with periodic refresh."""

    ctx: CommContext
    scheme: SchemeKind
    refresh_period: float = 0.05
    n_switch_candidates: int = 2
    #: observability sink shared with the engine (no-op by default)
    observer: object = NULL_OBSERVER
    _schedulers: dict[tuple[int, ...], LoadAwareScheduler] = field(
        default_factory=dict
    )
    _last_refresh: float = field(default=float("-inf"))
    refreshes: int = 0

    def scheduler_for(
        self, gpus: Sequence[int]
    ) -> LoadAwareScheduler:
        """Get (or lazily create) the scheduler of one GPU group."""
        key = tuple(sorted(gpus))
        sched = self._schedulers.get(key)
        if sched is None:
            log.debug(
                "creating scheduler for group %s (scheme=%s)",
                key,
                self.scheme.value,
            )
            sched = LoadAwareScheduler(
                self.ctx,
                list(gpus),
                self.scheme,
                n_switch_candidates=self.n_switch_candidates,
                observer=self.observer,
            )
            self._schedulers[key] = sched
        return sched

    def decide(self, gpus: Sequence[int], data_bytes: float) -> CommDecision:
        """Route one all-reduce for a group through its policy table."""
        return self.scheduler_for(gpus).decide(data_bytes)

    def tick(self, now: float) -> bool:
        """Periodic poll/refresh; returns True when a refresh ran.

        Mirrors §IV: poll dataplane counters (here the link tracker's
        EWMA), then push refreshed utilisations and Eq. 18 penalties to
        every group's table.
        """
        if now - self._last_refresh < self.refresh_period:
            return False
        self._last_refresh = now
        if self.ctx.linkstate is not None:
            self.ctx.linkstate.poll()
        for sched in self._schedulers.values():
            sched.refresh()
        self.refreshes += 1
        return True

    def n_groups(self) -> int:
        """Number of registered GPU groups."""
        return len(self._schedulers)

    def table_snapshots(self) -> dict[str, dict]:
        """Per-group policy-table state for the flight recorder.

        ``{group key: {"policies": names, "b": J base terms,
        "selections": cumulative counts}}`` — the raw material of the
        report's policy-flip timeline and cost-table sparklines.
        """
        out: dict[str, dict] = {}
        for key, sched in self._schedulers.items():
            table = sched.table
            out["-".join(str(g) for g in key)] = {
                "policies": [p.name for p in table.policies],
                "b": [float(x) for x in table.b],
                "selections": [int(x) for x in table.selections],
            }
        return out
