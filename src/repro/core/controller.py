"""Central controller: the HeroServe control centre (paper §III-D, §IV).

The prototype runs a centralised Python scheduler that (a) keeps every
GPU's policy cost table synchronised after each all-reduce, (b) polls
switch hardware counters and DCGM for link utilisation, and (c) pushes
refreshed costs/penalties to agents over gRPC. In the simulator the
controller owns the per-group :class:`LoadAwareScheduler` instances and
the shared :class:`LinkLoadTracker`, and its ``tick`` method is the
periodic poll/refresh loop (the gRPC fan-out is a direct method call —
the consistency semantics are identical because updates are applied
atomically between simulation events).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.comm.context import CommContext
from repro.comm.scheme import SchemeKind, get_scheme
from repro.core.scheduler import CommDecision, LoadAwareScheduler
from repro.faults.health import HealthRegistry
from repro.obs.logging_config import get_logger
from repro.obs.observer import NULL_OBSERVER

log = get_logger(__name__)


@dataclass
class CentralController:
    """Registry of per-group online schedulers with periodic refresh."""

    ctx: CommContext
    scheme: SchemeKind
    refresh_period: float = 0.05
    n_switch_candidates: int = 2
    #: observability sink shared with the engine (no-op by default)
    observer: object = NULL_OBSERVER
    #: failure-detection registry; ``None`` keeps the fault-free path.
    health: HealthRegistry | None = None
    #: extra registered collectives whose policies join every group's
    #: table alongside the primary scheme's (e.g. ("ring-2stage", "tree"))
    extra_schemes: tuple[str, ...] = ()
    _schedulers: dict[tuple[int, ...], LoadAwareScheduler] = field(
        default_factory=dict
    )
    _last_refresh: float = field(default=float("-inf"))
    refreshes: int = 0
    #: per-group cheapest step cost first observed — the deployment-time
    #: baseline that :meth:`policy_cost_drift` measures growth against
    _cost_baseline: dict[tuple[int, ...], float] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        #: simulator self-profiler carried by the observer (or None);
        #: cached so the per-tick fast path skips the getattr
        self._selfprof = getattr(self.observer, "selfprof", None)

    def scheduler_for(
        self, gpus: Sequence[int]
    ) -> LoadAwareScheduler:
        """Get (or lazily create) the scheduler of one GPU group.

        Group keys are normalised (sorted, duplicates dropped) so
        ``[3, 1, 3]`` and ``(1, 3)`` resolve to the same scheduler; the
        scheduler itself receives the deduplicated GPUs in caller order,
        which preserves existing leader-election behaviour for the
        (duplicate-free) callers we have today.
        """
        unique = list(dict.fromkeys(gpus))
        key = tuple(sorted(unique))
        sched = self._schedulers.get(key)
        if sched is None:
            log.debug(
                "creating scheduler for group %s (scheme=%s)",
                key,
                self.scheme.value,
            )
            sched = LoadAwareScheduler(
                self.ctx,
                unique,
                self.scheme,
                n_switch_candidates=self.n_switch_candidates,
                observer=self.observer,
                extra_schemes=self.extra_schemes,
            )
            if self.health is not None:
                sched.apply_health(self.health)
            self._schedulers[key] = sched
        return sched

    def decide(self, gpus: Sequence[int], data_bytes: float) -> CommDecision:
        """Route one all-reduce for a group through its policy table."""
        return self.scheduler_for(gpus).decide(data_bytes)

    def tick(self, now: float) -> bool:
        """Periodic poll/refresh; returns True when a refresh ran.

        Mirrors §IV: poll dataplane counters (here the link tracker's
        EWMA), then push refreshed utilisations and Eq. 18 penalties to
        every group's table.
        """
        if now - self._last_refresh < self.refresh_period:
            return False
        self._last_refresh = now
        sp = self._selfprof
        if sp is None:
            if self.ctx.linkstate is not None:
                self.ctx.linkstate.poll()
            if self.health is not None:
                self._poll_health(now)
            for sched in self._schedulers.values():
                sched.refresh()
        else:
            t0 = time.perf_counter()
            if self.ctx.linkstate is not None:
                self.ctx.linkstate.poll()
            if self.health is not None:
                self._poll_health(now)
            t1 = time.perf_counter()
            sp.add("controller.poll", t1 - t0)
            for sched in self._schedulers.values():
                sched.refresh()
            sp.add("controller.refresh", time.perf_counter() - t1)
        self.refreshes += 1
        return True

    def _poll_health(self, now: float) -> None:
        """Advance failure detection and fail groups over/back.

        Heartbeat misses and stale switch counters surface here as
        detected-down edges; every edge re-derives each group's policy
        mask so affected groups degrade INA->ring (or restore after the
        hold-down elapses).
        """
        assert self.health is not None
        edges = self.health.poll(now)
        if not edges:
            return
        for edge in edges:
            log.info(
                "health: %s %s detected %s at t=%.3f",
                edge.kind,
                edge.resource,
                edge.state,
                now,
            )
            self.observer.health_transition(
                now, edge.kind, edge.resource, edge.state, edge.detail
            )
        for key, sched in self._schedulers.items():
            changed, degraded = sched.apply_health(self.health)
            if not changed:
                continue
            fallback = get_scheme(self.scheme).failover_target()
            direction = (
                f"ina->{fallback}" if degraded else f"{fallback}->ina"
            )
            if degraded:
                self.health.failovers += 1
            log.info("failover: group %s %s at t=%.3f", key, direction, now)
            self.observer.failover(now, key, direction)

    def n_groups(self) -> int:
        """Number of registered GPU groups."""
        return len(self._schedulers)

    def policy_cost_drift(self) -> float:
        """Worst per-group growth of the best step cost since deployment.

        For every group the cheapest base cost (Eq. 16's ``b``)
        currently in its policy table is compared against the cheapest
        value first observed for that group; the maximum ratio over
        groups is the drift detector's "the fabric now serves this plan
        worse than when it was made" signal. Returns 1.0 while no group
        has priced a table yet.
        """
        worst = 1.0
        for key, sched in self._schedulers.items():
            b = sched.table.b
            if len(b) == 0:
                continue
            best = float(min(b))
            if best <= 0.0:
                continue
            base = self._cost_baseline.setdefault(key, best)
            ratio = best / base
            if ratio > worst:
                worst = ratio
        return worst

    def table_snapshots(self) -> dict[str, dict]:
        """Per-group policy-table state for the flight recorder.

        ``{group key: {"policies": names, "b": J base terms,
        "selections": cumulative counts}}`` — the raw material of the
        report's policy-flip timeline and cost-table sparklines.
        """
        out: dict[str, dict] = {}
        for key, sched in self._schedulers.items():
            table = sched.table
            out["-".join(str(g) for g in key)] = {
                "policies": [p.name for p in table.policies],
                "b": [float(x) for x in table.b],
                "selections": [int(x) for x in table.selections],
            }
        return out
