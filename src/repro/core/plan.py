"""Deployment plan: the offline planner's outputs (paper Table II).

``Plan`` carries everything Table II lists: the parallelism degrees
``P_all``, the prefill/decode GPU id sets (structured as pipeline stages
of tensor-parallel groups), the per-group communication selectors
(``alpha``/``beta``), the chosen aggregation switches ``V_ina``, and the
predicted application metrics the SLA filter used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.latency import GroupCommEstimate, SchemeKind


@dataclass(frozen=True)
class ParallelConfig:
    """``P_all``: tensor/pipeline degrees for both phases (Table II)."""

    p_tens_prefill: int
    p_pipe_prefill: int
    p_tens_decode: int
    p_pipe_decode: int

    def __post_init__(self) -> None:
        for name in (
            "p_tens_prefill",
            "p_pipe_prefill",
            "p_tens_decode",
            "p_pipe_decode",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def prefill_gpus(self) -> int:
        return self.p_tens_prefill * self.p_pipe_prefill

    @property
    def decode_gpus(self) -> int:
        return self.p_tens_decode * self.p_pipe_decode

    @property
    def total_gpus(self) -> int:
        return self.prefill_gpus + self.decode_gpus

    def __str__(self) -> str:
        return (
            f"prefill TP{self.p_tens_prefill}xPP{self.p_pipe_prefill}, "
            f"decode TP{self.p_tens_decode}xPP{self.p_pipe_decode}"
        )


@dataclass(frozen=True)
class PhasePlan:
    """One phase's placement and communication plan."""

    #: pipeline stages, each a tensor-parallel group of GPU node ids
    stages: tuple[tuple[int, ...], ...]
    #: per-stage Eq. 7 outcome (mode, switch, step latency, links)
    comm: tuple[GroupCommEstimate, ...]
    #: predicted communication latency T_n of one pass
    t_network: float
    #: predicted computation latency T_c of one pass
    t_compute: float

    @property
    def gpu_ids(self) -> tuple[int, ...]:
        """Flat GPU id set (Table II's K_g^p / K_g^d)."""
        return tuple(g for stage in self.stages for g in stage)

    @property
    def alpha(self) -> tuple[int, ...]:
        """INA selectors per stage (1 where the group aggregates in-network)."""
        return tuple(1 if e.mode == "ina" else 0 for e in self.comm)

    @property
    def beta(self) -> tuple[int, ...]:
        """Ring selectors per stage (complement of alpha)."""
        return tuple(1 if e.mode == "ring" else 0 for e in self.comm)

    @property
    def ina_switches(self) -> tuple[int | None, ...]:
        """Chosen aggregation switch per stage (Table II's V_ina)."""
        return tuple(e.ina_switch for e in self.comm)


@dataclass(frozen=True)
class Plan:
    """Full offline-planner output for one serving deployment."""

    parallel: ParallelConfig
    scheme: SchemeKind
    prefill: PhasePlan
    decode: PhasePlan
    #: predicted KV-cache transfer latency T_f
    t_kv_transfer: float
    #: predicted TTFT / TPOT / scalability at the planning arrival rate
    t_prefill: float
    t_decode: float
    scalability: float
    #: arrival rate the predictions were evaluated at (req/s)
    planned_rate: float = 0.0
    notes: dict = field(default_factory=dict)

    def summary(self) -> str:
        """Multi-line human-readable plan description."""
        lines = [
            f"scheme={self.scheme.value}  {self.parallel}",
            f"prefill GPUs: {self.prefill.gpu_ids}",
            f"decode GPUs:  {self.decode.gpu_ids}",
            f"alpha(prefill)={self.prefill.alpha} "
            f"alpha(decode)={self.decode.alpha}",
            f"T_pre={self.t_prefill * 1e3:.1f} ms  "
            f"T_dec={self.t_decode * 1e3:.1f} ms  "
            f"T_f={self.t_kv_transfer * 1e3:.1f} ms  "
            f"H={self.scalability:.3f} req/s",
        ]
        return "\n".join(lines)
