"""KV-cache transfer latency between prefill and decode clusters.

Paper Eqs. 14-15: after prefill, every prefill GPU streams the KV segments
it computed to its paired decode GPUs (pairs share the same layer range
and tensor slice); transfers are concurrent, so ``T_f`` is the slowest
prefill GPU's total transfer time, each transfer costed with the per-hop
additive model.

Pairing: the tensor dimension maps slice-to-slice; the layer (pipeline)
dimension maps each prefill stage's layers onto the decode stages covering
those layers. When ``P_tens`` differs across phases, a prefill GPU's slice
overlaps ``ceil`` of the ratio of decode slices (the paper's
``ceil(P_tens / A)``-style correction term in ``D_{i,j}``).
"""

from __future__ import annotations

from collections.abc import Collection, Sequence

from repro.comm.context import CommContext
from repro.llm.memory import kv_bytes_per_token
from repro.llm.models import ModelConfig


def _repaired_decode_stages(
    decode_stages: Sequence[Sequence[int]],
    exclude_gpus: Collection[int],
) -> list[list[int]]:
    """Substitute failed decode GPUs with stage survivors (round-robin).

    The stage layout (and therefore every pair's layer/tensor share) is
    preserved; only the *destination* of the failed positions changes, so
    a survivor absorbs the orphaned slice next to its own.
    """
    excl = set(exclude_gpus)
    repaired: list[list[int]] = []
    for stage in decode_stages:
        survivors = [g for g in stage if g not in excl]
        if not survivors or len(survivors) == len(stage):
            repaired.append(list(stage))
            continue
        rr = 0
        row: list[int] = []
        for g in stage:
            if g in excl:
                row.append(survivors[rr % len(survivors)])
                rr += 1
            else:
                row.append(g)
        repaired.append(row)
    return repaired


def kv_pairings(
    prefill_stages: Sequence[Sequence[int]],
    decode_stages: Sequence[Sequence[int]],
    exclude_gpus: Collection[int] = (),
) -> list[tuple[int, int, float]]:
    """(prefill_gpu, decode_gpu, share) transfer list.

    ``share`` is the fraction of the *whole batch's* KV bytes that flows
    on that pair. Shares over all pairs sum to 1 (each KV byte moves
    exactly once).

    ``exclude_gpus`` re-pairs around decode GPUs believed failed: each
    excluded GPU's share is redistributed to the healthy survivors of
    its decode stage (who hold the adjacent tensor slices and can absorb
    the orphaned KV until the group is repaired). A stage with no
    healthy GPU cannot absorb anything — the exclusion is ignored for
    that stage and the transfer targets the original owners (the caller
    must wait for recovery or replan instead).
    """
    if not prefill_stages or not decode_stages:
        raise ValueError("both phases need at least one stage")
    if exclude_gpus:
        decode_stages = _repaired_decode_stages(decode_stages, exclude_gpus)
    pp_p, pp_d = len(prefill_stages), len(decode_stages)
    pairs: list[tuple[int, int, float]] = []
    for ip, pstage in enumerate(prefill_stages):
        # Layer interval [ip/pp_p, (ip+1)/pp_p) overlaps decode stages.
        lo, hi = ip / pp_p, (ip + 1) / pp_p
        pt_p = len(pstage)
        for id_, dstage in enumerate(decode_stages):
            dlo, dhi = id_ / pp_d, (id_ + 1) / pp_d
            layer_overlap = max(0.0, min(hi, dhi) - max(lo, dlo))
            if layer_overlap <= 0:
                continue
            pt_d = len(dstage)
            for jp, pg in enumerate(pstage):
                # Tensor slice [jp/pt_p, (jp+1)/pt_p) overlaps decode slices.
                tlo, thi = jp / pt_p, (jp + 1) / pt_p
                for jd, dg in enumerate(dstage):
                    dtlo, dthi = jd / pt_d, (jd + 1) / pt_d
                    tensor_overlap = max(
                        0.0, min(thi, dthi) - max(tlo, dtlo)
                    )
                    if tensor_overlap <= 0:
                        continue
                    pairs.append(
                        (pg, dg, layer_overlap * tensor_overlap)
                    )
    return pairs


def estimate_kv_transfer_time(
    ctx: CommContext,
    model: ModelConfig,
    k_in: int,
    prefill_stages: Sequence[Sequence[int]],
    decode_stages: Sequence[Sequence[int]],
    exclude_gpus: Collection[int] = (),
) -> float:
    """Eq. 14: ``T_f = max_k T_k^p`` over prefill GPUs.

    The batch's total KV volume is ``2 K_in L h`` elements; each pair's
    bytes are its share of that volume, costed along the offline route
    (Eq. 15's per-hop sum). A prefill GPU's transfers to distinct decode
    GPUs are sequential on its NIC, hence summed.
    """
    if k_in <= 0:
        raise ValueError(f"k_in must be > 0, got {k_in}")
    total_bytes = kv_bytes_per_token(model) * k_in
    per_gpu: dict[int, float] = {}
    pairs = kv_pairings(
        prefill_stages, decode_stages, exclude_gpus=exclude_gpus
    )
    for pg, dg, share in pairs:
        t = ctx.path_time(pg, dg, total_bytes * share)
        per_gpu[pg] = per_gpu.get(pg, 0.0) + t
    return max(per_gpu.values()) if per_gpu else 0.0


def kv_transfer_flows(
    ctx: CommContext,
    model: ModelConfig,
    k_in: int,
    prefill_stages: Sequence[Sequence[int]],
    decode_stages: Sequence[Sequence[int]],
    exclude_gpus: Collection[int] = (),
) -> list[tuple[list[int], float]]:
    """(link path, bytes) for each KV transfer — for the flow simulator."""
    total_bytes = kv_bytes_per_token(model) * k_in
    out: list[tuple[list[int], float]] = []
    pairs = kv_pairings(
        prefill_stages, decode_stages, exclude_gpus=exclude_gpus
    )
    for pg, dg, share in pairs:
        if pg == dg:
            continue
        out.append((ctx.path_links(pg, dg), total_bytes * share))
    return out


def plan_kv_migration(
    ctx: CommContext,
    model: ModelConfig,
    tokens: int,
    src_stages: Sequence[Sequence[int]],
    dst_stages: Sequence[Sequence[int]],
) -> tuple[float, list[tuple[list[int], float]], float]:
    """Model moving ``tokens`` of resident KV from one decode placement
    to another (a plan-transition migration).

    Reuses the prefill->decode pairing machinery with the *old* decode
    stages as the source side: the layer/tensor-slice overlap rules are
    the same, only the direction differs. Returns ``(duration, flows,
    moved_bytes)`` where ``flows`` is the ``(link path, bytes)`` list to
    register on the link tracker and ``moved_bytes`` counts only the
    bytes that actually cross links (a GPU kept by the new placement
    re-shards locally for free).
    """
    if tokens <= 0:
        return 0.0, [], 0.0
    duration = estimate_kv_transfer_time(
        ctx, model, tokens, src_stages, dst_stages
    )
    flows = kv_transfer_flows(ctx, model, tokens, src_stages, dst_stages)
    moved = float(sum(nbytes for _, nbytes in flows))
    if moved <= 0.0:
        return 0.0, [], 0.0
    return duration, flows, moved
