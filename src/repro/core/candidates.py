"""Parallelism candidate generation (Algorithm 1, ``gen_tp_pp_candi``).

Step 1 of the offline planner: from the model size ``R``, per-GPU memory
``M_g`` and the reserved-memory ratio ``R_frac``, compute the minimum GPU
count per phase, enumerate ``(P_tens, P_pipe)`` factorisations meeting it,
and return up to ``max_candi`` joint prefill/decode configurations. The
paper reports ``max_candi = 20`` is usually near-optimal; that is this
module's default (and an ablation bench sweeps it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import ParallelConfig
from repro.llm.memory import min_memory_per_gpu
from repro.llm.models import ModelConfig
from repro.util.validation import require_in_range, require_positive

DEFAULT_MAX_CANDIDATES = 20

#: Tensor-parallel degrees considered; TP must divide the head count and
#: hardware collectives prefer powers of two.
TP_CHOICES = (1, 2, 4, 8, 16)


def min_gpus_required(
    model: ModelConfig, gpu_memories: np.ndarray, r_frac: float
) -> int:
    """Minimum GPU count so the weights fit: ``R / (sum M_g * R_frac)``.

    Conservative variant of Algorithm 1 step 1 using the mean GPU memory,
    so heterogeneous pools (A100+V100) are not over-promised.
    """
    require_in_range("r_frac", r_frac, 0.0, 1.0, inclusive=False)
    mem = np.asarray(gpu_memories, dtype=np.float64)
    if mem.size == 0 or np.any(mem <= 0):
        raise ValueError("gpu_memories must be non-empty and positive")
    per_gpu = float(mem.mean()) * r_frac
    return max(1, int(np.ceil(model.param_bytes / per_gpu)))


def phase_configs(
    model: ModelConfig,
    n_gpus_available: int,
    gpu_memories: np.ndarray,
    r_frac: float,
    max_pipe: int = 8,
) -> list[tuple[int, int]]:
    """Feasible ``(P_tens, P_pipe)`` pairs for one phase, smallest first.

    A pair is feasible when (a) it uses no more GPUs than available,
    (b) TP divides the attention-head count, (c) PP does not exceed the
    layer count, and (d) the per-GPU weight shard fits in the smallest
    admissible GPU at ``r_frac``.
    """
    require_positive("n_gpus_available", n_gpus_available)
    mem = np.asarray(gpu_memories, dtype=np.float64)
    need = min_gpus_required(model, mem, r_frac)
    out: list[tuple[int, int]] = []
    for pt in TP_CHOICES:
        if model.n_heads % pt != 0:
            continue
        for pp in range(1, max_pipe + 1):
            if pp > model.n_layers:
                break
            n = pt * pp
            if n < need or n > n_gpus_available:
                continue
            m_req = min_memory_per_gpu(model, pt, pp, r_frac)
            # At least `n` GPUs must individually satisfy m_req.
            if int((mem >= m_req).sum()) < n:
                continue
            out.append((pt, pp))
    # Fewest GPUs first; for equal counts prefer higher TP (lower latency).
    out.sort(key=lambda c: (c[0] * c[1], -c[0]))
    return out


@dataclass(frozen=True)
class CandidateSpace:
    """The joint prefill x decode candidate list fed to Algorithm 1."""

    candidates: tuple[ParallelConfig, ...]
    min_gpus_prefill: int
    min_gpus_decode: int


def generate_candidates(
    model: ModelConfig,
    prefill_gpu_memories: np.ndarray,
    decode_gpu_memories: np.ndarray,
    r_frac: float = 0.65,
    max_candi: int = DEFAULT_MAX_CANDIDATES,
    max_pipe: int = 8,
) -> CandidateSpace:
    """Algorithm 1's ``gen_tp_pp_candi``: joint P_all candidates.

    Prefill prefers tensor parallelism (compute-bound, latency-critical);
    decode admits pipeline parallelism (memory-bound). The joint list is
    ordered by total GPU count, then truncated to ``max_candi``: the
    heuristic that keeps the search space constant-size.
    """
    require_positive("max_candi", max_candi)
    pre = phase_configs(
        model, len(prefill_gpu_memories), prefill_gpu_memories, r_frac,
        max_pipe=max_pipe,
    )
    dec = phase_configs(
        model, len(decode_gpu_memories), decode_gpu_memories, r_frac,
        max_pipe=max_pipe,
    )
    if not pre or not dec:
        return CandidateSpace(
            candidates=(),
            min_gpus_prefill=min_gpus_required(
                model, np.asarray(prefill_gpu_memories), r_frac
            ),
            min_gpus_decode=min_gpus_required(
                model, np.asarray(decode_gpu_memories), r_frac
            ),
        )
    joint = [
        ParallelConfig(ptp, ppp, ptd, ppd)
        for (ptp, ppp) in pre
        for (ptd, ppd) in dec
    ]
    joint.sort(
        key=lambda c: (
            c.total_gpus,
            -c.p_tens_prefill,
            -c.p_tens_decode,
        )
    )
    if len(joint) > max_candi:
        # Stratified truncation: keep candidates spread across the whole
        # GPU-count range (smallest through largest), not just the small
        # end — high-TP configurations are the latency-critical ones and
        # must stay in the search space.
        idx = np.unique(
            np.linspace(0, len(joint) - 1, max_candi).round().astype(int)
        )
        joint = [joint[i] for i in idx]
    return CandidateSpace(
        candidates=tuple(joint),
        min_gpus_prefill=pre[0][0] * pre[0][1],
        min_gpus_decode=dec[0][0] * dec[0][1],
    )
