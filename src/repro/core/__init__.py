"""HeroServe core: offline planner, online scheduler, controller."""

from repro.core.candidates import (
    DEFAULT_MAX_CANDIDATES,
    CandidateSpace,
    generate_candidates,
    min_gpus_required,
    phase_configs,
)
from repro.core.controller import CentralController
from repro.core.estcache import EstimationCache
from repro.core.grouping import (
    constrained_kmeans_groups,
    group_cohesion_cost,
    group_gpus,
    swap_perturbation,
)
from repro.core.kvtransfer import (
    estimate_kv_transfer_time,
    kv_pairings,
    kv_transfer_flows,
)
from repro.core.netestimate import NetworkEstimate, estimate_network_latency
from repro.core.objective import (
    SLA_SIM_CHATBOT,
    SLA_SIM_SUMMARIZATION,
    SLA_TESTBED_CHATBOT,
    SLA_TESTBED_SUMMARIZATION,
    ObjectiveResult,
    ServiceEstimate,
    SlaSpec,
    evaluate_objective,
    queueing_delay,
)
from repro.core.plan import ParallelConfig, PhasePlan, Plan
from repro.core.planner import (
    ExhaustivePlanner,
    OfflinePlanner,
    PlannerConfig,
    PlannerReport,
    split_pools,
)
from repro.core.policy import (
    Policy,
    PolicyCostTable,
    PolicyTableStats,
    table_stats,
)
from repro.core.replan import (
    DriftDetector,
    OnlineReplanner,
    ReplanConfig,
)
from repro.core.scheduler import CommDecision, LoadAwareScheduler

__all__ = [
    "DEFAULT_MAX_CANDIDATES",
    "CandidateSpace",
    "generate_candidates",
    "min_gpus_required",
    "phase_configs",
    "CentralController",
    "EstimationCache",
    "constrained_kmeans_groups",
    "group_cohesion_cost",
    "group_gpus",
    "swap_perturbation",
    "estimate_kv_transfer_time",
    "kv_pairings",
    "kv_transfer_flows",
    "NetworkEstimate",
    "estimate_network_latency",
    "SLA_SIM_CHATBOT",
    "SLA_SIM_SUMMARIZATION",
    "SLA_TESTBED_CHATBOT",
    "SLA_TESTBED_SUMMARIZATION",
    "ObjectiveResult",
    "ServiceEstimate",
    "SlaSpec",
    "evaluate_objective",
    "queueing_delay",
    "ParallelConfig",
    "PhasePlan",
    "Plan",
    "ExhaustivePlanner",
    "OfflinePlanner",
    "PlannerConfig",
    "PlannerReport",
    "split_pools",
    "Policy",
    "PolicyCostTable",
    "PolicyTableStats",
    "table_stats",
    "DriftDetector",
    "OnlineReplanner",
    "ReplanConfig",
    "CommDecision",
    "LoadAwareScheduler",
]
