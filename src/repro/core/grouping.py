"""GPU grouping: constrained k-means + random-swap perturbation.

Algorithm 2 steps 1 and 3: partition the admissible GPUs into ``P_pipe``
groups of exactly ``P_tens`` members, clustering by pairwise
interconnection latency (the offline ``D_(i,j)`` matrix), then improve
with random swaps between groups, keeping a swap iff it lowers the
objective. The paper reports convergence within five perturbation rounds.

The constrained k-means is the size-constrained variant of Lloyd's
algorithm on the latency metric: seeds are chosen farthest-first
(k-means++ style on a metric, vectorised), then members are assigned
greedily by seed distance under the exact-size constraint.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.obs.profile import NULL_PROFILER
from repro.util.rng import make_rng


def farthest_first_seeds(
    dist: np.ndarray, k: int, rng: np.random.Generator
) -> list[int]:
    """Pick ``k`` mutually distant seed indices from a distance matrix."""
    n = dist.shape[0]
    if k > n:
        raise ValueError(f"cannot seed {k} groups from {n} points")
    first = int(rng.integers(n))
    seeds = [first]
    min_d = dist[first].copy()
    for _ in range(k - 1):
        nxt = int(np.argmax(min_d))
        seeds.append(nxt)
        np.minimum(min_d, dist[nxt], out=min_d)
    return seeds


def constrained_kmeans_groups(
    dist: np.ndarray,
    n_groups: int,
    group_size: int,
    rng: np.random.Generator | None = None,
) -> list[list[int]]:
    """Partition ``n_groups * group_size`` points into equal-size groups.

    Greedy balanced assignment: process (point, seed) pairs by ascending
    distance, filling each group to exactly ``group_size``. This is the
    assignment step of k-means-constrained; one round suffices because
    the subsequent swap perturbation polishes the result.
    """
    n = dist.shape[0]
    need = n_groups * group_size
    if need > n:
        raise ValueError(
            f"need {need} points for {n_groups}x{group_size}, have {n}"
        )
    rng = rng or make_rng()
    seeds = farthest_first_seeds(dist, n_groups, rng)
    # Distance of every point to every seed: (n, k).
    d2seed = dist[:, seeds]
    order = np.argsort(d2seed, axis=None, kind="stable")
    # Decode every (point, group) pair up front — one vectorised divmod
    # instead of a Python divmod per visited pair.
    points, gs = np.divmod(order, n_groups)
    groups: list[list[int]] = [[] for _ in range(n_groups)]
    assigned = np.zeros(n, dtype=bool)
    placed = 0
    for point, g in zip(points.tolist(), gs.tolist()):
        if assigned[point] or len(groups[g]) >= group_size:
            continue
        groups[g].append(point)
        assigned[point] = True
        placed += 1
        if placed == need:
            break
    if placed < need:  # pragma: no cover - defensive
        raise RuntimeError("balanced assignment failed to place all points")
    return groups


def group_cohesion_cost(dist: np.ndarray, group: Sequence[int]) -> float:
    """Worst intra-group pairwise latency (gates the group's collective)."""
    if len(group) < 2:
        return 0.0
    idx = np.asarray(group, dtype=np.int64)
    return float(dist[np.ix_(idx, idx)].max())


def _memoized(
    cost_fn: Callable[[Sequence[int]], float], memoize: bool
) -> Callable[[Sequence[int]], float]:
    """Wrap ``cost_fn`` with an exact-order tuple-keyed memo.

    The perturbation loop re-prices the same group composition many
    times: rejected swaps restore the previous membership, and later
    swaps frequently revisit compositions seen rounds ago. Keys preserve
    member order (group evaluation is order-sensitive for HYBRID/INA —
    see :mod:`repro.core.estcache`), so a memo hit returns the exact
    float the evaluation would have recomputed and cannot change any
    accept/reject decision.
    """
    if not memoize:
        return cost_fn
    memo: dict[tuple[int, ...], float] = {}

    def eval_cost(g: Sequence[int]) -> float:
        key = tuple(g)
        v = memo.get(key)
        if v is None:
            v = cost_fn(g)
            memo[key] = v
        return v

    return eval_cost


def swap_perturbation(
    groups: list[list[int]],
    cost_fn: Callable[[Sequence[int]], float],
    rng: np.random.Generator | None = None,
    max_rounds: int = 5,
    swaps_per_round: int | None = None,
    memoize: bool = False,
) -> tuple[list[list[int]], float, int]:
    """Algorithm 2 lines 12-22: random swaps kept iff the cost drops.

    ``cost_fn`` scores a single group (lower is better); the objective is
    the sum over groups. Each round tries random cross-group member swaps
    and keeps improving ones; rounds stop early when no swap helped
    (``improvement = false``), matching the paper's loop structure.
    Only the two swapped groups are ever re-evaluated; with ``memoize``
    previously-seen compositions are not re-evaluated at all (the rng
    draw sequence and accept/reject decisions are unchanged, so the
    result is identical to the unmemoized run).

    Returns (groups, final_cost, rounds_used).
    """
    if max_rounds < 0:
        raise ValueError(f"max_rounds must be >= 0, got {max_rounds}")
    rng = rng or make_rng()
    eval_cost = _memoized(cost_fn, memoize)
    groups = [list(g) for g in groups]
    costs = [eval_cost(g) for g in groups]
    n_groups = len(groups)
    if n_groups < 2:
        return groups, sum(costs), 0
    if swaps_per_round is None:
        swaps_per_round = 4 * sum(len(g) for g in groups)
    rounds = 0
    for _ in range(max_rounds):
        improvement = False
        for _ in range(swaps_per_round):
            ga, gb = rng.choice(n_groups, size=2, replace=False)
            ia = int(rng.integers(len(groups[ga])))
            ib = int(rng.integers(len(groups[gb])))
            a, b = groups[ga][ia], groups[gb][ib]
            groups[ga][ia], groups[gb][ib] = b, a
            new_a, new_b = eval_cost(groups[ga]), eval_cost(groups[gb])
            if new_a + new_b < costs[ga] + costs[gb] - 1e-15:
                costs[ga], costs[gb] = new_a, new_b
                improvement = True
            else:
                groups[ga][ia], groups[gb][ib] = a, b
        rounds += 1
        if not improvement:
            break
    return groups, float(sum(costs)), rounds


def group_gpus(
    latency_matrix: np.ndarray,
    gpu_ids: Sequence[int],
    n_groups: int,
    group_size: int,
    cost_fn: Callable[[Sequence[int]], float] | None = None,
    rng: np.random.Generator | None = None,
    perturb: bool = True,
    max_rounds: int = 5,
    profiler=None,
    memoize: bool = False,
) -> list[list[int]]:
    """Full Algorithm 2 grouping: k-means-constrained + perturbation.

    ``latency_matrix`` is indexed by *position* in ``gpu_ids`` (use
    :func:`repro.network.routing.gpu_latency_submatrix`). ``cost_fn``
    scores a group given GPU *node ids*; the default is the worst
    intra-group latency. Returns groups of GPU node ids.

    ``profiler`` (a :class:`repro.obs.profile.PhaseProfiler`) splits the
    wall time into the k-means and perturbation phases for the planner
    breakdown. ``memoize`` enables the perturbation's per-composition
    cost memo (identical output, fewer ``cost_fn`` calls).
    """
    profiler = profiler or NULL_PROFILER
    gpu_ids = list(gpu_ids)
    dist = np.asarray(latency_matrix, dtype=np.float64)
    if dist.shape != (len(gpu_ids), len(gpu_ids)):
        raise ValueError("latency matrix shape must match gpu_ids")
    rng = rng or make_rng()
    with profiler.phase("grouping.kmeans"):
        idx_groups = constrained_kmeans_groups(
            dist, n_groups, group_size, rng
        )

    if cost_fn is None:
        def pos_cost(g: Sequence[int]) -> float:
            return group_cohesion_cost(dist, g)
    else:
        def pos_cost(g: Sequence[int]) -> float:
            return cost_fn([gpu_ids[i] for i in g])

    # Unassigned GPUs join as a zero-cost spare group so the perturbation
    # can swap idle hardware into real groups (Algorithm 2's random swaps
    # draw from the whole admissible cluster, not only placed GPUs).
    used = {i for g in idx_groups for i in g}
    spare = [i for i in range(len(gpu_ids)) if i not in used]

    if perturb:
        with profiler.phase("grouping.perturb"):
            if spare:
                idx_groups, _, _ = _swap_with_spare(
                    idx_groups, spare, pos_cost, rng, max_rounds,
                    memoize=memoize,
                )
            else:
                idx_groups, _, _ = swap_perturbation(
                    idx_groups, pos_cost, rng, max_rounds=max_rounds,
                    memoize=memoize,
                )
    return [[gpu_ids[i] for i in g] for g in idx_groups]


def _swap_with_spare(
    groups: list[list[int]],
    spare: list[int],
    cost_fn: Callable[[Sequence[int]], float],
    rng: np.random.Generator,
    max_rounds: int,
    memoize: bool = False,
) -> tuple[list[list[int]], float, int]:
    """Swap perturbation where the last group is a zero-cost spare pool."""
    eval_cost = _memoized(cost_fn, memoize)
    groups = [list(g) for g in groups] + [list(spare)]
    spare_idx = len(groups) - 1
    costs = [eval_cost(g) for g in groups[:-1]] + [0.0]
    n_groups = len(groups)
    swaps_per_round = 4 * sum(len(g) for g in groups)
    rounds = 0
    for _ in range(max_rounds):
        improvement = False
        for _ in range(swaps_per_round):
            ga, gb = rng.choice(n_groups, size=2, replace=False)
            if not groups[ga] or not groups[gb]:
                continue
            ia = int(rng.integers(len(groups[ga])))
            ib = int(rng.integers(len(groups[gb])))
            a, b = groups[ga][ia], groups[gb][ib]
            groups[ga][ia], groups[gb][ib] = b, a
            new_a = 0.0 if ga == spare_idx else eval_cost(groups[ga])
            new_b = 0.0 if gb == spare_idx else eval_cost(groups[gb])
            if new_a + new_b < costs[ga] + costs[gb] - 1e-15:
                costs[ga], costs[gb] = new_a, new_b
                improvement = True
            else:
                groups[ga][ia], groups[gb][ib] = a, b
        rounds += 1
        if not improvement:
            break
    return groups[:-1], float(sum(costs[:-1])), rounds
