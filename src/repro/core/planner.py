"""Scalability-oriented offline planner (paper Algorithm 1).

For each candidate parallelism ``P_all`` (Step 1,
:mod:`repro.core.candidates`), two *asynchronously scheduled* estimation
tasks — prefill and decode, mirroring the paper's two threads — filter
GPUs by the memory requirement ``m_req``, run the Algorithm 2 network
estimator and the Eq. 12/13 compute model, after which the KV-transfer
latency (Eqs. 14-15) and the queueing objective (Eq. 1) score the
candidate. The SLA-feasible candidate with maximum scalability ``H`` wins.

An exhaustive reference planner (no candidate cap, no asynchronous
estimation, full-latency-matrix recomputation per candidate) is provided
for the planner-runtime comparison the paper makes against DistServe's
placement search (28.57 % faster, §III-C3).
"""

from __future__ import annotations

import time
from collections.abc import Collection
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.comm.context import CommContext
from repro.comm.latency import SchemeKind
from repro.comm.pipeline import (
    decode_activation_bytes,
    prefill_activation_bytes,
)
from repro.core.candidates import (
    DEFAULT_MAX_CANDIDATES,
    CandidateSpace,
    generate_candidates,
)
from repro.core.estcache import EstimationCache
from repro.core.kvtransfer import estimate_kv_transfer_time
from repro.core.netestimate import estimate_network_latency
from repro.core.objective import (
    ObjectiveResult,
    ServiceEstimate,
    SlaSpec,
    evaluate_objective,
)
from repro.core.plan import ParallelConfig, PhasePlan, Plan
from repro.llm.batch import BatchSpec
from repro.llm.costmodel import CostModelBank
from repro.llm.memory import MemoryBudget, min_memory_per_gpu
from repro.llm.models import ModelConfig
from repro.network.builders import BuiltTopology
from repro.obs.logging_config import get_logger
from repro.obs.observer import NULL_OBSERVER
from repro.util.rng import make_rng, spawn

log = get_logger(__name__)


def split_pools(built: BuiltTopology) -> tuple[list[int], list[int]]:
    """Default prefill/decode GPU pool split.

    Section III-B: "the prefill cluster is compute-bound ... whereas the
    decode cluster is memory-bound due to the large KV cache, favoring
    servers with ample memory capacity". Servers are ranked by per-GPU
    memory (descending); the first half (by GPU count) becomes the
    decode pool and the rest prefill. On the paper's testbed this gives
    decode the 40 GB A100 servers and prefill the V100 servers.
    """
    topo = built.topology
    servers = sorted(
        built.server_gpus,
        key=lambda s: -topo.nodes[built.server_gpus[s][0]].memory_bytes,
    )
    total = sum(len(built.server_gpus[s]) for s in servers)
    prefill: list[int] = []
    decode: list[int] = []
    for s in servers:
        if len(decode) < total // 2:
            decode.extend(built.server_gpus[s])
        else:
            prefill.extend(built.server_gpus[s])
    return prefill, decode


@dataclass
class PlannerConfig:
    """Tunables of the offline planner (Algorithm 1 knobs)."""

    r_frac: float = 0.65
    max_candi: int = DEFAULT_MAX_CANDIDATES
    max_pipe: int = 8
    perturb: bool = True
    perturb_rounds: int = 5
    #: run prefill/decode estimation concurrently (the paper's threads)
    asynchronous: bool = True
    #: reuse the offline-precomputed shortest-path/latency matrices (the
    #: paper precomputes them once, asynchronously); False recomputes
    #: them per candidate, the reference-planner behaviour
    precompute_routes: bool = True
    #: memoize comm-latency evaluations across candidates and perturbation
    #: rounds (:mod:`repro.core.estcache`); byte-identical plans, large
    #: solve-time saving. Requires ``precompute_routes`` (the cache is
    #: keyed over one shared route table). False reproduces the pre-cache
    #: code path exactly — the benchmark's baseline.
    use_cache: bool = True
    seed: int = 7


@dataclass(frozen=True)
class _PhaseResult:
    stages: tuple[tuple[int, ...], ...]
    comm: tuple
    t_network: float
    t_compute: float


@dataclass
class PlannerReport:
    """Plan plus solve statistics (for the planner-runtime bench)."""

    plan: Plan | None
    candidates_evaluated: int
    candidates_feasible: int
    wall_time: float
    rejected: list[str] = field(default_factory=list)
    #: wall-clock seconds per planner phase (empty without an observer)
    phase_times: dict[str, float] = field(default_factory=dict)
    #: estimation-cache hit/miss deltas for this solve (empty when the
    #: cache is disabled)
    cache_stats: dict[str, float] = field(default_factory=dict)


class OfflinePlanner:
    """Algorithm 1: joint computation allocation + communication scheduling."""

    def __init__(
        self,
        ctx: CommContext,
        model: ModelConfig,
        bank: CostModelBank,
        sla: SlaSpec,
        scheme: SchemeKind,
        prefill_pool: list[int] | None = None,
        decode_pool: list[int] | None = None,
        config: PlannerConfig | None = None,
        observer: object = NULL_OBSERVER,
    ) -> None:
        self.ctx = ctx
        self.model = model
        self.bank = bank
        self.sla = sla
        self.scheme = scheme
        self.config = config or PlannerConfig()
        self.observer = observer or NULL_OBSERVER
        if prefill_pool is None or decode_pool is None:
            auto_pre, auto_dec = split_pools(ctx.built)
            prefill_pool = prefill_pool or auto_pre
            decode_pool = decode_pool or auto_dec
        if set(prefill_pool) & set(decode_pool):
            raise ValueError("prefill and decode pools must be disjoint")
        self.prefill_pool = list(prefill_pool)
        self.decode_pool = list(decode_pool)
        self._cache: EstimationCache | None = None

    # -- helpers -----------------------------------------------------------

    def _active_cache(self) -> EstimationCache | None:
        """The planner's estimation cache, created on first use.

        Lazy because subclasses (:class:`ExhaustivePlanner`) adjust
        ``config`` after construction. Disabled whenever routes are
        recomputed per candidate: the cache memoizes over one shared
        route table.
        """
        if not (self.config.use_cache and self.config.precompute_routes):
            return None
        if self._cache is None:
            self._cache = EstimationCache(self.ctx)
        return self._cache

    def _pool_memories(self, pool: list[int]) -> np.ndarray:
        topo = self.ctx.built.topology
        return np.array(
            [topo.nodes[g].memory_bytes for g in pool], dtype=np.float64
        )

    def _admissible(
        self, pool: list[int], p_tens: int, p_pipe: int
    ) -> list[int]:
        """Algorithm 1 lines 5-6 / 12-13: drop GPUs below ``m_req``."""
        m_req = min_memory_per_gpu(
            self.model, p_tens, p_pipe, self.config.r_frac
        )
        topo = self.ctx.built.topology
        return [
            g for g in pool if topo.nodes[g].memory_bytes >= m_req
        ]

    def _phase_ctx(self) -> CommContext:
        """Context for one phase estimation.

        With ``precompute_routes`` (default) the shared offline route
        table is reused; otherwise the Dijkstra matrices are rebuilt —
        the per-candidate recomputation cost the paper's asynchronous
        precomputation eliminates (§III-C3).
        """
        if self.config.precompute_routes:
            return self.ctx
        from repro.network.routing import build_route_table
        from repro.network.topology import LinkKind

        exclude = (
            None
            if self.ctx.heterogeneous
            else {LinkKind.NVLINK, LinkKind.PCIE}
        )
        return CommContext(
            built=self.ctx.built,
            route_table=build_route_table(
                self.ctx.built.topology, exclude_kinds=exclude
            ),
            linkstate=self.ctx.linkstate,
            agg_latency=self.ctx.agg_latency,
            heterogeneous=self.ctx.heterogeneous,
        )

    def _estimate_prefill(
        self,
        p_tens: int,
        p_pipe: int,
        batch: BatchSpec,
        rng: np.random.Generator,
    ) -> _PhaseResult | None:
        admissible = self._admissible(self.prefill_pool, p_tens, p_pipe)
        if len(admissible) < p_tens * p_pipe:
            return None
        with self.observer.phase("planner.estimate_prefill"):
            est = estimate_network_latency(
                self._phase_ctx(),
                admissible,
                p_tens,
                p_pipe,
                self.model,
                tokens=batch.k_in,
                scheme=self.scheme,
                activation_bytes=prefill_activation_bytes(
                    self.model, batch.k_in
                ),
                rng=rng,
                perturb=self.config.perturb,
                max_rounds=self.config.perturb_rounds,
                profiler=self.observer.profiler,
                cache=self._active_cache(),
            )
        hw = self.ctx.group_hardware(
            [g for st in est.stages for g in st]
        )
        t_c = self.bank.group_prefill_time(hw, batch, p_tens)
        # Pipeline splits layers: one pass still computes all layers, so
        # T_c is the full-model figure regardless of p_pipe.
        return _PhaseResult(
            stages=est.stages,
            comm=est.phase.per_stage,
            t_network=est.t_network,
            t_compute=t_c,
        )

    def _estimate_decode(
        self,
        p_tens: int,
        p_pipe: int,
        batch: BatchSpec,
        rng: np.random.Generator,
    ) -> _PhaseResult | None:
        admissible = self._admissible(self.decode_pool, p_tens, p_pipe)
        if len(admissible) < p_tens * p_pipe:
            return None
        with self.observer.phase("planner.estimate_decode"):
            est = estimate_network_latency(
                self._phase_ctx(),
                admissible,
                p_tens,
                p_pipe,
                self.model,
                tokens=batch.q,
                scheme=self.scheme,
                activation_bytes=decode_activation_bytes(
                    self.model, batch.q
                ),
                rng=rng,
                perturb=self.config.perturb,
                max_rounds=self.config.perturb_rounds,
                profiler=self.observer.profiler,
                cache=self._active_cache(),
            )
        hw = self.ctx.group_hardware(
            [g for st in est.stages for g in st]
        )
        # Mid-generation context: prompt plus half the output, per paper's
        # use of K_in (+ generated tokens) as the decode attention driver.
        context = batch.k_in + batch.k_out // 2
        t_c = self.bank.group_decode_time(
            hw, batch.q, context, p_tens, p_pipe
        )
        return _PhaseResult(
            stages=est.stages,
            comm=est.phase.per_stage,
            t_network=est.t_network,
            t_compute=t_c,
        )

    # -- main entry ---------------------------------------------------------

    def plan(
        self,
        batch: BatchSpec,
        arrival_rate: float,
        forced_parallel: ParallelConfig | None = None,
    ) -> PlannerReport:
        """Run Algorithm 1 and return the best SLA-feasible plan.

        ``batch`` is the forecast batch (Table I's request-side inputs,
        typically ``Trace.representative_batch``); ``arrival_rate`` the
        per-deployment lambda the queueing model sizes against.

        ``forced_parallel`` pins ``P_all`` to a fixed configuration (the
        paper's testbed evaluation deploys the same cross-server
        parallelism for every system, so differences isolate the
        communication scheduling); the planner still performs grouping,
        switch selection, mode selection and perturbation within it.
        """
        t0 = time.perf_counter()
        if forced_parallel is not None:
            cand = CandidateSpace(
                candidates=(forced_parallel,),
                min_gpus_prefill=forced_parallel.prefill_gpus,
                min_gpus_decode=forced_parallel.decode_gpus,
            )
        else:
            with self.observer.phase("planner.candidates"):
                cand = self._candidates()
        log.debug(
            "planning over %d candidates (scheme=%s)",
            len(cand.candidates),
            self.scheme.value,
        )
        rng = make_rng(self.config.seed)
        best: Plan | None = None
        best_obj: ObjectiveResult | None = None
        n_feasible = 0
        rejected: list[str] = []
        cache = self._active_cache()
        stats_before = cache.stats() if cache is not None else None
        # One executor for the whole sweep: the paper's two estimation
        # threads, without re-spawning a pool per candidate.
        pool = (
            ThreadPoolExecutor(max_workers=2)
            if self.config.asynchronous
            else None
        )
        try:
            for pall in cand.candidates:
                pre, dec = self._estimate_candidate(pall, batch, rng, pool)
                if pre is None or dec is None:
                    rejected.append(
                        f"{pall}: insufficient admissible GPUs"
                    )
                    log.debug(
                        "rejected %s: insufficient admissible GPUs", pall
                    )
                    continue

                with self.observer.phase("planner.objective"):
                    t_f = estimate_kv_transfer_time(
                        self.ctx,
                        self.model,
                        batch.k_in,
                        pre.stages,
                        dec.stages,
                    )
                    est = ServiceEstimate(
                        t_network_prefill=pre.t_network,
                        t_compute_prefill=pre.t_compute,
                        t_network_decode=dec.t_network,
                        t_compute_decode=dec.t_compute,
                        t_kv_transfer=t_f,
                        mean_output_tokens=batch.k_out / batch.q,
                    )
                    # Concurrency is capped by the decode cluster's KV
                    # capacity: "insufficient memory to serve all
                    # requests" adds queueing.
                    topo = self.ctx.built.topology
                    dec_min_mem = min(
                        topo.nodes[g].memory_bytes
                        for st in dec.stages
                        for g in st
                    )
                    budget = MemoryBudget(
                        self.model,
                        pall.p_tens_decode,
                        pall.p_pipe_decode,
                        dec_min_mem,
                        r_frac=self.config.r_frac,
                    )
                    tokens_per_req = (
                        batch.k_in + batch.k_out / 2.0
                    ) / batch.q
                    mem_conc = int(
                        budget.max_cached_tokens()
                        / max(tokens_per_req, 1)
                    )
                    # Decode concurrency: memory-limited, up to the
                    # continuous-batching width (the engine's default
                    # decode batch cap).
                    concurrency = max(1, min(64, mem_conc))
                    obj = evaluate_objective(
                        est, arrival_rate, self.sla, concurrency=concurrency
                    )
                if not obj.sla_ok and forced_parallel is None:
                    rejected.append(
                        f"{pall}: SLA miss (TTFT {obj.t_prefill:.3f}s, "
                        f"TPOT {obj.t_decode:.3f}s)"
                    )
                    log.debug(
                        "rejected %s: SLA miss (TTFT %.3fs, TPOT %.3fs)",
                        pall,
                        obj.t_prefill,
                        obj.t_decode,
                    )
                    continue
                n_feasible += 1
                if (
                    best_obj is None
                    or obj.scalability > best_obj.scalability
                ):
                    best_obj = obj
                    best = Plan(
                        parallel=pall,
                        scheme=self.scheme,
                        prefill=PhasePlan(
                            stages=pre.stages,
                            comm=pre.comm,
                            t_network=pre.t_network,
                            t_compute=pre.t_compute,
                        ),
                        decode=PhasePlan(
                            stages=dec.stages,
                            comm=dec.comm,
                            t_network=dec.t_network,
                            t_compute=dec.t_compute,
                        ),
                        t_kv_transfer=t_f,
                        t_prefill=obj.t_prefill,
                        t_decode=obj.t_decode,
                        scalability=obj.scalability,
                        planned_rate=arrival_rate,
                    )
        finally:
            if pool is not None:
                pool.shutdown()
        wall = time.perf_counter() - t0
        cache_stats = self._solve_cache_stats(cache, stats_before)
        if best is None:
            log.info(
                "no SLA-feasible plan among %d candidates (%.2fs)",
                len(cand.candidates),
                wall,
            )
        else:
            log.info(
                "planned %s in %.2fs (%d/%d feasible, H=%.3f)",
                best.parallel,
                wall,
                n_feasible,
                len(cand.candidates),
                best.scalability,
            )
        return PlannerReport(
            plan=best,
            candidates_evaluated=len(cand.candidates),
            candidates_feasible=n_feasible,
            wall_time=wall,
            rejected=rejected,
            phase_times=self.observer.profiler.phase_times(),
            cache_stats=cache_stats,
        )

    def _estimate_candidate(
        self, pall, batch, rng, pool
    ) -> tuple[_PhaseResult | None, _PhaseResult | None]:
        """Estimate both phases of one candidate (threaded when async)."""
        pre_rng, dec_rng = spawn(rng, 2)
        if pool is not None:
            f_pre = pool.submit(
                self._estimate_prefill,
                pall.p_tens_prefill,
                pall.p_pipe_prefill,
                batch,
                pre_rng,
            )
            f_dec = pool.submit(
                self._estimate_decode,
                pall.p_tens_decode,
                pall.p_pipe_decode,
                batch,
                dec_rng,
            )
            return f_pre.result(), f_dec.result()
        pre = self._estimate_prefill(
            pall.p_tens_prefill, pall.p_pipe_prefill, batch, pre_rng
        )
        dec = self._estimate_decode(
            pall.p_tens_decode, pall.p_pipe_decode, batch, dec_rng
        )
        return pre, dec

    def _solve_cache_stats(
        self,
        cache: EstimationCache | None,
        stats_before: dict[str, float] | None,
    ) -> dict[str, float]:
        """Hit/miss deltas of this solve, also mirrored to the profiler."""
        if cache is None or stats_before is None:
            return {}
        after = cache.stats()
        delta = {
            k: after[k] - stats_before[k]
            for k in after
            if k != "hit_rate"
        }
        total = delta["hits"] + delta["misses"]
        delta["hit_rate"] = delta["hits"] / total if total else 0.0
        profiler = self.observer.profiler
        if int(delta["hits"]):
            profiler.count("estcache.hits", int(delta["hits"]))
        if int(delta["misses"]):
            profiler.count("estcache.misses", int(delta["misses"]))
        return delta

    def replan_excluding(
        self,
        failed_gpus: Collection[int],
        batch: BatchSpec,
        arrival_rate: float,
        prefer: ParallelConfig | None = None,
    ) -> PlannerReport:
        """Incremental repair: re-plan with ``failed_gpus`` removed.

        The failover path after a server loss. Survivor pools replace
        the configured ones for the duration of the call; when
        ``prefer`` (typically the incumbent plan's parallelism) still
        fits the surviving GPU count it is pinned — re-running only the
        grouping/switch/mode selection stages — before falling back to
        the full Algorithm 1 candidate sweep.
        """
        failed = set(failed_gpus)
        if not failed:
            return self.plan(batch, arrival_rate, forced_parallel=prefer)
        # The fault that removed these GPUs usually degraded links too;
        # drop every memoized estimate so the repair plan reprices the
        # network from scratch.
        if self._cache is not None:
            self._cache.invalidate()
        saved_pre, saved_dec = self.prefill_pool, self.decode_pool
        self.prefill_pool = [g for g in saved_pre if g not in failed]
        self.decode_pool = [g for g in saved_dec if g not in failed]
        try:
            if not self.prefill_pool or not self.decode_pool:
                return PlannerReport(
                    plan=None,
                    candidates_evaluated=0,
                    candidates_feasible=0,
                    wall_time=0.0,
                    rejected=["no surviving GPUs in one phase pool"],
                )
            if prefer is not None and (
                prefer.prefill_gpus <= len(self.prefill_pool)
                and prefer.decode_gpus <= len(self.decode_pool)
            ):
                report = self.plan(
                    batch, arrival_rate, forced_parallel=prefer
                )
                if report.plan is not None:
                    return report
            return self.plan(batch, arrival_rate)
        finally:
            self.prefill_pool, self.decode_pool = saved_pre, saved_dec

    def _candidates(self) -> CandidateSpace:
        return generate_candidates(
            self.model,
            self._pool_memories(self.prefill_pool),
            self._pool_memories(self.decode_pool),
            r_frac=self.config.r_frac,
            max_candi=self.config.max_candi,
            max_pipe=self.config.max_pipe,
        )


class ExhaustivePlanner(OfflinePlanner):
    """Reference planner without the paper's heuristics.

    No candidate cap, sequential (non-asynchronous) estimation, and the
    Dijkstra matrices recomputed per candidate instead of precomputed
    once asynchronously — the configuration-sweep style of DistServe's
    placement search. Used by ``bench_planner_time`` to reproduce the
    §III-C3 solve-time comparison (the paper: 28.57 % faster).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.config.max_candi = 10_000
        self.config.asynchronous = False
        self.config.precompute_routes = False
        self.config.use_cache = False
