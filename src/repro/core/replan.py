"""Load-triggered online replanning with live KV migration.

Offline plans go stale: the controller's load-aware scheduling (paper
§IV) absorbs *communication* drift by re-routing collectives, but a
sustained workload shift — longer prompts, a rate surge, prefill/decode
contention — needs a different *placement*, and until this module the
only replanning trigger was a detected fault. Production P/D systems
treat replanning as a continuous control problem and price KV movement
over the real network when shifting work (see PAPERS.md: P/D control,
NetKV); this module closes that loop on the simulator:

* :class:`DriftDetector` watches the same signals the flight recorder
  samples — queue depths, per-kind link utilisation, the controller's
  policy cost tables, INA switch pressure — through
  :class:`~repro.faults.health.SustainedThreshold` hysteresis, so a
  spike never triggers, only sustained drift does.
* :class:`OnlineReplanner` owns the trigger policy (cooldown via
  :class:`~repro.faults.health.HoldDown`, a per-run replan budget, an
  oscillation guard that refuses to transition back to a plan we just
  left) and the transition state machine::

      idle -> quiesce -> migrate -> warm -> cutover -> idle
                 \\          \\         \\
                  +----------+---------+--> rollback -> idle

  Quiesce holds new prefill/decode work until in-flight passes drain;
  migrate moves the resident decode-side KV between the old and new
  placements as modelled flows over :mod:`repro.network` (reusing the
  Eq. 14/15 pairing machinery via
  :func:`~repro.core.kvtransfer.plan_kv_migration`, with the fault
  subsystem's seeded retry/backoff when the endpoints are unreachable);
  warm models pool startup; cutover atomically swaps the engine onto
  the new plan and releases the hold. A server fault that touches the
  migration endpoints rolls the transition back to the old plan —
  requests are requeued by the ordinary failover path, never dropped.

Everything here is armed explicitly (``--online-replan`` /
``simulate_trace(..., replan=...)``); an unarmed run never constructs
these objects and stays byte-identical to builds without this module.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.kvtransfer import plan_kv_migration
from repro.core.plan import ParallelConfig, Plan
from repro.core.planner import OfflinePlanner, PlannerConfig
from repro.faults.health import HoldDown, SustainedThreshold
from repro.llm.batch import BatchSpec
from repro.obs.logging_config import get_logger
from repro.obs.observer import NULL_OBSERVER

log = get_logger(__name__)

__all__ = [
    "DriftDetector",
    "OnlineReplanner",
    "ReplanConfig",
    "ReplanStats",
    "TransitionRecord",
    "describe_plan",
    "plan_signature",
]


@dataclass(frozen=True)
class ReplanConfig:
    """Trigger thresholds and transition knobs for online replanning."""

    #: drift-detector cadence (simulation seconds between checks)
    check_period: float = 0.25
    #: prefill queue depth that counts as backlog pressure
    queue_high: int = 24
    #: decode admission queue depth that counts as KV/decode pressure
    pending_high: int = 96
    #: per-kind EWMA link utilisation that counts as fabric congestion
    link_high: float = 0.92
    #: growth factor of the controller's best policy cost (vs the
    #: deployment baseline) that counts as policy-table drift
    cost_drift_high: float = 2.0
    #: consecutive over-threshold checks before a signal fires
    sustain_checks: int = 8
    #: seconds after any trigger/transition before the next may fire
    cooldown_s: float = 15.0
    #: per-run budget of planner invocations (drift triggers)
    max_replans: int = 3
    #: a plan abandoned within this window cannot be transitioned back
    #: to (flap suppression)
    oscillation_window_s: float = 60.0
    #: arrivals window feeding the observed-workload forecast
    window_s: float = 20.0
    #: minimum arrivals in the window before a replan may solve
    min_window_requests: int = 8
    #: modelled new-pool warm-up between migration end and cutover
    warm_time_s: float = 0.25
    #: migration retry budget while endpoints are ground-truth blocked
    migrate_max_attempts: int = 6
    #: operator-pinned target configuration: when set, the replan solve
    #: is constrained to this parallelisation (a pre-approved fallback
    #: plan) instead of the full candidate sweep
    target_parallel: ParallelConfig | None = None


def plan_signature(plan: Plan) -> tuple:
    """Hashable placement identity used by the oscillation guard."""
    p = plan.parallel
    return (
        (p.p_tens_prefill, p.p_pipe_prefill, p.p_tens_decode,
         p.p_pipe_decode),
        tuple(tuple(s) for s in plan.prefill.stages),
        tuple(tuple(s) for s in plan.decode.stages),
    )


def describe_plan(plan: Plan) -> str:
    """Compact human-readable placement label for events and reports."""
    p = plan.parallel
    return (
        f"pTP{p.p_tens_prefill}xPP{p.p_pipe_prefill}/"
        f"dTP{p.p_tens_decode}xPP{p.p_pipe_decode}"
    )


class DriftDetector:
    """Hysteresis trigger over the flight-recorder signal set.

    Each named signal gets its own :class:`SustainedThreshold`; all
    signals advance on every check (so sustained counts keep building
    while another signal fires first) and the detector reports the
    first signal that crosses its sustain requirement.
    """

    def __init__(self, cfg: ReplanConfig) -> None:
        self.cfg = cfg
        self._signals: dict[str, SustainedThreshold] = {
            "prefill_backlog": SustainedThreshold(
                float(cfg.queue_high), cfg.sustain_checks
            ),
            "decode_backlog": SustainedThreshold(
                float(cfg.pending_high), cfg.sustain_checks
            ),
            "fabric_congestion": SustainedThreshold(
                cfg.link_high, cfg.sustain_checks
            ),
            "policy_cost_drift": SustainedThreshold(
                cfg.cost_drift_high, cfg.sustain_checks
            ),
            "switch_pressure": SustainedThreshold(
                cfg.link_high, cfg.sustain_checks
            ),
        }

    def update(self, values: dict[str, float]) -> str | None:
        """Feed one check's signal values; returns the fired reason."""
        fired: str | None = None
        for name, thr in self._signals.items():
            if thr.update(values.get(name, 0.0)) and fired is None:
                fired = name
        return fired

    def reset(self) -> None:
        for thr in self._signals.values():
            thr.reset()


@dataclass
class TransitionRecord:
    """One plan transition (completed or rolled back), for the report."""

    started_at: float
    reason: str
    from_plan: str
    to_plan: str
    quiesced_at: float = math.nan
    migrated_at: float = math.nan
    finished_at: float = math.nan
    outcome: str = "pending"  # "completed" | "rolled_back"
    detail: str = ""
    kv_tokens: int = 0
    kv_bytes: float = 0.0
    migrate_retries: int = 0
    requests_delayed: int = 0

    @property
    def duration(self) -> float:
        if math.isnan(self.finished_at):
            return math.nan
        return self.finished_at - self.started_at

    def to_dict(self) -> dict:
        return {
            "started_at": self.started_at,
            "reason": self.reason,
            "from_plan": self.from_plan,
            "to_plan": self.to_plan,
            "quiesced_at": self.quiesced_at,
            "migrated_at": self.migrated_at,
            "finished_at": self.finished_at,
            "outcome": self.outcome,
            "detail": self.detail,
            "kv_tokens": self.kv_tokens,
            "kv_bytes": self.kv_bytes,
            "migrate_retries": self.migrate_retries,
            "requests_delayed": self.requests_delayed,
        }


@dataclass
class ReplanStats:
    """Transition accounting folded into ``ServingMetrics.summary()``."""

    triggers: int = 0
    suppressed: int = 0
    transitions: int = 0
    rollbacks: int = 0
    migrate_retries: int = 0
    kv_bytes_moved: float = 0.0
    requests_delayed: int = 0
    transition_seconds: float = 0.0

    def summary(self) -> dict[str, float]:
        return {
            "replan_triggers": float(self.triggers),
            "replan_suppressed": float(self.suppressed),
            "replan_transitions": float(self.transitions),
            "replan_rollbacks": float(self.rollbacks),
            "replan_migrate_retries": float(self.migrate_retries),
            "replan_kv_bytes_moved": self.kv_bytes_moved,
            "replan_requests_delayed": float(self.requests_delayed),
            "replan_transition_seconds": self.transition_seconds,
        }


class OnlineReplanner:
    """Drift detection plus graceful plan transitions for one engine.

    Attach via ``ServingSimulator(..., replanner=...)``; the engine
    feeds arrivals (:meth:`on_arrival`), controller ticks
    (:meth:`on_tick`) and server faults (:meth:`on_server_down`), all
    behind ``is not None`` guards so unarmed runs pay nothing.
    """

    def __init__(
        self,
        config: ReplanConfig | None = None,
        planner: OfflinePlanner | None = None,
        observer=NULL_OBSERVER,
    ) -> None:
        self.cfg = config or ReplanConfig()
        self.obs = observer or NULL_OBSERVER
        self.planner = planner
        self.detector = DriftDetector(self.cfg)
        self.cooldown = HoldDown(self.cfg.cooldown_s)
        self.stats = ReplanStats()
        self.transitions: list[TransitionRecord] = []
        self.state = "idle"
        self._engine = None
        self._last_check = float("-inf")
        #: (arrival time, input_len, output_len) over the sliding window
        self._arrivals: deque[tuple[float, int, int]] = deque()
        #: (abandoned-at, signature) of plans we transitioned away from
        self._abandoned: list[tuple[float, tuple]] = []
        self._budget_warned = False
        self._switch_ports: dict[int, list[int]] | None = None
        # -- per-transition scratch
        self._gen = 0
        self._new_plan: Plan | None = None
        self._rec: TransitionRecord | None = None
        self._migrate_event = None
        self._warm_event = None
        self._migrate_handles: list[int] = []
        self._migrate_bytes = 0.0
        self._endpoint_gpus: set[int] = set()

    # -- wiring -------------------------------------------------------------

    def attach(self, engine) -> None:
        """Bind to one :class:`~repro.serving.engine.ServingSimulator`."""
        if self._engine is not None and self._engine is not engine:
            raise ValueError(
                "OnlineReplanner instances are per-engine; build one per "
                "replica"
            )
        self._engine = engine

    def _get_planner(self) -> OfflinePlanner:
        """The replan solver, built lazily over the engine's live ctx."""
        if self.planner is None:
            eng = self._engine
            self.planner = OfflinePlanner(
                eng.ctx,
                eng.model,
                eng.bank,
                eng.sla,
                eng.plan.scheme,
                config=PlannerConfig(),
            )
        return self.planner

    # -- signal collection ---------------------------------------------------

    def _ina_ports(self) -> dict[int, list[int]]:
        """Directed link ids incident to each INA-capable switch
        (mirrors the flight recorder's switch-pressure sampling)."""
        if self._switch_ports is None:
            built = self._engine.ctx.built
            ports: dict[int, list[int]] = {
                sw: [] for sw in built.ina_capable_switches()
            }
            for link in built.topology.links:
                if link.src in ports:
                    ports[link.src].append(link.link_id)
                if link.dst in ports:
                    ports[link.dst].append(link.link_id)
            self._switch_ports = ports
        return self._switch_ports

    def signals(self, now: float) -> dict[str, float]:
        """Current drift-signal values (the detector's inputs)."""
        eng = self._engine
        util = eng.ctx.linkstate.ewma_utilization()
        eth = eng._eth_links
        fabric = float(util[eth].max()) if len(eth) else 0.0
        pressure = 0.0
        for port_ids in self._ina_ports().values():
            if port_ids:
                pressure = max(pressure, float(util[port_ids].max()))
        cost_drift = 1.0
        if eng.controller is not None:
            cost_drift = eng.controller.policy_cost_drift()
        return {
            "prefill_backlog": float(len(eng.prefill_queue)),
            "decode_backlog": float(len(eng.decode_pending)),
            "fabric_congestion": fabric,
            "policy_cost_drift": cost_drift,
            "switch_pressure": pressure,
        }

    def on_arrival(self, now: float, req) -> None:
        """Feed one admitted request into the observed-workload window."""
        self._arrivals.append((now, req.input_len, req.output_len))
        cutoff = now - self.cfg.window_s
        while self._arrivals and self._arrivals[0][0] < cutoff:
            self._arrivals.popleft()

    def _observed_workload(
        self, now: float
    ) -> tuple[BatchSpec | None, float]:
        """Forecast (batch, rate) from the arrivals window.

        Mirrors ``Trace.representative_batch``: RMS input length (to
        preserve the attention cost's second moment) and mean output
        length, at the engine's prefill batch width.
        """
        cutoff = now - self.cfg.window_s
        while self._arrivals and self._arrivals[0][0] < cutoff:
            self._arrivals.popleft()
        if len(self._arrivals) < self.cfg.min_window_requests:
            return None, 0.0
        ins = np.array([a[1] for a in self._arrivals], dtype=float)
        outs = np.array([a[2] for a in self._arrivals], dtype=float)
        rms_in = int(round(float(np.sqrt(np.mean(ins**2)))))
        mean_out = int(round(float(outs.mean())))
        span = max(now - self._arrivals[0][0], 1e-9)
        rate = len(self._arrivals) / span
        q = min(len(self._arrivals), self._engine.cfg.max_prefill_requests)
        batch = BatchSpec.uniform(q, max(1, rms_in), max(1, mean_out))
        return batch, rate

    # -- trigger policy ------------------------------------------------------

    def on_tick(self, now: float) -> None:
        """Controller-tick entry point: advance detection, maybe trigger."""
        if self.state != "idle":
            return
        if now - self._last_check < self.cfg.check_period:
            return
        self._last_check = now
        reason = self.detector.update(self.signals(now))
        if reason is None:
            return
        if not self.cooldown.elapsed(now):
            return
        if self.stats.triggers >= self.cfg.max_replans:
            if not self._budget_warned:
                self._budget_warned = True
                self._suppress(now, reason, "replan_budget_exhausted")
            return
        self._trigger(now, reason)

    def _suppress(self, now: float, reason: str, why: str) -> None:
        self.stats.suppressed += 1
        self.cooldown.start(now)
        self.detector.reset()
        log.info("replan suppressed (%s) at t=%.3f: %s", reason, now, why)
        self.obs.replan_event(now, "replan_suppressed", reason=reason,
                              why=why)

    def _trigger(self, now: float, reason: str) -> None:
        eng = self._engine
        batch, rate = self._observed_workload(now)
        if batch is None:
            self._suppress(now, reason, "window_too_small")
            return
        self.stats.triggers += 1
        report = self._get_planner().plan(
            batch, rate, forced_parallel=self.cfg.target_parallel
        )
        new_plan = report.plan
        if new_plan is None:
            self._suppress(now, reason, "no_feasible_plan")
            return
        sig = plan_signature(new_plan)
        if sig == plan_signature(eng.plan):
            self._suppress(now, reason, "plan_unchanged")
            return
        horizon = now - self.cfg.oscillation_window_s
        if any(t >= horizon and s == sig for t, s in self._abandoned):
            self._suppress(now, reason, "oscillation")
            return
        self._begin_transition(now, new_plan, reason)

    # -- transition state machine --------------------------------------------

    def _begin_transition(
        self, now: float, new_plan: Plan, reason: str
    ) -> None:
        eng = self._engine
        self.state = "quiesce"
        self._gen += 1
        self._new_plan = new_plan
        self._migrate_bytes = 0.0
        self._migrate_event = None
        self._warm_event = None
        self._migrate_handles = []
        old_gpus = {g for s in eng.decode_stages for g in s}
        new_gpus = {g for s in new_plan.decode.stages for g in s}
        self._endpoint_gpus = old_gpus | new_gpus
        self._rec = TransitionRecord(
            started_at=now,
            reason=reason,
            from_plan=describe_plan(eng.plan),
            to_plan=describe_plan(new_plan),
        )
        eng.replan_hold = True
        log.info(
            "replan triggered (%s) at t=%.3f: %s -> %s",
            reason, now, self._rec.from_plan, self._rec.to_plan,
        )
        self.obs.replan_event(
            now, "replan_triggered", reason=reason,
            from_plan=self._rec.from_plan, to_plan=self._rec.to_plan,
        )
        self._schedule_quiesce_poll()

    def _schedule_quiesce_poll(self) -> None:
        eng = self._engine
        eng.queue.schedule(
            eng.cfg.controller_period,
            self._poll_quiesce,
            self._gen,
            tag="replan_quiesce",
        )

    def _poll_quiesce(self, gen: int) -> None:
        """Wait (on the sim clock) for in-flight passes to drain.

        Self-scheduled: controller ticks ride on pass completions, which
        stop once the hold empties the pipeline, so the quiesce check
        must drive itself on the event queue.
        """
        if gen != self._gen or self.state != "quiesce":
            return
        eng = self._engine
        now = eng.queue.now
        if eng.degraded:
            self._rollback(now, "fault_during_quiesce")
            return
        if eng.prefill_busy or eng.decode_busy or eng._kv_inflight:
            self._schedule_quiesce_poll()
            return
        self.state = "migrate"
        self._rec.quiesced_at = now
        self.obs.replan_event(now, "plan_transition", phase="quiesced")
        self._start_migration(attempt=0)

    def _resident_kv_tokens(self) -> int:
        """Tokens of KV resident on the old decode placement: decoding
        requests hold prompt + generated-so-far; admission-waiting
        requests hold their transferred prompt KV."""
        eng = self._engine
        active = sum(
            r.input_len + r.tokens_generated for r in eng.decode_active
        )
        pending = sum(r.input_len for r in eng.decode_pending)
        return active + pending

    def _start_migration(self, attempt: int) -> None:
        if self.state != "migrate":
            return
        eng = self._engine
        now = eng.queue.now
        tokens = self._resident_kv_tokens()
        self._rec.kv_tokens = tokens
        if eng.faults is not None and eng.faults.gpus_blocked(
            self._endpoint_gpus
        ):
            # A migration endpoint is ground-truth unreachable: back off
            # with the fault subsystem's seeded retry policy, bounded by
            # the migration's own attempt budget.
            if attempt >= self.cfg.migrate_max_attempts:
                self._rollback(now, "migrate_retry_exhausted")
                return
            delay = eng.faults.backoff(attempt)
            self.stats.migrate_retries += 1
            self._rec.migrate_retries += 1
            self.obs.replan_event(
                now, "plan_transition", phase="migrate_retry",
                attempt=attempt, delay_s=delay,
            )
            eng.queue.schedule(
                delay,
                self._retry_migration,
                self._gen,
                attempt + 1,
                tag="replan_migrate_retry",
            )
            return
        duration, flows, moved = plan_kv_migration(
            eng.ctx,
            eng.model,
            tokens,
            eng.decode_stages,
            [list(s) for s in self._new_plan.decode.stages],
        )
        if moved <= 0.0 or duration <= 0.0:
            # Nothing crosses a link (no resident KV, or the new
            # placement keeps every owner): go straight to warm-up.
            self._rec.migrated_at = now
            self._enter_warm(now)
            return
        self._migrate_bytes = moved
        ls = eng.ctx.linkstate
        self._migrate_handles = [
            ls.register(list(links), nbytes / duration)
            for links, nbytes in flows
            if links
        ]
        self.obs.replan_event(
            now, "plan_transition", phase="migrate",
            kv_tokens=tokens, kv_bytes=moved, eta_s=duration,
        )
        self._migrate_event = eng.queue.schedule(
            duration, self._migration_done, self._gen, tag="replan_migrate"
        )

    def _retry_migration(self, gen: int, attempt: int) -> None:
        if gen != self._gen or self.state != "migrate":
            return
        self._start_migration(attempt)

    def _migration_done(self, gen: int) -> None:
        if gen != self._gen or self.state != "migrate":
            return
        eng = self._engine
        now = eng.queue.now
        self._migrate_event = None
        self._release_migration_load()
        self._rec.migrated_at = now
        self._enter_warm(now)

    def _enter_warm(self, now: float) -> None:
        eng = self._engine
        self.state = "warm"
        self.obs.replan_event(
            now, "plan_transition", phase="warm",
            warm_s=self.cfg.warm_time_s,
        )
        self._warm_event = eng.queue.schedule(
            self.cfg.warm_time_s, self._cutover, self._gen,
            tag="replan_warm",
        )

    def _held_requests(self) -> int:
        """Requests currently inside the engine (all delayed by a hold)."""
        eng = self._engine
        return (
            len(eng.prefill_queue)
            + len(eng.decode_pending)
            + len(eng.decode_active)
        )

    def _cutover(self, gen: int) -> None:
        if gen != self._gen or self.state != "warm":
            return
        eng = self._engine
        now = eng.queue.now
        self._warm_event = None
        old_sig = plan_signature(eng.plan)
        delayed = self._held_requests()
        eng.apply_plan(self._new_plan)
        self._finish_transition(now)
        self._abandoned.append((now, old_sig))
        rec = self._rec
        rec.finished_at = now
        rec.outcome = "completed"
        rec.kv_bytes = self._migrate_bytes
        rec.requests_delayed = delayed
        self.stats.transitions += 1
        self.stats.kv_bytes_moved += self._migrate_bytes
        self.stats.requests_delayed += delayed
        self.stats.transition_seconds += rec.duration
        log.info(
            "plan transition complete at t=%.3f (%.3fs, %.1f MB KV "
            "moved, %d requests delayed)",
            now, rec.duration, self._migrate_bytes / 1e6, delayed,
        )
        self.obs.replan_event(
            now, "transition_complete", reason=rec.reason,
            from_plan=rec.from_plan, to_plan=rec.to_plan,
            duration_s=rec.duration, kv_bytes=rec.kv_bytes,
            requests_delayed=delayed,
        )
        eng._try_start_prefill()
        eng._try_start_decode()

    def _rollback(self, now: float, why: str) -> None:
        """Abort the transition: keep the old plan, release every hold.

        The engine's own failover path has already requeued any victims
        of the triggering fault; rollback only unwinds *transition*
        state, so no request is ever dropped here.
        """
        eng = self._engine
        if self._migrate_event is not None:
            self._migrate_event.cancel()
            self._migrate_event = None
        if self._warm_event is not None:
            self._warm_event.cancel()
            self._warm_event = None
        self._release_migration_load()
        rec = self._rec
        rec.finished_at = now
        rec.outcome = "rolled_back"
        rec.detail = why
        rec.requests_delayed = self._held_requests()
        self.stats.rollbacks += 1
        self.stats.requests_delayed += rec.requests_delayed
        self.stats.transition_seconds += rec.duration
        self._finish_transition(now)
        log.info(
            "plan transition rolled back at t=%.3f (%s); keeping %s",
            now, why, rec.from_plan,
        )
        self.obs.replan_event(
            now, "transition_rollback", why=why,
            from_plan=rec.from_plan, to_plan=rec.to_plan,
            duration_s=rec.duration,
        )
        if not eng._prefill_down:
            eng._try_start_prefill()
        if not eng._decode_down:
            eng._try_start_decode()

    def _finish_transition(self, now: float) -> None:
        """Common state epilogue of cutover and rollback."""
        eng = self._engine
        self.state = "idle"
        self._gen += 1
        eng.replan_hold = False
        self.transitions.append(self._rec)
        self.cooldown.start(now)
        self.detector.reset()
        self._new_plan = None

    def _release_migration_load(self) -> None:
        handles, self._migrate_handles = self._migrate_handles, []
        ls = self._engine.ctx.linkstate
        for h in handles:
            ls.release(h, strict=False)

    # -- fault interaction ---------------------------------------------------

    def on_server_down(self, now: float, gpus: set[int]) -> None:
        """Engine callback after its own failover handling of a fault.

        A fault touching the migration endpoints (old or new decode
        placement) while a transition is in flight aborts it; the
        quiesce phase additionally rolls back on *any* engine
        degradation via its own poll.
        """
        if self.state in ("migrate", "warm") and (
            gpus & self._endpoint_gpus
        ):
            self._rollback(now, "fault_during_migration")

    # -- reduction -----------------------------------------------------------

    def finalize(self, metrics) -> None:
        """Attach transition accounting to the run's metrics.

        Armed runs always carry the ``replan_*`` keys (zeros included)
        so their presence marks "online replanning was on"; unarmed
        runs never reach this code and stay byte-identical.
        """
        metrics.replan_stats = self.stats.summary()
