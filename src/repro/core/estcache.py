"""Content-keyed estimation cache for the offline planner's fast path.

Algorithm 1 re-evaluates the same communication sub-problems thousands of
times: every perturbation round re-prices candidate groups (most swaps
are rejected and re-tried later), k-means restarts across candidates
re-derive identical distance submatrices, and every group evaluation
re-walks the same offline shortest paths. All of those are *pure*
functions of immutable inputs — the built topology, the offline route
table, and the exact member tuple — so an :class:`EstimationCache`
memoizes three layers:

1. **group-step estimates** (`Algorithm 2's ``getlatency``) keyed on the
   exact-order member tuple, payload, scheme and slot parameters,
2. **GPU distance submatrices** keyed on the admissible-GPU tuple,
3. **route-table path lookups** (``path_links``/``path_time``/
   ``path_bottleneck``) via a :class:`_MemoPathContext` wrapper, so even
   cache *misses* in layer 1 run fast.

Key canonicalization is deliberately **order-preserving**: group
membership tuples are *not* sorted. The HYBRID scheme's per-server
leader election and the INA link-footprint assembly iterate members in
insertion order, so two permutations of the same set can legitimately
produce different (equally valid) estimates — a sorted key would silently
substitute one for the other and break the byte-identical-plan guarantee
(see ``docs/PERFORMANCE.md``). The cached value is the object the
uncached path would have produced, bit for bit; the cache only skips its
recomputation.

Staleness: the cache is only attached to *planner* contexts. When the
wrapped context carries a live :class:`~repro.network.linkstate.\
LinkLoadTracker` (fault-injected replans), every lookup first compares
the tracker's monotonic ``version`` counter and drops all memos when it
moved — a link degradation or load change invalidates every estimate.
:meth:`invalidate` forces the same flush explicitly (the planner calls
it on ``replan_excluding``).
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

import numpy as np

from repro.comm.context import CommContext
from repro.comm.latency import (
    DEFAULT_N_SLOTS,
    DEFAULT_SLOT_PAYLOAD,
    GroupCommEstimate,
    SchemeKind,
    estimate_group_step,
    get_scheme,
)

__all__ = ["EstimationCache"]


class _MemoPathContext(CommContext):
    """A :class:`CommContext` that memoizes route-table path lookups.

    Valid only for offline contexts (``linkstate is None``): with no live
    tracker, ``path_links``/``path_time``/``path_bottleneck`` are pure
    functions of the immutable route table, so replaying a memoized
    result is bitwise identical to recomputing it.
    """

    @classmethod
    def wrap(cls, base: CommContext) -> "_MemoPathContext":
        if base.linkstate is not None:
            raise ValueError(
                "_MemoPathContext requires an offline context "
                "(linkstate is None)"
            )
        obj = cls(
            built=base.built,
            route_table=base.route_table,
            linkstate=None,
            agg_latency=base.agg_latency,
            heterogeneous=base.heterogeneous,
        )
        obj._links_memo = {}
        obj._time_memo = {}
        obj._bneck_memo = {}
        return obj

    def clear(self) -> None:
        self._links_memo.clear()
        self._time_memo.clear()
        self._bneck_memo.clear()

    def path_links(self, src: int, dst: int) -> list[int]:
        key = (src, dst)
        hit = self._links_memo.get(key)
        if hit is None:
            hit = super().path_links(src, dst)
            self._links_memo[key] = hit
        return hit

    def path_time(self, src: int, dst: int, data_bytes: float) -> float:
        key = (src, dst, data_bytes)
        hit = self._time_memo.get(key)
        if hit is None:
            hit = super().path_time(src, dst, data_bytes)
            self._time_memo[key] = hit
        return hit

    def path_bottleneck(self, src: int, dst: int) -> float:
        key = (src, dst)
        hit = self._bneck_memo.get(key)
        if hit is None:
            hit = super().path_bottleneck(src, dst)
            self._bneck_memo[key] = hit
        return hit


class EstimationCache:
    """Memoized comm-latency evaluation over one offline context.

    Shared across every candidate, k-means seed and perturbation round of
    a planner run (and across planner runs, until invalidated). Safe for
    the planner's two concurrent estimation threads: memo dict reads and
    writes are individually atomic under the GIL, a duplicated miss just
    recomputes the same pure value, and the counters take a lock.
    """

    def __init__(self, ctx: CommContext, profiler=None) -> None:
        self.base = ctx
        if ctx.linkstate is None:
            #: evaluation context with memoized path lookups
            self.ctx: CommContext = _MemoPathContext.wrap(ctx)
        else:
            # A live tracker makes path costs time-varying: evaluate on
            # the raw context and rely on version-checked invalidation.
            self.ctx = ctx
        self.profiler = profiler
        self._group_memo: dict[tuple, GroupCommEstimate] = {}
        self._dist_memo: dict[tuple[int, ...], np.ndarray] = {}
        self._lock = threading.Lock()
        self.group_hits = 0
        self.group_misses = 0
        self.dist_hits = 0
        self.dist_misses = 0
        self.invalidations = 0
        self._linkstate_version = (
            ctx.linkstate.version if ctx.linkstate is not None else None
        )

    # -- staleness ---------------------------------------------------------

    def _maybe_invalidate(self) -> None:
        ls = self.base.linkstate
        if ls is not None and ls.version != self._linkstate_version:
            self.invalidate()

    def invalidate(self) -> None:
        """Drop every memoized value (topology/fault/load state changed)."""
        with self._lock:
            self._group_memo.clear()
            self._dist_memo.clear()
            if isinstance(self.ctx, _MemoPathContext):
                self.ctx.clear()
            self.invalidations += 1
            ls = self.base.linkstate
            self._linkstate_version = ls.version if ls is not None else None

    # -- memoized evaluations ---------------------------------------------

    def group_step(
        self,
        gpus: Sequence[int],
        data_bytes: float,
        scheme: SchemeKind,
        n_slots: int = DEFAULT_N_SLOTS,
        slot_payload: int = DEFAULT_SLOT_PAYLOAD,
        contention: float = 0.0,
    ) -> GroupCommEstimate:
        """Memoized :func:`repro.comm.latency.estimate_group_step`.

        The key keeps the member tuple in caller order (HYBRID leader
        election and link footprints are order-sensitive; see module
        docstring).
        """
        self._maybe_invalidate()
        key = (
            tuple(gpus),
            float(data_bytes),
            # canonical registry name, so SchemeKind / str / scheme-object
            # spellings of the same collective share entries
            get_scheme(scheme).name,
            n_slots,
            slot_payload,
            float(contention),
        )
        hit = self._group_memo.get(key)
        if hit is not None:
            with self._lock:
                self.group_hits += 1
            return hit
        est = estimate_group_step(
            self.ctx,
            gpus,
            data_bytes,
            scheme,
            n_slots=n_slots,
            slot_payload=slot_payload,
            contention=contention,
        )
        self._group_memo[key] = est
        with self._lock:
            self.group_misses += 1
        return est

    def distance_matrix(self, gpus: Sequence[int]) -> np.ndarray:
        """Memoized :meth:`CommContext.gpu_distance_matrix`.

        The returned array is shared across lookups and marked read-only.
        """
        self._maybe_invalidate()
        key = tuple(gpus)
        hit = self._dist_memo.get(key)
        if hit is not None:
            with self._lock:
                self.dist_hits += 1
            return hit
        dist = self.ctx.gpu_distance_matrix(list(gpus))
        dist.flags.writeable = False
        self._dist_memo[key] = dist
        with self._lock:
            self.dist_misses += 1
        return dist

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Hit/miss totals plus the combined hit rate (for BENCH_planner)."""
        with self._lock:
            hits = self.group_hits + self.dist_hits
            misses = self.group_misses + self.dist_misses
            return {
                "group_hits": self.group_hits,
                "group_misses": self.group_misses,
                "dist_hits": self.dist_hits,
                "dist_misses": self.dist_misses,
                "invalidations": self.invalidations,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            }
