"""Application-level objective: scalability, queueing, SLA feasibility.

Paper Section III-C1: maximise ``H = 1 / T_req`` subject to
``T_pre <= T_sla^pre`` and ``T_dec <= T_sla^dec``, with
``T_req = T_queue + T_serve`` and the M/D/1-style Pollaczek-Khinchine
queueing delay ``T_queue = lambda * T_serve^2 / (2 (1 - rho))``,
``rho = lambda * T_serve`` (valid because LLM iteration times are highly
predictable, so service-time variance is small).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_nonnegative, require_positive


@dataclass(frozen=True)
class SlaSpec:
    """Latency SLA thresholds (Table I's T_sla^pre / T_sla^dec)."""

    ttft: float  # seconds, time-to-first-token bound (prefill)
    tpot: float  # seconds, time-per-output-token bound (decode)

    def __post_init__(self) -> None:
        require_positive("ttft", self.ttft)
        require_positive("tpot", self.tpot)


#: Section V SLA settings.
SLA_TESTBED_CHATBOT = SlaSpec(ttft=2.5, tpot=0.15)
SLA_TESTBED_SUMMARIZATION = SlaSpec(ttft=15.0, tpot=0.15)
SLA_SIM_CHATBOT = SlaSpec(ttft=4.0, tpot=0.2)
SLA_SIM_SUMMARIZATION = SlaSpec(ttft=25.0, tpot=0.2)


def queueing_delay(arrival_rate: float, service_time: float) -> float:
    """Pollaczek-Khinchine waiting time; ``inf`` when unstable.

    ``T_queue = lambda T_serve^2 / (2 (1 - rho))`` with
    ``rho = lambda T_serve``. An over-saturated system (rho >= 1) has an
    unbounded queue.
    """
    require_nonnegative("arrival_rate", arrival_rate)
    require_nonnegative("service_time", service_time)
    rho = arrival_rate * service_time
    if rho >= 1.0:
        return float("inf")
    return arrival_rate * service_time**2 / (2.0 * (1.0 - rho))


@dataclass(frozen=True)
class ServiceEstimate:
    """Predicted latency components of one request (Eqs. 2-4)."""

    t_network_prefill: float
    t_compute_prefill: float
    t_network_decode: float
    t_compute_decode: float
    t_kv_transfer: float
    #: mean output tokens per request (decode iterations per request)
    mean_output_tokens: float

    @property
    def t_prefill(self) -> float:
        """Eq. 3: TTFT = prefill comm + compute."""
        return self.t_network_prefill + self.t_compute_prefill

    @property
    def t_decode(self) -> float:
        """Eq. 4: TPOT = decode comm + compute + KV transfer share.

        The KV transfer happens once per request; amortised per output
        token so TPOT stays the paper's per-token quantity.
        """
        per_tok_kv = (
            self.t_kv_transfer / max(self.mean_output_tokens, 1.0)
        )
        return self.t_network_decode + self.t_compute_decode + per_tok_kv

    @property
    def t_serve(self) -> float:
        """Eq. 2: full service latency of one request."""
        return (
            self.t_prefill
            + self.mean_output_tokens * (
                self.t_network_decode + self.t_compute_decode
            )
            + self.t_kv_transfer
        )


@dataclass(frozen=True)
class ObjectiveResult:
    """Scalability and SLA verdict for one candidate configuration."""

    scalability: float       # H = 1 / T_req (requests/s)
    t_request: float         # T_req = T_queue + T_serve
    t_queue: float
    t_prefill: float
    t_decode: float
    sla_ok: bool


def evaluate_objective(
    est: ServiceEstimate,
    arrival_rate: float,
    sla: SlaSpec,
    concurrency: int = 1,
) -> ObjectiveResult:
    """Eq. 1: compute ``H`` and check the SLA constraints.

    ``arrival_rate`` is the per-deployment request rate the planner is
    sizing for; the queueing term couples H to it. ``concurrency`` is the
    continuous-batching width Q: the deployment completes Q requests per
    service period, so the *effective* per-request service time entering
    the Pollaczek-Khinchine formula is ``T_serve / Q``.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    t_serve = est.t_serve
    t_q = queueing_delay(arrival_rate, t_serve / concurrency)
    t_req = t_q + t_serve
    h = 0.0 if t_req == float("inf") or t_req <= 0 else 1.0 / t_req
    ok = (
        est.t_prefill <= sla.ttft
        and est.t_decode <= sla.tpot
        and t_req != float("inf")
    )
    return ObjectiveResult(
        scalability=h,
        t_request=t_req,
        t_queue=t_q,
        t_prefill=est.t_prefill,
        t_decode=est.t_decode,
        sla_ok=ok,
    )
