"""Online transmission policies and the policy cost table (paper §III-D).

A *policy* ``c`` is a routing configuration for one GPU group's
synchronisation: the scheme (INA at a particular switch, hybrid, or
ring) together with the directed links it occupies. The per-GPU policy
cost table tracks, for each policy, a **virtual bandwidth-utilisation
ratio** ``b_c``; selecting a policy for a transfer of ``D`` bytes costs

    ``J(c, D) = b_c + delta``,  ``delta = D / (T_u * C_c)``  (Eq. 16)

where ``T_u`` is the estimation window and ``C_c`` the policy's
bottleneck link capacity — i.e. ``delta`` is the utilisation the new
transfer adds to the tightest link if spread over the window. (The paper
writes the denominator as ``T_u b_c``; with ``b_c`` a dimensionless
ratio that expression is not a utilisation, so we read it as the
bottleneck *bandwidth* of ``c`` — the natural normalisation that makes
Eq. 17's update a ratio. Documented in DESIGN.md.)

After selection, every policy's ``b_c`` is bumped (Eq. 17): the winner by
``delta``, the others by ``delta * f_{(c*,c)}`` — the load-penalty factor,
an EWMA (Eq. 18) of the link-sharing ratio

    ``W_{(c*,c)} = sum_{e in c* ∩ c} B(e) / sum_{e in c} B(e)``.

Periodically the controller *refreshes* ``b_c`` from monitored link
utilisation (switch counters / DCGM), pulling the virtual values back to
ground truth.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.network.linkstate import LinkLoadTracker
from repro.util.validation import require_positive


@dataclass(frozen=True)
class Policy:
    """One routing configuration ``c`` for a GPU group's collective."""

    policy_id: int
    name: str
    #: "ina" | "ring" | "hybrid-ina" | "hybrid-ring" | "nvlink"
    mode: str
    #: aggregation switch node id when mode uses INA
    switch: int | None
    #: directed links the policy occupies
    links: tuple[int, ...]
    #: bottleneck capacity C_c over the links (bytes/s)
    bottleneck_capacity: float

    def __post_init__(self) -> None:
        require_positive("bottleneck_capacity", self.bottleneck_capacity)


class PolicyCostTable:
    """The §III-D policy cost table for one GPU group.

    Holds ``b`` (virtual utilisation per policy) and ``f`` (pairwise load
    penalties). The table is conceptually replicated on every GPU of the
    group and kept consistent by the central controller; since updates
    are deterministic given the same inputs, one shared instance models
    the synchronised replicas exactly.
    """

    def __init__(
        self,
        policies: list[Policy],
        window: float = 0.1,
        gamma: float = 0.3,
    ) -> None:
        if not policies:
            raise ValueError("need at least one policy")
        for i, p in enumerate(policies):
            if p.policy_id != i:
                raise ValueError("policy_id must equal list index")
        require_positive("window", window)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.policies = list(policies)
        self.window = window
        self.gamma = gamma
        n = len(policies)
        self.b = np.zeros(n)
        # Penalty factors start at the *static* sharing ratio so the very
        # first updates already propagate across overlapping policies.
        self.f = self._static_sharing_matrix()
        self.selections = np.zeros(n, dtype=np.int64)
        #: health mask — True rows are excluded from selection (their
        #: switch or links are believed down); all-False by default.
        self.masked = np.zeros(n, dtype=bool)

    def set_mask(self, masked: Sequence[bool]) -> bool:
        """Replace the health mask; returns True when it changed.

        Masking every policy is rejected: a group must always keep at
        least one lawful route (callers degrade the mask instead).
        """
        new = np.asarray(list(masked), dtype=bool)
        if new.shape != self.masked.shape:
            raise ValueError(
                f"mask length {new.size} != {self.masked.size} policies"
            )
        if new.all():
            raise ValueError("cannot mask every policy of a group")
        if bool(np.array_equal(new, self.masked)):
            return False
        self.masked = new
        return True

    # -- sharing structure -------------------------------------------------

    def _static_sharing_matrix(self) -> np.ndarray:
        """Initial W matrix from link-set overlap (unit link weights)."""
        n = len(self.policies)
        w = np.zeros((n, n))
        sets = [set(p.links) for p in self.policies]
        for i in range(n):
            for j in range(n):
                if i == j or not sets[j]:
                    continue
                w[i, j] = len(sets[i] & sets[j]) / len(sets[j])
        return w

    def sharing_ratio(
        self, linkstate: LinkLoadTracker, selected: int, other: int
    ) -> float:
        """Eq. 18's ``W_{(c*,c)}`` with monitored bandwidths ``B(e)``."""
        sel = set(self.policies[selected].links)
        oth = self.policies[other].links
        if not oth:
            return 0.0
        avail = linkstate.available()
        denom = float(sum(avail[e] for e in oth))
        if denom <= 0:
            return 0.0
        shared = [e for e in oth if e in sel]
        return float(sum(avail[e] for e in shared)) / denom

    # -- Eq. 16 selection ----------------------------------------------------

    def delta(self, data_bytes: float) -> np.ndarray:
        """Per-policy added utilisation of a ``data_bytes`` transfer."""
        caps = np.array([p.bottleneck_capacity for p in self.policies])
        return data_bytes / (self.window * caps)

    def costs(self, data_bytes: float) -> np.ndarray:
        """``J(c, D) = b_c + delta`` for every policy."""
        return self.b + self.delta(data_bytes)

    def select(self, data_bytes: float) -> Policy:
        """Pick argmin-J policy and apply the Eq. 17 table update."""
        if data_bytes < 0:
            raise ValueError("data_bytes must be >= 0")
        deltas = self.delta(data_bytes)
        j = self.b + deltas
        if self.masked.any():
            # Failover: unhealthy routes are priced out of the argmin.
            # The guard keeps the fault-free fast path byte-identical.
            j = np.where(self.masked, np.inf, j)
        best = int(np.argmin(j))
        # Eq. 17: winner takes its own delta; others take delta * f.
        bump = deltas[best] * self.f[best]
        bump[best] = deltas[best]
        self.b += bump
        self.selections[best] += 1
        return self.policies[best]

    # -- periodic controller refresh ----------------------------------------

    def refresh_utilization(self, linkstate: LinkLoadTracker) -> None:
        """Reset ``b_c`` to the monitored max utilisation over its links.

        This is the controller's periodic synchronisation: virtual
        within-window increments are replaced by measured ground truth, so
        ``b`` cannot drift unboundedly.
        """
        for i, p in enumerate(self.policies):
            self.b[i] = (
                linkstate.path_max_utilization(list(p.links))
                if p.links
                else 0.0
            )

    def refresh_penalties(self, linkstate: LinkLoadTracker) -> None:
        """Eq. 18: EWMA-update every pairwise penalty ``f_{(c*,c)}``."""
        n = len(self.policies)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                w = self.sharing_ratio(linkstate, i, j)
                self.f[i, j] = (1 - self.gamma) * self.f[i, j] + self.gamma * w


@dataclass
class PolicyTableStats:
    """Diagnostics snapshot used in tests and example output."""

    names: list[str] = field(default_factory=list)
    b: list[float] = field(default_factory=list)
    selections: list[int] = field(default_factory=list)


def table_stats(table: PolicyCostTable) -> PolicyTableStats:
    """Extract a printable snapshot of a policy table."""
    return PolicyTableStats(
        names=[p.name for p in table.policies],
        b=[float(x) for x in table.b],
        selections=[int(x) for x in table.selections],
    )
