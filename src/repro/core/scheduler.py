"""Load-aware online scheduler (paper §III-D).

One :class:`LoadAwareScheduler` exists per tensor-parallel GPU group. At
construction it asks the group's :class:`~repro.comm.scheme.SchemeBinding`
(from the CollectiveScheme registry) to enumerate the candidate
*policies* — the rows of the Fig. 5 policy selection table:

* for the hybrid (HeroServe) scheme: ``hybrid-ina`` via each of the
  ``n_switch_candidates`` nearest INA-capable switches, ``hybrid-ring``
  (NVLink stage + leader ring), and the plain ``ring`` fallback;
* for homogeneous INA schemes: ``ina`` via each candidate switch plus
  ``ring``;
* for the ring scheme: ``ring`` only (nothing to adapt — DistServe);
* any registered extra schemes (``ring-2stage``, ``tree``, …) contribute
  their rows when enabled via ``extra_schemes``, name-deduplicated.

On every ncclAllreduce-equivalent call, :meth:`decide` consults the
policy cost table (Eq. 16), applies the Eq. 17 virtual-utilisation
updates, and prices the chosen route against the *live* link state — so
as links congest, traffic shifts between NVLink-offloaded and pure
Ethernet routes, and across switches. The central controller refreshes
``b_c`` and the penalty matrix periodically (Eq. 18).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.comm.context import CommContext
from repro.comm.scheme import (
    SchemeBinding,
    SchemeKind,
    get_scheme,
    rank_switches,  # noqa: F401  (compat re-export)
)
from repro.core.policy import Policy, PolicyCostTable
from repro.obs.observer import NULL_OBSERVER


@dataclass(frozen=True)
class CommDecision:
    """Outcome of one online scheduling decision."""

    policy: Policy
    step_time: float
    links: tuple[int, ...]


def _bottleneck_capacity(ctx: CommContext, links: Sequence[int]) -> float:
    """Minimum raw capacity over a link set (C_c of Eq. 16)."""
    if not links:
        # Intra-server-only policies never bottleneck on the fabric; use
        # the NVLink capacity scale so delta stays near zero.
        return 1e12
    topo = ctx.built.topology
    return min(topo.links[lid].capacity for lid in links)


class LoadAwareScheduler:
    """Per-group online scheduler with a policy cost table."""

    def __init__(
        self,
        ctx: CommContext,
        gpus: Sequence[int],
        scheme: SchemeKind,
        n_switch_candidates: int = 2,
        window: float = 0.1,
        gamma: float = 0.3,
        observer: object = NULL_OBSERVER,
        extra_schemes: Sequence[str] = (),
    ) -> None:
        if not gpus:
            raise ValueError("empty GPU group")
        self.ctx = ctx
        self.gpus = list(gpus)
        primary = get_scheme(scheme)
        self.scheme = primary.kind
        self.observer = observer or NULL_OBSERVER
        self._binding = primary.bind(ctx, self.gpus)
        self._policy_binding: list[SchemeBinding] = []
        policies = self._build_policies(n_switch_candidates, extra_schemes)
        self.table = PolicyCostTable(policies, window=window, gamma=gamma)

    # -- policy construction ------------------------------------------------

    def _build_policies(
        self, n_switch_candidates: int, extra_schemes: Sequence[str]
    ) -> list[Policy]:
        ctx = self.ctx
        policies: list[Policy] = []
        seen: set[str] = set()

        def add_specs(binding: SchemeBinding) -> None:
            for spec in binding.policy_specs(n_switch_candidates):
                if spec.name in seen:
                    continue
                seen.add(spec.name)
                self._policy_binding.append(binding)
                policies.append(
                    Policy(
                        policy_id=len(policies),
                        name=spec.name,
                        mode=spec.mode,
                        switch=spec.switch,
                        links=spec.links,
                        bottleneck_capacity=_bottleneck_capacity(
                            ctx, spec.links
                        ),
                    )
                )

        add_specs(self._binding)
        if len(self.gpus) > 1:
            for extra in extra_schemes:
                scheme = get_scheme(extra)
                if scheme.kind == self.scheme:
                    continue
                add_specs(scheme.bind(ctx, self.gpus))
        return policies

    # -- pricing --------------------------------------------------------------

    def _estimate_time(self, policy: Policy, data_bytes: float) -> float:
        """Live latency of executing ``policy`` for ``data_bytes``."""
        binding = self._policy_binding[policy.policy_id]
        return binding.policy_time(policy.mode, policy.switch, data_bytes)

    # -- public API -------------------------------------------------------------

    def decide(self, data_bytes: float) -> CommDecision:
        """Select the policy for one synchronisation step (Eq. 16/17).

        Per Fig. 5, the selection consults the *current* link bandwidths
        ("suppose B[e5] is lower than B[e3], and policy c1 is selected"):
        each GPU's local view of its links is instantaneous (DCGM /
        switch counters), so ``b_c`` is re-grounded from live utilisation
        before the argmin; the Eq. 17 virtual increments then arbitrate
        the transfers landing between monitor updates.
        """
        if self.ctx.linkstate is not None:
            self.table.refresh_utilization(self.ctx.linkstate)
        policy = self.table.select(data_bytes)
        t = self._estimate_time(policy, data_bytes)
        if self.observer.enabled:
            self.observer.policy_selected(
                tuple(self.gpus), policy.name, policy.mode
            )
        return CommDecision(policy=policy, step_time=t, links=policy.links)

    def refresh(self) -> None:
        """Controller-triggered periodic refresh (needs live link state)."""
        ls = self.ctx.linkstate
        if ls is None:
            return
        self.table.refresh_utilization(ls)
        self.table.refresh_penalties(ls)

    def apply_health(self, health) -> tuple[bool, bool]:
        """Mask policies whose switch or links are detected unhealthy.

        Returns ``(changed, degraded)``: whether the mask flipped on this
        call and whether the group is currently running restricted. A
        group is never left without a route — if every policy would be
        masked, link-based masking is dropped first (degraded links are
        slow, not gone), and an all-masked residue clears entirely.
        """

        def switch_bad(p: Policy) -> bool:
            return p.switch is not None and not health.available(
                "switch", p.switch
            )

        down_links = health.detected_down("link")
        mask = [
            switch_bad(p)
            or any(lid in down_links for lid in p.links)
            for p in self.table.policies
        ]
        if all(mask):
            mask = [switch_bad(p) for p in self.table.policies]
        if all(mask):
            mask = [False] * len(mask)
        changed = self.table.set_mask(mask)
        return changed, any(mask)
