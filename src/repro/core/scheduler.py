"""Load-aware online scheduler (paper §III-D).

One :class:`LoadAwareScheduler` exists per tensor-parallel GPU group. At
construction it enumerates the group's candidate *policies* — the rows of
the Fig. 5 policy selection table:

* for the hybrid (HeroServe) scheme: ``hybrid-ina`` via each of the
  ``n_switch_candidates`` nearest INA-capable switches, ``hybrid-ring``
  (NVLink stage + leader ring), and the plain ``ring`` fallback;
* for homogeneous INA schemes: ``ina`` via each candidate switch plus
  ``ring``;
* for the ring scheme: ``ring`` only (nothing to adapt — DistServe).

On every ncclAllreduce-equivalent call, :meth:`decide` consults the
policy cost table (Eq. 16), applies the Eq. 17 virtual-utilisation
updates, and prices the chosen route against the *live* link state — so
as links congest, traffic shifts between NVLink-offloaded and pure
Ethernet routes, and across switches. The central controller refreshes
``b_c`` and the penalty matrix periodically (Eq. 18).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.comm.context import CommContext
from repro.comm.hybrid import (
    elect_leader,
    group_by_server,
    local_reduce_time,
)
from repro.comm.ina import (
    ina_allreduce_time,
    ina_link_footprint,
)
from repro.comm.latency import SchemeKind
from repro.comm.ring import (
    ring_allreduce_time,
    ring_link_footprint,
    ring_order,
)
from repro.core.policy import Policy, PolicyCostTable
from repro.obs.observer import NULL_OBSERVER


@dataclass(frozen=True)
class CommDecision:
    """Outcome of one online scheduling decision."""

    policy: Policy
    step_time: float
    links: tuple[int, ...]


def _bottleneck_capacity(ctx: CommContext, links: Sequence[int]) -> float:
    """Minimum raw capacity over a link set (C_c of Eq. 16)."""
    if not links:
        # Intra-server-only policies never bottleneck on the fabric; use
        # the NVLink capacity scale so delta stays near zero.
        return 1e12
    topo = ctx.built.topology
    return min(topo.links[lid].capacity for lid in links)


def rank_switches(
    ctx: CommContext, gpus: Sequence[int], k: int
) -> list[int]:
    """The ``k`` INA-capable switches nearest to the group."""
    sel = ctx.route_table.selection_bytes
    cands = ctx.built.ina_capable_switches()

    def score(sw: int) -> float:
        return max(
            ctx.path_time(g, sw, sel) + ctx.path_time(sw, g, sel)
            for g in gpus
        )

    # Tie-break equal scores on the switch id so candidate order (and
    # therefore policy enumeration) is deterministic across runs.
    return sorted(cands, key=lambda sw: (score(sw), sw))[: max(1, k)]


class LoadAwareScheduler:
    """Per-group online scheduler with a policy cost table."""

    def __init__(
        self,
        ctx: CommContext,
        gpus: Sequence[int],
        scheme: SchemeKind,
        n_switch_candidates: int = 2,
        window: float = 0.1,
        gamma: float = 0.3,
        observer: object = NULL_OBSERVER,
    ) -> None:
        if not gpus:
            raise ValueError("empty GPU group")
        self.ctx = ctx
        self.gpus = list(gpus)
        self.scheme = scheme
        self.observer = observer or NULL_OBSERVER
        self._leaders_by_switch: dict[int, list[int]] = {}
        policies = self._build_policies(n_switch_candidates)
        self.table = PolicyCostTable(policies, window=window, gamma=gamma)

    # -- policy construction ------------------------------------------------

    def _hybrid_leaders(self, switch: int) -> list[int]:
        cached = self._leaders_by_switch.get(switch)
        if cached is None:
            by_server = group_by_server(self.ctx, self.gpus)
            cached = [
                elect_leader(self.ctx, members, switch)
                for members in by_server.values()
            ]
            self._leaders_by_switch[switch] = cached
        return cached

    def _build_policies(self, n_switch_candidates: int) -> list[Policy]:
        ctx = self.ctx
        policies: list[Policy] = []

        def add(name: str, mode: str, switch: int | None,
                links: Sequence[int]) -> None:
            policies.append(
                Policy(
                    policy_id=len(policies),
                    name=name,
                    mode=mode,
                    switch=switch,
                    links=tuple(links),
                    bottleneck_capacity=_bottleneck_capacity(ctx, links),
                )
            )

        ring_links = ring_link_footprint(ctx, self.gpus)
        if self.scheme == SchemeKind.RING or len(self.gpus) == 1:
            add("ring", "ring", None, ring_links)
            return policies

        switches = rank_switches(ctx, self.gpus, n_switch_candidates)
        if self.scheme == SchemeKind.HYBRID:
            multi_server = len(group_by_server(ctx, self.gpus)) > 1
            if multi_server:
                for sw in switches:
                    leaders = self._hybrid_leaders(sw)
                    links = list(ina_link_footprint(ctx, leaders, sw))
                    for members, leader in zip(
                        group_by_server(ctx, self.gpus).values(),
                        leaders,
                    ):
                        for g in members:
                            if g != leader:
                                links.extend(ctx.path_links(g, leader))
                                links.extend(ctx.path_links(leader, g))
                    add(f"hybrid-ina@{sw}", "hybrid-ina", sw, links)
                leaders = self._hybrid_leaders(switches[0])
                lr_links = ring_link_footprint(ctx, leaders)
                add("hybrid-ring", "hybrid-ring", None, lr_links)
            else:
                # One server: the NVLink ring is unbeatable and uses no
                # fabric links; still expose the Ethernet ring fallback.
                add("nvlink", "nvlink", None, [])
            add("ring", "ring", None, ring_links)
            return policies

        # Homogeneous INA schemes (SwitchML / ATP flavours).
        for sw in switches:
            add(
                f"ina@{sw}",
                "ina",
                sw,
                ina_link_footprint(ctx, self.gpus, sw),
            )
        add("ring", "ring", None, ring_links)
        return policies

    # -- pricing --------------------------------------------------------------

    def _estimate_time(self, policy: Policy, data_bytes: float) -> float:
        """Live latency of executing ``policy`` for ``data_bytes``."""
        ctx = self.ctx
        if policy.mode == "ring":
            return ring_allreduce_time(ctx, self.gpus, data_bytes)
        if policy.mode == "nvlink":
            return ring_allreduce_time(
                ctx, self.gpus, data_bytes, order=ring_order(ctx, self.gpus)
            )
        if policy.mode == "ina":
            assert policy.switch is not None
            return ina_allreduce_time(
                ctx, self.gpus, policy.switch, data_bytes
            )
        # hybrid flavours: NVLink stage + Ethernet stage among leaders.
        by_server = group_by_server(ctx, self.gpus)
        if policy.mode == "hybrid-ina":
            assert policy.switch is not None
            leaders = self._hybrid_leaders(policy.switch)
        else:
            leaders = self._hybrid_leaders(
                rank_switches(ctx, self.gpus, 1)[0]
            )
        stage1 = max(
            local_reduce_time(ctx, members, leader, data_bytes)
            for members, leader in zip(by_server.values(), leaders)
        )
        if policy.mode == "hybrid-ina":
            stage2 = ina_allreduce_time(
                ctx, leaders, policy.switch, data_bytes
            )
        else:
            stage2 = ring_allreduce_time(ctx, leaders, data_bytes)
        return 2.0 * stage1 + stage2

    # -- public API -------------------------------------------------------------

    def decide(self, data_bytes: float) -> CommDecision:
        """Select the policy for one synchronisation step (Eq. 16/17).

        Per Fig. 5, the selection consults the *current* link bandwidths
        ("suppose B[e5] is lower than B[e3], and policy c1 is selected"):
        each GPU's local view of its links is instantaneous (DCGM /
        switch counters), so ``b_c`` is re-grounded from live utilisation
        before the argmin; the Eq. 17 virtual increments then arbitrate
        the transfers landing between monitor updates.
        """
        if self.ctx.linkstate is not None:
            self.table.refresh_utilization(self.ctx.linkstate)
        policy = self.table.select(data_bytes)
        t = self._estimate_time(policy, data_bytes)
        if self.observer.enabled:
            self.observer.policy_selected(
                tuple(self.gpus), policy.name, policy.mode
            )
        return CommDecision(policy=policy, step_time=t, links=policy.links)

    def refresh(self) -> None:
        """Controller-triggered periodic refresh (needs live link state)."""
        ls = self.ctx.linkstate
        if ls is None:
            return
        self.table.refresh_utilization(ls)
        self.table.refresh_penalties(ls)

    def apply_health(self, health) -> tuple[bool, bool]:
        """Mask policies whose switch or links are detected unhealthy.

        Returns ``(changed, degraded)``: whether the mask flipped on this
        call and whether the group is currently running restricted. A
        group is never left without a route — if every policy would be
        masked, link-based masking is dropped first (degraded links are
        slow, not gone), and an all-masked residue clears entirely.
        """

        def switch_bad(p: Policy) -> bool:
            return p.switch is not None and not health.available(
                "switch", p.switch
            )

        down_links = health.detected_down("link")
        mask = [
            switch_bad(p)
            or any(lid in down_links for lid in p.links)
            for p in self.table.policies
        ]
        if all(mask):
            mask = [switch_bad(p) for p in self.table.policies]
        if all(mask):
            mask = [False] * len(mask)
        changed = self.table.set_mask(mask)
        return changed, any(mask)
