"""In-memory trace recorder with JSONL and Chrome-trace export.

Spans carry *simulation* timestamps (seconds); the exporters convert to
the microsecond scale ``chrome://tracing`` / Perfetto expect. Tracks
(one per activity class: prefill, decode, KV transfer, all-reduce,
controller) become Chrome *threads*; request-lifecycle spans get their
own *process* so per-request swimlanes do not collide with the engine
tracks.

The recorder is bounded: past ``max_events`` new records are counted as
dropped instead of growing without limit, so tracing a week-long
simulated trace cannot exhaust host memory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["SpanRecord", "TraceRecorder", "ENGINE_PID", "REQUEST_PID"]

#: Chrome-trace process ids: engine activity vs per-request lanes.
ENGINE_PID = 1
REQUEST_PID = 2


@dataclass
class SpanRecord:
    """One trace record: a complete span (``dur >= 0``) or an instant."""

    name: str
    track: str
    start: float
    dur: float | None  # None => instant event
    pid: int = ENGINE_PID
    tid: int | None = None  # explicit lane (request id); None => track lane
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + (self.dur or 0.0)

    @property
    def is_span(self) -> bool:
        return self.dur is not None


class TraceRecorder:
    """Buffered span/event store for one run."""

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.records: list[SpanRecord] = []
        self.dropped = 0
        self._open: dict[int, SpanRecord] = {}
        self._next_span = 0
        self._tracks: dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def _track_tid(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks)
            self._tracks[track] = tid
        return tid

    def _append(self, rec: SpanRecord) -> bool:
        if len(self.records) >= self.max_events:
            self.dropped += 1
            return False
        self.records.append(rec)
        return True

    def complete(
        self,
        track: str,
        name: str,
        start: float,
        dur: float,
        pid: int = ENGINE_PID,
        tid: int | None = None,
        **args: Any,
    ) -> None:
        """Record a span whose duration is already known.

        The discrete-event engine prices every activity before scheduling
        its completion event, so almost all engine spans take this path.
        """
        if dur < 0:
            raise ValueError(f"span duration must be >= 0, got {dur}")
        self._append(
            SpanRecord(name, track, start, dur, pid=pid, tid=tid, args=args)
        )

    def instant(
        self,
        track: str,
        name: str,
        ts: float,
        pid: int = ENGINE_PID,
        **args: Any,
    ) -> None:
        """Record a point event (controller tick, drop, arrival)."""
        self._append(SpanRecord(name, track, ts, None, pid=pid, args=args))

    def begin(
        self, track: str, name: str, ts: float, **args: Any
    ) -> int:
        """Open a span whose end is not yet known; returns a span id."""
        sid = self._next_span
        self._next_span += 1
        self._open[sid] = SpanRecord(name, track, ts, 0.0, args=args)
        return sid

    def end(self, span_id: int, ts: float, **extra: Any) -> None:
        """Close a span opened with :meth:`begin`."""
        rec = self._open.pop(span_id)
        if ts < rec.start:
            raise ValueError(
                f"span {rec.name!r} ends at {ts} before start {rec.start}"
            )
        rec.dur = ts - rec.start
        rec.args.update(extra)
        self._append(rec)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def spans(self, track: str | None = None) -> list[SpanRecord]:
        return [
            r
            for r in self.records
            if r.is_span and (track is None or r.track == track)
        ]

    def instants(self, track: str | None = None) -> list[SpanRecord]:
        return [
            r
            for r in self.records
            if not r.is_span and (track is None or r.track == track)
        ]

    # -- export ------------------------------------------------------------

    def _chrome_events(self) -> list[dict]:
        events: list[dict] = []
        # Assign track lanes up front so the thread-name metadata below
        # covers every track (lanes are otherwise assigned lazily).
        for r in self.records:
            if r.tid is None:
                self._track_tid(r.track)
        for track, tid in sorted(self._tracks.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "ph": "M",
                    "pid": ENGINE_PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        events.append(
            {
                "ph": "M",
                "pid": ENGINE_PID,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "engine"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": REQUEST_PID,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "requests"},
            }
        )
        for r in self.records:
            tid = r.tid if r.tid is not None else self._track_tid(r.track)
            ev = {
                "name": r.name,
                "cat": r.track,
                "pid": r.pid,
                "tid": tid,
                "ts": r.start * 1e6,  # seconds -> microseconds
                "args": r.args,
            }
            if r.is_span:
                ev["ph"] = "X"
                ev["dur"] = (r.dur or 0.0) * 1e6
            else:
                ev["ph"] = "i"
                ev["s"] = "t"
            events.append(ev)
        return events

    def to_chrome(self) -> dict:
        """``chrome://tracing`` / Perfetto JSON object."""
        return {
            "traceEvents": self._chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"dropped_records": self.dropped},
        }

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
            fh.write("\n")

    def to_jsonl(self) -> str:
        """One JSON object per line — grep/pandas-friendly."""
        lines = []
        for r in self.records:
            lines.append(
                json.dumps(
                    {
                        "name": r.name,
                        "track": r.track,
                        "start": r.start,
                        "dur": r.dur,
                        "pid": r.pid,
                        "tid": r.tid,
                        "args": r.args,
                    }
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
