"""Wall-clock phase profiling for the offline planner.

``bench_planner_time`` historically reported one number per planner run;
the §III-C3 claim (28.57 % faster than DistServe's search) rests on
*which* phases the heuristics cut — candidate enumeration, constrained
k-means grouping, swap perturbation, objective evaluation. A
:class:`PhaseProfiler` accumulates wall time per named phase so the
benchmark can print that breakdown.

Thread-safe: the planner's asynchronous prefill/decode estimation runs
phases from two worker threads concurrently.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["PhaseStat", "PhaseProfiler", "NullProfiler", "NULL_PROFILER"]


@dataclass
class PhaseStat:
    """Accumulated wall time for one phase."""

    total: float = 0.0
    count: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")


class PhaseProfiler:
    """Accumulates wall-clock time per named phase.

    Besides timed phases it keeps named event *counters* (``count``) —
    used by the planner's estimation cache to report hit/miss totals in
    the same breakdown the benchmarks print.
    """

    enabled = True

    def __init__(self) -> None:
        self._stats: dict[str, PhaseStat] = {}
        self._counters: dict[str, int] = {}
        self._lock = threading.Lock()

    def record(self, name: str, elapsed: float) -> None:
        with self._lock:
            stat = self._stats.get(name)
            if stat is None:
                stat = self._stats[name] = PhaseStat()
            stat.total += elapsed
            stat.count += 1

    @contextmanager
    def phase(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - t0)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named event counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counters(self) -> dict[str, int]:
        """Counter name -> total, sorted by descending count."""
        with self._lock:
            items = sorted(self._counters.items(), key=lambda kv: -kv[1])
        return dict(items)

    def breakdown(self) -> dict[str, PhaseStat]:
        """Phase -> stats, sorted by descending total time."""
        with self._lock:
            items = sorted(
                self._stats.items(), key=lambda kv: -kv[1].total
            )
        return dict(items)

    def phase_times(self) -> dict[str, float]:
        """Phase -> total seconds (the flat view reports embed)."""
        return {k: v.total for k, v in self.breakdown().items()}

    def report(self, title: str = "phase breakdown") -> str:
        rows = self.breakdown()
        counters = self.counters()
        if not rows and not counters:
            return f"{title}: (no phases recorded)"
        lines = [title]
        if rows:
            width = max(len(k) for k in rows)
            for name, stat in rows.items():
                lines.append(
                    f"  {name:<{width}s}  {stat.total * 1e3:9.2f} ms"
                    f"  x{stat.count:<6d} mean {stat.mean * 1e3:8.3f} ms"
                )
        if counters:
            width = max(len(k) for k in counters)
            for name, n in counters.items():
                lines.append(f"  {name:<{width}s}  {n:9d} events")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
            self._counters.clear()


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class NullProfiler:
    """No-op profiler: ``phase()`` returns a shared, allocation-free
    context manager, so disabled profiling costs two attribute lookups."""

    enabled = False

    def record(self, name: str, elapsed: float) -> None:
        pass

    def phase(self, name: str):
        return _NULL_CONTEXT

    def count(self, name: str, n: int = 1) -> None:
        pass

    def counters(self) -> dict[str, int]:
        return {}

    def breakdown(self) -> dict[str, PhaseStat]:
        return {}

    def phase_times(self) -> dict[str, float]:
        return {}

    def report(self, title: str = "phase breakdown") -> str:
        return f"{title}: (profiling disabled)"

    def reset(self) -> None:
        pass


#: Shared instance for default arguments.
NULL_PROFILER = NullProfiler()
